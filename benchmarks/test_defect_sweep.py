"""Benchmark: schedule quality under increasing chip defect rates.

For every (non-large) Table I circuit this builds the minimum viable chip,
degrades it with random, connectivity-preserving defects at a sweep of rates
(killing tile slots and degrading/disabling corridor segments), compiles
``ecmas_dd_min`` and ``ecmas_ls_min`` on the degraded chip with both engines,
asserts bit-identical reference-vs-fast schedules plus a clean validator
replay, and records the cycle counts into
``benchmarks/results/defect_sweep.txt``.

The table answers the scenario question of the defect-aware milestone: how
gracefully do the Ecmas schedules degrade as the hardware loses tiles and
lanes?  Cycle counts at rate 0.0 match the pristine Table I columns by
construction; the measured overheads stay small because the congestion-aware
router detours around disabled segments and the placement stage keeps
communicating qubits adjacent even with dead tiles in the window.
"""

from __future__ import annotations

from conftest import full_benchmarks_enabled

from repro.chip import SurfaceCodeModel, random_defects
from repro.circuits.generators import default_suite
from repro.core.ecmas import default_chip
from repro.eval import format_table
from repro.pipeline.registry import run_pipeline_method
from repro.verify import validate_encoded_circuit

#: Defect rates swept per circuit (fraction of tiles killed / segments degraded).
RATES = (0.0, 0.05, 0.1, 0.2)

_METHODS = {
    "ecmas_dd_min": SurfaceCodeModel.DOUBLE_DEFECT,
    "ecmas_ls_min": SurfaceCodeModel.LATTICE_SURGERY,
}


def _compile_cell(circuit, method, chip):
    """Compile one cell with both engines; returns (cycles, compile seconds)."""
    reference = run_pipeline_method(circuit, method, chip=chip, engine="reference")
    fast = run_pipeline_method(circuit, method, chip=chip, engine="fast")
    assert reference.encoded.operations == fast.encoded.operations, (
        f"{method} on {circuit.name}: engines diverged on a defective chip"
    )
    report = validate_encoded_circuit(circuit, fast.encoded)
    assert report.valid, f"{method} on {circuit.name}: {report.errors[:3]}"
    return fast.encoded.num_cycles, fast.compile_seconds


def test_defect_sweep(save_result):
    suite = default_suite(include_large=full_benchmarks_enabled())
    rows = []
    for spec in suite:
        circuit = spec.build()
        row = {"circuit": spec.name, "n": circuit.num_qubits, "g": circuit.num_cnots}
        for method, model in _METHODS.items():
            prefix = "dd" if "dd" in method else "ls"
            chip = default_chip(circuit, model, resources="minimum")
            baseline = None
            for rate in RATES:
                defects = random_defects(
                    chip, rate, seed=int(rate * 100), min_alive_tiles=circuit.num_qubits
                )
                cycles, _seconds = _compile_cell(circuit, method, chip.with_defects(defects))
                row[f"{prefix}_r{rate}"] = cycles
                if rate == 0.0:
                    baseline = cycles
            row[f"{prefix}_overhead"] = (
                round(row[f"{prefix}_r{RATES[-1]}"] / baseline, 2) if baseline else 0.0
            )
        rows.append(row)

    text = format_table(
        rows,
        title=(
            "Defect sweep — cycles on minimum chips with random defects "
            f"(rates {', '.join(str(r) for r in RATES)}; overhead = worst rate / pristine)"
        ),
    )
    print("\n" + text)
    save_result("defect_sweep.txt", text)

    # Sanity on the aggregate: defective chips may cost cycles but must not
    # change the answer — every cell above already passed the validator and
    # the engine-parity assertion.
    assert all(row[f"{p}_r0.0"] > 0 for row in rows for p in ("dd", "ls"))
