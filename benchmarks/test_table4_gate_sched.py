"""Benchmark: regenerate Table IV (gate scheduling ablation, lattice surgery)."""

from __future__ import annotations

from repro.eval import format_table, table4_gate_scheduling


def test_table4_gate_scheduling(benchmark, save_result, batch_options):
    rows = benchmark.pedantic(lambda: table4_gate_scheduling(**batch_options), rounds=1, iterations=1)
    text = format_table(
        rows,
        ["circuit", "n", "alpha", "g", "circuit_order", "ours"],
        title="Table IV — Comparison of gate scheduling algorithms (measured, lattice surgery)",
    )
    print("\n" + text)
    save_result("table4_gate_sched.txt", text)

    # Paper claim: priority scheduling achieves the optimum (= circuit depth)
    # on most benchmarks and is never worse than circuit order by much.
    optimal = sum(1 for row in rows if row["ours"] == row["alpha"])
    assert optimal >= len(rows) - 4
    for row in rows:
        assert row["ours"] <= row["circuit_order"] + 2
