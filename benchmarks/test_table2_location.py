"""Benchmark: regenerate Table II (location initialisation ablation)."""

from __future__ import annotations

from repro.eval import format_table, table2_location


def test_table2_location(benchmark, save_result, batch_options):
    rows = benchmark.pedantic(lambda: table2_location(**batch_options), rounds=1, iterations=1)
    text = format_table(
        rows,
        ["circuit", "n", "alpha", "g", "trivial", "metis", "ours"],
        title="Table II — Comparison of location initialisation methods (measured)",
    )
    print("\n" + text)
    save_result("table2_location.txt", text)

    # The paper's qualitative claim: our multi-attempt placement is at least
    # as good as the trivial snake on (almost) every circuit.
    worse = [row["circuit"] for row in rows if row["ours"] > row["trivial"] + 2]
    assert len(worse) <= 1, f"our placement noticeably worse than trivial on {worse}"
