"""Benchmark: regenerate Table V (cut-type scheduling ablation)."""

from __future__ import annotations

from repro.eval import format_table, table5_cut_scheduling


def test_table5_cut_scheduling(benchmark, save_result, batch_options):
    rows = benchmark.pedantic(lambda: table5_cut_scheduling(**batch_options), rounds=1, iterations=1)
    text = format_table(
        rows,
        ["circuit", "n", "alpha", "g", "channel_first", "time_first", "ours"],
        title="Table V — Comparison of cut type scheduling strategies (measured)",
    )
    print("\n" + text)
    save_result("table5_cut_sched.txt", text)

    # Paper claim: the adaptive M-value strategy matches or beats the better
    # of the two fixed strategies on (nearly) every circuit.
    losses = [
        row["circuit"]
        for row in rows
        if row["ours"] > min(row["channel_first"], row["time_first"]) + 2
    ]
    assert len(losses) <= 2, f"adaptive strategy noticeably worse on {losses}"
