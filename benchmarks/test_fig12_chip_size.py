"""Benchmark: regenerate Figure 12 (effect of chip size).

For circuits of parallelism 11 and 21 (49 qubits, depth 50) the chip size is
swept so the corridor bandwidth rises from 1 to 5, reporting the averaged
cycle count and the compile-time ratio relative to the smallest chip, for
both surface-code models.
"""

from __future__ import annotations

from conftest import full_benchmarks_enabled

from repro.chip import SurfaceCodeModel
from repro.eval import figure12_chip_size, format_sweep


def _parameters():
    if full_benchmarks_enabled():
        return (11, 21), (1, 2, 3, 4, 5), 5
    return (11, 21), (1, 2, 3), 1


def _run(model):
    parallelisms, bandwidths, group_size = _parameters()
    return figure12_chip_size(
        model, parallelisms=parallelisms, bandwidths=bandwidths, group_size=group_size
    )


def _check_trend(points, series_prefix):
    """Cycles must not increase as the chip grows, for every Ecmas series."""
    by_series: dict[str, list] = {}
    for point in points:
        by_series.setdefault(point.series, []).append(point)
    for series, series_points in by_series.items():
        if not series.startswith(series_prefix):
            continue
        ordered = sorted(series_points, key=lambda p: p.x)
        assert ordered[-1].cycles <= ordered[0].cycles * 1.05, f"{series} got worse on a larger chip"


def test_figure12_double_defect(benchmark, save_result):
    points = benchmark.pedantic(lambda: _run(SurfaceCodeModel.DOUBLE_DEFECT), rounds=1, iterations=1)
    text = format_sweep(points, title="Figure 12 — Effect of chip size (double defect)")
    print("\n" + text)
    save_result("fig12_double_defect.txt", text)
    _check_trend(points, "ecmas")


def test_figure12_lattice_surgery(benchmark, save_result):
    points = benchmark.pedantic(lambda: _run(SurfaceCodeModel.LATTICE_SURGERY), rounds=1, iterations=1)
    text = format_sweep(points, title="Figure 12 — Effect of chip size (lattice surgery)")
    print("\n" + text)
    save_result("fig12_lattice_surgery.txt", text)
    _check_trend(points, "ecmas")
