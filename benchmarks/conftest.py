"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  Results
are printed to stdout (run with ``-s`` to see them) and written as text files
under ``benchmarks/results/`` so EXPERIMENTS.md can reference concrete runs.

Environment knobs:

* ``ECMAS_BENCH_FULL=1`` — include the very large Table I circuits
  (``qft_n50``, ``quantum_walk``, ``shor``) and use paper-sized figure groups.
* ``ECMAS_BENCH_JOBS=N`` — fan table regeneration across ``N`` worker
  processes through the batch engine (``0`` = one per CPU; default serial).
* ``ECMAS_BENCH_CACHE=DIR`` — reuse compile results from an on-disk cache
  (off by default: benchmarks measure compilation, so caching would lie).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.pipeline.batch import ResultCache

RESULTS_DIR = Path(__file__).parent / "results"


def full_benchmarks_enabled() -> bool:
    """True when the slow, paper-scale configuration was requested."""
    return os.environ.get("ECMAS_BENCH_FULL", "0") == "1"


def bench_jobs() -> int:
    """Worker-process count for batch-engine table regeneration."""
    return int(os.environ.get("ECMAS_BENCH_JOBS", "1"))


def bench_cache() -> ResultCache | None:
    """Result cache for table regeneration, when explicitly requested."""
    directory = os.environ.get("ECMAS_BENCH_CACHE", "")
    return ResultCache(directory) if directory else None


@pytest.fixture(scope="session")
def batch_options() -> dict:
    """``jobs=`` / ``cache=`` keyword arguments for the table builders."""
    return {"jobs": bench_jobs(), "cache": bench_cache()}


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where regenerated tables/figures are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Write a named text artefact under benchmarks/results/."""

    def _save(name: str, text: str) -> Path:
        path = results_dir / name
        path.write_text(text, encoding="utf-8")
        return path

    return _save
