"""Benchmark: the large-circuit tier — n=100..1000 Ising sweep circuits.

The Table I suite tops out at n=50 / 858 gates; this tier exercises the
scaling path the flat-array routing core, windowed scheduling and the
multilevel placement engine exist for.  Each row compiles an
``ising(n, layers)`` Trotter circuit with ``ecmas_dd_min`` on the fast
engine, records wall-clock, mapping time, peak RSS and schedule length
into ``benchmarks/results/large_circuits.txt``, and checks:

* **parity** against the reference engine for every size it can reach
  (n <= 200, full frontier): bit-identical schedules;
* **validity** for the windowed sizes (n >= 500): the sliding-window
  frontier produces a different schedule than the full frontier would, so
  the check is the validator, not the differential harness;
* the acceptance row — an n=500 circuit with >= 10k CNOTs compiles to a
  validator-clean schedule in windowed mode with the initial mapping
  (placement + bandwidth adjust) finishing inside the ``mapping_s``
  budget.

The windowed rows opt in to ``placement="fast"`` — the multilevel
coarsen/FM core whose quality parity is proven by
``tests/test_placement_parity.py``.  That is what un-gates the n=1000
row: its *scheduling* was always cheap (the windowed working set is
bounded) but the classic KL placement is quadratic-ish in n and used to
dominate wall-clock at that size, so the row hid behind
``ECMAS_BENCH_FULL=1``.  Multilevel placement takes ~0.1s at n=1000.

Peak RSS is read from ``ru_maxrss`` — a process-lifetime high-water mark —
so rows run in ascending n and each reported value is an upper bound for
its row (exact for the row that set the mark).
"""

from __future__ import annotations

import os
import resource
import time

from repro.circuits.generators.standard import ising
from repro.eval import format_table
from repro.pipeline.registry import run_pipeline_method

#: (num_qubits, trotter layers, scheduler window).  ``window=None`` rows use
#: the full frontier, reference placement, and are cross-checked against the
#: reference engine; windowed rows use fast (multilevel) placement and are
#: validator-checked.
_SWEEP: tuple[tuple[int, int, int | None], ...] = (
    (100, 5, None),
    (200, 5, None),
    (500, 11, 64),
    (1000, 6, 64),
)

#: Differential parity is asserted up to this size (reference-engine cost).
_PARITY_MAX_N = 200

#: The acceptance row: n=500 must carry at least this many CNOTs.
_MIN_LARGE_GATES = 10_000

#: Mapping-stage budget (seconds) for the n=500 acceptance row.  Overridable
#: for slow CI runners, mirroring ``ECMAS_ENGINE_SPEED_MIN``.
_MAX_MAPPING_S = float(os.environ.get("ECMAS_BENCH_MAPPING_MAX_S", "5.0"))


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def test_large_circuits(save_result):
    rows = []
    for num_qubits, layers, window in _SWEEP:
        placement = "fast" if window is not None else "reference"
        circuit = ising(num_qubits, layers)
        start = time.perf_counter()
        result = run_pipeline_method(
            circuit,
            "ecmas_dd_min",
            engine="fast",
            window=window,
            placement=placement,
            validate=True,
        )
        wall = time.perf_counter() - start
        mapping_s = result.stage_seconds("initial_mapping") + result.stage_seconds(
            "bandwidth_adjust"
        )
        report = result.context.artifacts["validation"]
        assert report.valid, (
            f"n={num_qubits} window={window}: schedule failed validation: "
            f"{report.errors[:3]}"
        )
        if window is None and num_qubits <= _PARITY_MAX_N:
            reference = run_pipeline_method(circuit, "ecmas_dd_min", engine="reference")
            assert reference.encoded.operations == result.encoded.operations, (
                f"n={num_qubits}: fast engine diverged from reference"
            )
        if num_qubits == 500:
            assert circuit.num_cnots >= _MIN_LARGE_GATES, (
                f"acceptance row must carry >= {_MIN_LARGE_GATES} CNOTs, "
                f"got {circuit.num_cnots}"
            )
            assert mapping_s <= _MAX_MAPPING_S, (
                f"n=500 initial mapping took {mapping_s:.2f}s, budget is "
                f"{_MAX_MAPPING_S}s (override with ECMAS_BENCH_MAPPING_MAX_S)"
            )
        counters = result.counters or {}
        rows.append(
            {
                "n": num_qubits,
                "gates": circuit.num_cnots,
                "window": window if window is not None else "full",
                "placement": placement,
                "wall_s": round(wall, 2),
                "mapping_s": round(mapping_s, 2),
                "schedule_s": round(result.stage_seconds("schedule"), 2),
                "cycles": result.encoded.num_cycles,
                "peak_rss_mb": round(_peak_rss_mb(), 1),
                "memo_hits": counters.get("layer_memo_hits", 0),
                "valid": report.valid,
            }
        )

    text = format_table(
        rows,
        title="Large-circuit tier — ising(n) sweep, ecmas_dd_min, fast engine "
        "(mapping_s = placement + bandwidth adjust; windowed rows use fast "
        "multilevel placement; peak RSS is a process high-water mark)",
    )
    print("\n" + text)
    save_result("large_circuits.txt", text)
