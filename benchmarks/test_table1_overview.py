"""Benchmark: regenerate Table I (overview of experiment results).

For every benchmark circuit this measures the cycle count of AutoBraid,
Ecmas-dd (minimum viable chip and Ecmas-ReSu), EDPCI (minimum and 4x chips)
and Ecmas-ls (minimum and 4x chips), and checks the paper's headline claims:

* Ecmas-dd reduces AutoBraid's cycle count by >= 33% on average (paper: 51.5%),
* Ecmas-ls matches or beats EDPCI on every circuit,
* 4x lattice-surgery results are never worse than the minimum viable chip.
"""

from __future__ import annotations

from conftest import full_benchmarks_enabled

from repro.eval import format_table, summarise_reduction, table1_overview

_COLUMNS = [
    "circuit", "n", "alpha", "g",
    "autobraid", "ecmas_dd_min", "ecmas_dd_resu",
    "edpci_min", "edpci_4x", "ecmas_ls_min", "ecmas_ls_4x",
]


def test_table1_overview(benchmark, save_result, batch_options):
    rows = benchmark.pedantic(
        lambda: table1_overview(include_large=full_benchmarks_enabled(), **batch_options),
        rounds=1,
        iterations=1,
    )
    text = format_table(rows, _COLUMNS, title="Table I — Overview of Experiment Results (measured)")
    dd = summarise_reduction(rows, "autobraid", "ecmas_dd_min")
    ls = summarise_reduction(rows, "edpci_min", "ecmas_ls_min")
    text += (
        f"\nEcmas-dd vs AutoBraid: average reduction {dd['average']:.1%}, max {dd['maximum']:.1%} "
        f"(paper: 51.5% average, 67.3% max)\n"
        f"Ecmas-ls vs EDPCI: average reduction {ls['average']:.1%}, max {ls['maximum']:.1%} "
        f"(paper: optimal on most circuits, up to 13.9%)\n"
    )
    print("\n" + text)
    save_result("table1_overview.txt", text)

    assert dd["average"] >= 0.33
    # Ecmas-ls matches or beats EDPCI except on nearest-neighbour Ising
    # circuits, where the paper itself reports EDPCI's snake mapping wins.
    ls_losses = [
        row["circuit"] for row in rows if row["ecmas_ls_min"] > row["edpci_min"] and "ising" not in row["circuit"]
    ]
    assert not ls_losses, f"Ecmas-ls lost to EDPCI on non-Ising circuits: {ls_losses}"
    for row in rows:
        assert row["ecmas_ls_4x"] <= row["ecmas_ls_min"]
        assert row["ecmas_dd_min"] <= row["autobraid"]
