"""Micro-benchmarks of the individual substrates.

These are not paper experiments; they track the cost of the building blocks
(QASM parsing, DAG construction, Para-Finding, KL placement, per-cycle
routing, full compilation) so performance regressions are visible.
"""

from __future__ import annotations

from repro import SurfaceCodeModel, compile_circuit
from repro.chip import Chip, RoutingGraph, tile_node
from repro.circuits import qasm
from repro.circuits.generators import random_parallel_circuit, standard
from repro.core.metrics import para_finding
from repro.partition import best_placement
from repro.routing import CapacityUsage, find_path


def test_qasm_parse_qft20(benchmark):
    text = qasm.dumps(standard.qft(20))
    circuit = benchmark(lambda: qasm.loads(text))
    assert circuit.num_qubits == 20


def test_dag_construction_random_1000_gates(benchmark):
    circuit = random_parallel_circuit(49, 125, 8, seed=0)
    dag = benchmark(circuit.dag)
    assert len(dag) == 1000


def test_para_finding_random_circuit(benchmark):
    circuit = random_parallel_circuit(49, 50, 12, seed=0)
    dag = circuit.dag()
    scheme = benchmark(lambda: para_finding(dag))
    assert scheme.depth == 50


def test_kl_placement_qft30(benchmark):
    graph = standard.qft(30).communication_graph()
    placement = benchmark(lambda: best_placement(graph, 6, 6, attempts=2, seed=0))
    assert placement.num_qubits() == 30


def test_single_path_routing_large_chip(benchmark):
    chip = Chip.with_tile_array(SurfaceCodeModel.DOUBLE_DEFECT, 3, 12, 12, bandwidth=2)
    graph = RoutingGraph(chip)
    path = benchmark(lambda: find_path(graph, CapacityUsage(), tile_node(0, 0), tile_node(11, 11)))
    assert path is not None


def test_compile_ecmas_dd_qft16(benchmark):
    circuit = standard.qft(16)
    encoded = benchmark.pedantic(
        lambda: compile_circuit(circuit, model=SurfaceCodeModel.DOUBLE_DEFECT, scheduler="limited"),
        rounds=1,
        iterations=1,
    )
    assert encoded.num_cnots == circuit.num_cnots


def test_compile_ecmas_ls_random_p12(benchmark):
    circuit = random_parallel_circuit(49, 50, 12, seed=3)
    encoded = benchmark.pedantic(
        lambda: compile_circuit(circuit, model=SurfaceCodeModel.LATTICE_SURGERY, scheduler="limited"),
        rounds=1,
        iterations=1,
    )
    assert encoded.num_cycles >= 50
