"""Benchmark: reference-vs-fast engine wall-clock over the Table I suite.

For every (non-large) Table I circuit this compiles ``ecmas_dd_min`` and
``ecmas_ls_min`` with both engines, records per-circuit schedule-stage times
into ``benchmarks/results/engine_speed.txt`` (the perf baseline future PRs
compare against), and asserts the headline property of the fast engine:
identical schedules at a large aggregate schedule-stage speedup.

The measurement runs under a :class:`~repro.service.state.WarmStateCache`
routing provider — the daemon scenario the ``core.engines`` provider seam
exists for — so both engines compile against warm per-chip state (the
reference engine reuses the routing graph; the fast engine additionally
reuses its compact array graph, landmark tables and static-path cache).
Round 1 is the cold round that pays one-time build costs; timing takes the
best of ``_ROUNDS`` rounds, and the one-time landmark/array build cost is
reported *separately* per circuit (``build_ms``) rather than being smeared
into the per-compile numbers, so shallow circuits on big chips (bv_n50,
ising_n50, ghz_state_n23) are no longer judged on table-construction time
they pay exactly once per chip.

The speedup assertion is made on the whole-suite aggregate (both methods
combined), not per circuit, so no single noisy row can fail the build.  On
noisy shared machines (CI runners) the thresholds can be adjusted via
``ECMAS_ENGINE_SPEED_MIN`` (overall aggregate, default 5x) and
``ECMAS_ENGINE_SPEED_MIN_METHOD`` (per-method floor, default 2x); schedule
parity is always asserted strictly.
"""

from __future__ import annotations

import os

from conftest import full_benchmarks_enabled

from repro.circuits.generators import default_suite
from repro.core.engines import set_routing_provider
from repro.eval import format_table
from repro.profiling import compare_engines
from repro.service.state import WarmStateCache

_METHODS = ("ecmas_dd_min", "ecmas_ls_min")
_ROUNDS = 3

#: Required overall aggregate schedule-stage speedup, both methods combined.
_MIN_SPEEDUP = float(os.environ.get("ECMAS_ENGINE_SPEED_MIN", "5.0"))
#: Per-method aggregate floor (the old guarantee, kept as a backstop).
_MIN_METHOD_SPEEDUP = float(os.environ.get("ECMAS_ENGINE_SPEED_MIN_METHOD", "2.0"))


def _measure(circuit, method):
    """Best-of-N comparison for one (circuit, method) cell."""
    best = None
    build_seconds = 0.0
    for _ in range(_ROUNDS):
        comparison = compare_engines(circuit, method)
        assert comparison.schedules_identical, (
            f"{method} on {circuit.name}: fast engine diverged from reference"
        )
        # The cold round is the one that actually built landmark tables.
        build_seconds = max(
            build_seconds,
            comparison.counters["fast"].get("landmark_build_seconds", 0.0),
        )
        if best is None:
            best = {
                "schedule": dict(comparison.schedule_seconds),
                "compile": dict(comparison.compile_seconds),
                "cycles": comparison.cycles,
            }
        else:
            for stage in ("schedule", "compile"):
                for engine in ("reference", "fast"):
                    best[stage][engine] = min(
                        best[stage][engine], getattr(comparison, f"{stage}_seconds")[engine]
                    )
    best["build"] = build_seconds
    return best


def test_engine_speed(save_result):
    suite = default_suite(include_large=full_benchmarks_enabled())
    rows = []
    totals = {m: {"reference": 0.0, "fast": 0.0} for m in _METHODS}
    cache = WarmStateCache(capacity=4)
    previous = set_routing_provider(cache.acquire)
    try:
        for spec in suite:
            circuit = spec.build()
            row = {"circuit": spec.name, "n": circuit.num_qubits, "g": circuit.num_cnots}
            for method in _METHODS:
                best = _measure(circuit, method)
                prefix = "dd" if "dd" in method else "ls"
                reference = best["schedule"]["reference"]
                fast = best["schedule"]["fast"]
                totals[method]["reference"] += reference
                totals[method]["fast"] += fast
                row[f"{prefix}_ref_ms"] = round(reference * 1000, 2)
                row[f"{prefix}_fast_ms"] = round(fast * 1000, 2)
                row[f"{prefix}_build_ms"] = round(best["build"] * 1000, 2)
                row[f"{prefix}_speedup"] = round(reference / fast, 2) if fast else 0.0
            rows.append(row)
    finally:
        set_routing_provider(previous)

    dd = totals["ecmas_dd_min"]
    ls = totals["ecmas_ls_min"]
    dd_speedup = dd["reference"] / dd["fast"]
    ls_speedup = ls["reference"] / ls["fast"]
    overall_ref = dd["reference"] + ls["reference"]
    overall_fast = dd["fast"] + ls["fast"]
    overall_speedup = overall_ref / overall_fast
    text = format_table(
        rows,
        title="Engine speed — warm schedule-stage ms (best of rounds) and one-time "
        "landmark build ms, reference vs fast",
    )
    text += (
        f"\nAggregate schedule-stage speedup (warm routing state, best of {_ROUNDS} rounds):\n"
        f"  ecmas_dd_min: {dd_speedup:.2f}x "
        f"({dd['reference'] * 1000:.1f} ms -> {dd['fast'] * 1000:.1f} ms)\n"
        f"  ecmas_ls_min: {ls_speedup:.2f}x "
        f"({ls['reference'] * 1000:.1f} ms -> {ls['fast'] * 1000:.1f} ms)\n"
        f"  overall:      {overall_speedup:.2f}x "
        f"({overall_ref * 1000:.1f} ms -> {overall_fast * 1000:.1f} ms)\n"
    )
    print("\n" + text)
    save_result("engine_speed.txt", text)

    assert overall_speedup >= _MIN_SPEEDUP, (
        f"fast engine only {overall_speedup:.2f}x aggregate over the suite"
    )
    assert dd_speedup >= _MIN_METHOD_SPEEDUP, f"fast DD engine only {dd_speedup:.2f}x over the suite"
    assert ls_speedup >= _MIN_METHOD_SPEEDUP, f"fast LS engine only {ls_speedup:.2f}x over the suite"
