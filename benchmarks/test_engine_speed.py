"""Benchmark: reference-vs-fast engine wall-clock over the Table I suite.

For every (non-large) Table I circuit this compiles ``ecmas_dd_min`` and
``ecmas_ls_min`` with both engines, records per-circuit schedule-stage and
whole-compile times into ``benchmarks/results/engine_speed.txt`` (the perf
baseline future PRs compare against), and asserts the headline property of
the fast engine: identical schedules at >= 2x schedule-stage wall-clock on
the scheduling-dominated circuits.

Timing uses the best of two rounds per engine to damp scheduler noise; the
2x assertion is made on the suite aggregate, not per circuit, so small
circuits whose compile is dominated by landmark-table construction cannot
fail the build on their own.  On noisy shared machines (CI runners) the
required aggregate speedup can be lowered via ``ECMAS_ENGINE_SPEED_MIN``;
schedule parity is always asserted strictly.
"""

from __future__ import annotations

import os

from conftest import full_benchmarks_enabled

from repro.circuits.generators import default_suite
from repro.eval import format_table
from repro.profiling import compare_engines

_METHODS = ("ecmas_dd_min", "ecmas_ls_min")
_ROUNDS = 2

#: Required aggregate schedule-stage speedup (typically measured ~3x).
_MIN_SPEEDUP = float(os.environ.get("ECMAS_ENGINE_SPEED_MIN", "2.0"))


def _measure(circuit, method):
    """Best-of-N comparison for one (circuit, method) cell."""
    best = None
    for _ in range(_ROUNDS):
        comparison = compare_engines(circuit, method)
        assert comparison.schedules_identical, (
            f"{method} on {circuit.name}: fast engine diverged from reference"
        )
        if best is None:
            best = {
                "schedule": dict(comparison.schedule_seconds),
                "compile": dict(comparison.compile_seconds),
                "cycles": comparison.cycles,
            }
        else:
            for stage in ("schedule", "compile"):
                for engine in ("reference", "fast"):
                    best[stage][engine] = min(
                        best[stage][engine], getattr(comparison, f"{stage}_seconds")[engine]
                    )
    return best


def test_engine_speed(save_result):
    suite = default_suite(include_large=full_benchmarks_enabled())
    rows = []
    totals = {m: {"reference": 0.0, "fast": 0.0} for m in _METHODS}
    for spec in suite:
        circuit = spec.build()
        row = {"circuit": spec.name, "n": circuit.num_qubits, "g": circuit.num_cnots}
        for method in _METHODS:
            best = _measure(circuit, method)
            prefix = "dd" if "dd" in method else "ls"
            reference = best["schedule"]["reference"]
            fast = best["schedule"]["fast"]
            totals[method]["reference"] += reference
            totals[method]["fast"] += fast
            row[f"{prefix}_ref_ms"] = round(reference * 1000, 2)
            row[f"{prefix}_fast_ms"] = round(fast * 1000, 2)
            row[f"{prefix}_speedup"] = round(reference / fast, 2) if fast else 0.0
        rows.append(row)

    dd = totals["ecmas_dd_min"]
    ls = totals["ecmas_ls_min"]
    dd_speedup = dd["reference"] / dd["fast"]
    ls_speedup = ls["reference"] / ls["fast"]
    text = format_table(rows, title="Engine speed — schedule-stage seconds, reference vs fast")
    text += (
        f"\nAggregate schedule-stage speedup (best of {_ROUNDS} rounds):\n"
        f"  ecmas_dd_min: {dd_speedup:.2f}x "
        f"({dd['reference'] * 1000:.1f} ms -> {dd['fast'] * 1000:.1f} ms)\n"
        f"  ecmas_ls_min: {ls_speedup:.2f}x "
        f"({ls['reference'] * 1000:.1f} ms -> {ls['fast'] * 1000:.1f} ms)\n"
    )
    print("\n" + text)
    save_result("engine_speed.txt", text)

    assert dd_speedup >= _MIN_SPEEDUP, f"fast DD engine only {dd_speedup:.2f}x over the suite"
    assert ls_speedup >= _MIN_SPEEDUP, f"fast LS engine only {ls_speedup:.2f}x over the suite"
