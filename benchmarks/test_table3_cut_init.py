"""Benchmark: regenerate Table III (cut-type initialisation ablation)."""

from __future__ import annotations

from repro.eval import format_table, table3_cut_initialisation


def test_table3_cut_initialisation(benchmark, save_result, batch_options):
    rows = benchmark.pedantic(lambda: table3_cut_initialisation(**batch_options), rounds=1, iterations=1)
    text = format_table(
        rows,
        ["circuit", "n", "alpha", "g", "random", "maxcut", "ours"],
        title="Table III — Comparison of cut type initialisation methods (measured)",
    )
    print("\n" + text)
    save_result("table3_cut_init.txt", text)

    # Paper claim: the bipartite-prefix initialisation beats or matches the
    # random and max-cut baselines on every circuit of the sensitivity suite.
    for row in rows:
        assert row["ours"] <= max(row["random"], row["maxcut"]) + 1
    wins = sum(1 for row in rows if row["ours"] <= min(row["random"], row["maxcut"]))
    assert wins >= len(rows) // 2
