"""Benchmark: ablations of the reproduction's own design choices.

DESIGN.md (section 6) lists internal design choices that are not part of the
paper's tables but influence the results: the partitioner backing the mapping
stage, whether bandwidth adjusting runs, the gate priority function, and the
router's congestion weighting.  This bench measures each on a congested
workload so regressions in those components show up as cycle-count changes.
"""

from __future__ import annotations

from repro.chip import Chip, SurfaceCodeModel
from repro.circuits.generators import random_parallel_circuit, standard
from repro.core.ecmas import EcmasOptions, compile_circuit
from repro.eval import format_table

DD = SurfaceCodeModel.DOUBLE_DEFECT
LS = SurfaceCodeModel.LATTICE_SURGERY


def _workloads():
    return [
        ("dnn_n16", standard.dnn(16, layers=4)),
        ("random_p10", random_parallel_circuit(25, 30, 10, seed=5)),
    ]


def test_partitioner_choice(benchmark, save_result):
    def run():
        rows = []
        for name, circuit in _workloads():
            row = {"circuit": name}
            for strategy in ("ecmas", "spectral", "trivial", "random"):
                encoded = compile_circuit(
                    circuit, model=LS, scheduler="limited",
                    options=EcmasOptions(placement_strategy=strategy),
                )
                row[strategy] = encoded.num_cycles
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(rows, title="Ablation — placement strategy (lattice surgery, min chip)")
    print("\n" + text)
    save_result("ablation_partitioner.txt", text)
    # Placement quality vs cycle count is noisy on small chips (a random
    # layout can get lucky); require only that the communication-aware
    # placement is never far behind any alternative.
    for row in rows:
        worst_alternative = max(row["spectral"], row["trivial"], row["random"])
        assert row["ecmas"] <= worst_alternative + 3
        assert row["ecmas"] <= row["random"] * 1.2 + 3


def test_bandwidth_adjusting(benchmark, save_result):
    def run():
        rows = []
        for name, circuit in _workloads():
            chip = Chip.four_x(LS, circuit.num_qubits, 3)
            row = {"circuit": name}
            for adjust in (False, True):
                encoded = compile_circuit(
                    circuit, model=LS, chip=chip, scheduler="limited",
                    options=EcmasOptions(adjust_bandwidth=adjust),
                )
                row["adjusted" if adjust else "uniform"] = encoded.num_cycles
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(rows, title="Ablation — bandwidth adjusting (lattice surgery, 4x chip)")
    print("\n" + text)
    save_result("ablation_bandwidth_adjusting.txt", text)
    for row in rows:
        assert row["adjusted"] <= row["uniform"] + 2


def test_priority_function(benchmark, save_result):
    def run():
        rows = []
        for name, circuit in _workloads():
            row = {"circuit": name}
            for priority in ("criticality", "descendants", "circuit_order"):
                encoded = compile_circuit(
                    circuit, model=DD, scheduler="limited", options=EcmasOptions(priority=priority)
                )
                row[priority] = encoded.num_cycles
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(rows, title="Ablation — gate priority (double defect, min chip)")
    print("\n" + text)
    save_result("ablation_priority.txt", text)
    for row in rows:
        assert row["criticality"] <= row["circuit_order"] + 5
