"""Benchmark: regenerate Figure 11 (effect of circuit parallelism).

QUEKO-style random circuits (49 qubits, depth 50) with parallelism swept from
1 to 21 are compiled on the minimum viable chip by Ecmas and the model's
baseline (AutoBraid for double defect, EDPCI for lattice surgery), averaging
the cycle count over a group of circuits per parallelism value.

The paper uses groups of 50 circuits; the default here uses small groups and
a coarser parallelism grid to keep wall-clock time reasonable — set
``ECMAS_BENCH_FULL=1`` for the full sweep.
"""

from __future__ import annotations

from conftest import full_benchmarks_enabled

from repro.chip import SurfaceCodeModel
from repro.eval import figure11_parallelism, format_sweep


def _parameters():
    if full_benchmarks_enabled():
        return tuple(range(1, 22)), 10
    return (1, 3, 5, 9, 13, 17, 21), 2


def _series(points, name):
    return {p.x: p.cycles for p in points if p.series == name}


def test_figure11a_lattice_surgery(benchmark, save_result):
    parallelisms, group_size = _parameters()
    points = benchmark.pedantic(
        lambda: figure11_parallelism(
            SurfaceCodeModel.LATTICE_SURGERY, parallelisms=parallelisms, group_size=group_size
        ),
        rounds=1,
        iterations=1,
    )
    text = format_sweep(points, title="Figure 11a — Effect of circuit parallelism (lattice surgery)")
    print("\n" + text)
    save_result("fig11a_lattice_surgery.txt", text)

    baseline = _series(points, "baseline")
    ecmas = _series(points, "ecmas")
    # Paper: Ecmas generally matches or beats EDPCI, particularly for medium
    # parallelism; cycles grow with parallelism for both.
    assert sum(ecmas.values()) <= sum(baseline.values()) * 1.02
    assert ecmas[max(ecmas)] >= ecmas[min(ecmas)]


def test_figure11b_double_defect(benchmark, save_result):
    parallelisms, group_size = _parameters()
    points = benchmark.pedantic(
        lambda: figure11_parallelism(
            SurfaceCodeModel.DOUBLE_DEFECT, parallelisms=parallelisms, group_size=group_size
        ),
        rounds=1,
        iterations=1,
    )
    text = format_sweep(points, title="Figure 11b — Effect of circuit parallelism (double defect)")
    print("\n" + text)
    save_result("fig11b_double_defect.txt", text)

    baseline = _series(points, "baseline")
    ecmas = _series(points, "ecmas")
    # Paper: Ecmas reduces AutoBraid's cycles by 43%-63% across the range.
    for parallelism, cycles in ecmas.items():
        assert cycles <= 0.75 * baseline[parallelism]
