"""Benchmark: Table-1/Figure-11 machinery on non-square chip geometries.

The topology-agnostic chip milestone's acceptance run.  Two graph
geometries — a heavy-hex lattice (IBM-style degree <= 3 with mid-edge flag
tiles) and a seeded degree-3 sparse graph — host every Table I circuit that
fits their tile count, compiled as ``ecmas_dd_min`` and ``ecmas_ls_min``
with both engines.  Every cell asserts bit-identical reference-vs-fast
schedules and a clean validator replay; cycle counts land in
``benchmarks/results/geometry_suite.txt``.

A Figure-11-style parallelism sweep (QUEKO circuits pinned to the heavy-hex
chip with in-job validation) rides along, demonstrating the figure machinery
is geometry-agnostic too.

The headline: the whole Ecmas pipeline — placement, per-edge bandwidth
adjusting, routing, scheduling — runs validator-clean on geometries the
paper never modelled, at cycle counts in the same band as the square-lattice
columns (sparser corridors cost cycles; the congestion-aware router absorbs
most of it).
"""

from __future__ import annotations

from conftest import full_benchmarks_enabled

from repro.chip import Chip, SurfaceCodeModel, degree3_sparse, heavy_hex
from repro.circuits.generators import default_suite
from repro.eval import format_table
from repro.eval.figures import figure11_parallelism
from repro.pipeline.registry import run_pipeline_method
from repro.verify import validate_encoded_circuit

#: The two non-square acceptance geometries (name -> tile graph).
GEOMETRIES = {
    "hhex": heavy_hex(3, 3),  # 18 tiles, 24 edges, degree <= 3
    "sp3": degree3_sparse(24, seed=7),  # 24 tiles, 35 edges, degree <= 3
}

_METHODS = {
    "ecmas_dd_min": SurfaceCodeModel.DOUBLE_DEFECT,
    "ecmas_ls_min": SurfaceCodeModel.LATTICE_SURGERY,
}


def _compile_cell(circuit, method, chip):
    """Compile one cell with both engines; returns the validated cycle count."""
    reference = run_pipeline_method(circuit, method, chip=chip, engine="reference")
    fast = run_pipeline_method(circuit, method, chip=chip, engine="fast")
    assert reference.encoded.operations == fast.encoded.operations, (
        f"{method} on {circuit.name}: engines diverged on a graph chip"
    )
    report = validate_encoded_circuit(circuit, fast.encoded)
    assert report.valid, f"{method} on {circuit.name}: {report.errors[:3]}"
    return fast.encoded.num_cycles


def test_geometry_suite(save_result):
    suite = default_suite(include_large=full_benchmarks_enabled())
    chips = {
        (geo_name, method): Chip.from_tile_graph(model, 3, graph)
        for geo_name, graph in GEOMETRIES.items()
        for method, model in _METHODS.items()
    }
    rows = []
    for spec in suite:
        circuit = spec.build()
        row = {"circuit": spec.name, "n": circuit.num_qubits, "g": circuit.num_cnots}
        fits_any = False
        for geo_name, graph in GEOMETRIES.items():
            for method in _METHODS:
                column = f"{geo_name}_{'dd' if 'dd' in method else 'ls'}"
                if circuit.num_qubits > graph.num_nodes:
                    row[column] = "-"  # circuit does not fit this geometry
                    continue
                row[column] = _compile_cell(circuit, method, chips[(geo_name, method)])
                fits_any = True
        if fits_any:
            rows.append(row)

    lines = [
        format_table(
            rows,
            title=(
                "Geometry suite — cycles on non-square graph chips "
                "(hhex = heavy_hex 3x3, 18 tiles; sp3 = degree-3 sparse n=24 seed=7; "
                "both engines bit-identical, validator-clean; '-' = does not fit)"
            ),
        )
    ]

    # Figure-11-style parallelism sweep pinned to the heavy-hex chip.
    points = figure11_parallelism(
        SurfaceCodeModel.DOUBLE_DEFECT,
        parallelisms=(1, 3, 5) if not full_benchmarks_enabled() else tuple(range(1, 22, 4)),
        group_size=1 if not full_benchmarks_enabled() else 3,
        num_qubits=18,
        depth=10,
        chip=chips[("hhex", "ecmas_dd_min")],
        validate=True,
    )
    sweep_rows = [
        {
            "parallelism": int(point.x),
            "series": point.series,
            "method": point.extra["method"],
            "cycles": round(point.cycles, 1),
        }
        for point in points
    ]
    lines.append(
        format_table(
            sweep_rows,
            title=(
                "Figure-11-style sweep on heavy_hex 3x3 — QUEKO n=18 d=10, "
                "validated in-job (baseline = autobraid)"
            ),
        )
    )

    text = "\n".join(lines)
    print("\n" + text)
    save_result("geometry_suite.txt", text)

    # Sanity on the aggregates: every fitting cell compiled, and Ecmas beats
    # the braiding baseline at every swept parallelism on the graph chip too.
    assert all(isinstance(row["hhex_dd"], int) for row in rows if row["n"] <= 18)
    by_parallelism: dict[int, dict[str, float]] = {}
    for row in sweep_rows:
        by_parallelism.setdefault(row["parallelism"], {})[row["series"]] = row["cycles"]
    assert all(cell["ecmas"] <= cell["baseline"] for cell in by_parallelism.values())
