"""Setup shim.

This file exists so the package can be installed in environments without
network access (no build isolation, no ``wheel`` package) via either::

    pip install -e . --no-build-isolation --no-use-pep517

or the legacy ``python setup.py develop``.

``numpy`` is a *runtime* dependency, not a dev convenience: the fast
engine's flat-array routing core (``repro.chip.graph_arrays``) builds its
CSR adjacency and capacity tables as numpy arrays.  It is declared here so
``pip install`` pulls it in; ``requirements-dev.txt`` pins the same package
for the PYTHONPATH-based CI jobs that never install the distribution.
"""

from setuptools import setup

setup(install_requires=["numpy"])
