"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so the package can be installed in environments without network access (no
build isolation, no ``wheel`` package) via either::

    pip install -e . --no-build-isolation --no-use-pep517

or the legacy ``python setup.py develop``.
"""

from setuptools import setup

setup()
