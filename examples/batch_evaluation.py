#!/usr/bin/env python3
"""Batch evaluation: fan a grid of (circuit, method) jobs across processes.

Compiles a slice of the Table I suite with three methods through the batch
engine, first cold (everything compiles, with live progress streamed as jobs
finish) and then warm (everything is served from the on-disk result cache),
and prints the per-cell records plus the cache counters.  Because records are
persisted the moment they complete, interrupting the cold run and restarting
it recompiles only what was still in flight.

Run with::

    python examples/batch_evaluation.py [workers]
"""

from __future__ import annotations

import sys
import tempfile

from repro import BatchJob, BatchProgress, ResultCache, run_batch
from repro.circuits.generators import get_benchmark
from repro.eval import format_table

CIRCUITS = ("dnn_n8", "qft_n10", "adder_n10")
METHODS = ("autobraid", "ecmas_dd_min", "ecmas_ls_min")


def main(workers: int = 2) -> None:
    jobs = [
        BatchJob(circuit=get_benchmark(name).build(), method=method, circuit_name=name)
        for name in CIRCUITS
        for method in METHODS
    ]

    def show_progress(snapshot: BatchProgress) -> None:
        print(
            f"  {snapshot.finished}/{snapshot.total} "
            f"(compiled {snapshot.done}, cached {snapshot.cached}, failed {snapshot.failed})"
        )

    with tempfile.TemporaryDirectory(prefix="repro-cache-") as cache_dir:
        for label in ("cold", "warm"):
            cache = ResultCache(cache_dir)
            result = run_batch(jobs, workers=workers, cache=cache, progress=show_progress)
            print(
                f"{label} run: {result.recompilations} compiled, "
                f"{result.cache_hits} cache hits ({result.workers} workers)"
            )
        print()
        rows = [
            {
                "circuit": record.circuit,
                "method": record.method,
                "cycles": record.cycles,
                "compile_s": round(record.compile_seconds, 4),
                "schedule_s": round(record.stage_seconds.get("schedule", 0.0), 4),
            }
            for record in result.records
        ]
        print(format_table(rows, title="Batch records (warm run)"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2)
