#!/usr/bin/env python3
"""Domain scenario: high-parallelism Ising / QDNN workloads.

The paper's introduction motivates Ecmas with circuits where many CNOT gates
can execute in parallel — Trotterised Ising evolution and quantum deep neural
network (QuClassi-style) ansätze.  This example profiles both workloads,
shows how the chip's communication capacity compares to the circuits'
parallelism degree, and measures how much execution time Ecmas recovers
versus the baselines on the minimum viable chip and on a 4x chip.

Run with::

    python examples/ising_vqe_workload.py
"""

from __future__ import annotations

from repro import SurfaceCodeModel, circuit_parallelism_degree, compile_circuit, default_chip
from repro.baselines import compile_autobraid, compile_edpci
from repro.circuits.generators import standard
from repro.core import chip_communication_capacity
from repro.eval.report import format_table

DD = SurfaceCodeModel.DOUBLE_DEFECT
LS = SurfaceCodeModel.LATTICE_SURGERY


def profile(circuit) -> dict:
    return {
        "circuit": circuit.name,
        "qubits": circuit.num_qubits,
        "alpha": circuit.depth(),
        "cnots": circuit.num_cnots,
        "PM": circuit_parallelism_degree(circuit),
    }


def evaluate(circuit) -> dict:
    row = {"circuit": circuit.name}
    chip_dd = default_chip(circuit, DD, "minimum")
    chip_ls_min = default_chip(circuit, LS, "minimum")
    chip_ls_4x = default_chip(circuit, LS, "4x")
    row["capacity_min"] = chip_communication_capacity(chip_dd)
    row["autobraid"] = compile_autobraid(circuit, chip=chip_dd).num_cycles
    row["ecmas_dd"] = compile_circuit(circuit, model=DD, chip=chip_dd, scheduler="limited").num_cycles
    row["edpci"] = compile_edpci(circuit, chip=chip_ls_min).num_cycles
    row["ecmas_ls"] = compile_circuit(circuit, model=LS, chip=chip_ls_min, scheduler="limited").num_cycles
    row["ecmas_ls_4x"] = compile_circuit(circuit, model=LS, chip=chip_ls_4x, scheduler="limited").num_cycles
    return row


def main() -> None:
    workloads = [
        standard.ising(16, layers=4),
        standard.ising(36, layers=2),
        standard.dnn(16, layers=4),
        standard.dnn(24, layers=3),
    ]

    print(format_table([profile(c) for c in workloads], title="Workload profile"))
    print("The parallelism degree (PM) of these circuits exceeds the minimum viable chip's")
    print("communication capacity (3), which is exactly the regime Ecmas targets.\n")

    rows = [evaluate(c) for c in workloads]
    print(format_table(
        rows,
        ["circuit", "capacity_min", "autobraid", "ecmas_dd", "edpci", "ecmas_ls", "ecmas_ls_4x"],
        title="Cycle counts (minimum viable chip unless noted)",
    ))

    for row in rows:
        saved = 1.0 - row["ecmas_dd"] / row["autobraid"]
        print(f"{row['circuit']:12s}: Ecmas removes {saved:.1%} of AutoBraid's execution time; "
              f"a 4x lattice-surgery chip brings Ecmas to {row['ecmas_ls_4x']} cycles.")


if __name__ == "__main__":
    main()
