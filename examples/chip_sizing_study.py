#!/usr/bin/env python3
"""Domain scenario: sizing a chip for a target workload.

A hardware architect wants to know how many physical qubits to budget for a
given logical workload: too few and CNOT congestion inflates execution time
(hurting fidelity), too many and qubits are wasted.  This example sweeps the
corridor bandwidth from 1 to 4 for a representative high-parallelism workload
and reports, for each chip size, the execution time achieved by Ecmas and by
the baseline, plus the point at which the chip's communication capacity
covers the circuit's parallelism degree (where Ecmas-ReSu's guarantee kicks
in).

Run with::

    python examples/chip_sizing_study.py
"""

from __future__ import annotations

from repro import Chip, SurfaceCodeModel, circuit_parallelism_degree, compile_circuit
from repro.baselines import compile_autobraid, compile_edpci
from repro.chip import communication_capacity
from repro.circuits.generators import random_parallel_circuit
from repro.eval.report import format_table

CODE_DISTANCE = 3


def sweep(model: SurfaceCodeModel, circuit, bandwidths=(1, 2, 3, 4)) -> list[dict]:
    rows = []
    parallelism = circuit_parallelism_degree(circuit)
    for bandwidth in bandwidths:
        chip = Chip.for_bandwidth(model, circuit.num_qubits, CODE_DISTANCE, bandwidth)
        ecmas = compile_circuit(circuit, model=model, chip=chip, scheduler="auto")
        if model is SurfaceCodeModel.DOUBLE_DEFECT:
            baseline = compile_autobraid(circuit, chip=chip)
        else:
            baseline = compile_edpci(circuit, chip=chip)
        rows.append(
            {
                "bandwidth": bandwidth,
                "physical_qubits": chip.physical_qubits,
                "capacity": communication_capacity(bandwidth),
                "covers_PM": communication_capacity(bandwidth) >= parallelism,
                "scheduler": ecmas.method,
                "ecmas_cycles": ecmas.num_cycles,
                "baseline_cycles": baseline.num_cycles,
            }
        )
    return rows


def main() -> None:
    circuit = random_parallel_circuit(36, depth=40, parallelism=9, seed=7)
    parallelism = circuit_parallelism_degree(circuit)
    print(f"Workload: {circuit.name} — {circuit.num_qubits} qubits, depth {circuit.depth()}, "
          f"{circuit.num_cnots} CNOTs, parallelism degree {parallelism}\n")

    for model in (SurfaceCodeModel.DOUBLE_DEFECT, SurfaceCodeModel.LATTICE_SURGERY):
        rows = sweep(model, circuit)
        print(format_table(rows, title=f"Chip sizing sweep — {model.value}"))
        knee = next((row for row in rows if row["covers_PM"]), None)
        if knee:
            print(f"Capacity first covers the workload's parallelism at bandwidth "
                  f"{knee['bandwidth']} ({knee['physical_qubits']} physical qubits).\n")
        else:
            print("Capacity never covers the workload's parallelism in this sweep; "
                  "the limited-resource scheduler is used throughout.\n")


if __name__ == "__main__":
    main()
