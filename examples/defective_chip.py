#!/usr/bin/env python3
"""Defective chips: compile onto hardware with dead tiles and broken couplers.

Loads the checked-in chip spec ``examples/chips/defective_4x4.json`` (a 4x4
double-defect chip with one dead tile, one disabled corridor segment and one
degraded segment), compiles a QFT onto it, and shows that

* placement avoids the dead tile,
* routing detours around the disabled segment,
* the validator certifies the schedule against the defect constraints,
* the reference and fast engines agree bit-for-bit on the defective chip.

Also demonstrates the random-defect generator and chip-spec save/load.

Run with::

    python examples/defective_chip.py

The same compile is available from the CLI::

    python -m repro compile qft_n10 --chip-spec examples/chips/defective_4x4.json
    python -m repro compile qft_n10 --defect-rate 0.15 --defect-seed 7
"""

from __future__ import annotations

from pathlib import Path

from repro.chip import DefectSpec, load_chip_spec, random_defects, save_chip_spec
from repro.circuits.generators import standard
from repro.pipeline.registry import run_pipeline_method
from repro.verify import validate_encoded_circuit

SPEC_PATH = Path(__file__).parent / "chips" / "defective_4x4.json"


def main() -> None:
    chip = load_chip_spec(SPEC_PATH)
    print(f"Loaded chip spec: {SPEC_PATH.name}")
    print(f"  {chip.describe()}")
    print(f"  alive tile slots: {chip.num_alive_tile_slots} / {chip.num_tile_slots}")
    print()

    circuit = standard.qft(10, with_swaps=True)
    results = {
        engine: run_pipeline_method(circuit, "ecmas_dd_min", chip=chip, engine=engine)
        for engine in ("reference", "fast")
    }
    encoded = results["fast"].encoded
    report = validate_encoded_circuit(circuit, encoded)

    dead = chip.defects.dead_set()
    occupied = {(slot.row, slot.col) for slot in encoded.placement.slots()}
    print(f"Compiled {circuit.name}: {encoded.num_cycles} cycles, valid={report.valid}")
    print(f"  dead tiles {sorted(dead)} occupied by qubits: {bool(occupied & dead)}")
    print(
        "  engines agree bit-for-bit: "
        f"{results['reference'].encoded.operations == encoded.operations}"
    )
    print()

    # Degrade a pristine copy further with the random generator and persist it.
    degraded = chip.with_defects(DefectSpec()).with_defects(
        random_defects(chip, rate=0.15, seed=7, min_alive_tiles=circuit.num_qubits)
    )
    out = Path(__file__).parent / "chips" / "generated_defects.json"
    save_chip_spec(degraded, out)
    print(f"Generated {degraded.defects.describe()} -> {out.name}")
    encoded2 = run_pipeline_method(circuit, "ecmas_dd_min", chip=degraded).encoded
    report2 = validate_encoded_circuit(circuit, encoded2)
    print(f"Compiled on generated chip: {encoded2.num_cycles} cycles, valid={report2.valid}")
    out.unlink(missing_ok=True)


if __name__ == "__main__":
    main()
