#!/usr/bin/env python3
"""Quickstart: compile a circuit with Ecmas and inspect the result.

Builds a 10-qubit QFT, compiles it for both surface-code models on the
minimum viable chip, validates the schedules, and prints a comparison against
the AutoBraid and EDPCI baselines.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SurfaceCodeModel, circuit_parallelism_degree, compile_circuit, default_chip
from repro.baselines import compile_autobraid, compile_edpci
from repro.circuits.generators import standard
from repro.verify import validate_encoded_circuit


def main() -> None:
    circuit = standard.qft(10, with_swaps=True)
    print(f"Circuit: {circuit.name}")
    print(f"  logical qubits : {circuit.num_qubits}")
    print(f"  CNOT gates (g) : {circuit.num_cnots}")
    print(f"  CNOT depth (α) : {circuit.depth()}")
    print(f"  parallelism PM : {circuit_parallelism_degree(circuit)}")
    print()

    for model in (SurfaceCodeModel.DOUBLE_DEFECT, SurfaceCodeModel.LATTICE_SURGERY):
        chip = default_chip(circuit, model, "minimum")
        encoded = compile_circuit(circuit, model=model, chip=chip, scheduler="limited")
        report = validate_encoded_circuit(circuit, encoded)
        baseline = (
            compile_autobraid(circuit, chip=chip)
            if model is SurfaceCodeModel.DOUBLE_DEFECT
            else compile_edpci(circuit, chip=chip)
        )
        baseline_name = "AutoBraid" if model is SurfaceCodeModel.DOUBLE_DEFECT else "EDPCI"
        reduction = 1.0 - encoded.num_cycles / baseline.num_cycles if baseline.num_cycles else 0.0
        print(f"[{model.value}] chip: {chip.describe()}")
        print(f"  Ecmas cycles     : {encoded.num_cycles} (valid schedule: {report.valid})")
        print(f"  {baseline_name:9s} cycles : {baseline.num_cycles}")
        print(f"  reduction        : {reduction:.1%}")
        print(f"  cut modifications: {encoded.num_cut_modifications}")
        print(f"  compile time     : {encoded.compile_seconds * 1000:.1f} ms")
        print()

    # The same compile, run through the pass pipeline for per-stage timings.
    from repro import run_pipeline_method

    result = run_pipeline_method(circuit, "ecmas_dd_min")
    print("Per-stage timings (ecmas_dd_min):")
    for stage, seconds in result.timings_dict().items():
        print(f"  {stage:<16} {seconds * 1000:8.2f} ms")


if __name__ == "__main__":
    main()
