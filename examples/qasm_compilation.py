#!/usr/bin/env python3
"""Compile an OpenQASM 2.0 program end-to-end.

Demonstrates the compiler-style workflow the paper assumes: a QASM program
(here written to a temporary file, but any Qiskit / QASMBench export works)
is parsed by the built-in front-end, profiled, mapped and scheduled, and the
encoded circuit is summarised cycle by cycle.

Run with::

    python examples/qasm_compilation.py [path/to/circuit.qasm]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import SurfaceCodeModel, circuit_parallelism_degree, compile_circuit
from repro.circuits import qasm
from repro.circuits.generators import standard
from repro.core import chip_communication_capacity
from repro.verify import validate_encoded_circuit

EXAMPLE_QASM = """\
OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];
creg c[6];
gate entangle a, b { h a; cx a, b; }
entangle q[0], q[1];
entangle q[2], q[3];
entangle q[4], q[5];
ccx q[0], q[2], q[4];
swap q[1], q[3];
cz q[3], q[5];
barrier q;
measure q[0] -> c[0];
"""


def load_circuit(argv: list[str]):
    if len(argv) > 1:
        path = Path(argv[1])
        print(f"Loading {path} ...")
        return qasm.load(path)
    # No file given: write the bundled example plus a generated adder to disk
    # to show both directions of the front-end.
    tmp = Path(tempfile.mkdtemp())
    example = tmp / "example.qasm"
    example.write_text(EXAMPLE_QASM, encoding="utf-8")
    qasm.dump(standard.cuccaro_adder(10), tmp / "adder_n10.qasm")
    print(f"No input given; using the bundled example written to {example}")
    return qasm.load(example, name="example")


def main() -> None:
    circuit = load_circuit(sys.argv)
    print(f"Parsed {circuit.name}: {circuit.num_qubits} qubits, "
          f"{len(circuit)} gates after expansion, {circuit.num_cnots} CNOTs, depth {circuit.depth()}")
    parallelism = circuit_parallelism_degree(circuit)
    print(f"Circuit parallelism degree (Para-Finding): {parallelism}")
    print()

    encoded = compile_circuit(circuit, model=SurfaceCodeModel.DOUBLE_DEFECT, resources="minimum")
    validate_encoded_circuit(circuit, encoded).raise_if_invalid()
    capacity = chip_communication_capacity(encoded.chip)
    print(f"Target chip: {encoded.chip.describe()}")
    print(f"Chip communication capacity: {capacity} "
          f"({'sufficient' if capacity >= parallelism else 'limited'} resources)")
    print(f"Scheduler used: {encoded.method}")
    print(f"Encoded circuit: {encoded.num_cycles} clock cycles, "
          f"{encoded.num_cut_modifications} cut-type modifications")
    print()

    print("Cycle-by-cycle view (first 10 cycles):")
    for cycle in range(min(10, encoded.num_cycles)):
        ops = encoded.operations_in_cycle(cycle)
        parts = []
        for op in ops:
            qubits = ",".join(f"q{q}" for q in op.qubits)
            parts.append(f"{op.kind.value}({qubits})")
        print(f"  cycle {cycle:3d}: " + ("; ".join(parts) if parts else "(idle)"))


if __name__ == "__main__":
    main()
