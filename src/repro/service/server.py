"""The HTTP face of the compile daemon (stdlib ``http.server``, JSON bodies).

Endpoints (all responses carry ``api_version``):

========  =============  ====================================================
method    path           behaviour
========  =============  ====================================================
GET       ``/healthz``   liveness: status, library version, uptime
GET       ``/stats``     cache / warm-state / job / engine counters
POST      ``/compile``   one compile request; ``202`` with a job id, or the
                         finished result inline when the body sets ``wait``
POST      ``/batch``     circuits × methods matrix, same job semantics
GET       ``/jobs/<id>`` job status and (when terminal) result or error
========  =============  ====================================================

Malformed JSON and schema violations return ``400`` with an
``{"error": "schema_error", "errors": [{"field", "message"}, …]}`` body that
names every offending field.  Unknown paths return ``404``; wrong verbs
``405``.  The full field-by-field reference lives in ``docs/http-api.md``,
generated from :mod:`repro.service.schema`.

The server is a :class:`ThreadingHTTPServer`: handler threads parse and
enqueue, the service's single worker compiles, so a slow compile never blocks
``/healthz``.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.service.schema import (
    SchemaError,
    error_payload,
    parse_batch_request,
    parse_compile_request,
)
from repro.service.service import CompileService

#: Request bodies larger than this are rejected outright (16 MiB covers any
#: realistic inline QASM; a runaway body must not exhaust daemon memory).
MAX_BODY_BYTES = 16 * 1024 * 1024


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the :class:`CompileService` on the server."""

    server: "ServiceServer"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------- plumbing
    def log_message(self, format: str, *args) -> None:
        """Route access logs through the server's quiet flag instead of stderr spam."""
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _content_length(self) -> int:
        """The request's Content-Length, or ``-1`` for a header we cannot trust.

        An unparseable or negative value means the body's extent is unknown,
        so the connection is marked for close — reading ``rfile`` further
        could block forever, and leaving bytes behind desyncs keep-alive.
        """
        raw = self.headers.get("Content-Length") or "0"
        try:
            length = int(raw)
        except ValueError:
            length = -1
        if length < 0:
            self.close_connection = True
        return length

    def _drain_body(self) -> None:
        """Consume an unread request body so a keep-alive connection stays in sync.

        Answering before reading the body would leave its bytes in the
        stream, and the next request on the connection would be parsed
        starting mid-body.  Oversized (or length-unknown) bodies are not
        worth draining — ``_content_length`` marks the connection for close.
        """
        length = self._content_length()
        if 0 < length <= MAX_BODY_BYTES:
            self.rfile.read(length)
        elif length > MAX_BODY_BYTES:
            self.close_connection = True

    def _read_json(self) -> object:
        length = self._content_length()
        if length < 0:
            raise SchemaError([{"field": "", "message": "invalid Content-Length header"}])
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # refusing to read it desyncs keep-alive
            raise SchemaError(
                [{"field": "", "message": f"request body exceeds {MAX_BODY_BYTES} bytes"}]
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise SchemaError([{"field": "", "message": "request body is empty"}])
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SchemaError([{"field": "", "message": f"request body is not valid JSON: {exc}"}])

    # -------------------------------------------------------------- routing
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Serve ``/healthz``, ``/stats`` and ``/jobs/<id>``."""
        service = self.server.service
        path, _, query = self.path.partition("?")
        path = path.rstrip("/") or "/"
        if path == "/healthz":
            self._send_json(200, service.health_payload())
        elif path == "/stats":
            scan = "scan=1" in query.split("&")
            self._send_json(200, service.stats_payload(scan_disk=scan))
        elif path.startswith("/jobs/"):
            job_id = path[len("/jobs/") :]
            job = service.jobs.get(job_id)
            if job is None:
                self._send_json(404, error_payload("not_found", f"no job {job_id!r}"))
            else:
                self._send_json(200, job.payload())
        elif path in ("/compile", "/batch"):
            self._send_json(
                405, error_payload("method_not_allowed", f"{path} only accepts POST")
            )
        else:
            self._send_json(404, error_payload("not_found", f"no endpoint {path!r}"))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        """Serve ``/compile`` and ``/batch``."""
        service = self.server.service
        path = self.path.split("?", 1)[0].rstrip("/")
        if path not in ("/compile", "/batch"):
            self._drain_body()
            if path in ("/healthz", "/stats") or path.startswith("/jobs/"):
                self._send_json(
                    405, error_payload("method_not_allowed", f"{path} only accepts GET")
                )
            else:
                self._send_json(404, error_payload("not_found", f"no endpoint {path!r}"))
            return
        try:
            payload = self._read_json()
            if path == "/compile":
                request = parse_compile_request(payload)
                job = service.jobs.submit("compile", request)
            else:
                request = parse_batch_request(payload)
                job = service.jobs.submit("batch", request)
        except SchemaError as exc:
            self._send_json(400, error_payload("schema_error", str(exc), exc.errors))
            return
        except Exception as exc:  # defensive: a handler crash must answer
            self._send_json(500, error_payload("internal_error", f"{type(exc).__name__}: {exc}"))
            return
        if request.wait:
            # Fall back to the submitted object if the job table evicted the
            # entry while we waited: the worker mutates that same instance,
            # so its terminal state is still the truth.
            job = service.jobs.wait(job.id, request.timeout_seconds) or job
        self._send_json(200 if job.status in ("done", "failed") else 202, job.payload())


class ServiceServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one :class:`CompileService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: CompileService, quiet: bool = False):
        super().__init__(address, ServiceHandler)
        self.service = service
        self.quiet = quiet

    def close(self) -> None:
        """Shut the HTTP listener and the compile service down."""
        self.server_close()
        self.service.close()


def create_server(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    cache: object = None,
    workers: int = 1,
    warm_chips: int | None = None,
    quiet: bool = False,
) -> ServiceServer:
    """Build a ready-to-serve daemon (``port=0`` picks an ephemeral port).

    The caller drives the accept loop (``serve_forever()``), so tests can run
    it on a thread and the CLI can run it in the foreground.
    """
    from repro.service.state import DEFAULT_WARM_CHIPS

    service = CompileService(
        cache=cache,
        workers=workers,
        warm_chips=warm_chips if warm_chips is not None else DEFAULT_WARM_CHIPS,
    )
    try:
        return ServiceServer((host, port), service, quiet=quiet)
    except OSError:
        service.close()
        raise
