"""The compile service's frozen, versioned request/response schema.

Everything the HTTP API accepts or emits is defined here — field tables,
validation, and the serialisers for records, schedules and jobs — so the
daemon (:mod:`repro.service.server`), the client
(:mod:`repro.service.client`) and the documentation generator
(:mod:`repro.service.docs`) all share one source of truth.  The docs site's
HTTP API reference is generated field-by-field from the tables in this
module; if you change a field here, regenerate ``docs/http-api.md`` (see
``python -m repro.service.docs``).

Versioning
----------
:data:`API_VERSION` identifies the wire format.  Every response carries
``api_version``; requests may include it, and a request pinned to a version
this build does not speak is rejected with a schema error instead of being
misinterpreted.  Version 1 is frozen: fields may be *added* in later
versions, never renamed or repurposed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chip.chip import Chip
from repro.chip.spec import chip_from_dict
from repro.circuits.circuit import Circuit
from repro.core.ecmas import EcmasOptions
from repro.core.engines import ENGINES
from repro.core.schedule import EncodedCircuit, ScheduledOperation
from repro.errors import ReproError
from repro.pipeline.batch import BatchJob, build_batch_jobs
from repro.pipeline.registry import validate_methods

#: The wire-format version of every request and response in this module.
API_VERSION = 1

#: Hard ceiling on synchronous ``wait`` requests, seconds.
MAX_WAIT_SECONDS = 600.0


class SchemaError(ReproError):
    """A request failed validation; ``errors`` lists every offending field.

    Each entry is ``{"field": <dotted path>, "message": <what is wrong>}``.
    The server maps this to an HTTP 400 whose body carries the same list, so
    clients see every problem at once instead of fixing them one by one.
    """

    def __init__(self, errors: list[dict]):
        self.errors = list(errors)
        summary = "; ".join(f"{e['field']}: {e['message']}" for e in self.errors)
        super().__init__(f"invalid request: {summary}")


@dataclass(frozen=True)
class FieldSpec:
    """One documented field of a request or response payload."""

    name: str
    type: str
    description: str
    required: bool = False
    default: object = None


# --------------------------------------------------------------------------
# Field tables (the documented wire format; docs.py renders these verbatim)
# --------------------------------------------------------------------------

#: Fields shared by ``/compile`` and ``/batch`` requests.
COMMON_REQUEST_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec(
        "api_version",
        "int",
        f"Wire-format version the client speaks.  Optional; when present it must "
        f"equal {API_VERSION}.",
        default=API_VERSION,
    ),
    FieldSpec(
        "engine",
        "string",
        'Algorithm 1 hot-path engine: `"reference"` (default) or `"fast"`.  '
        "Both produce bit-identical schedules; `fast` trades memory for speed "
        "via landmark tables, which the daemon keeps warm per chip.",
        default="reference",
    ),
    FieldSpec(
        "code_distance",
        "int",
        "Surface-code distance of the target chip (default 3).",
        default=3,
    ),
    FieldSpec(
        "chip",
        "object",
        "Inline chip spec (the `repro-chip-spec` JSON format, including "
        "defects) pinning the target chip.  Omitted, each method builds its "
        "registered resource configuration.",
        default=None,
    ),
    FieldSpec(
        "options",
        "object",
        "Ecmas tuning knobs (`placement_strategy`, `cut_initialisation`, "
        "`cut_strategy`, `priority`, `adjust_bandwidth`, `placement_attempts`, "
        "`seed`).  Unknown keys are rejected.  Omitted, the paper's defaults "
        "apply.",
        default=None,
    ),
    FieldSpec(
        "validate",
        "bool",
        "Replay the schedule through the validator after compiling "
        "(validation time is not counted as compile time).",
        default=False,
    ),
    FieldSpec(
        "use_cache",
        "bool",
        "Serve and persist this request through the daemon's result cache "
        "(default true).  Identical repeat requests then return the cached "
        "record, observable as a `result_cache.hits` increment in `/stats`.",
        default=True,
    ),
    FieldSpec(
        "wait",
        "bool",
        "Block the HTTP response until the job finishes and inline its "
        "result, instead of returning `202 Accepted` immediately.",
        default=False,
    ),
    FieldSpec(
        "timeout_seconds",
        "number",
        f"With `wait`: give up waiting after this many seconds (the job keeps "
        f"running; poll `/jobs/<id>`).  Capped at {MAX_WAIT_SECONDS:.0f}.",
        default=60.0,
    ),
)

#: ``POST /compile`` request fields (in addition to the common fields).
COMPILE_REQUEST_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec(
        "circuit",
        "string",
        "Name of a built-in benchmark circuit (e.g. `qft_n10`; see "
        "`repro suite`).  Exactly one of `circuit` / `qasm` is required.",
    ),
    FieldSpec(
        "qasm",
        "string",
        "Inline OpenQASM 2.0 source to compile.  Exactly one of `circuit` / "
        "`qasm` is required.",
    ),
    FieldSpec(
        "name",
        "string",
        "Display name stamped on the result record (defaults to the "
        "benchmark name, or `qasm` for inline source).",
        default=None,
    ),
    FieldSpec(
        "method",
        "string",
        'Compile configuration: `"ecmas"` (default), a Table I method such as '
        "`ecmas_dd_min` / `autobraid` / `edpci_min`, or an ablation "
        "`<family>:<value>`.",
        default="ecmas",
    ),
    FieldSpec(
        "include_schedule",
        "bool",
        "Inline the full operation list of the encoded circuit in the "
        "result.  Schedule payloads are never served from the result cache: "
        "the request always compiles (through the daemon's warm per-chip "
        "state) so the operations are exact.",
        default=False,
    ),
) + COMMON_REQUEST_FIELDS

#: ``POST /batch`` request fields (in addition to the common fields).
BATCH_REQUEST_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec(
        "circuits",
        "array",
        "Non-empty list of circuits: each entry is a built-in benchmark name "
        'or an object `{"name": string, "qasm": string}` with inline OpenQASM.',
        required=True,
    ),
    FieldSpec(
        "methods",
        "array",
        "Non-empty list of method names; the job matrix is circuits × "
        "methods, ordered circuit-major.",
        required=True,
    ),
) + COMMON_REQUEST_FIELDS

#: ``GET /jobs/<id>`` (and inlined job) response fields.
JOB_RESPONSE_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("api_version", "int", "Wire-format version of this response."),
    FieldSpec("job_id", "string", "Opaque job identifier, unique per daemon."),
    FieldSpec("kind", "string", '`"compile"` or `"batch"`.'),
    FieldSpec(
        "status",
        "string",
        '`"queued"` → `"running"` → `"done"` | `"failed"`.',
    ),
    FieldSpec("submitted_at", "number", "Unix timestamp the job was accepted."),
    FieldSpec(
        "started_at",
        "number|null",
        "Unix timestamp compilation started (null while queued).",
    ),
    FieldSpec(
        "finished_at",
        "number|null",
        "Unix timestamp the job reached a terminal status.",
    ),
    FieldSpec(
        "result",
        "object|null",
        "Terminal `done` payload: for compile jobs a record object (plus "
        "`schedule` when requested and `cached` marking a result-cache hit); "
        "for batch jobs `records`, `failures`, `cache_hits`, `cache_misses`.",
    ),
    FieldSpec(
        "error",
        "object|null",
        'Terminal `failed` payload: `{"error": string, "detail": string}`.',
    ),
)

#: ``GET /healthz`` response fields.
HEALTH_RESPONSE_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("api_version", "int", "Wire-format version of this response."),
    FieldSpec("status", "string", '`"ok"` whenever the daemon can answer at all.'),
    FieldSpec("version", "string", "The `repro` library version serving requests."),
    FieldSpec("uptime_seconds", "number", "Seconds since the daemon started."),
)

#: ``GET /stats`` response fields.
STATS_RESPONSE_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("api_version", "int", "Wire-format version of this response."),
    FieldSpec("uptime_seconds", "number", "Seconds since the daemon started."),
    FieldSpec(
        "jobs",
        "object",
        "Job counters: `submitted`, `completed`, `failed`, `queued`, "
        "`running`, `kept` (jobs retained for `/jobs/<id>`).",
    ),
    FieldSpec(
        "result_cache",
        "object|null",
        "Result-cache counters (`directory`, `memory_entries`, `hits`, "
        "`misses`; with `?scan=1` also the disk tier's `entries`, `bytes` "
        "and `shards` — an O(cache-size) walk, so opt-in), or null when the "
        "daemon runs cache-less.",
    ),
    FieldSpec(
        "warm_state",
        "object",
        "Warm per-chip state: `capacity`, `entries`, `hits`, `misses`, "
        "`evictions`, and per-chip `chips` entries with their memoized "
        "`landmark_tables` / `static_paths` counts.",
    ),
    FieldSpec(
        "engine_counters",
        "object",
        "Aggregate scheduling counters across every compile served "
        "(`route_calls`, `nodes_expanded`, `cycles_simulated`, …).",
    ),
    FieldSpec(
        "methods",
        "object",
        "The method catalogue this build serves: every plain method with its "
        "model / resources / scheduler, plus the ablation-family grammar.",
    ),
)

#: Error response fields (HTTP 400 / 404 / 405 / 500).
ERROR_RESPONSE_FIELDS: tuple[FieldSpec, ...] = (
    FieldSpec("api_version", "int", "Wire-format version of this response."),
    FieldSpec(
        "error",
        "string",
        'Machine-readable category: `"schema_error"`, `"not_found"`, '
        '`"method_not_allowed"`, `"internal_error"`.',
    ),
    FieldSpec("message", "string", "Human-readable summary."),
    FieldSpec(
        "errors",
        "array",
        'For `schema_error`: every offending field as `{"field", "message"}`.',
    ),
)


# --------------------------------------------------------------------------
# Parsed request objects
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CompileRequest:
    """A validated ``POST /compile`` request (see :data:`COMPILE_REQUEST_FIELDS`)."""

    circuit: Circuit
    name: str
    method: str = "ecmas"
    engine: str = "reference"
    code_distance: int = 3
    chip: Chip | None = None
    options: EcmasOptions | None = None
    validate: bool = False
    use_cache: bool = True
    include_schedule: bool = False
    wait: bool = False
    timeout_seconds: float = 60.0

    def to_job(self) -> BatchJob:
        """The batch-engine job this request compiles as (fingerprint included)."""
        return BatchJob(
            circuit=self.circuit,
            method=self.method,
            circuit_name=self.name,
            code_distance=self.code_distance,
            chip=self.chip,
            options=self.options,
            validate=self.validate,
            engine=self.engine,
        )


@dataclass(frozen=True)
class BatchRequest:
    """A validated ``POST /batch`` request (see :data:`BATCH_REQUEST_FIELDS`)."""

    circuits: tuple[tuple[str, Circuit], ...]
    methods: tuple[str, ...]
    engine: str = "reference"
    code_distance: int = 3
    chip: Chip | None = None
    options: EcmasOptions | None = None
    validate: bool = False
    use_cache: bool = True
    wait: bool = False
    timeout_seconds: float = 60.0

    def to_jobs(self) -> list[BatchJob]:
        """The circuits × methods job matrix, circuit-major."""
        return build_batch_jobs(
            list(self.circuits),
            list(self.methods),
            code_distance=self.code_distance,
            validate=self.validate,
            engine=self.engine,
            chip=self.chip,
            options=self.options,
        )


# --------------------------------------------------------------------------
# Validation
# --------------------------------------------------------------------------


class _Errors:
    """Collects ``(field, message)`` pairs and raises one SchemaError at the end."""

    def __init__(self) -> None:
        self.items: list[dict] = []

    def add(self, field_name: str, message: str) -> None:
        self.items.append({"field": field_name, "message": message})

    def raise_if_any(self) -> None:
        if self.items:
            raise SchemaError(self.items)


def _require_object(payload: object) -> dict:
    if not isinstance(payload, dict):
        raise SchemaError(
            [{"field": "", "message": f"request body must be a JSON object, got {type(payload).__name__}"}]
        )
    return payload


def _check_unknown(payload: dict, specs: tuple[FieldSpec, ...], errors: _Errors) -> None:
    known = {spec.name for spec in specs}
    for key in payload:
        if key not in known:
            errors.add(key, "unknown field")


def _typed(payload: dict, name: str, kinds, default, errors: _Errors, label: str):
    value = payload.get(name, default)
    if value is default:
        return default
    if isinstance(value, bool) and bool not in (kinds if isinstance(kinds, tuple) else (kinds,)):
        errors.add(name, f"must be {label}, got a boolean")
        return default
    if not isinstance(value, kinds):
        errors.add(name, f"must be {label}, got {type(value).__name__}")
        return default
    return value


def _parse_api_version(payload: dict, errors: _Errors) -> None:
    version = _typed(payload, "api_version", int, API_VERSION, errors, "an integer")
    if version != API_VERSION:
        errors.add("api_version", f"this daemon speaks version {API_VERSION}, got {version}")


def _parse_common(payload: dict, errors: _Errors) -> dict:
    """Parse the fields shared by compile and batch requests."""
    out: dict = {}
    _parse_api_version(payload, errors)

    engine = _typed(payload, "engine", str, "reference", errors, "a string")
    if engine not in ENGINES:
        errors.add("engine", f"must be one of {', '.join(ENGINES)}; got {engine!r}")
        engine = "reference"
    out["engine"] = engine

    code_distance = _typed(payload, "code_distance", int, 3, errors, "an integer")
    if code_distance < 1:
        errors.add("code_distance", f"must be a positive integer, got {code_distance}")
        code_distance = 3
    out["code_distance"] = code_distance

    chip_payload = _typed(payload, "chip", dict, None, errors, "a chip-spec object")
    out["chip"] = None
    if chip_payload is not None:
        try:
            out["chip"] = chip_from_dict(chip_payload)
        except ReproError as exc:
            errors.add("chip", str(exc))

    options_payload = _typed(payload, "options", dict, None, errors, "an options object")
    out["options"] = None
    if options_payload is not None:
        unknown = set(options_payload) - set(EcmasOptions.field_names())
        if unknown:
            errors.add(
                "options",
                f"unknown option(s) {', '.join(sorted(unknown))}; valid options: "
                f"{', '.join(EcmasOptions.field_names())}",
            )
        else:
            try:
                out["options"] = EcmasOptions(**options_payload)
            except (ReproError, TypeError) as exc:
                errors.add("options", str(exc))

    out["validate"] = _typed(payload, "validate", bool, False, errors, "a boolean")
    out["use_cache"] = _typed(payload, "use_cache", bool, True, errors, "a boolean")
    out["wait"] = _typed(payload, "wait", bool, False, errors, "a boolean")
    timeout = _typed(payload, "timeout_seconds", (int, float), 60.0, errors, "a number")
    if timeout <= 0:
        errors.add("timeout_seconds", f"must be positive, got {timeout}")
        timeout = 60.0
    out["timeout_seconds"] = min(float(timeout), MAX_WAIT_SECONDS)
    return out


def _load_named_circuit(name: str, field_name: str, errors: _Errors) -> Circuit | None:
    from repro.circuits.generators import get_benchmark

    try:
        return get_benchmark(name).build()
    except ReproError as exc:
        errors.add(field_name, str(exc))
        return None


def _load_qasm_circuit(source: str, field_name: str, errors: _Errors) -> Circuit | None:
    from repro.circuits import qasm

    try:
        return qasm.loads(source)
    except ReproError as exc:
        errors.add(field_name, str(exc))
        return None


def _check_method(method: str, field_name: str, errors: _Errors) -> None:
    try:
        validate_methods([method])
    except ReproError as exc:
        errors.add(field_name, str(exc))


def parse_compile_request(payload: object) -> CompileRequest:
    """Validate a ``/compile`` body, raising :class:`SchemaError` on any problem."""
    payload = _require_object(payload)
    errors = _Errors()
    _check_unknown(payload, COMPILE_REQUEST_FIELDS, errors)
    common = _parse_common(payload, errors)

    circuit_name = _typed(payload, "circuit", str, None, errors, "a string")
    qasm_source = _typed(payload, "qasm", str, None, errors, "a string")
    display_name = _typed(payload, "name", str, None, errors, "a string")
    circuit: Circuit | None = None
    if (circuit_name is None) == (qasm_source is None):
        errors.add("circuit", "exactly one of 'circuit' and 'qasm' is required")
    elif circuit_name is not None:
        circuit = _load_named_circuit(circuit_name, "circuit", errors)
    else:
        circuit = _load_qasm_circuit(qasm_source, "qasm", errors)

    method = _typed(payload, "method", str, "ecmas", errors, "a string")
    _check_method(method, "method", errors)
    include_schedule = _typed(payload, "include_schedule", bool, False, errors, "a boolean")

    errors.raise_if_any()
    assert circuit is not None  # errors.raise_if_any() fired otherwise
    return CompileRequest(
        circuit=circuit,
        name=display_name or circuit_name or circuit.name or "qasm",
        method=method,
        include_schedule=include_schedule,
        **common,
    )


def parse_batch_request(payload: object) -> BatchRequest:
    """Validate a ``/batch`` body, raising :class:`SchemaError` on any problem."""
    payload = _require_object(payload)
    errors = _Errors()
    _check_unknown(payload, BATCH_REQUEST_FIELDS, errors)
    common = _parse_common(payload, errors)

    circuits: list[tuple[str, Circuit]] = []
    entries = payload.get("circuits")
    if not isinstance(entries, list) or not entries:
        errors.add("circuits", "must be a non-empty array")
        entries = []
    for index, entry in enumerate(entries):
        field_name = f"circuits[{index}]"
        if isinstance(entry, str):
            circuit = _load_named_circuit(entry, field_name, errors)
            if circuit is not None:
                circuits.append((entry, circuit))
        elif isinstance(entry, dict):
            unknown = set(entry) - {"name", "qasm"}
            if unknown:
                errors.add(field_name, f"unknown key(s) {', '.join(sorted(unknown))}")
                continue
            source = entry.get("qasm")
            if not isinstance(source, str):
                errors.add(field_name, "inline circuits need a 'qasm' string")
                continue
            circuit = _load_qasm_circuit(source, field_name, errors)
            if circuit is not None:
                circuits.append((str(entry.get("name") or circuit.name or "qasm"), circuit))
        else:
            errors.add(field_name, "must be a benchmark name or {name, qasm} object")

    methods = payload.get("methods")
    if not isinstance(methods, list) or not methods or not all(isinstance(m, str) for m in methods):
        errors.add("methods", "must be a non-empty array of method names")
        methods = []
    else:
        try:
            validate_methods(methods)
        except ReproError as exc:
            errors.add("methods", str(exc))

    errors.raise_if_any()
    return BatchRequest(circuits=tuple(circuits), methods=tuple(methods), **common)


# --------------------------------------------------------------------------
# Response serialisation
# --------------------------------------------------------------------------


def operation_payload(op: ScheduledOperation) -> dict:
    """JSON-able form of one scheduled operation (lossless for comparison)."""
    return {
        "kind": op.kind.value,
        "start_cycle": op.start_cycle,
        "duration": op.duration,
        "qubits": list(op.qubits),
        "gate_node": op.gate_node,
        "path": [list(node) for node in op.path.nodes] if op.path is not None else None,
        "lanes": op.lanes,
        "new_cut": op.new_cut.value if op.new_cut is not None else None,
    }


def schedule_payload(encoded: EncodedCircuit) -> dict:
    """JSON-able form of a full encoded circuit's schedule.

    This is the payload compared bit-for-bit against the in-process
    :func:`repro.compile_circuit` path by the service round-trip test.
    """
    return {
        "model": encoded.model.value,
        "method": encoded.method,
        "num_cycles": encoded.num_cycles,
        "operations": [operation_payload(op) for op in encoded.operations],
    }


def error_payload(category: str, message: str, errors: list[dict] | None = None) -> dict:
    """The uniform error body (see :data:`ERROR_RESPONSE_FIELDS`)."""
    payload = {"api_version": API_VERSION, "error": category, "message": message}
    if errors is not None:
        payload["errors"] = errors
    return payload
