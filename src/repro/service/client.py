"""A small stdlib HTTP client for the compile daemon.

Used by ``repro submit`` and the end-to-end tests; it speaks exactly the wire
format of :mod:`repro.service.schema` and raises typed errors instead of
leaking ``urllib`` internals.  Only the standard library is required, so the
client works wherever the daemon does.

>>> client = ServiceClient("127.0.0.1", 8752)     # doctest: +SKIP
>>> client.healthz()["status"]                    # doctest: +SKIP
'ok'
>>> job = client.compile(circuit="qft_n10", wait=True)   # doctest: +SKIP
>>> job["result"]["cycles"]                       # doctest: +SKIP
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.errors import ReproError


class ServiceError(ReproError):
    """The daemon answered with an error payload (or could not be reached).

    ``status`` is the HTTP status code (``None`` for transport failures) and
    ``payload`` the decoded error body when one was returned.
    """

    def __init__(self, message: str, status: int | None = None, payload: dict | None = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class ServiceClient:
    """Talks to one daemon at ``http://host:port``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8752, timeout: float = 30.0):
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout

    # ------------------------------------------------------------ transport
    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        # A `wait` request holds the HTTP response open for up to the
        # server-side timeout_seconds; the socket timeout must outlast it or
        # a slow-but-healthy compile would be misreported as unreachable.
        timeout = self.timeout
        if body is not None and body.get("wait"):
            timeout = max(timeout, float(body.get("timeout_seconds", 60.0)) + 10.0)
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except Exception:
                payload = {}
            detail = payload.get("message") or exc.reason
            errors = payload.get("errors")
            if errors:
                detail += "".join(f"\n  {e['field']}: {e['message']}" for e in errors)
            raise ServiceError(
                f"{method} {path} -> HTTP {exc.code}: {detail}", status=exc.code, payload=payload
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach compile daemon at {self.base_url}: {exc.reason}"
            ) from None

    # ------------------------------------------------------------ endpoints
    def healthz(self) -> dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        """``GET /stats``."""
        return self._request("GET", "/stats")

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>``."""
        return self._request("GET", f"/jobs/{job_id}")

    def compile(self, **request) -> dict:
        """``POST /compile`` with the given schema fields; returns the job payload."""
        return self._request("POST", "/compile", request)

    def batch(self, **request) -> dict:
        """``POST /batch`` with the given schema fields; returns the job payload."""
        return self._request("POST", "/batch", request)

    def wait_for(self, job_id: str, timeout: float = 120.0, poll_seconds: float = 0.1) -> dict:
        """Poll ``/jobs/<id>`` until the job is terminal; raises on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["status"] in ("done", "failed"):
                return payload
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {payload['status']} after {timeout:.0f}s"
                )
            time.sleep(poll_seconds)
