"""Compile-as-a-service: a persistent daemon over the Ecmas pipeline.

After four PRs of one-shot CLI entry points, this package adds the long-lived
execution mode the ROADMAP's "serve heavy traffic" north star needs: a local
HTTP+JSON daemon (stdlib only) that keeps per-chip compile state warm across
requests instead of rebuilding chips, routing graphs and landmark tables from
cold on every invocation.

* :mod:`repro.service.schema` — the frozen, versioned wire format
  (:data:`~repro.service.schema.API_VERSION`), request validation and result
  serialisation; the docs site's API reference is generated from it.
* :mod:`repro.service.state` — the warm per-chip LRU installed as the
  process-wide routing provider.
* :mod:`repro.service.jobs` — the job queue (``queued → running →
  done | failed``) behind ``/jobs/<id>``.
* :mod:`repro.service.service` — :class:`CompileService`, binding schema to
  the batch engine and the streaming result cache.
* :mod:`repro.service.server` — the HTTP endpoints ``/compile``, ``/batch``,
  ``/jobs/<id>``, ``/healthz``, ``/stats``.
* :mod:`repro.service.client` — a stdlib client (used by ``repro submit``).

Start a daemon with ``python -m repro serve`` and talk to it with
``python -m repro submit`` or any HTTP client; see ``docs/http-api.md``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobManager, ServiceJob
from repro.service.schema import (
    API_VERSION,
    BatchRequest,
    CompileRequest,
    SchemaError,
    parse_batch_request,
    parse_compile_request,
    schedule_payload,
)
from repro.service.server import ServiceServer, create_server
from repro.service.service import CompileService
from repro.service.state import WarmChipState, WarmStateCache, chip_state_key

__all__ = [
    "API_VERSION",
    "BatchRequest",
    "CompileRequest",
    "CompileService",
    "JobManager",
    "SchemaError",
    "ServiceClient",
    "ServiceError",
    "ServiceJob",
    "ServiceServer",
    "WarmChipState",
    "WarmStateCache",
    "chip_state_key",
    "create_server",
    "parse_batch_request",
    "parse_compile_request",
    "schedule_payload",
]
