"""Warm per-chip compile state for the long-lived service process.

A one-shot CLI compile pays three cold-start costs for every invocation: the
:class:`~repro.chip.routing_graph.RoutingGraph` is rebuilt from the chip, the
fast engine's :class:`~repro.routing.fast_router.FastRouter` re-derives its
flattened adjacency, and every landmark table is re-run from scratch.  The
daemon amortises all three: a :class:`WarmStateCache` keeps an LRU of
:class:`WarmChipState` entries keyed by chip *content* (the same
:func:`~repro.pipeline.batch.chip_key` the result cache fingerprints with),
and installs itself as the process-wide routing provider
(:func:`repro.core.engines.set_routing_provider`) so the schedulers pick the
warm state up without any signature changes.

Sharing is safe because everything cached is immutable after construction:
graphs never change, and the router only *grows* memo tables whose entries
are value-determined by the static graph.  The cache is lock-protected, so
concurrent readers are safe; the service nevertheless compiles on a single
worker thread, keeping router memo growth single-writer.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.chip.chip import Chip
from repro.chip.routing_graph import RoutingGraph
from repro.core.engines import build_router, set_routing_provider
from repro.pipeline.batch import chip_key
from repro.routing.fast_router import FastRouter

#: Default number of distinct chips kept warm.
DEFAULT_WARM_CHIPS = 8


def chip_state_key(chip: Chip) -> str:
    """The warm-state identity of ``chip``: its content key, JSON-encoded.

    Uses :func:`repro.pipeline.batch.chip_key`, so warm-state identity and
    result-cache identity can never drift apart.
    """
    return json.dumps(chip_key(chip), sort_keys=True, separators=(",", ":"))


@dataclass
class WarmChipState:
    """Everything worth keeping hot for one chip.

    The routing graph always exists; the fast router is built lazily on the
    first ``engine="fast"`` compile against this chip and then shared by all
    subsequent ones, which is what makes its landmark tables pay off across
    requests.
    """

    key: str
    chip: Chip
    graph: RoutingGraph
    router: FastRouter | None = None
    hits: int = 0
    built_at: float = field(default_factory=time.time)

    def stats(self) -> dict:
        """Per-chip counters surfaced under ``/stats``."""
        return {
            "chip": self.chip.describe(),
            "hits": self.hits,
            # lint: disable=DET004 — warm-state age for monitoring only
            "age_seconds": time.time() - self.built_at,
            "landmark_tables": self.router.landmark_table_count if self.router else 0,
            "static_paths": self.router.static_path_count if self.router else 0,
        }


class WarmStateCache:
    """LRU of :class:`WarmChipState`, installable as the routing provider.

    ``capacity`` bounds the number of distinct chips kept warm; the least
    recently used entry is evicted when a new chip arrives beyond it.  Every
    method is thread-safe.
    """

    def __init__(self, capacity: int = DEFAULT_WARM_CHIPS):
        if capacity < 1:
            raise ValueError(f"warm-state capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, WarmChipState] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._previous_provider = None
        self._installed = False

    # ------------------------------------------------------------- provider
    def acquire(self, chip: Chip, engine: str) -> tuple[RoutingGraph, FastRouter | None]:
        """The routing-provider entry point: warm (graph, router) for ``chip``.

        Cold construction (graph, router) happens *outside* the lock so that
        a long build of a large chip never blocks concurrent readers such as
        the daemon's ``/stats`` handler; a double-check on re-acquire keeps
        racing builders consistent (last writer discards its duplicate).
        """
        key = chip_state_key(chip)
        with self._lock:
            state = self._entries.get(key)
            if state is not None:
                self.hits += 1
                state.hits += 1
                self._entries.move_to_end(key)
        if state is None:
            graph = RoutingGraph(chip)  # cold build, lock not held
            with self._lock:
                state = self._entries.get(key)
                if state is None:
                    state = WarmChipState(key=key, chip=chip, graph=graph)
                    self._entries[key] = state
                    self.misses += 1
                else:
                    self.hits += 1
                    state.hits += 1
                self._entries.move_to_end(key)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
        if engine != "fast":
            return state.graph, None
        router = state.router
        if router is None:
            router = build_router(state.graph, engine)  # landmark setup, lock not held
            with self._lock:
                if state.router is None:
                    state.router = router
                else:
                    router = state.router
        return state.graph, router

    def install(self) -> None:
        """Make this cache the process-wide routing provider."""
        self._previous_provider = set_routing_provider(self.acquire)
        self._installed = True

    def uninstall(self) -> None:
        """Restore whatever provider was installed before :meth:`install`."""
        if self._installed:
            set_routing_provider(self._previous_provider)
            self._previous_provider = None
            self._installed = False

    # ---------------------------------------------------------- inspection
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> list[str]:
        """The warm chip keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def stats(self) -> dict:
        """Counters for ``/stats``: capacity, occupancy, hit/evict totals, per-chip detail."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "chips": [state.stats() for state in self._entries.values()],
            }
