"""Generate the HTTP API reference from the schema tables.

``python -m repro.service.docs`` prints the Markdown document; the committed
``docs/http-api.md`` must match it exactly (enforced by
``tests/test_docs.py`` and the ``docs-build`` CI job), so the reference can
never drift from the wire format actually served.  Regenerate with::

    PYTHONPATH=src python -m repro.service.docs > docs/http-api.md
"""

from __future__ import annotations

from repro.service import schema


def _render_fields(fields: tuple[schema.FieldSpec, ...], *, requests: bool) -> list[str]:
    """One Markdown table for a field tuple (requests also show required/default)."""
    lines = []
    if requests:
        lines.append("| field | type | required | default | description |")
        lines.append("|---|---|---|---|---|")
    else:
        lines.append("| field | type | description |")
        lines.append("|---|---|---|")
    for spec in fields:
        # Literal pipes would split the Markdown table cell.
        description = spec.description.replace("\n", " ").replace("|", "\\|")
        type_label = spec.type.replace("|", "\\|")
        if requests:
            required = "yes" if spec.required else "no"
            default = "—" if spec.required else f"`{spec.default!r}`"
            lines.append(
                f"| `{spec.name}` | {type_label} | {required} | {default} | {description} |"
            )
        else:
            lines.append(f"| `{spec.name}` | {type_label} | {description} |")
    return lines


def render_api_reference() -> str:
    """The full ``docs/http-api.md`` document as a string."""
    lines: list[str] = []
    out = lines.append
    out("# HTTP API reference")
    out("")
    out("<!-- GENERATED FILE - do not edit by hand. -->")
    out("<!-- Regenerate: PYTHONPATH=src python -m repro.service.docs > docs/http-api.md -->")
    out("")
    out(
        f"The compile daemon (`python -m repro serve`) speaks JSON over HTTP.  "
        f"This page is generated field-by-field from `repro/service/schema.py`; "
        f"the wire format version is **`API_VERSION = {schema.API_VERSION}`** and every "
        f"response carries it as `api_version`.  Version {schema.API_VERSION} is frozen: "
        f"later versions may add fields but never rename or repurpose one."
    )
    out("")
    out("Start a daemon and make a request:")
    out("")
    out("```bash")
    out("python -m repro serve --port 8752 &")
    out("curl -s http://127.0.0.1:8752/healthz")
    out("curl -s -X POST http://127.0.0.1:8752/compile \\")
    out("  -H 'Content-Type: application/json' \\")
    out('  -d \'{"circuit": "qft_n10", "method": "ecmas_dd_min", "wait": true}\'')
    out("```")
    out("")
    out("## Endpoints")
    out("")
    out("| method | path | purpose |")
    out("|---|---|---|")
    out("| `GET` | `/healthz` | liveness: status, library version, uptime |")
    out("| `GET` | `/stats` | cache / warm-state / job / engine counters |")
    out("| `POST` | `/compile` | submit one compile job |")
    out("| `POST` | `/batch` | submit a circuits × methods job matrix |")
    out("| `GET` | `/jobs/<id>` | poll a job's status and result |")
    out("")
    out(
        "`POST` endpoints answer `202 Accepted` with a job payload immediately; "
        "set `wait` in the request body to block until the job is terminal and "
        "receive the finished payload (`200`) in one round trip."
    )
    out("")

    out("## `POST /compile` — request body")
    out("")
    lines.extend(_render_fields(schema.COMPILE_REQUEST_FIELDS, requests=True))
    out("")
    out("## `POST /batch` — request body")
    out("")
    lines.extend(_render_fields(schema.BATCH_REQUEST_FIELDS, requests=True))
    out("")
    out("## Job payload (`/jobs/<id>` and inlined `wait` responses)")
    out("")
    lines.extend(_render_fields(schema.JOB_RESPONSE_FIELDS, requests=False))
    out("")
    out("### Compile result object")
    out("")
    out(
        "A `done` compile job's `result` is the experiment record (the same "
        "shape the batch engine caches): `circuit`, `method`, `num_qubits`, "
        "`alpha`, `num_cnots`, `cycles`, `compile_seconds`, `chip`, "
        "`paper_cycles`, `extra` (per-stage timings, engine counters), plus "
        "`cached` (true when served from the result cache) and — when "
        "`include_schedule` was set — `schedule`:"
    )
    out("")
    out("```json")
    out("{")
    out('  "model": "double_defect",')
    out('  "method": "ecmas-dd",')
    out('  "num_cycles": 42,')
    out('  "operations": [')
    out('    {"kind": "cnot_braid", "start_cycle": 0, "duration": 1,')
    out('     "qubits": [0, 3], "gate_node": 0, "lanes": 1, "new_cut": null,')
    out('     "path": [["t", 0, 0], ["j", 0, 1], ["t", 0, 1]]}')
    out("  ]")
    out("}")
    out("```")
    out("")
    out(
        "Operations serialise losslessly: `kind` is one of `cnot_braid`, "
        "`cnot_same_cut`, `cut_modification`, `cut_remap`; `path` lists "
        "routing-graph nodes (`[\"t\", row, col]` tiles, `[\"j\", row, col]` "
        "junctions) or is null for pathless operations.  The round-trip test "
        "asserts this payload is bit-identical to the in-process "
        "`repro.compile_circuit` result."
    )
    out("")
    out("## `GET /healthz` — response")
    out("")
    lines.extend(_render_fields(schema.HEALTH_RESPONSE_FIELDS, requests=False))
    out("")
    out("## `GET /stats` — response")
    out("")
    lines.extend(_render_fields(schema.STATS_RESPONSE_FIELDS, requests=False))
    out("")
    out("## Errors")
    out("")
    out(
        "Malformed JSON or schema violations answer `400`; unknown paths "
        "`404`; wrong verbs `405`; handler crashes `500`.  All share one "
        "body shape:"
    )
    out("")
    lines.extend(_render_fields(schema.ERROR_RESPONSE_FIELDS, requests=False))
    out("")
    out("```json")
    out("{")
    out('  "api_version": 1,')
    out('  "error": "schema_error",')
    out('  "message": "invalid request: method: unknown evaluation method \'typo\'; ...",')
    out('  "errors": [{"field": "method", "message": "unknown evaluation method \'typo\'; ..."}]')
    out("}")
    out("```")
    out("")
    return "\n".join(lines)


def main() -> int:
    """CLI entry point: print the reference to stdout."""
    print(render_api_reference(), end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
