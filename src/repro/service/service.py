"""The compile service core: requests in, records out, everything warm.

:class:`CompileService` is the daemon's brain, independent of HTTP: it owns
the warm per-chip state (:class:`~repro.service.state.WarmStateCache`), the
streaming result cache (:class:`~repro.pipeline.batch.ResultCache`), and the
single-worker :class:`~repro.service.jobs.JobManager`, and it executes parsed
:class:`~repro.service.schema.CompileRequest` /
:class:`~repro.service.schema.BatchRequest` objects through the exact same
batch engine the CLI uses — so a record served over HTTP is bit-identical to
one produced by ``repro batch`` or the in-process
:func:`repro.compile_circuit` path.

The HTTP layer (:mod:`repro.service.server`) only translates between wire
payloads and this class.
"""

from __future__ import annotations

import time
from dataclasses import asdict

from repro.pipeline.batch import ResultCache, resolve_workers, run_batch
from repro.service.jobs import JobManager, ServiceJob
from repro.service.schema import (
    API_VERSION,
    BatchRequest,
    CompileRequest,
    schedule_payload,
)
from repro.service.state import DEFAULT_WARM_CHIPS, WarmStateCache


class CompileService:
    """Long-lived compile engine behind the HTTP daemon.

    Parameters
    ----------
    cache:
        A :class:`ResultCache`, a directory path to build one from, or
        ``None`` to run cache-less (requests with ``use_cache`` then always
        compile).
    workers:
        Process-pool size for ``/batch`` fan-out (``1`` compiles in the
        daemon process and is what keeps warm state effective; batches with
        more workers trade warm reuse for parallelism).
    warm_chips:
        LRU capacity of the warm per-chip state.
    """

    def __init__(
        self,
        cache: ResultCache | str | None = None,
        workers: int = 1,
        warm_chips: int = DEFAULT_WARM_CHIPS,
        max_jobs_kept: int = 256,
    ):
        self.cache = ResultCache(cache) if isinstance(cache, str) else cache
        self.workers = resolve_workers(workers)
        self.warm = WarmStateCache(capacity=warm_chips)
        self.warm.install()
        # Service bookkeeping (uptime base), not a compilation input.
        # lint: disable=DET004
        self.started_at = time.time()
        self.engine_counters: dict[str, int] = {}
        self.jobs = JobManager(self._execute, max_jobs_kept=max_jobs_kept)

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Stop the worker thread and uninstall the warm routing provider."""
        self.jobs.stop()
        self.warm.uninstall()

    # ------------------------------------------------------------ execution
    def _execute(self, job: ServiceJob) -> dict:
        """JobManager executor: dispatch one job to its kind's handler."""
        if job.kind == "compile":
            return self._execute_compile(job.request)
        return self._execute_batch(job.request)

    def _count(self, record) -> None:
        """Fold one freshly compiled record's engine counters into the totals."""
        for name, value in (record.extra.get("counters") or {}).items():
            self.engine_counters[name] = self.engine_counters.get(name, 0) + value

    def _execute_compile(self, request: CompileRequest) -> dict:
        batch_job = request.to_job()
        cache = self.cache if request.use_cache else None

        if request.include_schedule:
            # Schedule payloads are exact, so this path always compiles (the
            # cache stores records, not operation lists) — through the warm
            # per-chip state, and still persisting the record for later
            # record-only requests.
            from repro.eval.runner import record_from_result
            from repro.pipeline.registry import run_pipeline_method

            result = run_pipeline_method(
                request.circuit,
                request.method,
                chip=request.chip,
                code_distance=request.code_distance,
                options=request.options,
                validate=request.validate,
                engine=request.engine,
            )
            record = record_from_result(
                result, request.circuit, request.method, circuit_name=request.name
            )
            if cache is not None:
                cache.put(batch_job, record)
            self._count(record)
            payload = record.to_dict()
            payload["cached"] = False
            payload["schedule"] = schedule_payload(result.encoded)
            return payload

        outcome = run_batch([batch_job], workers=1, cache=cache)
        if not outcome.ok:
            failure = outcome.failures[0]
            from repro.errors import ReproError

            raise ReproError(f"{failure.error}\n{failure.traceback}")
        record = outcome.records[0]
        cached = outcome.cache_hits > 0
        if not cached:
            self._count(record)
        payload = record.to_dict()
        payload["cached"] = cached
        return payload

    def _execute_batch(self, request: BatchRequest) -> dict:
        jobs = request.to_jobs()
        cache = self.cache if request.use_cache else None
        if self.workers > 1:
            # Forking a pool from a threaded daemon inherits whatever locks
            # are held at fork time.  The only lock a child compile would
            # ever take is the warm-state cache's (via the installed routing
            # provider), so clear the provider for the duration: children
            # build routing state cold — which they must anyway, since warm
            # objects cannot cross the process boundary.
            from repro.core.engines import set_routing_provider

            previous = set_routing_provider(None)
            try:
                outcome = run_batch(jobs, workers=self.workers, cache=cache)
            finally:
                set_routing_provider(previous)
        else:
            outcome = run_batch(jobs, workers=self.workers, cache=cache)
        if self.workers == 1 and outcome.cache_hits == 0:
            # Best-effort accounting: counters are only attributable when the
            # batch compiled in-process (multi-process children's counters do
            # not flow back) and entirely fresh (a cached record's counters
            # describe a compile served long ago, not work done now).
            for record in outcome.records:
                if record is not None:
                    self._count(record)
        return {
            "records": [r.to_dict() if r is not None else None for r in outcome.records],
            "failures": [asdict(f) for f in outcome.failures],
            "cache_hits": outcome.cache_hits,
            "cache_misses": outcome.cache_misses,
            "workers": outcome.workers,
            "ok": outcome.ok,
        }

    # ------------------------------------------------------------- payloads
    def health_payload(self) -> dict:
        """The ``/healthz`` body."""
        from repro import __version__

        return {
            "api_version": API_VERSION,
            "status": "ok",
            "version": __version__,
            # lint: disable=DET004 — monitoring uptime, not a compile input
            "uptime_seconds": time.time() - self.started_at,
        }

    def stats_payload(self, scan_disk: bool = False) -> dict:
        """The ``/stats`` body: cache, warm-state, job and engine counters.

        ``scan_disk`` additionally walks the result cache's disk tier for
        entry/byte/shard totals — O(cache size), so it is opt-in
        (``GET /stats?scan=1``) rather than paid on every scrape.
        """
        from repro.pipeline.registry import method_catalog

        result_cache = None
        if self.cache is not None:
            result_cache = self.cache.stats() if scan_disk else self.cache.counters()
        return {
            "api_version": API_VERSION,
            # lint: disable=DET004 — monitoring uptime, not a compile input
            "uptime_seconds": time.time() - self.started_at,
            "jobs": self.jobs.stats(),
            "result_cache": result_cache,
            "warm_state": self.warm.stats(),
            "engine_counters": dict(self.engine_counters),
            "methods": method_catalog(),
        }
