"""Job queue and lifecycle for the compile daemon.

HTTP handler threads only *enqueue* work and *read* job state; every compile
runs on one background worker thread that drains the queue in submission
order.  That single-writer discipline is what lets the warm per-chip state
(:mod:`repro.service.state`) be shared without fine-grained locking of the
router memo tables, while ``/batch`` jobs can still fan out across a
multiprocessing pool *inside* the worker via
:func:`repro.pipeline.batch.run_batch`.

Jobs progress ``queued → running → done | failed``; terminal jobs are kept
(bounded, oldest evicted) so ``GET /jobs/<id>`` keeps answering after
completion.
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
import uuid
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.errors import ReproError

#: Job lifecycle states.
JOB_STATUSES = ("queued", "running", "done", "failed")

#: How many terminal jobs ``/jobs/<id>`` keeps answering for, by default.
DEFAULT_JOBS_KEPT = 256


@dataclass
class ServiceJob:
    """One unit of daemon work: a parsed request plus its lifecycle record."""

    id: str
    kind: str  # "compile" | "batch"
    request: object
    status: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    result: dict | None = None
    error: dict | None = None

    def payload(self) -> dict:
        """The ``/jobs/<id>`` response body (see ``JOB_RESPONSE_FIELDS``)."""
        from repro.service.schema import API_VERSION

        return {
            "api_version": API_VERSION,
            "job_id": self.id,
            "kind": self.kind,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "result": self.result,
            "error": self.error,
        }


class JobManager:
    """Single-worker job queue with a bounded, queryable job table.

    ``executor`` maps a :class:`ServiceJob` to its result payload; exceptions
    become the job's ``error`` payload (library errors keep their message,
    anything else is reported with its traceback) without tearing down the
    worker.
    """

    def __init__(
        self,
        executor: Callable[[ServiceJob], dict],
        max_jobs_kept: int = DEFAULT_JOBS_KEPT,
    ):
        self._executor = executor
        self._max_jobs_kept = max(1, int(max_jobs_kept))
        self._queue: "queue.Queue[ServiceJob | None]" = queue.Queue()
        self._jobs: OrderedDict[str, ServiceJob] = OrderedDict()
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self._worker = threading.Thread(target=self._run, name="repro-service-worker", daemon=True)
        self._worker.start()

    # -------------------------------------------------------------- submit
    def submit(self, kind: str, request: object) -> ServiceJob:
        """Accept a parsed request; returns the queued job immediately."""
        job = ServiceJob(id=uuid.uuid4().hex, kind=kind, request=request)
        with self._lock:
            self._jobs[job.id] = job
            self.submitted += 1
            self._evict_terminal()
        self._queue.put(job)
        return job

    def get(self, job_id: str) -> ServiceJob | None:
        """Look a job up by id (``None`` when unknown or already evicted)."""
        with self._lock:
            return self._jobs.get(job_id)

    def wait(self, job_id: str, timeout: float) -> ServiceJob | None:
        """Block until the job reaches a terminal status, or ``timeout`` passes.

        Returns the job either way (still ``running``/``queued`` on timeout);
        ``None`` when the id is unknown.
        """
        deadline = time.monotonic() + timeout
        with self._done:
            while True:
                job = self._jobs.get(job_id)
                if job is None or job.status in ("done", "failed"):
                    return job
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return job
                self._done.wait(remaining)

    # --------------------------------------------------------------- stats
    def stats(self) -> dict:
        """Queue/lifecycle counters for ``/stats``."""
        with self._lock:
            statuses = [job.status for job in self._jobs.values()]
            return {
                "submitted": self.submitted,
                "completed": self.completed,
                "failed": self.failed,
                "queued": statuses.count("queued"),
                "running": statuses.count("running"),
                "kept": len(self._jobs),
            }

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the worker after it finishes the job in flight."""
        self._queue.put(None)
        self._worker.join(timeout)

    # -------------------------------------------------------------- worker
    def _evict_terminal(self) -> None:
        """Drop the oldest terminal jobs beyond the retention bound (lock held)."""
        while len(self._jobs) > self._max_jobs_kept:
            for job_id, job in self._jobs.items():
                if job.status in ("done", "failed"):
                    del self._jobs[job_id]
                    break
            else:
                return  # everything retained is still queued/running

    def _run(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            with self._lock:
                job.status = "running"
                # Job lifecycle timestamps are API payload, not compile
                # inputs.  # lint: disable=DET004
                job.started_at = time.time()
            try:
                result = self._executor(job)
                error = None
            except ReproError as exc:
                result, error = None, {"error": type(exc).__name__, "detail": str(exc)}
            except Exception as exc:  # never kill the worker thread
                result, error = None, {
                    "error": type(exc).__name__,
                    "detail": f"{exc}\n{traceback.format_exc()}",
                }
            with self._done:
                job.result = result
                job.error = error
                job.status = "done" if error is None else "failed"
                # lint: disable=DET004 — lifecycle timestamp for the API payload
                job.finished_at = time.time()
                # The request (parsed circuits, inline QASM, chips) is dead
                # weight once the job is terminal; payload() never reads it,
                # and retaining 256 of them would pin real memory.
                job.request = None
                if error is None:
                    self.completed += 1
                else:
                    self.failed += 1
                self._done.notify_all()
