"""Plain-text visualisation of chips, placements and schedules.

Rendering is deliberately ASCII-only so the output is usable in terminals,
logs and tests:

* :func:`render_placement` — the tile array with the logical qubit hosted by
  each slot and the corridor bandwidths between rows/columns,
* :func:`render_schedule_timeline` — one line per clock cycle listing the
  operations active in that cycle,
* :func:`render_gantt` — a per-qubit occupancy chart of the encoded circuit.
"""

from __future__ import annotations

import math

from repro.chip.chip import Chip, TileSlot
from repro.core.schedule import EncodedCircuit, OperationKind
from repro.partition.placement import Placement

_KIND_SYMBOL = {
    OperationKind.CNOT_BRAID: "B",
    OperationKind.CNOT_SAME_CUT: "S",
    OperationKind.CUT_MODIFICATION: "m",
    OperationKind.CUT_REMAP: "r",
}


def render_placement(chip: Chip, placement: Placement) -> str:
    """Render the tile array with hosted qubits and corridor bandwidths.

    Graph chips (``chip.tile_graph`` set) render as a coordinate-scaled
    scatter of tile labels plus an edge/bandwidth list instead of the grid
    drawing; dead tiles still render as ``X``.
    """
    if chip.tile_graph is not None:
        return _render_graph_placement(chip, placement)
    slot_to_qubit = {slot: qubit for qubit, slot in placement.qubit_to_slot.items()}
    dead = chip.defects.dead_set()
    cell_width = max(4, max((len(f"q{q}") for q in placement.qubit_to_slot), default=2) + 1)
    lines: list[str] = [f"chip: {chip.describe()}"]
    for row in range(chip.tile_rows):
        # Horizontal corridor above this tile row.
        lines.append(_corridor_line(chip, row, chip.tile_cols, cell_width))
        cells = []
        for col in range(chip.tile_cols):
            qubit = slot_to_qubit.get(next(s for s in [chip.tile_slots()[row * chip.tile_cols + col]]), None)
            if (row, col) in dead:
                label = "X"
            else:
                label = f"q{qubit}" if qubit is not None else "."
            cells.append(label.center(cell_width))
        bandwidth = chip.v_bandwidths
        row_text = ""
        for col, cell in enumerate(cells):
            row_text += f"|{bandwidth[col]}|" if col == 0 else "|"
            row_text += cell
        row_text += f"|{bandwidth[-1]}|"
        lines.append(row_text)
    lines.append(_corridor_line(chip, chip.tile_rows, chip.tile_cols, cell_width))
    lines.append(
        "(numbers on the borders are corridor bandwidths; '.' = unused tile slot"
        + ("; 'X' = dead tile)" if dead else ")")
    )
    return "\n".join(lines) + "\n"


def _render_graph_placement(chip: Chip, placement: Placement) -> str:
    """ASCII scatter of a graph chip: node labels at scaled coordinates.

    Each tile renders as ``id:label`` where the label is the hosted qubit,
    ``.`` for an unused alive tile, or ``X`` for a dead tile; the tile-graph
    edges follow as an ``a-b:bandwidth`` list (effective capacities, so
    disabled edges show ``:0``).
    """
    graph = chip.tile_graph
    slot_to_qubit = {slot: qubit for qubit, slot in placement.qubit_to_slot.items()}
    dead = chip.defects.dead_set()
    labels = []
    for node in range(graph.num_nodes):
        if (node, 0) in dead:
            labels.append(f"{node}:X")
        else:
            qubit = slot_to_qubit.get(TileSlot(node, 0))
            labels.append(f"{node}:q{qubit}" if qubit is not None else f"{node}:.")
    xs = [x for x, _ in graph.coords]
    ys = [y for _, y in graph.coords]
    x_span = max(xs) - min(xs) or 1.0
    y_span = max(ys) - min(ys) or 1.0
    cell = max(len(label) for label in labels) + 1
    width = min(100, max(cell * 4, int(round(math.sqrt(graph.num_nodes))) * cell * 2))
    height = max(2, int(round(width * y_span / x_span / 2.4)))
    grid = [[" "] * (width + cell) for _ in range(height + 1)]
    for node in range(graph.num_nodes):
        x, y = graph.coords[node]
        row = int(round((y - min(ys)) / y_span * height))
        col = int(round((x - min(xs)) / x_span * width))
        while any(c != " " for c in grid[row][col : col + len(labels[node]) + 1]):
            col += 1  # nudge right on collisions; rows are coarse
        for offset, char in enumerate(labels[node]):
            grid[row][col + offset] = char
    lines = [f"chip: {chip.describe()}"]
    lines.extend("".join(row).rstrip() for row in grid)
    edge_parts = [
        f"{a}-{b}:{chip.segment_capacity(('e', a, b))}" for a, b in graph.edges
    ]
    for start in range(0, len(edge_parts), 10):
        prefix = "edges: " if start == 0 else "       "
        lines.append(prefix + " ".join(edge_parts[start : start + 10]))
    lines.append(
        "(labels are node:qubit; '.' = unused tile"
        + ("; 'X' = dead tile)" if dead else ")")
    )
    return "\n".join(line for line in lines if line is not None) + "\n"


def _corridor_line(chip: Chip, corridor: int, cols: int, cell_width: int) -> str:
    bandwidth = chip.h_bandwidths[corridor]
    segment = ("=" * cell_width if bandwidth > 1 else "-" * cell_width)
    return f"+{bandwidth}+" + ("+".join([segment] * cols)) + f"+{bandwidth}+"


def render_schedule_timeline(encoded: EncodedCircuit, max_cycles: int | None = None) -> str:
    """One line per clock cycle listing the active operations."""
    lines = [f"schedule: {encoded.method}, {encoded.num_cycles} cycles, {len(encoded.operations)} operations"]
    limit = encoded.num_cycles if max_cycles is None else min(max_cycles, encoded.num_cycles)
    for cycle in range(limit):
        ops = encoded.operations_in_cycle(cycle)
        parts = []
        for op in sorted(ops, key=lambda o: (o.kind.value, o.qubits)):
            qubits = ",".join(f"q{q}" for q in op.qubits)
            symbol = _KIND_SYMBOL.get(op.kind, "?")
            parts.append(f"{symbol}({qubits})")
        lines.append(f"cycle {cycle:4d}: " + (" ".join(parts) if parts else "-"))
    if limit < encoded.num_cycles:
        lines.append(f"... ({encoded.num_cycles - limit} more cycles)")
    return "\n".join(lines) + "\n"


def render_gantt(encoded: EncodedCircuit, max_cycles: int = 80) -> str:
    """Per-qubit occupancy chart: one row per logical qubit, one column per cycle.

    ``B`` marks a one-cycle braid, ``S`` a three-cycle same-cut execution,
    ``m`` a cut-type modification, ``r`` a ReSu cut remap and ``.`` idle time.
    """
    cycles = min(encoded.num_cycles, max_cycles)
    qubits = sorted({q for op in encoded.operations for q in op.qubits})
    grid = {q: ["."] * cycles for q in qubits}
    for op in encoded.operations:
        symbol = _KIND_SYMBOL.get(op.kind, "?")
        for cycle in range(op.start_cycle, min(op.end_cycle, cycles)):
            for q in op.qubits:
                grid[q][cycle] = symbol
    width = max((len(f"q{q}") for q in qubits), default=2)
    lines = [f"occupancy (first {cycles} of {encoded.num_cycles} cycles)"]
    for q in qubits:
        lines.append(f"q{q}".rjust(width) + " " + "".join(grid[q]))
    return "\n".join(lines) + "\n"
