"""Fork/thread-safety rules: FRK001 and FRK002.

The batch engine forks :mod:`multiprocessing` pool workers and the compile
daemon serves requests from :class:`http.server.ThreadingHTTPServer` handler
threads, so module-level mutable state is shared twice over: copied (possibly
mid-update, along with any held locks) into every forked worker, and read
concurrently by every handler thread.  PR 5's inherited-lock deadlock was
exactly this class of bug.  The sanctioned patterns are:

* state behind an explicit seam with a locked owner object — the routing
  provider (:func:`repro.core.engines.set_routing_provider` backed by the
  ``WarmStateCache`` and its instance lock);
* genuinely constant module attributes, spelled ``ALL_CAPS`` (leading
  underscores ignored), which the rules treat as frozen by convention;
* everything else pragma'd with an explicit justification.

**FRK001** flags ``global`` statements in functions (module state mutated
from code reachable by workers/handlers) and module-level bindings of
mutable containers or synchronisation primitives to non-constant names.
**FRK002** flags :class:`multiprocessing.Pool` construction while a lock is
held — forked children inherit the lock state, and a worker waiting on a
lock the parent holds deadlocks forever.
"""

from __future__ import annotations

import ast

from repro.analysis.determinism import module_imports
from repro.analysis.framework import Finding, Rule, SourceFile, registry

#: Constructors whose module-level result is mutable shared state.
_MUTABLE_CONSTRUCTORS = {
    "dict", "list", "set", "bytearray",
    "OrderedDict", "defaultdict", "deque", "Counter", "ChainMap",
}

#: threading/multiprocessing synchronisation primitives: module-level
#: instances cross fork boundaries in whatever state the fork caught them.
_SYNC_CONSTRUCTORS = {
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Event", "Barrier",
}


def _constant_name(name: str) -> bool:
    """True for ``ALL_CAPS`` (frozen-by-convention) and dunder module attributes.

    Dunders (``__all__`` and friends) are interface declarations the import
    system owns, not program state.
    """
    if name.startswith("__") and name.endswith("__"):
        return True
    stripped = name.lstrip("_")
    return bool(stripped) and stripped == stripped.upper()


def _callee_terminal(func: ast.expr) -> str | None:
    """The final attribute/name of a callee (``threading.Lock`` → ``Lock``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_mutable_binding(value: ast.expr) -> str | None:
    """Describe why ``value`` is mutable module state, or ``None`` when it isn't."""
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "a dict"
    if isinstance(value, (ast.List, ast.ListComp)):
        return "a list"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(value, ast.Call):
        callee = _callee_terminal(value.func)
        if callee in _MUTABLE_CONSTRUCTORS:
            return f"a {callee}"
        if callee in _SYNC_CONSTRUCTORS:
            return f"a {callee} (synchronisation primitive)"
    return None


@registry.register
class ModuleStateRule(Rule):
    """FRK001: mutable module-level state reachable by workers and handler threads."""

    id = "FRK001"
    title = "mutable module-level state (fork/thread hazard)"
    severity = "error"
    rationale = (
        "Pool workers fork a copy of every module global (mid-update state "
        "and held locks included) and daemon handler threads read them "
        "concurrently; a mutable module attribute is therefore silently "
        "process- and thread-unsafe.  Route mutable state through an owner "
        "object behind a seam (see core/engines.set_routing_provider + "
        "WarmStateCache), spell genuine constants ALL_CAPS, or pragma the "
        "line with the reason it is safe."
    )

    def check_file(self, src: SourceFile) -> list[Finding]:
        """Flag ``global`` statements and module-level mutable bindings."""
        findings: list[Finding] = []
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Global):
                names = ", ".join(node.names)
                findings.append(
                    self.finding(
                        src.rel,
                        node.lineno,
                        f"'global {names}' mutates module state from a function — "
                        "forked workers and handler threads share it unsynchronised; "
                        "use an owner object behind a seam, or pragma the sanctioned "
                        "seam itself",
                        node.col_offset,
                    )
                )
        for stmt in src.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            described = _is_mutable_binding(value)
            if described is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name) and not _constant_name(target.id):
                    findings.append(
                        self.finding(
                            src.rel,
                            stmt.lineno,
                            f"module attribute {target.id!r} binds {described} at import "
                            "time — mutable module state is copied into forked workers "
                            "and shared across handler threads; move it behind an owner "
                            "object / provider seam or rename it ALL_CAPS if it is "
                            "genuinely frozen after import",
                            stmt.col_offset,
                        )
                    )
        return findings


def _lockish(expr: ast.expr) -> bool:
    """Heuristic: the expression names a lock (``self._lock``, ``cache.lock``…)."""
    if isinstance(expr, ast.Call):
        callee = _callee_terminal(expr.func)
        return callee in _SYNC_CONSTRUCTORS
    terminal = None
    if isinstance(expr, ast.Name):
        terminal = expr.id
    elif isinstance(expr, ast.Attribute):
        terminal = expr.attr
    return terminal is not None and "lock" in terminal.lower()


def _is_pool_call(node: ast.Call, module_aliases: dict, imported_names: dict) -> str | None:
    """Describe a worker-pool construction, or ``None``."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in {"Pool", "ProcessPoolExecutor"}:
        return func.attr
    if isinstance(func, ast.Name):
        origin = imported_names.get(func.id)
        if origin and origin[1] in {"Pool", "ProcessPoolExecutor"}:
            return origin[1]
    return None


@registry.register
class LockedPoolRule(Rule):
    """FRK002: a worker pool constructed while a lock is held."""

    id = "FRK002"
    title = "worker pool constructed under a held lock"
    severity = "error"
    rationale = (
        "Forked pool workers inherit every lock in the state the fork caught "
        "it in: constructing a Pool inside 'with lock:' (or between acquire "
        "and release) hands children a permanently-held copy, and any worker "
        "that later touches the same lock deadlocks — the PR 5 "
        "inherited-lock incident.  Construct pools outside critical "
        "sections."
    )

    def check_file(self, src: SourceFile) -> list[Finding]:
        """Flag pool constructions lexically inside lock-holding regions."""
        module_aliases, imported_names = module_imports(src.tree)
        findings: list[Finding] = []

        def flag(node: ast.Call, pool: str, how: str) -> None:
            findings.append(
                self.finding(
                    src.rel,
                    node.lineno,
                    f"{pool} constructed {how} — forked workers inherit the held "
                    "lock and deadlock on first contention; build the pool "
                    "outside the critical section",
                    node.col_offset,
                )
            )

        for node in ast.walk(src.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)) and any(
                _lockish(item.context_expr) for item in node.items
            ):
                for child in ast.walk(node):
                    if isinstance(child, ast.Call):
                        pool = _is_pool_call(child, module_aliases, imported_names)
                        if pool is not None:
                            flag(child, pool, "inside a 'with <lock>:' block")
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                acquires: list[int] = []
                releases: list[int] = []
                pools: list[tuple[int, ast.Call, str]] = []
                for child in ast.walk(node):
                    if isinstance(child, ast.Call):
                        callee = _callee_terminal(child.func)
                        if callee == "acquire" and isinstance(child.func, ast.Attribute) and _lockish(
                            child.func.value
                        ):
                            acquires.append(child.lineno)
                        elif callee == "release" and isinstance(
                            child.func, ast.Attribute
                        ) and _lockish(child.func.value):
                            releases.append(child.lineno)
                        else:
                            pool = _is_pool_call(child, module_aliases, imported_names)
                            if pool is not None:
                                pools.append((child.lineno, child, pool))
                if acquires and pools:
                    first_acquire = min(acquires)
                    last_release = max(releases) if releases else None
                    for lineno, call, pool in pools:
                        if lineno > first_acquire and (
                            last_release is None or lineno < last_release
                        ):
                            flag(call, pool, "between lock.acquire() and release()")
        return _dedupe_frk(findings)


def _dedupe_frk(findings: list[Finding]) -> list[Finding]:
    """Drop duplicates (a pool in a nested with-block is walked twice)."""
    seen: set[tuple] = set()
    out: list[Finding] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.line, finding.col)
        if key not in seen:
            seen.add(key)
            out.append(finding)
    return out
