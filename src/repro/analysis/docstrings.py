"""DOC001: docstring coverage, unified under ``repro lint``.

The measurement logic lived in ``tools/check_docstrings.py`` (the stdlib
interrogate-equivalent the docs CI job runs); it now lives here so docstring
coverage, determinism and fingerprint checks run under one command with one
baseline/pragma format.  The standalone script remains as a thin CLI shim
over :func:`measure` for CI back-compat.

Counted definitions: modules, public classes, and public functions/methods.
A leading underscore marks something private; dunders, nested functions and
ellipsis-only stubs are exempt — exactly the historical gate's contract.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.framework import Finding, Rule, registry


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _is_stub(node: ast.AST) -> bool:
    """True for ellipsis-only bodies (protocol/overload stubs need no docstring)."""
    body = getattr(node, "body", [])
    return (
        len(body) == 1
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and body[0].value.value is Ellipsis
    )


def inspect_file(path: Path, src_root: Path) -> list[tuple[str, bool]]:
    """``(qualified name, has docstring)`` for every checkable definition in a file."""
    tree = ast.parse(path.read_text(encoding="utf-8"))
    module = path.relative_to(src_root).as_posix().removesuffix(".py").replace("/", ".")
    if module.endswith(".__init__"):
        module = module.removesuffix(".__init__")
    results: list[tuple[str, bool]] = [(module, ast.get_docstring(tree) is not None)]

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _is_public(child.name):
                    results.append(
                        (f"{prefix}.{child.name}", ast.get_docstring(child) is not None)
                    )
                    visit(child, f"{prefix}.{child.name}")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public(child.name) and not _is_stub(child):
                    results.append(
                        (f"{prefix}.{child.name}", ast.get_docstring(child) is not None)
                    )
                # Nested functions are implementation detail: not descended into.

    visit(tree, module)
    return results


def measure(package: Path, src_root: Path) -> tuple[int, int, list[str]]:
    """(documented, total, missing names) across every ``.py`` under ``package``."""
    documented = total = 0
    missing: list[str] = []
    for path in sorted(package.rglob("*.py")):
        for name, has_doc in inspect_file(path, src_root):
            total += 1
            if has_doc:
                documented += 1
            else:
                missing.append(name)
    return documented, total, missing


@registry.register
class DocstringCoverageRule(Rule):
    """DOC001: public-docstring coverage below the configured threshold."""

    id = "DOC001"
    title = "docstring coverage below threshold"
    severity = "error"
    rationale = (
        "The docs site generates its API reference from docstrings, and the "
        "docs-build CI job gates on >= 80% coverage; folding the gate into "
        "repro lint keeps one command and one baseline for every repo "
        "contract.  Threshold and package are configurable via "
        "[rules.DOC001] fail_under / package."
    )

    def __init__(self, options: dict | None = None) -> None:
        super().__init__(options)
        #: Coverage numbers from the last run (``--json`` metadata).
        self.measured: dict = {}

    def check_project(self, root: Path) -> list[Finding]:
        """Measure coverage over the configured package; one finding when short."""
        package_rel = str(self.option("package", "src/repro"))
        src_rel = str(self.option("src_root", "src"))
        fail_under = float(self.option("fail_under", 80.0))
        package = root / package_rel
        if not package.is_dir():
            return [self.finding(package_rel, 0, f"no package at {package_rel} to measure")]
        documented, total, missing = measure(package, root / src_rel)
        coverage = 100.0 * documented / total if total else 100.0
        self.measured = {
            "documented": documented,
            "total": total,
            "coverage": round(coverage, 2),
            "fail_under": fail_under,
            "missing": missing,
        }
        if coverage >= fail_under:
            return []
        preview = ", ".join(missing[:5]) + ("…" if len(missing) > 5 else "")
        return [
            self.finding(
                package_rel,
                0,
                f"docstring coverage {documented}/{total} = {coverage:.1f}% is "
                f"below the {fail_under:.1f}% threshold; undocumented: {preview}",
            )
        ]

    def metadata(self) -> dict | None:
        """Coverage numbers (populated after a run)."""
        return dict(self.measured) if self.measured else None
