"""Core types of the static-analysis subsystem: rules, findings, sources.

``repro lint`` is a rule-based analyzer over Python :mod:`ast`.  Each
:class:`Rule` owns an upper-case identifier (``DET001``, ``FPR001``, …), a
default severity and an optional path scope; running one produces
:class:`Finding` records that the :class:`~repro.analysis.analyzer.Analyzer`
filters through per-line pragmas and the ``.reprolint.toml`` baseline before
rendering them for humans or machines.

Two rule shapes exist:

* *file rules* implement :meth:`Rule.check_file` and are invoked once per
  parsed :class:`SourceFile` inside their scope;
* *project rules* implement :meth:`Rule.check_project` and run once per lint
  invocation against the repository root (the fingerprint-completeness and
  docstring-coverage rules, which reason about whole files or packages
  rather than individual statements).

Suppression happens at exactly two levels, both explicit and reviewable: a
``# lint: disable=RULE`` comment on the offending line, or a
``"RULE:path[:line]"`` entry in the config file's baseline list.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

#: ``# lint: disable=DET001`` or ``# lint: disable=DET001,FRK002`` — the
#: comment may trail code and the rule list is comma-separated.
_PRAGMA_RE = re.compile(r"#\s*lint:\s*disable=([A-Z0-9_,\s]+)")

#: Rule identifiers are short upper-case tags: three letters + three digits.
RULE_ID_RE = re.compile(r"^[A-Z]{3}\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``path`` is repository-relative with ``/`` separators so findings,
    baselines and JSON output are stable across platforms.  ``line`` is
    1-based; project-level findings that have no natural line use ``0``.
    """

    rule: str
    severity: str
    path: str
    line: int
    message: str
    col: int = 0

    def location(self) -> str:
        """``path:line:col`` in the conventional compiler-diagnostic shape."""
        return f"{self.path}:{self.line}:{self.col}"

    def baseline_keys(self) -> tuple[str, str]:
        """The two baseline entries that suppress this finding (with / without line)."""
        return (f"{self.rule}:{self.path}:{self.line}", f"{self.rule}:{self.path}")

    def to_dict(self) -> dict:
        """JSON-able representation used by ``repro lint --json``."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class SourceFile:
    """One parsed Python file: text, AST, and per-line pragma suppressions."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        #: Repository-relative path with ``/`` separators (finding identity).
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=rel)
        #: line number -> set of rule ids disabled on that line.
        self.pragmas: dict[int, set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _PRAGMA_RE.search(line)
            if match:
                rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
                if rules:
                    self.pragmas[lineno] = rules

    def suppressed(self, rule: str, line: int) -> bool:
        """True when a pragma suppresses ``rule`` at ``line``.

        A pragma applies to its own line, or — when written on a
        comment-only line — to the first code line below it (so long
        statements can carry the justification above them).
        """
        if rule in self.pragmas.get(line, ()):
            return True
        above = line - 1
        while above >= 1:
            content = self.lines[above - 1].strip() if above <= len(self.lines) else ""
            if not content.startswith("#"):
                return False
            if rule in self.pragmas.get(above, ()):
                return True
            above -= 1  # a justification may span several comment lines
        return False


class Rule:
    """One named static-analysis check.

    Subclasses set the class attributes and implement :meth:`check_file`
    (per-file rules) or :meth:`check_project` (whole-repository rules).
    ``scope`` restricts a file rule to path prefixes (repo-relative, ``/``
    separated); ``None`` means every linted file.  ``options`` carries the
    merged per-rule configuration from ``.reprolint.toml`` — subclasses read
    their knobs from it with :meth:`option`.
    """

    id: str = "XXX000"
    title: str = "unnamed rule"
    severity: str = "error"
    #: Path prefixes (relative to the repo root) this rule applies to;
    #: ``None`` applies everywhere.  Overridable per-repo via the config
    #: file's ``paths`` option for the rule.
    scope: tuple[str, ...] | None = None
    #: One-paragraph rationale shown by ``repro lint --list-rules`` and the
    #: docs: which contract the rule guards and why.
    rationale: str = ""

    def __init__(self, options: dict | None = None) -> None:
        self.options = dict(options or {})

    def option(self, name: str, default: object = None) -> Any:
        """The configured value for ``name`` (config file beats ``default``)."""
        return self.options.get(name, default)

    def effective_scope(self) -> tuple[str, ...] | None:
        """The path prefixes this rule runs on, after config overrides."""
        paths = self.option("paths")
        if paths is not None:
            return tuple(str(p) for p in paths)
        return self.scope

    def applies_to(self, rel: str) -> bool:
        """True when the file at repo-relative ``rel`` is inside this rule's scope."""
        scope = self.effective_scope()
        if scope is None:
            return True
        return any(rel == prefix or rel.startswith(prefix) for prefix in scope)

    def check_file(self, src: SourceFile) -> list[Finding]:
        """Findings in one source file (file rules override this)."""
        return []

    def check_project(self, root: Path) -> list[Finding]:
        """Findings about the repository as a whole (project rules override this)."""
        return []

    def metadata(self) -> dict | None:
        """Machine-readable extras for ``--json`` (e.g. extracted field lists)."""
        return None

    def finding(self, path: str, line: int, message: str, col: int = 0) -> Finding:
        """Construct a :class:`Finding` stamped with this rule's id and severity."""
        return Finding(
            rule=self.id,
            severity=str(self.option("severity", self.severity)),
            path=path,
            line=line,
            message=message,
            col=col,
        )


@dataclass
class RuleRegistry:
    """An ordered collection of rule classes, keyed by rule id."""

    rule_classes: dict[str, type[Rule]] = field(default_factory=dict)

    def register(self, rule_class: type[Rule]) -> type[Rule]:
        """Add one rule class (usable as a decorator); ids must be unique."""
        rule_id = rule_class.id
        if not RULE_ID_RE.match(rule_id):
            raise ValueError(f"invalid rule id {rule_id!r} (expected e.g. DET001)")
        if rule_id in self.rule_classes:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        self.rule_classes[rule_id] = rule_class
        return rule_class

    def ids(self) -> tuple[str, ...]:
        """Every registered rule id, sorted."""
        return tuple(sorted(self.rule_classes))

    def get(self, rule_id: str) -> type[Rule]:
        """The rule class for ``rule_id`` (raises ``KeyError`` when unknown)."""
        return self.rule_classes[rule_id]


#: The process-wide catalog that rule modules register into at import time.
#: Populated once by module-level ``@registry.register`` decorators — import
#: order is fixed by ``repro.analysis.__init__`` — and never mutated
#: afterwards, so it is safe to read from forked workers and handler
#: threads.  # lint: disable=FRK001
registry = RuleRegistry()


def parse_source(path: Path, rel: str) -> SourceFile:
    """Read and parse one file into a :class:`SourceFile`.

    Raises :class:`SyntaxError` (with the file named) when the file does not
    parse — a lint run must not silently skip unparseable code.
    """
    text = path.read_text(encoding="utf-8")
    return SourceFile(path, rel, text)
