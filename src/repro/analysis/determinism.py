"""Determinism rules: DET001-DET004.

The compiler's headline contract is bit-identical reproducibility: the fast
and reference engines must emit the same schedule for the same input
(``tests/test_differential_engines.py``), and the batch cache serves results
across processes on the premise that a compile is a pure function of its
fingerprint.  Anything order- or clock-dependent in a compilation path breaks
that silently, so these rules flag the four ways it has nearly happened:

* **DET001** — iterating a ``set`` (or ``dict.keys()`` view) in the
  scheduler / routing / partition / chip packages without ``sorted(...)``.
  Set iteration order depends on insertion/deletion history; a tie-broken
  best-candidate scan over a set can change placements between two
  otherwise identical runs.
* **DET002** — ``os.listdir`` / ``os.scandir`` in the same packages without
  ``sorted(...)``: directory order is filesystem-dependent.
* **DET003** — module-level :mod:`random` (or ``numpy.random``) calls: the
  shared global generator is cross-contaminated by any other caller and by
  fork timing; every randomised algorithm here threads an explicit
  ``random.Random(seed)``.
* **DET004** — wall-clock reads (``time.time`` / ``datetime.now`` / …)
  anywhere outside the explicitly pragma'd service/batch bookkeeping:
  a clock read inside a compilation path makes output depend on when it
  ran.  (``time.perf_counter`` is fine — timings are reported, never used
  as inputs.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, Rule, SourceFile, registry

#: The compilation hot-path packages where iteration order becomes schedule
#: and placement identity (DET001/DET002's default scope).
HOT_PATH_SCOPE = (
    "src/repro/core/",
    "src/repro/routing/",
    "src/repro/partition/",
    "src/repro/chip/",
)


def module_imports(tree: ast.Module) -> tuple[dict[str, str], dict[str, tuple[str, str]]]:
    """Resolve a module's import aliases.

    Returns ``(module_aliases, imported_names)`` where ``module_aliases``
    maps a local name to the dotted module it refers to (``import numpy as
    np`` → ``{"np": "numpy"}``) and ``imported_names`` maps a local name to
    ``(module, original_name)`` (``from time import time as now`` →
    ``{"now": ("time", "time")}``).
    """
    module_aliases: dict[str, str] = {}
    imported_names: dict[str, tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                module_aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                imported_names[alias.asname or alias.name] = (node.module, alias.name)
    return module_aliases, imported_names


def _call_name(node: ast.expr) -> str | None:
    """The simple callee name of a call expression (``None`` when dotted)."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id
    return None


_SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet"}


def _is_set_annotation(node: ast.expr | None) -> bool:
    """True for ``set``/``set[int]``/``typing.Set[...]``-shaped annotations."""
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        return _is_set_annotation(node.value)
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATIONS
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotations: good enough to look at the leading name.
        head = node.value.split("[", 1)[0].strip()
        return head.rsplit(".", 1)[-1] in _SET_ANNOTATIONS
    return False


class _SetTypeTracker(ast.NodeVisitor):
    """Track which local names are set-typed within one scope, in textual order.

    Deliberately simple flow-insensitive-within-a-statement tracking: a name
    becomes set-typed when assigned a set-producing expression (or annotated
    as a set, including parameters) and loses the mark when rebound to
    anything else.  Over-approximation is acceptable — pragmas exist — but in
    practice the hot-path code assigns sets to dedicated names.
    """

    def __init__(self) -> None:
        self.set_names: set[str] = set()

    def is_set_expr(self, node: ast.expr | None) -> bool:
        """True when ``node`` syntactically produces a set."""
        if node is None:
            return False
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if _call_name(node) in {"set", "frozenset"}:
                return True
            # s.union(...), s.copy(), … on a known set name stays a set.
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr
                in {"union", "intersection", "difference", "symmetric_difference", "copy"}
                and self.is_set_expr(node.func.value)
            ):
                return True
            return False
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_set_expr(node.body) or self.is_set_expr(node.orelse)
        return False

    def bind(self, target: ast.expr, is_set: bool) -> None:
        """Record one assignment target's new set-ness."""
        if isinstance(target, ast.Name):
            if is_set:
                self.set_names.add(target.id)
            else:
                self.set_names.discard(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.bind(element, is_set)

    def observe(self, node: ast.stmt) -> None:
        """Update the tracked names for one statement."""
        if isinstance(node, ast.Assign):
            is_set = self.is_set_expr(node.value)
            if (
                isinstance(node.value, ast.Tuple)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Tuple)
                and len(node.targets[0].elts) == len(node.value.elts)
            ):
                # a, b = set(x), set(y) — track each pair independently.
                for target, value in zip(node.targets[0].elts, node.value.elts):
                    self.bind(target, self.is_set_expr(value))
                return
            for target in node.targets:
                self.bind(target, is_set)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            self.bind(
                node.target, _is_set_annotation(node.annotation) or self.is_set_expr(node.value)
            )


def _function_scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, list[ast.stmt]]]:
    """Yield ``(scope_node, body_statements)`` for the module and each function."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def _ordered_statements(body: list[ast.stmt]) -> Iterator[ast.stmt]:
    """Every statement in ``body``, in source order, descending into blocks
    but not into nested function/class definitions (those are their own
    scopes)."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for attr in ("body", "orelse", "finalbody"):
            blocks = getattr(stmt, attr, None)
            if isinstance(blocks, list):
                yield from _ordered_statements([s for s in blocks if isinstance(s, ast.stmt)])
        for handler in getattr(stmt, "handlers", None) or []:
            yield from _ordered_statements(handler.body)


def _own_expressions(stmt: ast.stmt) -> Iterator[ast.expr]:
    """The expression children of ``stmt`` itself, excluding nested statement
    blocks (those are visited as their own statements)."""
    for _, value in ast.iter_fields(stmt):
        if isinstance(value, ast.expr):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    yield item


_ORDERED_WRAPPERS = {"sorted", "min", "max", "sum", "len", "any", "all"}
_TRANSPARENT_WRAPPERS = {"enumerate", "reversed", "list", "tuple", "iter"}
#: Callables whose result does not depend on their argument's iteration
#: order — a comprehension consumed whole by one of these is exempt.
_ORDER_INSENSITIVE_REDUCERS = {"sum", "min", "max", "any", "all", "len", "set", "frozenset"}


def _reducer_consumed(expr: ast.expr) -> set[int]:
    """Node ids of comprehensions that are the sole argument of a reducer call."""
    consumed: set[int] = set()
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Call)
            and _call_name(node) in _ORDER_INSENSITIVE_REDUCERS
            and node.args
            and isinstance(node.args[0], (ast.ListComp, ast.GeneratorExp, ast.SetComp))
        ):
            # min/max with a key= break ties by encounter order — those stay
            # order-sensitive and are not exempted.
            if _call_name(node) in {"min", "max"} and node.keywords:
                continue
            consumed.add(id(node.args[0]))
    return consumed


@registry.register
class UnorderedIterationRule(Rule):
    """DET001: iteration over an unordered collection in a hot-path package."""

    id = "DET001"
    title = "unordered iteration in a compilation hot path"
    severity = "error"
    scope = HOT_PATH_SCOPE
    rationale = (
        "Set iteration order depends on hash-table history, so a "
        "best-candidate scan or route order driven by a bare set can differ "
        "between two runs that must be bit-identical (the fast/reference "
        "parity harness and the batch cache both assume compiles are pure "
        "functions of their fingerprint).  Wrap the iterable in sorted(...) "
        "to pin a canonical order, or pragma the line when order provably "
        "cannot reach the output."
    )

    def _iter_findings(
        self, src: SourceFile, tracker: _SetTypeTracker, iter_expr: ast.expr
    ) -> Iterator[Finding]:
        expr = iter_expr
        while (
            isinstance(expr, ast.Call)
            and _call_name(expr) in _TRANSPARENT_WRAPPERS
            and expr.args
        ):
            expr = expr.args[0]
        if isinstance(expr, ast.Call) and _call_name(expr) in _ORDERED_WRAPPERS:
            return
        if isinstance(expr, ast.Subscript):
            # Slicing a list of set-typed provenance is list-ordered: fine.
            return
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "keys"
        ):
            yield self.finding(
                src.rel,
                expr.lineno,
                "iteration over dict.keys() in a hot path — iterate "
                "sorted(...) (or the dict itself if insertion order is the "
                "canonical order) so the traversal order is explicit",
                expr.col_offset,
            )
            return
        if tracker.is_set_expr(expr):
            described = (
                f"set {expr.id!r}" if isinstance(expr, ast.Name) else "a set expression"
            )
            yield self.finding(
                src.rel,
                expr.lineno,
                f"iteration over {described} in a hot path — set order is "
                "hash-history-dependent; wrap in sorted(...) to make the "
                "traversal canonical",
                expr.col_offset,
            )

    def check_file(self, src: SourceFile) -> list[Finding]:
        """Scan every scope of ``src`` for unordered iteration."""
        findings: list[Finding] = []
        for scope, body in _function_scopes(src.tree):
            tracker = _SetTypeTracker()
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = scope.args
                for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                    if _is_set_annotation(arg.annotation):
                        tracker.set_names.add(arg.arg)
            for stmt in _ordered_statements(body):
                tracker.observe(stmt)
                if isinstance(stmt, (ast.For, ast.AsyncFor)):
                    findings.extend(self._iter_findings(src, tracker, stmt.iter))
                for expr in _own_expressions(stmt):
                    reduced = _reducer_consumed(expr)
                    for child in ast.walk(expr):
                        # A set comprehension's own result is unordered, so
                        # its traversal order cannot reach the output; a
                        # comprehension consumed whole by an order-insensitive
                        # reducer (sum/min/max/any/all/len) is equally safe.
                        if isinstance(child, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                            if id(child) in reduced:
                                continue
                            for generator in child.generators:
                                findings.extend(self._iter_findings(src, tracker, generator.iter))
        return _dedupe(findings)


@registry.register
class DirectoryOrderRule(Rule):
    """DET002: ``os.listdir`` / ``os.scandir`` without ``sorted`` in a hot path."""

    id = "DET002"
    title = "filesystem-ordered directory listing in a compilation hot path"
    severity = "error"
    scope = HOT_PATH_SCOPE
    rationale = (
        "os.listdir and os.scandir return entries in filesystem order, which "
        "differs across machines and filesystems; any compilation decision "
        "derived from one must be wrapped in sorted(...) to stay canonical."
    )

    def check_file(self, src: SourceFile) -> list[Finding]:
        """Flag unsorted directory listings."""
        module_aliases, imported_names = module_imports(src.tree)
        sorted_args: set[int] = set()
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call) and _call_name(node) == "sorted" and node.args:
                for child in ast.walk(node.args[0]):
                    sorted_args.add(id(child))
        findings: list[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call) or id(node) in sorted_args:
                continue
            name: str | None = None
            if isinstance(node.func, ast.Attribute) and isinstance(node.func.value, ast.Name):
                if module_aliases.get(node.func.value.id) == "os":
                    name = node.func.attr
            elif isinstance(node.func, ast.Name):
                origin = imported_names.get(node.func.id)
                if origin and origin[0] == "os":
                    name = origin[1]
            if name in {"listdir", "scandir"}:
                findings.append(
                    self.finding(
                        src.rel,
                        node.lineno,
                        f"os.{name} returns entries in filesystem order — wrap "
                        "in sorted(...) before any compilation decision "
                        "depends on it",
                        node.col_offset,
                    )
                )
        return findings


#: Functions on the ``random`` module that read or mutate the shared global
#: generator (``Random``/``SystemRandom`` construct independent instances).
_GLOBAL_RANDOM_FNS = {
    "seed", "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "expovariate", "gauss",
    "normalvariate", "lognormvariate", "vonmisesvariate", "paretovariate",
    "weibullvariate", "getrandbits", "randbytes", "setstate", "getstate",
}

#: ``numpy.random`` constructors that take (or are) an explicit seeded state.
_NUMPY_SEEDED = {"default_rng", "Generator", "RandomState", "SeedSequence", "BitGenerator"}


@registry.register
class GlobalRandomRule(Rule):
    """DET003: a call that touches the process-global random generator."""

    id = "DET003"
    title = "module-level random call (unseeded shared generator)"
    severity = "error"
    rationale = (
        "The module-level random generator is shared process-global state: "
        "its sequence depends on every other caller and on fork timing, so "
        "results stop being a function of the declared seed.  Every "
        "randomised algorithm here threads an explicit random.Random(seed) "
        "instance instead (see chip/defects.py, partition/kl.py)."
    )

    def check_file(self, src: SourceFile) -> list[Finding]:
        """Flag global-generator calls, for both import styles."""
        module_aliases, imported_names = module_imports(src.tree)
        findings: list[Finding] = []
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                if (
                    module_aliases.get(func.value.id) == "random"
                    and func.attr in _GLOBAL_RANDOM_FNS
                ):
                    findings.append(
                        self.finding(
                            src.rel,
                            node.lineno,
                            f"random.{func.attr} uses the shared global generator — "
                            "construct a random.Random(seed) and call it there",
                            node.col_offset,
                        )
                    )
            elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Attribute):
                # np.random.<fn>(...) on a numpy module alias.
                inner = func.value
                if (
                    isinstance(inner.value, ast.Name)
                    and module_aliases.get(inner.value.id) == "numpy"
                    and inner.attr == "random"
                    and func.attr not in _NUMPY_SEEDED
                ):
                    findings.append(
                        self.finding(
                            src.rel,
                            node.lineno,
                            f"numpy.random.{func.attr} uses the shared global "
                            "generator — use numpy.random.default_rng(seed)",
                            node.col_offset,
                        )
                    )
            elif isinstance(func, ast.Name):
                origin = imported_names.get(func.id)
                if origin and origin[0] == "random" and origin[1] in _GLOBAL_RANDOM_FNS:
                    findings.append(
                        self.finding(
                            src.rel,
                            node.lineno,
                            f"{func.id} (random.{origin[1]}) uses the shared global "
                            "generator — construct a random.Random(seed) instead",
                            node.col_offset,
                        )
                    )
        return findings


#: Wall-clock reads.  ``time.perf_counter``/``monotonic`` are deliberately
#: absent: elapsed-time measurement is reported, never a compilation input.
_WALL_CLOCK_TIME_FNS = {"time", "time_ns", "ctime", "localtime", "gmtime"}
_WALL_CLOCK_DATETIME_FNS = {"now", "utcnow", "today"}


@registry.register
class WallClockRule(Rule):
    """DET004: a wall-clock read outside the pragma'd service/batch set."""

    id = "DET004"
    title = "wall-clock read in library code"
    severity = "error"
    rationale = (
        "A compile must be a pure function of its fingerprint: a clock read "
        "on a compilation path makes output (or cache identity) depend on "
        "when it ran.  The only sanctioned uses are service bookkeeping "
        "(uptime, job timestamps) and cache prune cutoffs, each carrying an "
        "explicit '# lint: disable=DET004' pragma at the call site."
    )

    def check_file(self, src: SourceFile) -> list[Finding]:
        """Flag ``time.time``-family and ``datetime.now``-family calls."""
        module_aliases, imported_names = module_imports(src.tree)
        findings: list[Finding] = []

        def flag(node: ast.Call, described: str) -> None:
            findings.append(
                self.finding(
                    src.rel,
                    node.lineno,
                    f"{described} reads the wall clock — compilation paths must "
                    "not depend on when they run; if this is service/batch "
                    "bookkeeping, add '# lint: disable=DET004' with a reason",
                    node.col_offset,
                )
            )

        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
                owner = func.value.id
                if module_aliases.get(owner) == "time" and func.attr in _WALL_CLOCK_TIME_FNS:
                    flag(node, f"time.{func.attr}()")
                elif func.attr in _WALL_CLOCK_DATETIME_FNS:
                    origin = imported_names.get(owner)
                    if (origin and origin[0] == "datetime") or module_aliases.get(
                        owner
                    ) == "datetime":
                        flag(node, f"{owner}.{func.attr}()")
            elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Attribute):
                # datetime.datetime.now() / datetime.date.today().
                inner = func.value
                if (
                    isinstance(inner.value, ast.Name)
                    and module_aliases.get(inner.value.id) == "datetime"
                    and inner.attr in {"datetime", "date"}
                    and func.attr in _WALL_CLOCK_DATETIME_FNS
                ):
                    flag(node, f"datetime.{inner.attr}.{func.attr}()")
            elif isinstance(func, ast.Name):
                origin = imported_names.get(func.id)
                if origin and origin[0] == "time" and origin[1] in _WALL_CLOCK_TIME_FNS:
                    flag(node, f"{func.id} (time.{origin[1]})")
        return findings


def _dedupe(findings: list[Finding]) -> list[Finding]:
    """Drop exact-duplicate findings (comprehensions walked from two scopes)."""
    seen: set[tuple] = set()
    out: list[Finding] = []
    for finding in findings:
        key = (finding.rule, finding.path, finding.line, finding.col, finding.message)
        if key not in seen:
            seen.add(key)
            out.append(finding)
    return out
