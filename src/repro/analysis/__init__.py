"""Static analysis: the ``repro lint`` rule framework and rule catalog.

This package enforces the compiler's correctness contracts at lint time
instead of after a parity test flakes:

* determinism of the compilation hot paths (``DET001``-``DET004``),
* completeness of the batch-cache fingerprint (``FPR001``),
* fork/thread safety of module state (``FRK001``-``FRK002``),
* docstring coverage, unified from ``tools/check_docstrings.py``
  (``DOC001``).

Importing this package registers every rule; the
:class:`~repro.analysis.analyzer.Analyzer` is the entry point used by the
``repro lint`` CLI command and the test suite.  See
``docs/static-analysis.md`` for the rule catalog with rationale, and
``.reprolint.toml`` for the repository's configuration and baseline.
"""

from repro.analysis import determinism, docstrings, fingerprint, forksafety  # noqa: F401
from repro.analysis.analyzer import Analyzer, LintReport, LintUsageError, rule_catalog
from repro.analysis.config import CONFIG_FILE_NAME, LintConfig, LintConfigError, load_config
from repro.analysis.framework import Finding, Rule, SourceFile, registry

__all__ = [
    "Analyzer",
    "CONFIG_FILE_NAME",
    "Finding",
    "LintConfig",
    "LintConfigError",
    "LintReport",
    "LintUsageError",
    "Rule",
    "SourceFile",
    "load_config",
    "registry",
    "rule_catalog",
]
