"""FPR001: every compilation-affecting field must reach the cache fingerprint.

The batch cache (:mod:`repro.pipeline.batch`) serves results across runs and
processes keyed by ``BatchJob.fingerprint()``.  Twice already a new
``PassContext`` request knob landed without joining the fingerprint payload,
and the stale-cache near-miss forced a ``CACHE_FORMAT_VERSION`` bump after
the fact (the ``engine`` field in PR 3's era, the ``placement`` knob in
PR 7).  This rule makes the contract machine-checked at lint time:

1. parse ``pipeline/framework.py`` and extract the ``PassContext`` fields;
   subtract the explicit *artifact* exclusion list (fields passes produce
   rather than the request) and the *derived* list (fields the registry
   encodes into the fingerprinted ``method``/``options``, or that
   ``BatchJob`` cannot express at all);
2. parse ``pipeline/batch.py`` and extract the ``BatchJob`` fields and the
   literal dict keys of the payload built inside ``fingerprint()``;
3. report any remaining request field (via the alias map, e.g.
   ``placement_engine`` → ``placement``) missing from the payload, any
   ``BatchJob`` field missing from the payload that is not declared
   presentation metadata, and any *derived* claim contradicted by ``BatchJob``
   actually growing a field of that name.

The extracted field lists are exposed through ``repro lint --json`` so the
test suite can assert them against the live dataclasses directly.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.framework import Finding, Rule, registry

#: PassContext fields that are artifacts produced *by* passes — never part
#: of the request, hence legitimately absent from the fingerprint.
DEFAULT_ARTIFACT_FIELDS = (
    "dag",
    "comm_graph",
    "parallelism",
    "cut_types",
    "shape",
    "placement",
    "mapping_cost",
    "mapping",
    "use_resu",
    "priority_fn",
    "cut_strategy_fn",
    "congestion_weight",
    "method_label",
    "encoded",
    "artifacts",
)

#: Request fields that never reach a BatchJob, with the reason.  The rule
#: cross-checks each claim: if BatchJob ever grows a field of this name the
#: exclusion stops being true and FPR001 fires.
DEFAULT_DERIVED_FIELDS = {
    "model": "selected by the method registry; encoded in the fingerprinted 'method'/'options'",
    "resources": "encoded into the fingerprinted 'method' name by the registry",
    "scheduler": "encoded into the fingerprinted 'method' name by the registry",
    "window": "not expressible through BatchJob; windowed compiles never enter the batch cache",
    "defect_rate": "CLI convenience resolved into the fingerprinted 'defects' spec",
    "defect_seed": "CLI convenience resolved into the fingerprinted 'defects' spec",
}

#: PassContext request field -> fingerprint payload key, where names differ.
DEFAULT_ALIASES = {"placement_engine": "placement"}

#: BatchJob fields that are presentation metadata, restamped on every cache
#: hit (see ResultCache.get) and therefore deliberately outside the payload.
DEFAULT_PRESENTATION_FIELDS = ("circuit_name", "paper_cycles")


def _class_def(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _dataclass_fields(class_def: ast.ClassDef) -> list[tuple[str, int]]:
    """``(field name, line)`` for every annotated class-body assignment."""
    fields: list[tuple[str, int]] = []
    for node in class_def.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            fields.append((node.target.id, node.lineno))
    return fields


def _payload_keys(class_def: ast.ClassDef, method: str) -> tuple[list[str], int] | None:
    """The literal string keys of the dict(s) built in ``method``, plus its line."""
    for node in class_def.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name == method:
            keys: list[str] = []
            for child in ast.walk(node):
                if isinstance(child, ast.Dict):
                    for key in child.keys:
                        if isinstance(key, ast.Constant) and isinstance(key.value, str):
                            keys.append(key.value)
            return keys, node.lineno
    return None


@registry.register
class FingerprintCompletenessRule(Rule):
    """FPR001: request-affecting fields missing from ``BatchJob.fingerprint()``."""

    id = "FPR001"
    title = "compilation-affecting field missing from the cache fingerprint"
    severity = "error"
    rationale = (
        "A PassContext request field that does not reach the "
        "BatchJob.fingerprint() payload lets the cache serve stale results "
        "for jobs that differ in that field — the exact silent-staleness "
        "class that forced CACHE_FORMAT_VERSION bumps twice.  Artifact "
        "fields are excluded explicitly; everything else must be "
        "fingerprinted (or declared derived, which the rule cross-checks)."
    )

    def __init__(self, options: dict | None = None) -> None:
        super().__init__(options)
        #: Field lists extracted by the last :meth:`check_project` run,
        #: surfaced through ``repro lint --json`` for the sync tests.
        self.extracted: dict = {}

    def check_project(self, root: Path) -> list[Finding]:
        """Cross-check PassContext / BatchJob / fingerprint payload."""
        framework_rel = str(self.option("framework", "src/repro/pipeline/framework.py"))
        batch_rel = str(self.option("batch", "src/repro/pipeline/batch.py"))
        artifact_fields = set(self.option("artifact_fields", DEFAULT_ARTIFACT_FIELDS))
        derived = dict(self.option("derived_fields", DEFAULT_DERIVED_FIELDS))
        aliases = dict(self.option("aliases", DEFAULT_ALIASES))
        presentation = set(self.option("presentation_fields", DEFAULT_PRESENTATION_FIELDS))

        findings: list[Finding] = []
        trees: dict[str, ast.Module] = {}
        for rel in (framework_rel, batch_rel):
            path = root / rel
            if not path.is_file():
                findings.append(self.finding(rel, 0, f"cannot check fingerprints: {rel} not found"))
                continue
            trees[rel] = ast.parse(path.read_text(encoding="utf-8"), filename=rel)
        if len(trees) != 2:
            return findings

        pass_context = _class_def(trees[framework_rel], "PassContext")
        batch_job = _class_def(trees[batch_rel], "BatchJob")
        if pass_context is None:
            findings.append(self.finding(framework_rel, 0, "no PassContext class found"))
        if batch_job is None:
            findings.append(self.finding(batch_rel, 0, "no BatchJob class found"))
        if pass_context is None or batch_job is None:
            return findings

        context_fields = _dataclass_fields(pass_context)
        job_fields = _dataclass_fields(batch_job)
        payload = _payload_keys(batch_job, "fingerprint")
        if payload is None:
            findings.append(
                self.finding(batch_rel, batch_job.lineno, "BatchJob has no fingerprint() method")
            )
            return findings
        payload_keys, payload_line = payload

        request_fields = [
            (name, line) for name, line in context_fields if name not in artifact_fields
        ]
        self.extracted = {
            "pass_context_fields": [name for name, _ in context_fields],
            "request_fields": [name for name, _ in request_fields],
            "artifact_fields": sorted(artifact_fields),
            "derived_fields": dict(sorted(derived.items())),
            "aliases": dict(sorted(aliases.items())),
            "presentation_fields": sorted(presentation),
            "batch_job_fields": [name for name, _ in job_fields],
            "payload_keys": payload_keys,
        }

        job_field_names = {name for name, _ in job_fields}
        for name, line in request_fields:
            if name in derived:
                continue
            key = aliases.get(name, name)
            if key not in payload_keys:
                findings.append(
                    self.finding(
                        framework_rel,
                        line,
                        f"PassContext request field {name!r} (fingerprint key "
                        f"{key!r}) is missing from the BatchJob.fingerprint() "
                        "payload — the cache would serve stale results across "
                        f"values of {name!r}; add it to the payload (and bump "
                        "CACHE_FORMAT_VERSION) or declare it artifact/derived",
                    )
                )
        for name, line in job_fields:
            if name in presentation:
                continue
            if name not in payload_keys:
                findings.append(
                    self.finding(
                        batch_rel,
                        line,
                        f"BatchJob field {name!r} is missing from the "
                        "fingerprint() payload — two jobs differing only in "
                        f"{name!r} would collide in the cache; add it to the "
                        "payload or declare it presentation metadata",
                    )
                )
        for name, reason in sorted(derived.items()):
            if name in job_field_names:
                findings.append(
                    self.finding(
                        batch_rel,
                        payload_line,
                        f"field {name!r} is declared derived ({reason}) but "
                        "BatchJob now defines it — the exclusion is stale; "
                        "fingerprint the field and drop it from derived_fields",
                    )
                )
        return findings

    def metadata(self) -> dict | None:
        """The extracted field lists (populated after a run)."""
        return dict(self.extracted) if self.extracted else None
