"""The lint driver: walk files, run rules, apply suppressions, render reports.

:class:`Analyzer` ties the framework together for the ``repro lint`` CLI and
the test suite: it loads the config, instantiates the requested rules with
their merged options, walks the target paths in sorted order (the linter
practises the determinism it preaches), runs file rules per file and project
rules once, then filters findings through per-line pragmas and the baseline.

The resulting :class:`LintReport` renders two ways: a human diagnostic
listing (``path:line:col: RULE severity: message``) and a ``--json`` document
that includes each rule's metadata — notably FPR001's extracted field lists,
which the sync tests assert against the live dataclasses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import config as config_mod
from repro.analysis.config import LintConfig, LintConfigError
from repro.analysis.framework import Finding, Rule, SourceFile, parse_source, registry
from repro.errors import ReproError


class LintUsageError(ReproError):
    """A bad lint invocation (unknown rule, missing path) — CLI exit code 2."""


@dataclass
class LintReport:
    """Everything one lint run produced."""

    root: Path
    findings: list[Finding] = field(default_factory=list)
    #: Findings suppressed by a ``# lint: disable`` pragma.
    pragma_suppressed: list[Finding] = field(default_factory=list)
    #: Findings suppressed by a baseline entry.
    baseline_suppressed: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: tuple[str, ...] = ()
    #: Rule id -> machine-readable extras (field lists, coverage numbers).
    metadata: dict[str, dict] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when no unsuppressed finding remains."""
        return not self.findings

    @property
    def exit_code(self) -> int:
        """CLI-consistent exit code: 0 clean, 1 findings (2 = usage, raised)."""
        return 0 if self.clean else 1

    def to_dict(self) -> dict:
        """The ``--json`` document."""
        return {
            "version": 1,
            "root": str(self.root),
            "clean": self.clean,
            "files_checked": self.files_checked,
            "rules": list(self.rules_run),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": {
                "pragma": len(self.pragma_suppressed),
                "baseline": len(self.baseline_suppressed),
            },
            "metadata": self.metadata,
        }

    def render_text(self) -> str:
        """The human diagnostic listing plus a one-line summary."""
        lines = [
            f"{f.location()}: {f.rule} {f.severity}: {f.message}" for f in self.findings
        ]
        suppressed = len(self.pragma_suppressed) + len(self.baseline_suppressed)
        summary = (
            f"{len(self.findings)} finding(s) in {self.files_checked} file(s); "
            f"{suppressed} suppressed "
            f"({len(self.pragma_suppressed)} pragma, {len(self.baseline_suppressed)} baseline); "
            f"rules: {', '.join(self.rules_run)}"
        )
        if self.clean:
            summary = f"clean: {summary}"
        lines.append(summary)
        return "\n".join(lines)


class Analyzer:
    """One configured lint run over a repository."""

    def __init__(
        self,
        root: Path | str = ".",
        config: LintConfig | None = None,
        config_path: Path | str | None = None,
        rules: "list[str] | None" = None,
    ) -> None:
        self.root = Path(root).resolve()
        if config is None:
            config = config_mod.load_config(self.root, config_path)
        self.config = config
        requested = rules if rules is not None else list(registry.ids())
        unknown = [r for r in requested if r not in registry.rule_classes]
        if unknown:
            raise LintUsageError(
                f"unknown rule id(s): {', '.join(sorted(unknown))}; "
                f"known rules: {', '.join(registry.ids())}"
            )
        self.rules: list[Rule] = []
        for rule_id in requested:
            if rules is None and not config.rule_enabled(rule_id):
                continue  # config-disabled rules are skipped unless named explicitly
            rule_class = registry.get(rule_id)
            self.rules.append(rule_class(config.options_for(rule_id)))

    def _collect_files(self, paths: "list[str] | None") -> list[Path]:
        targets = [self.root / p for p in (paths or self.config.paths)]
        files: list[Path] = []
        for target in targets:
            if target.is_file():
                files.append(target)
            elif target.is_dir():
                files.extend(p for p in target.rglob("*.py"))
            else:
                raise LintUsageError(f"no such file or directory: {target}")
        # Sorted, de-duplicated walk: lint output order is itself canonical.
        return sorted(set(files))

    def run(self, paths: "list[str] | None" = None) -> LintReport:
        """Lint ``paths`` (default: the config's paths) and return the report."""
        report = LintReport(root=self.root)
        report.rules_run = tuple(rule.id for rule in self.rules)
        sources: list[SourceFile] = []
        for path in self._collect_files(paths):
            rel = path.relative_to(self.root).as_posix()
            try:
                sources.append(parse_source(path, rel))
            except SyntaxError as exc:
                report.findings.append(
                    Finding(
                        rule="SYN000",
                        severity="error",
                        path=rel,
                        line=exc.lineno or 0,
                        message=f"file does not parse: {exc.msg}",
                    )
                )
        report.files_checked = len(sources)

        raw: list[tuple[Finding, SourceFile | None]] = []
        for rule in self.rules:
            for src in sources:
                if rule.applies_to(src.rel):
                    for finding in rule.check_file(src):
                        raw.append((finding, src))
            for finding in rule.check_project(self.root):
                raw.append((finding, None))
            meta = rule.metadata()
            if meta:
                report.metadata[rule.id] = meta

        for finding, src in raw:
            if src is not None and src.suppressed(finding.rule, finding.line):
                report.pragma_suppressed.append(finding)
            elif any(key in self.config.baseline for key in finding.baseline_keys()):
                report.baseline_suppressed.append(finding)
            else:
                report.findings.append(finding)
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return report


def rule_catalog() -> list[dict]:
    """Id/title/severity/scope/rationale for every registered rule, sorted."""
    catalog: list[dict] = []
    for rule_id in registry.ids():
        rule_class = registry.get(rule_id)
        catalog.append(
            {
                "id": rule_class.id,
                "title": rule_class.title,
                "severity": rule_class.severity,
                "scope": list(rule_class.scope) if rule_class.scope else None,
                "rationale": rule_class.rationale,
            }
        )
    return catalog


__all__ = [
    "Analyzer",
    "LintConfigError",
    "LintReport",
    "LintUsageError",
    "rule_catalog",
]
