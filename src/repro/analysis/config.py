"""Lint configuration: the ``.reprolint.toml`` file, baseline and defaults.

The config file is optional; everything has a sensible default.  Layout::

    [lint]
    # Directories/files to lint when the CLI is given no paths.
    paths = ["src"]
    # Findings accepted as-is: "RULE:path" (whole file) or "RULE:path:line".
    baseline = [
        "DET001:src/repro/legacy/old_scheduler.py",
    ]

    [rules.DET004]
    # Per-rule knobs; "enabled", "severity" and "paths" are universal,
    # anything else is handed to the rule verbatim via Rule.options.
    enabled = true
    paths = ["src/repro"]

    [rules.DOC001]
    fail_under = 80.0

Parsing uses :mod:`tomllib` where available (Python >= 3.11) and falls back
to a small strict parser covering exactly the subset above (tables, string /
number / boolean scalars, single- or multi-line string and number arrays) so
the linter works on 3.10 with zero third-party dependencies.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised only on 3.10
    tomllib = None  # type: ignore[assignment]

from repro.errors import ReproError

#: Default file name looked up at the repository root.
CONFIG_FILE_NAME = ".reprolint.toml"


class LintConfigError(ReproError):
    """The config file is missing, unparseable, or structurally invalid."""


@dataclass
class LintConfig:
    """Parsed lint configuration (defaults when no file exists)."""

    #: Paths (repo-relative) linted when the CLI gives none.
    paths: tuple[str, ...] = ("src",)
    #: Accepted findings: ``"RULE:path"`` or ``"RULE:path:line"`` strings.
    baseline: frozenset[str] = frozenset()
    #: Per-rule option tables from ``[rules.<ID>]`` sections.
    rule_options: dict[str, dict] = field(default_factory=dict)
    #: Where the config was loaded from (``None`` for pure defaults).
    source: Path | None = None

    def options_for(self, rule_id: str) -> dict:
        """The ``[rules.<ID>]`` table for ``rule_id`` (empty when absent)."""
        return dict(self.rule_options.get(rule_id, {}))

    def rule_enabled(self, rule_id: str) -> bool:
        """False only when the config explicitly sets ``enabled = false``."""
        return bool(self.rule_options.get(rule_id, {}).get("enabled", True))


_SCALAR_RES: tuple[tuple[re.Pattern, object], ...] = (
    (re.compile(r'^"((?:[^"\\]|\\.)*)"$'), "str"),
    (re.compile(r"^(true|false)$"), "bool"),
    (re.compile(r"^-?\d+$"), "int"),
    (re.compile(r"^-?\d+\.\d*$"), "float"),
)


def _parse_scalar(token: str, where: str) -> object:
    token = token.strip()
    for pattern, kind in _SCALAR_RES:
        match = pattern.match(token)
        if not match:
            continue
        if kind == "str":
            return re.sub(r"\\(.)", r"\1", match.group(1))
        if kind == "bool":
            return token == "true"
        if kind == "int":
            return int(token)
        return float(token)
    raise LintConfigError(f"unsupported TOML value {token!r} {where}")


def _strip_comment(line: str) -> str:
    """Drop a trailing ``# …`` comment, honouring ``#`` inside quoted strings."""
    in_string = False
    for i, ch in enumerate(line):
        if ch == '"' and (i == 0 or line[i - 1] != "\\"):
            in_string = not in_string
        elif ch == "#" and not in_string:
            return line[:i]
    return line


def _parse_toml_subset(text: str, where: str) -> dict:
    """Parse the documented config subset (used when :mod:`tomllib` is absent)."""
    root: dict = {}
    table = root
    pending_key: str | None = None
    pending_items: list[object] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if pending_key is not None:
            # Inside a multi-line array: accumulate until the closing bracket.
            body, closed = (line[:-1], True) if line.endswith("]") else (line, False)
            for token in body.split(","):
                if token.strip() and not token.strip().startswith("#"):
                    pending_items.append(_parse_scalar(token, f"at {where}:{lineno}"))
            if closed:
                table[pending_key] = pending_items
                pending_key, pending_items = None, []
            continue
        if not line or line.startswith("#"):
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            table = root
            for part in name.split("."):
                table = table.setdefault(part.strip(), {})
            continue
        if "=" not in line:
            raise LintConfigError(f"cannot parse line {lineno} {where}: {raw!r}")
        key, _, value = line.partition("=")
        key, value = key.strip(), value.strip()
        if value.startswith("["):
            if value.endswith("]"):
                items = [
                    _parse_scalar(token, f"at {where}:{lineno}")
                    for token in value[1:-1].split(",")
                    if token.strip()
                ]
                table[key] = items
            else:
                pending_key, pending_items = key, []
                body = value[1:]
                for token in body.split(","):
                    if token.strip():
                        pending_items.append(_parse_scalar(token, f"at {where}:{lineno}"))
        else:
            table[key] = _parse_scalar(value, f"at {where}:{lineno}")
    if pending_key is not None:
        raise LintConfigError(f"unterminated array for key {pending_key!r} {where}")
    return root


def _load_toml(path: Path) -> dict:
    text = path.read_text(encoding="utf-8")
    if tomllib is not None:
        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise LintConfigError(f"cannot parse {path}: {exc}") from None
    return _parse_toml_subset(text, f"in {path}")


def load_config(root: Path, config_path: Path | str | None = None) -> LintConfig:
    """Load the lint config for a repo rooted at ``root``.

    ``config_path`` pins an explicit file (missing → error); otherwise
    ``<root>/.reprolint.toml`` is used when present and pure defaults when
    not.
    """
    if config_path is not None:
        path = Path(config_path)
        if not path.is_file():
            raise LintConfigError(f"no lint config at {path}")
    else:
        path = root / CONFIG_FILE_NAME
        if not path.is_file():
            return LintConfig()
    data = _load_toml(path)
    if not isinstance(data, dict):
        raise LintConfigError(f"{path} must contain TOML tables")
    lint = data.get("lint", {})
    if not isinstance(lint, dict):
        raise LintConfigError(f"[lint] in {path} must be a table")
    paths = lint.get("paths", ["src"])
    baseline = lint.get("baseline", [])
    if not isinstance(paths, list) or not all(isinstance(p, str) for p in paths):
        raise LintConfigError(f"lint.paths in {path} must be a list of strings")
    if not isinstance(baseline, list) or not all(isinstance(b, str) for b in baseline):
        raise LintConfigError(f"lint.baseline in {path} must be a list of strings")
    rules = data.get("rules", {})
    if not isinstance(rules, dict):
        raise LintConfigError(f"[rules.*] in {path} must be tables")
    rule_options: dict[str, dict] = {}
    for rule_id, options in rules.items():
        if not isinstance(options, dict):
            raise LintConfigError(f"[rules.{rule_id}] in {path} must be a table")
        rule_options[str(rule_id)] = dict(options)
    return LintConfig(
        paths=tuple(paths),
        baseline=frozenset(baseline),
        rule_options=rule_options,
        source=path,
    )
