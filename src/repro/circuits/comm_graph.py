"""Weighted qubit communication graph (``G_C`` in the paper, Fig. 6c).

Vertices are logical qubits; an edge ``(a, b)`` with weight ``w`` means the
circuit contains ``w`` CNOT gates between qubits ``a`` and ``b`` (in either
direction).  The mapping stage partitions this graph, and the cut-type
initialisation checks bipartiteness of prefixes of it.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.errors import CircuitError


class CommunicationGraph:
    """Undirected weighted multigraph-as-weights over logical qubits."""

    def __init__(self, num_qubits: int):
        if num_qubits <= 0:
            raise CircuitError("communication graph needs at least one qubit")
        self._num_qubits = num_qubits
        self._weights: dict[tuple[int, int], int] = {}
        self._adjacency: list[set[int]] = [set() for _ in range(num_qubits)]

    # ----------------------------------------------------------- construction
    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "CommunicationGraph":
        """Aggregate CNOT gates of ``circuit`` into edge weights."""
        graph = cls(circuit.num_qubits)
        for gate in circuit.cnot_gates():
            graph.add_cnot(gate.control, gate.target)
        return graph

    @classmethod
    def from_gates(cls, num_qubits: int, gates: Iterable[Gate]) -> "CommunicationGraph":
        """Aggregate an explicit CNOT gate iterable."""
        graph = cls(num_qubits)
        for gate in gates:
            if gate.is_cnot:
                graph.add_cnot(gate.control, gate.target)
        return graph

    def add_cnot(self, control: int, target: int, count: int = 1) -> None:
        """Record ``count`` CNOT gates between ``control`` and ``target``."""
        if control == target:
            raise CircuitError("CNOT control and target must differ")
        for q in (control, target):
            if not 0 <= q < self._num_qubits:
                raise CircuitError(f"qubit {q} outside communication graph of size {self._num_qubits}")
        key = (min(control, target), max(control, target))
        self._weights[key] = self._weights.get(key, 0) + count
        self._adjacency[control].add(target)
        self._adjacency[target].add(control)

    # ---------------------------------------------------------------- queries
    @property
    def num_qubits(self) -> int:
        """Number of vertices."""
        return self._num_qubits

    @property
    def num_edges(self) -> int:
        """Number of distinct qubit pairs with at least one CNOT."""
        return len(self._weights)

    def weight(self, a: int, b: int) -> int:
        """Number of CNOTs between ``a`` and ``b`` (0 if none)."""
        return self._weights.get((min(a, b), max(a, b)), 0)

    def edges(self) -> tuple[tuple[int, int, int], ...]:
        """All edges as ``(a, b, weight)`` with ``a < b``."""
        return tuple((a, b, w) for (a, b), w in sorted(self._weights.items()))

    def neighbors(self, qubit: int) -> tuple[int, ...]:
        """Qubits that share at least one CNOT with ``qubit``."""
        return tuple(sorted(self._adjacency[qubit]))

    def degree(self, qubit: int) -> int:
        """Number of distinct communication partners of ``qubit``."""
        return len(self._adjacency[qubit])

    def total_weight(self) -> int:
        """Total number of CNOT gates represented."""
        return sum(self._weights.values())

    # ------------------------------------------------------------ bipartiteness
    def is_bipartite(self) -> bool:
        """True when the graph admits a 2-colouring (ignoring isolated vertices)."""
        return self.bipartition() is not None

    def bipartition(self) -> tuple[set[int], set[int]] | None:
        """A 2-colouring as two vertex sets, or ``None`` if not bipartite.

        Isolated vertices are placed in the first set.  This is the structure
        the cut-type initialisation consumes: qubits in the same set receive
        the same cut type.
        """
        color: dict[int, int] = {}
        for start in range(self._num_qubits):
            if start in color:
                continue
            color[start] = 0
            queue = deque([start])
            while queue:
                node = queue.popleft()
                for neighbor in self._adjacency[node]:
                    if neighbor not in color:
                        color[neighbor] = 1 - color[node]
                        queue.append(neighbor)
                    elif color[neighbor] == color[node]:
                        return None
        side_a = {q for q, c in color.items() if c == 0}
        side_b = {q for q, c in color.items() if c == 1}
        return side_a, side_b

    # ------------------------------------------------------------------ export
    def to_networkx(self):
        """Export as a weighted :mod:`networkx` Graph (attribute ``weight``)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self._num_qubits))
        for (a, b), w in self._weights.items():
            graph.add_edge(a, b, weight=w)
        return graph

    def __repr__(self) -> str:
        return (
            f"CommunicationGraph(num_qubits={self._num_qubits}, "
            f"edges={self.num_edges}, total_weight={self.total_weight()})"
        )
