"""Dependency DAG over CNOT gates (``G_P`` in the paper, Fig. 6b).

Each node is a CNOT gate; an edge ``u -> v`` means ``v`` acts on a qubit that
``u`` acted on most recently before ``v`` in program order, so ``v`` may only
be scheduled after ``u``.  The DAG exposes the quantities the Ecmas algorithms
consume:

* ASAP / ALAP levels (``Low``/``High`` in Algorithm *Para-Finding*),
* the critical-path length ``α`` (circuit depth),
* per-gate *criticality* (length of the longest chain of descendants) and
  *descendant count*, which drive the gate priority of Algorithm 1,
* a :class:`DagFrontier` view that schedulers consume destructively.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator

from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.errors import CircuitError


class GateDAG:
    """Immutable dependency DAG over the CNOT gates of a circuit."""

    def __init__(self, num_qubits: int, gates: Iterable[Gate]):
        self._num_qubits = num_qubits
        self._gates: list[Gate] = list(gates)
        for node, gate in enumerate(self._gates):
            if not gate.is_cnot:
                raise CircuitError(f"GateDAG only accepts CNOT gates, got {gate} at position {node}")
        # Flat (control, target) pairs: the scheduler inner loops read operands
        # every cycle, and the Gate property chain is measurably more expensive
        # than one list index.
        self._operands: list[tuple[int, int]] = [
            (gate.qubits[0], gate.qubits[1]) for gate in self._gates
        ]
        self._succ: list[list[int]] = [[] for _ in self._gates]
        self._pred: list[list[int]] = [[] for _ in self._gates]
        self._build_edges()
        self._asap = self._compute_asap()
        self._alap = self._compute_alap()
        self._criticality = self._compute_criticality()
        self._descendant_count = self._compute_descendant_counts()

    # ----------------------------------------------------------- construction
    @classmethod
    def from_circuit(cls, circuit: Circuit) -> "GateDAG":
        """Build the DAG from the CNOT gates of ``circuit``."""
        return cls(circuit.num_qubits, circuit.cnot_gates())

    def _build_edges(self) -> None:
        last_on_qubit: dict[int, int] = {}
        for node, gate in enumerate(self._gates):
            parents = {last_on_qubit[q] for q in gate.qubits if q in last_on_qubit}
            for parent in sorted(parents):
                self._succ[parent].append(node)
                self._pred[node].append(parent)
            for q in gate.qubits:
                last_on_qubit[q] = node

    # ---------------------------------------------------------------- queries
    @property
    def num_qubits(self) -> int:
        """Number of logical qubits of the underlying circuit."""
        return self._num_qubits

    @property
    def num_gates(self) -> int:
        """Number of CNOT gates (DAG nodes)."""
        return len(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def gate(self, node: int) -> Gate:
        """The gate stored at DAG node ``node``."""
        return self._gates[node]

    @property
    def gates(self) -> tuple[Gate, ...]:
        """All gates, indexed by node id."""
        return tuple(self._gates)

    def operands(self, node: int) -> tuple[int, int]:
        """The (control, target) qubit pair of the CNOT at ``node``."""
        return self._operands[node]

    @property
    def operand_pairs(self) -> list[tuple[int, int]]:
        """All (control, target) pairs, indexed by node id (do not mutate)."""
        return self._operands

    def successors(self, node: int) -> tuple[int, ...]:
        """Direct successors (children) of ``node``."""
        return tuple(self._succ[node])

    def predecessors(self, node: int) -> tuple[int, ...]:
        """Direct predecessors (parents) of ``node``."""
        return tuple(self._pred[node])

    def sources(self) -> tuple[int, ...]:
        """Nodes with no predecessors (the initial front gates)."""
        return tuple(n for n in range(len(self._gates)) if not self._pred[n])

    def sinks(self) -> tuple[int, ...]:
        """Nodes with no successors."""
        return tuple(n for n in range(len(self._gates)) if not self._succ[n])

    # ------------------------------------------------------------------ levels
    def _compute_asap(self) -> list[int]:
        asap = [0] * len(self._gates)
        for node in self.topological_order():
            preds = self._pred[node]
            asap[node] = 1 + max((asap[p] for p in preds), default=0)
        return asap

    def _compute_alap(self) -> list[int]:
        depth = self.depth()
        alap = [depth] * len(self._gates)
        for node in reversed(list(self.topological_order())):
            succs = self._succ[node]
            alap[node] = min((alap[s] - 1 for s in succs), default=depth)
        return alap

    def _compute_criticality(self) -> list[int]:
        """Longest chain starting at each node, inclusive (>= 1)."""
        crit = [1] * len(self._gates)
        for node in reversed(list(self.topological_order())):
            for succ in self._succ[node]:
                crit[node] = max(crit[node], 1 + crit[succ])
        return crit

    def _compute_descendant_counts(self) -> list[int]:
        """Number of (not necessarily distinct-path) descendants of each node.

        Exact descendant sets can be quadratic in memory for large circuits;
        we compute exact counts with bitsets only for moderately sized DAGs
        and fall back to a reachable-count approximation via reverse BFS
        otherwise.  The priority function only needs a consistent ordering.
        """
        n = len(self._gates)
        if n == 0:
            return []
        if n <= 4096:
            masks = [0] * n
            for node in reversed(list(self.topological_order())):
                mask = 0
                for succ in self._succ[node]:
                    mask |= masks[succ] | (1 << succ)
                masks[node] = mask
            return [mask.bit_count() for mask in masks]
        # Approximation: sum of successor counts along the longest chain.
        counts = [0] * n
        for node in reversed(list(self.topological_order())):
            counts[node] = sum(1 + counts[s] for s in self._succ[node])
        return counts

    def asap_level(self, node: int) -> int:
        """Earliest layer (1-based) in which ``node`` may execute."""
        return self._asap[node]

    def alap_level(self, node: int) -> int:
        """Latest layer (1-based) in which ``node`` may execute without extending depth."""
        return self._alap[node]

    def criticality(self, node: int) -> int:
        """Length of the longest dependency chain rooted at ``node`` (inclusive)."""
        return self._criticality[node]

    def descendant_count(self, node: int) -> int:
        """Number of gates that transitively depend on ``node``."""
        return self._descendant_count[node]

    def depth(self) -> int:
        """Critical-path length ``α`` of the CNOT circuit."""
        return max(self._asap, default=0) if self._gates else 0

    def slack(self, node: int) -> int:
        """ALAP minus ASAP level; zero for critical gates."""
        return self._alap[node] - self._asap[node]

    # -------------------------------------------------------------- traversal
    def topological_order(self) -> Iterator[int]:
        """Yield node ids in a topological order (Kahn's algorithm)."""
        indegree = [len(p) for p in self._pred]
        queue = deque(n for n in range(len(self._gates)) if indegree[n] == 0)
        emitted = 0
        while queue:
            node = queue.popleft()
            emitted += 1
            yield node
            for succ in self._succ[node]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    queue.append(succ)
        if emitted != len(self._gates):  # pragma: no cover - construction makes cycles impossible
            raise CircuitError("dependency graph contains a cycle")

    def asap_layers(self) -> list[list[int]]:
        """Nodes grouped by ASAP level; layer ``i`` is list index ``i`` (0-based)."""
        layers: list[list[int]] = [[] for _ in range(self.depth())]
        for node, level in enumerate(self._asap):
            layers[level - 1].append(node)
        return layers

    def frontier(self) -> "DagFrontier":
        """A fresh mutable scheduling view over this DAG."""
        return DagFrontier(self)

    def to_networkx(self):
        """Export as a :mod:`networkx` DiGraph (node attribute ``gate``)."""
        import networkx as nx

        graph = nx.DiGraph()
        for node, gate in enumerate(self._gates):
            graph.add_node(node, gate=gate)
        for node, succs in enumerate(self._succ):
            for succ in succs:
                graph.add_edge(node, succ)
        return graph


class DagFrontier:
    """Mutable view of a :class:`GateDAG` used by schedulers.

    Tracks which gates have completed and exposes the *ready set* (gates whose
    predecessors have all completed).  Completing gates is the only mutation.
    """

    def __init__(self, dag: GateDAG):
        self._dag = dag
        self._remaining_preds = [len(dag.predecessors(n)) for n in range(len(dag))]
        self._completed = [False] * len(dag)
        self._ready: set[int] = {n for n, count in enumerate(self._remaining_preds) if count == 0}
        self._num_completed = 0

    @property
    def dag(self) -> GateDAG:
        """The underlying immutable DAG."""
        return self._dag

    @property
    def num_remaining(self) -> int:
        """Number of gates not yet completed."""
        return len(self._dag) - self._num_completed

    def is_done(self) -> bool:
        """True when every gate has completed."""
        return self._num_completed == len(self._dag)

    def ready_nodes(self) -> tuple[int, ...]:
        """Currently schedulable nodes, in ascending node id order."""
        return tuple(sorted(self._ready))

    def is_ready(self, node: int) -> bool:
        """True if ``node`` is ready (all predecessors completed, itself not)."""
        return node in self._ready

    def is_completed(self, node: int) -> bool:
        """True if ``node`` has been completed."""
        return self._completed[node]

    def complete(self, node: int) -> tuple[int, ...]:
        """Mark ``node`` as executed; returns nodes that became ready."""
        if self._completed[node]:
            raise CircuitError(f"gate node {node} completed twice")
        if node not in self._ready:
            raise CircuitError(f"gate node {node} completed before its predecessors")
        self._ready.discard(node)
        self._completed[node] = True
        self._num_completed += 1
        newly_ready: list[int] = []
        for succ in self._dag.successors(node):
            self._remaining_preds[succ] -= 1
            if self._remaining_preds[succ] == 0:
                self._ready.add(succ)
                newly_ready.append(succ)
        return tuple(newly_ready)

    def remaining_nodes(self) -> tuple[int, ...]:
        """All nodes not yet completed."""
        return tuple(n for n in range(len(self._dag)) if not self._completed[n])
