"""OpenQASM 2.0 front-end.

The paper compiles benchmark circuits exported from Qiskit / QASMBench; this
package provides the equivalent front-end from scratch:

* :func:`loads` / :func:`load` — parse OpenQASM 2.0 text / files into a
  :class:`~repro.circuits.circuit.Circuit` flattened to CNOT + single-qubit
  gates,
* :func:`dumps` / :func:`dump` — serialise circuits back to OpenQASM 2.0,
* :func:`parse_program` — access to the raw AST for tooling.
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit
from repro.circuits.qasm.expander import expand_program
from repro.circuits.qasm.parser import parse_program
from repro.circuits.qasm.writer import dump, dumps

__all__ = ["loads", "load", "dumps", "dump", "parse_program"]


def loads(source: str, include_conditional: bool = True, name: str = "qasm") -> Circuit:
    """Parse OpenQASM 2.0 ``source`` text into a flattened circuit."""
    return expand_program(parse_program(source), include_conditional=include_conditional, name=name)


def load(path, include_conditional: bool = True, name: str | None = None) -> Circuit:
    """Parse the OpenQASM 2.0 file at ``path`` into a flattened circuit."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    circuit_name = name if name is not None else str(path)
    return loads(source, include_conditional=include_conditional, name=circuit_name)
