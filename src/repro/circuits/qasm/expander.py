"""Lowering from the OpenQASM AST to a :class:`~repro.circuits.circuit.Circuit`.

Responsibilities:

* allocate a flat logical-qubit index space across all ``qreg`` declarations,
* broadcast whole-register operands (``h q;`` applies ``h`` to every element),
* expand user ``gate`` definitions recursively with parameter binding,
* decompose the standard multi-qubit library gates (``cz``, ``swap``, ``ccx``,
  controlled rotations, ...) into CNOT + single-qubit gates, which is the
  gate set the surface-code transformation operates on,
* apply a policy for classically conditioned gates (the scheduler treats them
  like ordinary gates by default, matching how the paper counts CNOTs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.circuit import Circuit
from repro.circuits.gate import Gate
from repro.circuits.qasm import ast
from repro.errors import QasmError

#: Gates taken as primitive by the expander (single-qubit set + CNOT).
PRIMITIVE_GATES = frozenset(
    {
        "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg", "sx", "sxdg",
        "rx", "ry", "rz", "p", "u1", "u2", "u3", "u", "cx",
        "measure", "reset", "barrier",
    }
)


@dataclass
class _Registers:
    """Flat index allocation for quantum registers."""

    offsets: dict[str, int]
    sizes: dict[str, int]
    total: int

    def resolve(self, ref: ast.QubitRef) -> list[int]:
        if ref.register not in self.offsets:
            raise QasmError(f"unknown quantum register {ref.register!r}")
        offset = self.offsets[ref.register]
        size = self.sizes[ref.register]
        if ref.index is None:
            return [offset + i for i in range(size)]
        if not 0 <= ref.index < size:
            raise QasmError(f"index {ref.index} out of range for register {ref.register!r}[{size}]")
        return [offset + ref.index]


class QasmExpander:
    """Expands a parsed program into a flat CNOT + single-qubit circuit."""

    def __init__(self, program: ast.Program, include_conditional: bool = True, name: str = "qasm"):
        self._program = program
        self._include_conditional = include_conditional
        self._name = name
        self._definitions = program.gate_definitions()
        self._registers = self._allocate_registers()
        self._circuit = Circuit(max(self._registers.total, 1), name=name)

    def _allocate_registers(self) -> _Registers:
        offsets: dict[str, int] = {}
        sizes: dict[str, int] = {}
        total = 0
        for decl in self._program.quantum_registers():
            if decl.name in offsets:
                raise QasmError(f"quantum register {decl.name!r} declared twice")
            offsets[decl.name] = total
            sizes[decl.name] = decl.size
            total += decl.size
        return _Registers(offsets, sizes, total)

    # -------------------------------------------------------------------- run
    def expand(self) -> Circuit:
        """Produce the flattened circuit."""
        for statement in self._program.statements:
            self._expand_statement(statement)
        return self._circuit

    def _expand_statement(self, statement: ast.Statement) -> None:
        if isinstance(statement, (ast.Include, ast.RegisterDecl, ast.GateDefinition, ast.OpaqueDeclaration)):
            return
        if isinstance(statement, ast.Measure):
            for qubit in self._registers.resolve(statement.qubit):
                self._circuit.append(Gate("measure", (qubit,)))
            return
        if isinstance(statement, ast.Reset):
            for qubit in self._registers.resolve(statement.qubit):
                self._circuit.append(Gate("reset", (qubit,)))
            return
        if isinstance(statement, ast.Barrier):
            return
        if isinstance(statement, ast.Conditional):
            if self._include_conditional:
                self._expand_statement(statement.body)
            return
        if isinstance(statement, ast.GateCall):
            self._expand_call(statement)
            return
        raise QasmError(f"unsupported statement {type(statement).__name__}")

    # --------------------------------------------------------------- gate calls
    def _expand_call(self, call: ast.GateCall) -> None:
        params = [expr.evaluate({}) for expr in call.params]
        operand_lists = [self._registers.resolve(ref) for ref in call.qubits]
        for operands in _broadcast(operand_lists, call.name, call.line):
            self._emit(call.name, params, list(operands))

    def _emit(self, name: str, params: list[float], qubits: list[int]) -> None:
        if len(set(qubits)) != len(qubits):
            # Broadcasting or a malformed file can produce a self-targeting
            # two-qubit gate; such a gate is the identity on the CNOT DAG and
            # is dropped rather than crashing the whole benchmark.
            return
        if name in self._definitions:
            self._emit_definition(self._definitions[name], params, qubits)
            return
        if name in PRIMITIVE_GATES:
            self._circuit.append(Gate(name, tuple(qubits), tuple(params)))
            return
        decomposition = _STD_DECOMPOSITIONS.get(name)
        if decomposition is None:
            # Unknown opaque gate: treat any two-qubit unknown as one CNOT of
            # communication, and ignore unknown single-qubit gates.
            if len(qubits) == 2:
                self._circuit.append(Gate("cx", tuple(qubits)))
                return
            if len(qubits) == 1:
                self._circuit.append(Gate("u", tuple(qubits), tuple(params)))
                return
            raise QasmError(f"unknown gate {name!r} on {len(qubits)} qubits")
        for sub_name, sub_params, sub_qubit_indices in decomposition(params):
            self._emit(sub_name, sub_params, [qubits[i] for i in sub_qubit_indices])

    def _emit_definition(self, definition: ast.GateDefinition, params: list[float], qubits: list[int]) -> None:
        if len(params) != len(definition.params):
            raise QasmError(
                f"gate {definition.name!r} expects {len(definition.params)} parameters, got {len(params)}"
            )
        if len(qubits) != len(definition.qubits):
            raise QasmError(
                f"gate {definition.name!r} expects {len(definition.qubits)} qubits, got {len(qubits)}"
            )
        bindings = dict(zip(definition.params, params))
        qubit_map = dict(zip(definition.qubits, qubits))
        for call in definition.body:
            sub_params = [expr.evaluate(bindings) for expr in call.params]
            sub_qubits = []
            for ref in call.qubits:
                if ref.register not in qubit_map:
                    raise QasmError(f"gate body of {definition.name!r} references unknown qubit {ref.register!r}")
                sub_qubits.append(qubit_map[ref.register])
            self._emit(call.name, sub_params, sub_qubits)


def _broadcast(operand_lists: list[list[int]], name: str, line: int) -> list[tuple[int, ...]]:
    """OpenQASM register broadcasting: whole registers are zipped element-wise."""
    lengths = {len(ops) for ops in operand_lists if len(ops) > 1}
    if len(lengths) > 1:
        raise QasmError(f"mismatched register sizes in broadcast of {name!r}", line=line)
    count = lengths.pop() if lengths else 1
    broadcasted = []
    for i in range(count):
        broadcasted.append(tuple(ops[i] if len(ops) > 1 else ops[0] for ops in operand_lists))
    return broadcasted


# ------------------------------------------------------------------ decompositions
def _cz(params: list[float]):
    return [("h", [], [1]), ("cx", [], [0, 1]), ("h", [], [1])]


def _cy(params: list[float]):
    return [("sdg", [], [1]), ("cx", [], [0, 1]), ("s", [], [1])]


def _ch(params: list[float]):
    return [
        ("s", [], [1]), ("h", [], [1]), ("t", [], [1]),
        ("cx", [], [0, 1]),
        ("tdg", [], [1]), ("h", [], [1]), ("sdg", [], [1]),
    ]


def _swap(params: list[float]):
    return [("cx", [], [0, 1]), ("cx", [], [1, 0]), ("cx", [], [0, 1])]


def _iswap(params: list[float]):
    return [("s", [], [0]), ("s", [], [1]), ("h", [], [0])] + _swap(params) + [("h", [], [1])]


def _crz(params: list[float]):
    theta = params[0] if params else 0.0
    return [
        ("rz", [theta / 2], [1]),
        ("cx", [], [0, 1]),
        ("rz", [-theta / 2], [1]),
        ("cx", [], [0, 1]),
    ]


def _cry(params: list[float]):
    theta = params[0] if params else 0.0
    return [
        ("ry", [theta / 2], [1]),
        ("cx", [], [0, 1]),
        ("ry", [-theta / 2], [1]),
        ("cx", [], [0, 1]),
    ]


def _crx(params: list[float]):
    theta = params[0] if params else 0.0
    return [
        ("h", [], [1]),
        ("rz", [theta / 2], [1]),
        ("cx", [], [0, 1]),
        ("rz", [-theta / 2], [1]),
        ("cx", [], [0, 1]),
        ("h", [], [1]),
    ]


def _cu1(params: list[float]):
    lam = params[0] if params else 0.0
    return [
        ("u1", [lam / 2], [0]),
        ("cx", [], [0, 1]),
        ("u1", [-lam / 2], [1]),
        ("cx", [], [0, 1]),
        ("u1", [lam / 2], [1]),
    ]


def _cu3(params: list[float]):
    theta, phi, lam = (params + [0.0, 0.0, 0.0])[:3]
    return [
        ("u1", [(lam + phi) / 2], [0]),
        ("u1", [(lam - phi) / 2], [1]),
        ("cx", [], [0, 1]),
        ("u3", [-theta / 2, 0.0, -(phi + lam) / 2], [1]),
        ("cx", [], [0, 1]),
        ("u3", [theta / 2, phi, 0.0], [1]),
    ]


def _rzz(params: list[float]):
    theta = params[0] if params else 0.0
    return [("cx", [], [0, 1]), ("rz", [theta], [1]), ("cx", [], [0, 1])]


def _rxx(params: list[float]):
    theta = params[0] if params else 0.0
    return [
        ("h", [], [0]), ("h", [], [1]),
        ("cx", [], [0, 1]), ("rz", [theta], [1]), ("cx", [], [0, 1]),
        ("h", [], [0]), ("h", [], [1]),
    ]


def _ccx(params: list[float]):
    return [
        ("h", [], [2]),
        ("cx", [], [1, 2]), ("tdg", [], [2]),
        ("cx", [], [0, 2]), ("t", [], [2]),
        ("cx", [], [1, 2]), ("tdg", [], [2]),
        ("cx", [], [0, 2]), ("t", [], [1]), ("t", [], [2]),
        ("cx", [], [0, 1]), ("h", [], [2]),
        ("t", [], [0]), ("tdg", [], [1]),
        ("cx", [], [0, 1]),
    ]


def _cswap(params: list[float]):
    # Fredkin = CNOT sandwich around a Toffoli.
    return [("cx", [], [2, 1])] + [(n, p, [{0: 0, 1: 1, 2: 2}[q] for q in qs]) for n, p, qs in _ccx(params)] + [
        ("cx", [], [2, 1])
    ]


def _ccz(params: list[float]):
    return [("h", [], [2])] + _ccx(params) + [("h", [], [2])]


def _u2_alias(params: list[float]):
    phi, lam = (params + [0.0, 0.0])[:2]
    return [("u3", [math.pi / 2, phi, lam], [0])]


_STD_DECOMPOSITIONS = {
    "cz": _cz,
    "cy": _cy,
    "ch": _ch,
    "swap": _swap,
    "iswap": _iswap,
    "crz": _crz,
    "cry": _cry,
    "crx": _crx,
    "cu1": _cu1,
    "cp": _cu1,
    "cu3": _cu3,
    "cu": _cu3,
    "rzz": _rzz,
    "rxx": _rxx,
    "ccx": _ccx,
    "toffoli": _ccx,
    "ccz": _ccz,
    "cswap": _cswap,
    "fredkin": _cswap,
    "cnot": lambda params: [("cx", [], [0, 1])],
}


def expand_program(program: ast.Program, include_conditional: bool = True, name: str = "qasm") -> Circuit:
    """Expand a parsed program into a flat circuit."""
    return QasmExpander(program, include_conditional=include_conditional, name=name).expand()
