"""Recursive-descent parser for the OpenQASM 2.0 subset.

The grammar follows the OpenQASM 2.0 specification closely enough to parse
the benchmark suites the paper uses (Qiskit-exported circuits, QASMBench):

* header (``OPENQASM 2.0;``, ``include``),
* register declarations,
* ``gate`` definitions with parameters,
* gate applications with expression parameters and register broadcasting,
* ``measure``, ``reset``, ``barrier`` and ``if (creg == n)`` conditionals.
"""

from __future__ import annotations

from repro.circuits.qasm import ast
from repro.circuits.qasm.tokens import Token, TokenType, tokenize
from repro.errors import QasmError


class Parser:
    """Parses a token stream into an :class:`~repro.circuits.qasm.ast.Program`."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # ----------------------------------------------------------------- helpers
    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, token_type: TokenType, value: str | None = None) -> bool:
        token = self._peek()
        if token.type is not token_type:
            return False
        return value is None or token.value == value

    def _expect(self, token_type: TokenType, value: str | None = None) -> Token:
        token = self._peek()
        if not self._check(token_type, value):
            expected = value if value is not None else token_type.name
            raise QasmError(
                f"expected {expected!r} but found {token.value!r}", line=token.line, column=token.column
            )
        return self._advance()

    def _error(self, message: str) -> QasmError:
        token = self._peek()
        return QasmError(message, line=token.line, column=token.column)

    # ------------------------------------------------------------------- parse
    def parse(self) -> ast.Program:
        """Parse the whole token stream into a program."""
        program = ast.Program()
        if self._check(TokenType.KEYWORD, "OPENQASM"):
            self._advance()
            version = self._expect(TokenType.REAL).value
            self._expect(TokenType.SEMICOLON)
            program.version = version
        while not self._check(TokenType.EOF):
            program.statements.append(self._parse_statement())
        return program

    def _parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.type is TokenType.KEYWORD:
            if token.value == "include":
                return self._parse_include()
            if token.value in ("qreg", "creg"):
                return self._parse_register()
            if token.value == "gate":
                return self._parse_gate_definition()
            if token.value == "opaque":
                return self._parse_opaque()
            if token.value == "measure":
                return self._parse_measure()
            if token.value == "reset":
                return self._parse_reset()
            if token.value == "barrier":
                return self._parse_barrier()
            if token.value == "if":
                return self._parse_conditional()
        if token.type is TokenType.ID:
            return self._parse_gate_call()
        raise self._error(f"unexpected token {token.value!r}")

    def _parse_include(self) -> ast.Include:
        self._expect(TokenType.KEYWORD, "include")
        filename = self._expect(TokenType.STRING).value
        self._expect(TokenType.SEMICOLON)
        return ast.Include(filename)

    def _parse_register(self) -> ast.RegisterDecl:
        kind = self._advance().value
        name = self._expect(TokenType.ID).value
        self._expect(TokenType.LBRACKET)
        size_token = self._expect(TokenType.INT)
        self._expect(TokenType.RBRACKET)
        self._expect(TokenType.SEMICOLON)
        size = int(size_token.value)
        if size <= 0:
            raise QasmError(f"register {name!r} must have positive size", line=size_token.line)
        return ast.RegisterDecl(kind, name, size)

    def _parse_gate_definition(self) -> ast.GateDefinition:
        self._expect(TokenType.KEYWORD, "gate")
        name = self._expect(TokenType.ID).value
        params: list[str] = []
        if self._check(TokenType.LPAREN):
            self._advance()
            if not self._check(TokenType.RPAREN):
                params.append(self._expect(TokenType.ID).value)
                while self._check(TokenType.COMMA):
                    self._advance()
                    params.append(self._expect(TokenType.ID).value)
            self._expect(TokenType.RPAREN)
        qubits = [self._expect(TokenType.ID).value]
        while self._check(TokenType.COMMA):
            self._advance()
            qubits.append(self._expect(TokenType.ID).value)
        self._expect(TokenType.LBRACE)
        body: list[ast.GateCall] = []
        while not self._check(TokenType.RBRACE):
            if self._check(TokenType.KEYWORD, "barrier"):
                # Barriers inside gate bodies carry no scheduling meaning here.
                self._parse_barrier()
                continue
            statement = self._parse_gate_call()
            body.append(statement)
        self._expect(TokenType.RBRACE)
        return ast.GateDefinition(name, tuple(params), tuple(qubits), tuple(body))

    def _parse_opaque(self) -> ast.OpaqueDeclaration:
        self._expect(TokenType.KEYWORD, "opaque")
        name = self._expect(TokenType.ID).value
        params: list[str] = []
        if self._check(TokenType.LPAREN):
            self._advance()
            if not self._check(TokenType.RPAREN):
                params.append(self._expect(TokenType.ID).value)
                while self._check(TokenType.COMMA):
                    self._advance()
                    params.append(self._expect(TokenType.ID).value)
            self._expect(TokenType.RPAREN)
        qubits = [self._expect(TokenType.ID).value]
        while self._check(TokenType.COMMA):
            self._advance()
            qubits.append(self._expect(TokenType.ID).value)
        self._expect(TokenType.SEMICOLON)
        return ast.OpaqueDeclaration(name, tuple(params), tuple(qubits))

    def _parse_measure(self) -> ast.Measure:
        self._expect(TokenType.KEYWORD, "measure")
        qubit = self._parse_qubit_ref()
        self._expect(TokenType.ARROW)
        target = self._parse_qubit_ref()
        self._expect(TokenType.SEMICOLON)
        return ast.Measure(qubit, target)

    def _parse_reset(self) -> ast.Reset:
        self._expect(TokenType.KEYWORD, "reset")
        qubit = self._parse_qubit_ref()
        self._expect(TokenType.SEMICOLON)
        return ast.Reset(qubit)

    def _parse_barrier(self) -> ast.Barrier:
        self._expect(TokenType.KEYWORD, "barrier")
        qubits = [self._parse_qubit_ref()]
        while self._check(TokenType.COMMA):
            self._advance()
            qubits.append(self._parse_qubit_ref())
        self._expect(TokenType.SEMICOLON)
        return ast.Barrier(tuple(qubits))

    def _parse_conditional(self) -> ast.Conditional:
        self._expect(TokenType.KEYWORD, "if")
        self._expect(TokenType.LPAREN)
        register = self._expect(TokenType.ID).value
        self._expect(TokenType.EQUALS)
        value = int(self._expect(TokenType.INT).value)
        self._expect(TokenType.RPAREN)
        body = self._parse_statement()
        return ast.Conditional(register, value, body)

    def _parse_gate_call(self) -> ast.GateCall:
        name_token = self._expect(TokenType.ID)
        params: list[ast.Expr] = []
        if self._check(TokenType.LPAREN):
            self._advance()
            if not self._check(TokenType.RPAREN):
                params.append(self._parse_expression())
                while self._check(TokenType.COMMA):
                    self._advance()
                    params.append(self._parse_expression())
            self._expect(TokenType.RPAREN)
        qubits = [self._parse_qubit_ref()]
        while self._check(TokenType.COMMA):
            self._advance()
            qubits.append(self._parse_qubit_ref())
        self._expect(TokenType.SEMICOLON)
        return ast.GateCall(name_token.value.lower(), tuple(params), tuple(qubits), line=name_token.line)

    def _parse_qubit_ref(self) -> ast.QubitRef:
        name = self._expect(TokenType.ID).value
        index: int | None = None
        if self._check(TokenType.LBRACKET):
            self._advance()
            index = int(self._expect(TokenType.INT).value)
            self._expect(TokenType.RBRACKET)
        return ast.QubitRef(name, index)

    # -------------------------------------------------------------- expressions
    def _parse_expression(self) -> ast.Expr:
        return self._parse_additive()

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._check(TokenType.PLUS) or self._check(TokenType.MINUS):
            operator = self._advance().value
            right = self._parse_multiplicative()
            left = ast.BinaryOp(operator, left, right)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._check(TokenType.STAR) or self._check(TokenType.SLASH):
            operator = self._advance().value
            right = self._parse_unary()
            left = ast.BinaryOp(operator, left, right)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._check(TokenType.MINUS) or self._check(TokenType.PLUS):
            operator = self._advance().value
            return ast.UnaryOp(operator, self._parse_unary())
        return self._parse_power()

    def _parse_power(self) -> ast.Expr:
        base = self._parse_atom()
        if self._check(TokenType.CARET):
            self._advance()
            exponent = self._parse_unary()
            return ast.BinaryOp("^", base, exponent)
        return base

    def _parse_atom(self) -> ast.Expr:
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value == "pi":
            self._advance()
            return ast.Pi()
        if token.type in (TokenType.REAL, TokenType.INT):
            self._advance()
            return ast.Number(float(token.value))
        if token.type is TokenType.ID:
            self._advance()
            if self._check(TokenType.LPAREN):
                self._advance()
                argument = self._parse_expression()
                self._expect(TokenType.RPAREN)
                return ast.Call(token.value, argument)
            return ast.Identifier(token.value)
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self._parse_expression()
            self._expect(TokenType.RPAREN)
            return inner
        raise self._error(f"unexpected token {token.value!r} in expression")


def parse_program(source: str) -> ast.Program:
    """Parse OpenQASM 2.0 ``source`` text into an AST program."""
    return Parser(tokenize(source)).parse()
