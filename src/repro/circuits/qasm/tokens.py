"""Lexer for the OpenQASM 2.0 subset understood by the front-end.

The token stream is deliberately small: identifiers, numbers, strings, the
OpenQASM keywords, and punctuation.  Comments (``//``) and whitespace are
skipped.  Positions are tracked so parse errors point at the offending source
line.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import QasmError


class TokenType(enum.Enum):
    """Lexical categories of OpenQASM 2.0 tokens."""

    ID = "id"
    REAL = "real"
    INT = "int"
    STRING = "string"
    KEYWORD = "keyword"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LBRACE = "{"
    RBRACE = "}"
    SEMICOLON = ";"
    COMMA = ","
    ARROW = "->"
    EQUALS = "=="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    CARET = "^"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "OPENQASM", "include", "qreg", "creg", "gate", "opaque",
        "measure", "reset", "barrier", "if", "pi",
    }
)

_SINGLE_CHAR_TOKENS = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ";": TokenType.SEMICOLON,
    ",": TokenType.COMMA,
    "+": TokenType.PLUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "^": TokenType.CARET,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position."""

    type: TokenType
    value: str
    line: int
    column: int

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.type.name}({self.value!r})@{self.line}:{self.column}"


def tokenize(source: str) -> list[Token]:
    """Tokenize OpenQASM 2.0 ``source`` into a list ending with an EOF token."""
    tokens: list[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)

    def error(message: str) -> QasmError:
        return QasmError(message, line=line, column=column)

    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
            continue
        start_column = column
        if ch == "-":
            if i + 1 < n and source[i + 1] == ">":
                tokens.append(Token(TokenType.ARROW, "->", line, start_column))
                i += 2
                column += 2
                continue
            tokens.append(Token(TokenType.MINUS, "-", line, start_column))
            i += 1
            column += 1
            continue
        if ch == "=":
            if i + 1 < n and source[i + 1] == "=":
                tokens.append(Token(TokenType.EQUALS, "==", line, start_column))
                i += 2
                column += 2
                continue
            raise error("single '=' is not valid OpenQASM; did you mean '=='?")
        if ch in _SINGLE_CHAR_TOKENS:
            tokens.append(Token(_SINGLE_CHAR_TOKENS[ch], ch, line, start_column))
            i += 1
            column += 1
            continue
        if ch == '"':
            j = i + 1
            while j < n and source[j] != '"':
                if source[j] == "\n":
                    raise error("unterminated string literal")
                j += 1
            if j >= n:
                raise error("unterminated string literal")
            value = source[i + 1 : j]
            tokens.append(Token(TokenType.STRING, value, line, start_column))
            column += j - i + 1
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = source[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and source[j] in "+-":
                        j += 1
                else:
                    break
            value = source[i:j]
            token_type = TokenType.REAL if (seen_dot or seen_exp) else TokenType.INT
            tokens.append(Token(token_type, value, line, start_column))
            column += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            value = source[i:j]
            token_type = TokenType.KEYWORD if value in KEYWORDS else TokenType.ID
            tokens.append(Token(token_type, value, line, start_column))
            column += j - i
            i = j
            continue
        raise error(f"unexpected character {ch!r}")

    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens
