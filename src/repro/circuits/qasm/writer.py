"""OpenQASM 2.0 serialisation of :class:`~repro.circuits.circuit.Circuit`.

The writer emits a single quantum register ``q`` covering every logical qubit
and one statement per gate.  Round-tripping through :func:`loads`/:func:`dumps`
preserves the CNOT structure exactly, which is what the tests assert.
"""

from __future__ import annotations

from repro.circuits.circuit import Circuit

_HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def dumps(circuit: Circuit, register_name: str = "q", include_measurements: bool = False) -> str:
    """Serialise ``circuit`` as OpenQASM 2.0 text."""
    lines = [_HEADER.rstrip("\n")]
    lines.append(f"qreg {register_name}[{circuit.num_qubits}];")
    if include_measurements:
        lines.append(f"creg c[{circuit.num_qubits}];")
    for gate in circuit:
        if gate.name == "measure":
            if include_measurements:
                qubit = gate.qubits[0]
                lines.append(f"measure {register_name}[{qubit}] -> c[{qubit}];")
            continue
        if gate.name in ("barrier", "reset"):
            operands = ", ".join(f"{register_name}[{q}]" for q in gate.qubits)
            lines.append(f"{gate.name} {operands};")
            continue
        params = ""
        if gate.params:
            params = "(" + ", ".join(_format_param(p) for p in gate.params) + ")"
        operands = ", ".join(f"{register_name}[{q}]" for q in gate.qubits)
        lines.append(f"{gate.name}{params} {operands};")
    return "\n".join(lines) + "\n"


def dump(circuit: Circuit, path, **kwargs) -> None:
    """Write ``circuit`` as OpenQASM 2.0 to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(circuit, **kwargs))


def _format_param(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:.12g}"
