"""Abstract syntax tree for the OpenQASM 2.0 subset.

The parser produces a :class:`Program`; the expander lowers it onto a
:class:`~repro.circuits.circuit.Circuit`.  Expression nodes carry enough
structure to evaluate parameter arithmetic (``pi/2``, ``-3*pi/4`` ...) both at
the top level and inside gate bodies where formal parameters are bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import QasmError


# --------------------------------------------------------------------- expressions
class Expr:
    """Base class for parameter expressions."""

    def evaluate(self, bindings: dict[str, float]) -> float:
        """Evaluate to a float given formal-parameter ``bindings``."""
        raise NotImplementedError


@dataclass(frozen=True)
class Number(Expr):
    """A literal number."""

    value: float

    def evaluate(self, bindings: dict[str, float]) -> float:
        return self.value


@dataclass(frozen=True)
class Pi(Expr):
    """The constant ``pi``."""

    def evaluate(self, bindings: dict[str, float]) -> float:
        return math.pi


@dataclass(frozen=True)
class Identifier(Expr):
    """A reference to a gate formal parameter."""

    name: str

    def evaluate(self, bindings: dict[str, float]) -> float:
        if self.name not in bindings:
            raise QasmError(f"unbound parameter {self.name!r}")
        return bindings[self.name]


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary negation."""

    operator: str
    operand: Expr

    def evaluate(self, bindings: dict[str, float]) -> float:
        value = self.operand.evaluate(bindings)
        if self.operator == "-":
            return -value
        if self.operator == "+":
            return value
        raise QasmError(f"unknown unary operator {self.operator!r}")


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Binary arithmetic on parameter expressions."""

    operator: str
    left: Expr
    right: Expr

    def evaluate(self, bindings: dict[str, float]) -> float:
        lhs = self.left.evaluate(bindings)
        rhs = self.right.evaluate(bindings)
        if self.operator == "+":
            return lhs + rhs
        if self.operator == "-":
            return lhs - rhs
        if self.operator == "*":
            return lhs * rhs
        if self.operator == "/":
            if rhs == 0:
                raise QasmError("division by zero in parameter expression")
            return lhs / rhs
        if self.operator == "^":
            return lhs**rhs
        raise QasmError(f"unknown binary operator {self.operator!r}")


@dataclass(frozen=True)
class Call(Expr):
    """Call of a math builtin (sin, cos, tan, exp, ln, sqrt)."""

    func: str
    argument: Expr

    _FUNCS = {
        "sin": math.sin,
        "cos": math.cos,
        "tan": math.tan,
        "exp": math.exp,
        "ln": math.log,
        "sqrt": math.sqrt,
    }

    def evaluate(self, bindings: dict[str, float]) -> float:
        if self.func not in self._FUNCS:
            raise QasmError(f"unknown function {self.func!r}")
        return self._FUNCS[self.func](self.argument.evaluate(bindings))


# ----------------------------------------------------------------------- operands
@dataclass(frozen=True)
class QubitRef:
    """A reference to a whole register (``q``) or a single element (``q[3]``)."""

    register: str
    index: int | None = None

    def is_whole_register(self) -> bool:
        """True when no index was given (broadcast semantics)."""
        return self.index is None


# --------------------------------------------------------------------- statements
class Statement:
    """Base class for program statements."""


@dataclass(frozen=True)
class Include(Statement):
    """``include "qelib1.inc";`` — the standard library include."""

    filename: str


@dataclass(frozen=True)
class RegisterDecl(Statement):
    """``qreg q[5];`` or ``creg c[5];``."""

    kind: str  # "qreg" | "creg"
    name: str
    size: int


@dataclass(frozen=True)
class GateCall(Statement):
    """Application of a named gate to operands, e.g. ``cx q[0], q[1];``."""

    name: str
    params: tuple[Expr, ...]
    qubits: tuple[QubitRef, ...]
    line: int = 0


@dataclass(frozen=True)
class Measure(Statement):
    """``measure q[0] -> c[0];``."""

    qubit: QubitRef
    target: QubitRef


@dataclass(frozen=True)
class Reset(Statement):
    """``reset q[0];``."""

    qubit: QubitRef


@dataclass(frozen=True)
class Barrier(Statement):
    """``barrier q;``."""

    qubits: tuple[QubitRef, ...]


@dataclass(frozen=True)
class Conditional(Statement):
    """``if (c == 1) <gate call>;`` — retained so the expander can decide policy."""

    register: str
    value: int
    body: Statement


@dataclass(frozen=True)
class GateDefinition(Statement):
    """A ``gate`` block defining a composite gate in terms of others."""

    name: str
    params: tuple[str, ...]
    qubits: tuple[str, ...]
    body: tuple[GateCall, ...]


@dataclass(frozen=True)
class OpaqueDeclaration(Statement):
    """An ``opaque`` gate declaration (no body)."""

    name: str
    params: tuple[str, ...]
    qubits: tuple[str, ...]


@dataclass
class Program:
    """A parsed OpenQASM 2.0 program."""

    version: str = "2.0"
    statements: list[Statement] = field(default_factory=list)

    def quantum_registers(self) -> list[RegisterDecl]:
        """All ``qreg`` declarations in order."""
        return [s for s in self.statements if isinstance(s, RegisterDecl) and s.kind == "qreg"]

    def gate_definitions(self) -> dict[str, GateDefinition]:
        """Custom gate definitions by name."""
        return {s.name: s for s in self.statements if isinstance(s, GateDefinition)}
