"""Circuit intermediate representation and front-ends.

Public surface:

* :class:`Gate`, :class:`Circuit` — the gate-level IR,
* :class:`GateDAG`, :class:`DagFrontier` — the CNOT dependency DAG (``G_P``),
* :class:`CommunicationGraph` — the weighted qubit communication graph (``G_C``),
* :mod:`repro.circuits.qasm` — OpenQASM 2.0 parsing and serialisation,
* :mod:`repro.circuits.generators` — benchmark circuit generators.
"""

from repro.circuits.circuit import Circuit
from repro.circuits.comm_graph import CommunicationGraph
from repro.circuits.dag import DagFrontier, GateDAG
from repro.circuits.gate import Gate, GateKind, cnot, single

__all__ = [
    "Gate",
    "GateKind",
    "cnot",
    "single",
    "Circuit",
    "GateDAG",
    "DagFrontier",
    "CommunicationGraph",
]
