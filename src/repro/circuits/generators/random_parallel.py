"""QUEKO-style random circuits with a prescribed parallelism degree.

Figure 11 and Figure 12 of the paper evaluate on "50 random quantum circuits
with 49 qubits, 50 depth, and parallelism ranging from 1 to 21", generated in
the spirit of QUEKO (Tan & Cong, 2020): circuits constructed layer-by-layer so
that their optimal depth and per-layer parallelism are known by construction.

:func:`random_parallel_circuit` builds one such circuit; :func:`parallelism_group`
builds a test group of several circuits that share the same parameters, as the
paper averages cycle counts over each group.
"""

from __future__ import annotations

import random

from repro.circuits.circuit import Circuit
from repro.errors import CircuitError


def random_parallel_circuit(
    num_qubits: int,
    depth: int,
    parallelism: int,
    seed: int | None = None,
) -> Circuit:
    """Build a random circuit with ``depth`` layers of ``parallelism`` CNOTs each.

    Construction (QUEKO-style "backbone + filler"):

    * every layer contains exactly ``parallelism`` CNOT gates on disjoint qubit
      pairs, so the circuit parallelism degree is at most ``parallelism``;
    * one designated *backbone* qubit appears in a gate of every layer, so the
      dependency chain through the backbone forces the DAG depth to equal
      ``depth`` and prevents layers from being merged — which also pins the
      parallelism degree from below.

    Parameters
    ----------
    num_qubits:
        Number of logical qubits; must satisfy ``2 * parallelism <= num_qubits``.
    depth:
        Number of layers (the resulting CNOT DAG has exactly this depth).
    parallelism:
        Number of independent CNOT gates per layer.
    seed:
        Seed for the internal RNG; runs are reproducible for equal seeds.
    """
    if parallelism < 1:
        raise CircuitError("parallelism must be at least 1")
    if depth < 1:
        raise CircuitError("depth must be at least 1")
    if 2 * parallelism > num_qubits:
        raise CircuitError(
            f"{parallelism} parallel CNOTs need {2 * parallelism} qubits but only {num_qubits} are available"
        )
    rng = random.Random(seed)
    circuit = Circuit(num_qubits, name=f"random_p{parallelism}_d{depth}_n{num_qubits}")
    backbone = 0
    previous_backbone_partner: int | None = None
    for _ in range(depth):
        qubits = list(range(num_qubits))
        qubits.remove(backbone)
        rng.shuffle(qubits)
        partner = qubits.pop()
        # Avoid re-pairing the backbone with the same partner twice in a row so
        # consecutive backbone gates are genuine dependencies, not cancellations.
        if previous_backbone_partner is not None and partner == previous_backbone_partner and qubits:
            qubits.append(partner)
            rng.shuffle(qubits)
            partner = qubits.pop()
        previous_backbone_partner = partner
        if rng.random() < 0.5:
            circuit.cx(backbone, partner)
        else:
            circuit.cx(partner, backbone)
        for _ in range(parallelism - 1):
            a = qubits.pop()
            b = qubits.pop()
            if rng.random() < 0.5:
                a, b = b, a
            circuit.cx(a, b)
    return circuit


def parallelism_group(
    num_qubits: int,
    depth: int,
    parallelism: int,
    group_size: int,
    seed: int = 0,
) -> list[Circuit]:
    """A group of ``group_size`` circuits sharing (qubits, depth, parallelism).

    The paper uses groups of 50 circuits and reports the average cycle count
    per group; smaller groups are used in the benches to keep runtimes sane.
    """
    return [
        random_parallel_circuit(num_qubits, depth, parallelism, seed=seed * 10_000 + index)
        for index in range(group_size)
    ]
