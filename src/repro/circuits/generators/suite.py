"""The Table I benchmark suite registry.

Each entry pairs a circuit factory with the statistics the paper reports for
that benchmark (qubit count ``n``, CNOT depth ``α`` and CNOT count ``g``), so
the evaluation harness can print paper-vs-measured comparisons.  Because the
circuits are synthesised rather than read from the original QASMBench /
Qiskit files, the measured ``α``/``g`` generally differ from the paper's —
see DESIGN.md (Substitutions) and EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.circuits.circuit import Circuit
from repro.circuits.generators import standard
from repro.errors import CircuitError


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table I row: a circuit factory plus the paper-reported statistics."""

    name: str
    factory: Callable[[], Circuit]
    paper_n: int
    paper_alpha: int
    paper_g: int
    #: Paper-reported cycle counts, keyed by method column of Table I
    #: ("autobraid", "ecmas_dd_min", "ecmas_dd_resu", "edpci_min", "edpci_4x",
    #:  "ecmas_ls_min", "ecmas_ls_4x").  ``None`` where the paper has no value.
    paper_cycles: dict[str, int] | None = None
    #: Large circuits (tens of thousands of gates) are excluded from the
    #: default benchmark sweeps to keep wall-clock time reasonable.
    large: bool = False

    def build(self) -> Circuit:
        """Instantiate the benchmark circuit."""
        circuit = self.factory()
        if circuit.num_qubits != self.paper_n:
            raise CircuitError(
                f"benchmark {self.name!r} built {circuit.num_qubits} qubits, expected {self.paper_n}"
            )
        return circuit


def _bv_secret(bits: int, total_data: int) -> int:
    """A secret string with ``bits`` ones spread across ``total_data`` positions."""
    secret = 0
    for i in range(bits):
        secret |= 1 << (i * max(1, total_data // bits) % total_data)
    return secret


_TABLE1_CYCLES: dict[str, dict[str, int]] = {
    "dnn_n8": {"autobraid": 147, "ecmas_dd_min": 48, "ecmas_dd_resu": 48,
               "edpci_min": 48, "edpci_4x": 53, "ecmas_ls_min": 48, "ecmas_ls_4x": 48},
    "grover_n9": {"autobraid": 330, "ecmas_dd_min": 166, "ecmas_dd_resu": 140,
                  "edpci_min": 110, "edpci_4x": 110, "ecmas_ls_min": 110, "ecmas_ls_4x": 110},
    "qpe_n9": {"autobraid": 126, "ecmas_dd_min": 70, "ecmas_dd_resu": 54,
               "edpci_min": 42, "edpci_4x": 42, "ecmas_ls_min": 42, "ecmas_ls_4x": 42},
    "bv_n10": {"autobraid": 15, "ecmas_dd_min": 5, "ecmas_dd_resu": 5,
               "edpci_min": 5, "edpci_4x": 5, "ecmas_ls_min": 5, "ecmas_ls_4x": 5},
    "qft_n10": {"autobraid": 279, "ecmas_dd_min": 165, "ecmas_dd_resu": 96,
                "edpci_min": 93, "edpci_4x": 93, "ecmas_ls_min": 93, "ecmas_ls_4x": 93},
    "adder_n10": {"autobraid": 165, "ecmas_dd_min": 78, "ecmas_dd_resu": 82,
                  "edpci_min": 55, "edpci_4x": 56, "ecmas_ls_min": 55, "ecmas_ls_4x": 55},
    "ising_n10": {"autobraid": 60, "ecmas_dd_min": 20, "ecmas_dd_resu": 20,
                  "edpci_min": 20, "edpci_4x": 20, "ecmas_ls_min": 24, "ecmas_ls_4x": 20},
    "sat_n11": {"autobraid": 612, "ecmas_dd_min": 336, "ecmas_dd_resu": 339,
                "edpci_min": 204, "edpci_4x": 204, "ecmas_ls_min": 204, "ecmas_ls_4x": 204},
    "square_root_n11": {"autobraid": 663, "ecmas_dd_min": 379, "ecmas_dd_resu": 389,
                        "edpci_min": 221, "edpci_4x": 225, "ecmas_ls_min": 221, "ecmas_ls_4x": 221},
    "multiplier_n15": {"autobraid": 399, "ecmas_dd_min": 232, "ecmas_dd_resu": 244,
                       "edpci_min": 133, "edpci_4x": 134, "ecmas_ls_min": 133, "ecmas_ls_4x": 133},
    "qf21_n15": {"autobraid": 336, "ecmas_dd_min": 197, "ecmas_dd_resu": 130,
                 "edpci_min": 112, "edpci_4x": 112, "ecmas_ls_min": 112, "ecmas_ls_4x": 112},
    "dnn_n16": {"autobraid": 198, "ecmas_dd_min": 71, "ecmas_dd_resu": 48,
                "edpci_min": 79, "edpci_4x": 53, "ecmas_ls_min": 68, "ecmas_ls_4x": 52},
    "square_root_n18": {"autobraid": 1932, "ecmas_dd_min": 1047, "ecmas_dd_resu": 1133,
                        "edpci_min": 644, "edpci_4x": 645, "ecmas_ls_min": 644, "ecmas_ls_4x": 644},
    "ghz_state_n23": {"autobraid": 66, "ecmas_dd_min": 22, "ecmas_dd_resu": 22,
                      "edpci_min": 22, "edpci_4x": 22, "ecmas_ls_min": 22, "ecmas_ls_4x": 22},
    "multiplier_n25": {"autobraid": 1143, "ecmas_dd_min": 659, "ecmas_dd_resu": 717,
                       "edpci_min": 383, "edpci_4x": 385, "ecmas_ls_min": 381, "ecmas_ls_4x": 381},
    "swap_test_n25": {"autobraid": 201, "ecmas_dd_min": 89, "ecmas_dd_resu": 99,
                      "edpci_min": 67, "edpci_4x": 65, "ecmas_ls_min": 63, "ecmas_ls_4x": 63},
    "wstate_n27": {"autobraid": 84, "ecmas_dd_min": 28, "ecmas_dd_resu": 28,
                   "edpci_min": 28, "edpci_4x": 28, "ecmas_ls_min": 28, "ecmas_ls_4x": 28},
    "bv_n50": {"autobraid": 81, "ecmas_dd_min": 27, "ecmas_dd_resu": 27,
               "edpci_min": 27, "edpci_4x": 27, "ecmas_ls_min": 27, "ecmas_ls_4x": 27},
    "qft_n50": {"autobraid": 7089, "ecmas_dd_min": 4633, "ecmas_dd_resu": 2366,
                "edpci_min": 2363, "edpci_4x": 2363, "ecmas_ls_min": 2363, "ecmas_ls_4x": 2363},
    "ising_n50": {"autobraid": 15, "ecmas_dd_min": 10, "ecmas_dd_resu": 4,
                  "edpci_min": 6, "edpci_4x": 6, "ecmas_ls_min": 9, "ecmas_ls_4x": 7},
    "quantum_walk_n11": {"autobraid": 42312, "ecmas_dd_min": 20188, "ecmas_dd_resu": 19669,
                         "edpci_min": 14104, "edpci_4x": 14104, "ecmas_ls_min": 14104, "ecmas_ls_4x": 14104},
    "shor_n12": {"autobraid": 40248, "ecmas_dd_min": 22978, "ecmas_dd_resu": 20315,
                 "edpci_min": 13412, "edpci_4x": 13414, "ecmas_ls_min": 13414, "ecmas_ls_4x": 13412},
}


def _suite() -> list[BenchmarkSpec]:
    return [
        BenchmarkSpec("dnn_n8", lambda: standard.dnn(8, layers=12), 8, 48, 192,
                      _TABLE1_CYCLES["dnn_n8"]),
        BenchmarkSpec("grover_n9", lambda: standard.grover(9, iterations=4), 9, 110, 132,
                      _TABLE1_CYCLES["grover_n9"]),
        BenchmarkSpec("qpe_n9", lambda: standard.qpe(9), 9, 42, 43,
                      _TABLE1_CYCLES["qpe_n9"]),
        BenchmarkSpec("bv_n10", lambda: standard.bernstein_vazirani(10, secret=_bv_secret(5, 9)), 10, 5, 5,
                      _TABLE1_CYCLES["bv_n10"]),
        BenchmarkSpec("qft_n10", lambda: standard.qft(10, with_swaps=True), 10, 93, 105,
                      _TABLE1_CYCLES["qft_n10"]),
        BenchmarkSpec("adder_n10", lambda: standard.cuccaro_adder(10), 10, 55, 65,
                      _TABLE1_CYCLES["adder_n10"]),
        BenchmarkSpec("ising_n10", lambda: standard.ising(10, layers=5), 10, 20, 90,
                      _TABLE1_CYCLES["ising_n10"]),
        BenchmarkSpec("sat_n11", lambda: standard.sat(11, num_clauses=19), 11, 204, 252,
                      _TABLE1_CYCLES["sat_n11"]),
        BenchmarkSpec("square_root_n11", lambda: standard.square_root(11, iterations=8), 11, 221, 294,
                      _TABLE1_CYCLES["square_root_n11"]),
        BenchmarkSpec("multiplier_n15", lambda: standard.multiplier(15), 15, 133, 222,
                      _TABLE1_CYCLES["multiplier_n15"]),
        BenchmarkSpec("qf21_n15", lambda: standard.qf21(15), 15, 112, 115,
                      _TABLE1_CYCLES["qf21_n15"]),
        BenchmarkSpec("dnn_n16", lambda: standard.dnn(16, layers=6), 16, 48, 384,
                      _TABLE1_CYCLES["dnn_n16"]),
        BenchmarkSpec("square_root_n18", lambda: standard.square_root(18, iterations=13), 18, 644, 898,
                      _TABLE1_CYCLES["square_root_n18"]),
        BenchmarkSpec("ghz_state_n23", lambda: standard.ghz_state(23), 23, 22, 22,
                      _TABLE1_CYCLES["ghz_state_n23"]),
        BenchmarkSpec("multiplier_n25", lambda: standard.multiplier(25), 25, 381, 670,
                      _TABLE1_CYCLES["multiplier_n25"]),
        BenchmarkSpec("swap_test_n25", lambda: standard.swap_test(25), 25, 63, 96,
                      _TABLE1_CYCLES["swap_test_n25"]),
        BenchmarkSpec("wstate_n27", lambda: standard.w_state(27), 27, 28, 52,
                      _TABLE1_CYCLES["wstate_n27"]),
        BenchmarkSpec("bv_n50", lambda: standard.bernstein_vazirani(50, secret=_bv_secret(27, 49)), 50, 27, 27,
                      _TABLE1_CYCLES["bv_n50"]),
        BenchmarkSpec("qft_n50", lambda: standard.qft(50), 50, 2363, 2435,
                      _TABLE1_CYCLES["qft_n50"], large=True),
        BenchmarkSpec("ising_n50", lambda: standard.ising(50, layers=1), 50, 4, 98,
                      _TABLE1_CYCLES["ising_n50"]),
        BenchmarkSpec("quantum_walk_n11", lambda: standard.quantum_walk(11, steps=130), 11, 14104, 14372,
                      _TABLE1_CYCLES["quantum_walk_n11"], large=True),
        BenchmarkSpec("shor_n12", lambda: standard.shor(12, rounds=435), 12, 13412, 13838,
                      _TABLE1_CYCLES["shor_n12"], large=True),
    ]


#: The Table I suite, in the paper's row order.
TABLE1_SUITE: tuple[BenchmarkSpec, ...] = tuple(_suite())

#: Subset used by the sensitivity-study tables (Tables II-V use 11 circuits).
SENSITIVITY_SUITE_NAMES: tuple[str, ...] = (
    "dnn_n8", "grover_n9", "qpe_n9", "ising_n10", "adder_n10", "qft_n10",
    "multiply_n13", "square_root_n18", "ghz_state_n23", "swap_test_n25", "ising_n50",
)


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark by name (also resolves ``multiply_n13``)."""
    if name == "multiply_n13":
        return BenchmarkSpec("multiply_n13", lambda: standard.multiply(13), 13, 23, 40)
    for spec in TABLE1_SUITE:
        if spec.name == name:
            return spec
    raise CircuitError(f"unknown benchmark {name!r}")


def sensitivity_suite() -> list[BenchmarkSpec]:
    """The 11-circuit suite used by Tables II-V."""
    return [get_benchmark(name) for name in SENSITIVITY_SUITE_NAMES]


def default_suite(include_large: bool = False) -> list[BenchmarkSpec]:
    """The Table I suite, optionally excluding the very large circuits."""
    return [spec for spec in TABLE1_SUITE if include_large or not spec.large]
