"""Benchmark circuit generators.

* :mod:`repro.circuits.generators.standard` — the named benchmark families
  (GHZ, QFT, adders, Ising, DNN ansatz, Grover, ...),
* :mod:`repro.circuits.generators.random_parallel` — QUEKO-style random
  circuits with a prescribed parallelism degree (Figures 11 and 12),
* :mod:`repro.circuits.generators.suite` — the Table I registry mapping
  benchmark names to factories and to the paper-reported statistics.
"""

from repro.circuits.generators.random_parallel import parallelism_group, random_parallel_circuit
from repro.circuits.generators.suite import (
    TABLE1_SUITE,
    BenchmarkSpec,
    default_suite,
    get_benchmark,
    sensitivity_suite,
)
from repro.circuits.generators import standard

__all__ = [
    "standard",
    "random_parallel_circuit",
    "parallelism_group",
    "BenchmarkSpec",
    "TABLE1_SUITE",
    "default_suite",
    "sensitivity_suite",
    "get_benchmark",
]
