"""Generators for the standard benchmark circuit families used by the paper.

The paper evaluates on circuits drawn from IBM Qiskit, ScaffCC, QUEKO and
QASMBench (Table I).  Those exact benchmark files are not redistributable
here, so each family is synthesised programmatically with the same qubit
count and the same communication structure (see DESIGN.md, "Substitutions").
Every generator returns a :class:`~repro.circuits.circuit.Circuit` whose CNOT
sub-circuit drives the Ecmas pipeline.

All generators only emit gates from the primitive set (single-qubit + ``cx``),
so the resulting circuits round-trip through the QASM writer unchanged.
"""

from __future__ import annotations

import math

from repro.circuits.circuit import Circuit
from repro.errors import CircuitError


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CircuitError(message)


# ------------------------------------------------------------------ state prep
def ghz_state(num_qubits: int) -> Circuit:
    """GHZ state preparation: H on qubit 0 then a CNOT chain (``ghz_state_n23``)."""
    _require(num_qubits >= 2, "GHZ state needs at least two qubits")
    circuit = Circuit(num_qubits, name=f"ghz_state_n{num_qubits}")
    circuit.add_single("h", 0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit


def w_state(num_qubits: int) -> Circuit:
    """W-state preparation (``wstate_n27``): cascaded controlled rotations.

    Each controlled-RY is decomposed into two CNOTs plus single-qubit
    rotations, followed by a CNOT chain, which reproduces the linear
    communication structure of the QASMBench ``wstate`` benchmark.
    """
    _require(num_qubits >= 2, "W state needs at least two qubits")
    circuit = Circuit(num_qubits, name=f"wstate_n{num_qubits}")
    circuit.add_single("x", num_qubits - 1)
    for qubit in range(num_qubits - 1, 0, -1):
        theta = 2 * math.acos(math.sqrt(1.0 / (qubit + 1)))
        control, target = qubit, qubit - 1
        circuit.add_single("ry", target, theta / 2)
        circuit.cx(control, target)
        circuit.add_single("ry", target, -theta / 2)
        circuit.cx(control, target)
    return circuit


def bernstein_vazirani(num_qubits: int, secret: int | None = None) -> Circuit:
    """Bernstein–Vazirani with an all-ones secret by default (``BV_n10/n50``).

    Qubit ``num_qubits - 1`` is the oracle ancilla; a CNOT is applied from
    every data qubit whose secret bit is 1 to the ancilla.
    """
    _require(num_qubits >= 2, "Bernstein-Vazirani needs at least two qubits")
    data_qubits = num_qubits - 1
    if secret is None:
        secret = (1 << data_qubits) - 1
    circuit = Circuit(num_qubits, name=f"bv_n{num_qubits}")
    ancilla = num_qubits - 1
    circuit.add_single("x", ancilla)
    for qubit in range(num_qubits):
        circuit.add_single("h", qubit)
    for qubit in range(data_qubits):
        if (secret >> qubit) & 1:
            circuit.cx(qubit, ancilla)
    for qubit in range(data_qubits):
        circuit.add_single("h", qubit)
    return circuit


# ------------------------------------------------------------------- arithmetic
def qft(num_qubits: int, with_swaps: bool = False) -> Circuit:
    """Quantum Fourier transform (``QFT_10``, ``QFT_50``).

    Controlled-phase gates are decomposed into two CNOTs and three RZ
    rotations each, which matches the CNOT count Qiskit produces after
    unrolling to the {CX, RZ, H} basis.
    """
    _require(num_qubits >= 1, "QFT needs at least one qubit")
    circuit = Circuit(num_qubits, name=f"qft_n{num_qubits}")
    for target in range(num_qubits):
        circuit.add_single("h", target)
        for control in range(target + 1, num_qubits):
            angle = math.pi / (2 ** (control - target))
            _controlled_phase(circuit, control, target, angle)
    if with_swaps:
        for qubit in range(num_qubits // 2):
            _swap(circuit, qubit, num_qubits - 1 - qubit)
    return circuit


def _controlled_phase(circuit: Circuit, control: int, target: int, angle: float) -> None:
    circuit.add_single("rz", control, angle / 2)
    circuit.cx(control, target)
    circuit.add_single("rz", target, -angle / 2)
    circuit.cx(control, target)
    circuit.add_single("rz", target, angle / 2)


def _swap(circuit: Circuit, a: int, b: int) -> None:
    circuit.cx(a, b)
    circuit.cx(b, a)
    circuit.cx(a, b)


def cuccaro_adder(num_qubits: int) -> Circuit:
    """Ripple-carry (Cuccaro-style) adder on ``num_qubits`` qubits (``adder_n10``).

    Uses one carry ancilla (qubit 0); the remaining qubits alternate between
    the two addend registers.  Toffoli gates are decomposed into the standard
    six-CNOT network.
    """
    _require(num_qubits >= 4, "adder needs at least four qubits")
    circuit = Circuit(num_qubits, name=f"adder_n{num_qubits}")
    width = (num_qubits - 2) // 2
    a = [1 + 2 * i for i in range(width)]
    b = [2 + 2 * i for i in range(width)]
    carry_in = 0
    carry_out = num_qubits - 1

    def majority(c: int, bq: int, aq: int) -> None:
        circuit.cx(aq, bq)
        circuit.cx(aq, c)
        _toffoli(circuit, c, bq, aq)

    def unmajority(c: int, bq: int, aq: int) -> None:
        _toffoli(circuit, c, bq, aq)
        circuit.cx(aq, c)
        circuit.cx(c, bq)

    majority(carry_in, b[0], a[0])
    for i in range(1, width):
        majority(a[i - 1], b[i], a[i])
    circuit.cx(a[width - 1], carry_out)
    for i in range(width - 1, 0, -1):
        unmajority(a[i - 1], b[i], a[i])
    unmajority(carry_in, b[0], a[0])
    return circuit


def _toffoli(circuit: Circuit, control_a: int, control_b: int, target: int) -> None:
    circuit.add_single("h", target)
    circuit.cx(control_b, target)
    circuit.add_single("tdg", target)
    circuit.cx(control_a, target)
    circuit.add_single("t", target)
    circuit.cx(control_b, target)
    circuit.add_single("tdg", target)
    circuit.cx(control_a, target)
    circuit.add_single("t", control_b)
    circuit.add_single("t", target)
    circuit.cx(control_a, control_b)
    circuit.add_single("h", target)
    circuit.add_single("t", control_a)
    circuit.add_single("tdg", control_b)
    circuit.cx(control_a, control_b)


def multiplier(num_qubits: int) -> Circuit:
    """Shift-and-add multiplier skeleton (``multiplier_n15``, ``multiplier_n25``).

    Splits the qubits into two operand registers and a product register and
    emits the controlled-adder CNOT/Toffoli structure of the QASMBench
    multiplier benchmarks.
    """
    _require(num_qubits >= 6, "multiplier needs at least six qubits")
    circuit = Circuit(num_qubits, name=f"multiplier_n{num_qubits}")
    width = num_qubits // 3
    reg_a = list(range(width))
    reg_b = list(range(width, 2 * width))
    reg_p = list(range(2 * width, num_qubits))
    for i, a_qubit in enumerate(reg_a):
        for j, b_qubit in enumerate(reg_b):
            product_bit = reg_p[(i + j) % len(reg_p)]
            _toffoli(circuit, a_qubit, b_qubit, product_bit)
            if (i + j + 1) < len(reg_p):
                carry_bit = reg_p[(i + j + 1) % len(reg_p)]
                circuit.cx(product_bit, carry_bit)
    return circuit


def square_root(num_qubits: int, iterations: int | None = None) -> Circuit:
    """Grover-style square-root circuit (``square_root_n4/n18``).

    Alternates an oracle built from multi-controlled phase blocks with the
    diffusion operator; both are decomposed to CNOT + single-qubit gates.
    The number of iterations controls the depth, defaulting to a value that
    reproduces the deep, mostly sequential structure of the QASMBench circuit.
    """
    _require(num_qubits >= 3, "square_root needs at least three qubits")
    if iterations is None:
        iterations = max(2, num_qubits)
    circuit = Circuit(num_qubits, name=f"square_root_n{num_qubits}")
    data = list(range(num_qubits - 1))
    ancilla = num_qubits - 1
    for qubit in data:
        circuit.add_single("h", qubit)
    for _ in range(iterations):
        # Oracle: a CNOT ladder onto the ancilla plus phase kickback.
        for qubit in data:
            circuit.cx(qubit, ancilla)
        circuit.add_single("z", ancilla)
        for qubit in reversed(data):
            circuit.cx(qubit, ancilla)
        # Diffusion operator on the data register.
        for qubit in data:
            circuit.add_single("h", qubit)
            circuit.add_single("x", qubit)
        _multi_controlled_z(circuit, data)
        for qubit in data:
            circuit.add_single("x", qubit)
            circuit.add_single("h", qubit)
    return circuit


def _multi_controlled_z(circuit: Circuit, qubits: list[int]) -> None:
    """Linear-depth CZ ladder approximating a multi-controlled Z."""
    if len(qubits) < 2:
        if qubits:
            circuit.add_single("z", qubits[0])
        return
    target = qubits[-1]
    circuit.add_single("h", target)
    for i in range(len(qubits) - 1):
        circuit.cx(qubits[i], qubits[i + 1])
    circuit.add_single("rz", target, math.pi / 4)
    for i in range(len(qubits) - 2, -1, -1):
        circuit.cx(qubits[i], qubits[i + 1])
    circuit.add_single("h", target)


# ----------------------------------------------------------------- variational
def ising(num_qubits: int, layers: int | None = None) -> Circuit:
    """Transverse-field Ising model Trotter circuit (``ising_n10``, ``ising_n50``).

    Each Trotter step applies ZZ interactions between nearest neighbours
    (two CNOTs and an RZ each), alternating between even and odd bonds so
    that every layer contains ~n/2 parallel CNOT pairs — the high-parallelism
    structure the paper highlights.
    """
    _require(num_qubits >= 2, "Ising circuit needs at least two qubits")
    if layers is None:
        layers = 1
    circuit = Circuit(num_qubits, name=f"ising_n{num_qubits}")
    for qubit in range(num_qubits):
        circuit.add_single("h", qubit)
    for step in range(layers):
        for parity in (0, 1):
            for qubit in range(parity, num_qubits - 1, 2):
                circuit.cx(qubit, qubit + 1)
                circuit.add_single("rz", qubit + 1, 0.35 + 0.01 * step)
                circuit.cx(qubit, qubit + 1)
        for qubit in range(num_qubits):
            circuit.add_single("rx", qubit, 0.21)
    return circuit


def dnn(num_qubits: int, layers: int = 2) -> Circuit:
    """Quantum deep-neural-network ansatz (``dnn_n8``, ``dnn_n16``), QuClassi-style.

    Each layer applies parameterised single-qubit rotations followed by a
    dense block of CNOTs pairing qubit ``i`` with ``i + n/2``; consecutive
    layers shift the pairing.  This produces the very high parallelism the
    paper's motivation section discusses (many independent CNOTs per layer).
    """
    _require(num_qubits >= 4 and num_qubits % 2 == 0, "dnn ansatz needs an even qubit count >= 4")
    circuit = Circuit(num_qubits, name=f"dnn_n{num_qubits}")
    half = num_qubits // 2
    for layer in range(layers):
        for qubit in range(num_qubits):
            circuit.add_single("ry", qubit, 0.1 * (layer + 1))
            circuit.add_single("rz", qubit, 0.2 * (layer + 1))
        for offset in range(half):
            for i in range(half):
                control = i
                target = half + ((i + offset) % half)
                circuit.cx(control, target)
            for qubit in range(num_qubits):
                circuit.add_single("ry", qubit, 0.05)
    return circuit


def swap_test(num_qubits: int) -> Circuit:
    """Swap-test circuit (``swap_test_n25``): one ancilla, two equal registers.

    Controlled-SWAPs are decomposed into CNOT + Toffoli networks.
    """
    _require(num_qubits >= 3 and num_qubits % 2 == 1, "swap test needs an odd qubit count >= 3")
    circuit = Circuit(num_qubits, name=f"swap_test_n{num_qubits}")
    ancilla = 0
    half = (num_qubits - 1) // 2
    reg_a = list(range(1, 1 + half))
    reg_b = list(range(1 + half, num_qubits))
    circuit.add_single("h", ancilla)
    for a_qubit, b_qubit in zip(reg_a, reg_b):
        circuit.cx(b_qubit, a_qubit)
        _toffoli(circuit, ancilla, a_qubit, b_qubit)
        circuit.cx(b_qubit, a_qubit)
    circuit.add_single("h", ancilla)
    return circuit


# -------------------------------------------------------------------- algorithms
def qpe(num_qubits: int) -> Circuit:
    """Quantum phase estimation (``qpe_n9``): controlled powers + inverse QFT."""
    _require(num_qubits >= 3, "QPE needs at least three qubits")
    counting = num_qubits - 1
    target = num_qubits - 1
    circuit = Circuit(num_qubits, name=f"qpe_n{num_qubits}")
    for qubit in range(counting):
        circuit.add_single("h", qubit)
    circuit.add_single("x", target)
    for qubit in range(counting):
        # Controlled-U^(2^qubit) with U = phase rotation.
        angle = math.pi / 4 * (2**qubit % 8)
        _controlled_phase(circuit, qubit, target, angle)
    # Inverse QFT on the counting register.
    for qubit in range(counting // 2):
        _swap(circuit, qubit, counting - 1 - qubit)
    for target_qubit in range(counting - 1, -1, -1):
        for control in range(counting - 1, target_qubit, -1):
            angle = -math.pi / (2 ** (control - target_qubit))
            _controlled_phase(circuit, control, target_qubit, angle)
        circuit.add_single("h", target_qubit)
    return circuit


def grover(num_qubits: int, iterations: int | None = None) -> Circuit:
    """Grover search (``grover_n9``-like) with a CNOT-ladder oracle."""
    _require(num_qubits >= 3, "Grover needs at least three qubits")
    data = list(range(num_qubits - 1))
    ancilla = num_qubits - 1
    if iterations is None:
        iterations = max(1, int(round(math.pi / 4 * math.sqrt(2 ** len(data)) / len(data))) + 3)
    circuit = Circuit(num_qubits, name=f"grover_n{num_qubits}")
    circuit.add_single("x", ancilla)
    circuit.add_single("h", ancilla)
    for qubit in data:
        circuit.add_single("h", qubit)
    for _ in range(iterations):
        for qubit in data:
            circuit.cx(qubit, ancilla)
        circuit.add_single("z", ancilla)
        for qubit in reversed(data):
            circuit.cx(qubit, ancilla)
        for qubit in data:
            circuit.add_single("h", qubit)
            circuit.add_single("x", qubit)
        _multi_controlled_z(circuit, data)
        for qubit in data:
            circuit.add_single("x", qubit)
            circuit.add_single("h", qubit)
    return circuit


def sat(num_qubits: int, num_clauses: int | None = None) -> Circuit:
    """SAT oracle circuit (``sat_n11``): clause ancillas driven by Toffoli ladders."""
    _require(num_qubits >= 5, "SAT circuit needs at least five qubits")
    variables = num_qubits // 2
    clause_ancillas = num_qubits - variables
    if num_clauses is None:
        num_clauses = 3 * clause_ancillas
    circuit = Circuit(num_qubits, name=f"sat_n{num_qubits}")
    for qubit in range(variables):
        circuit.add_single("h", qubit)
    for clause in range(num_clauses):
        a = clause % variables
        b = (clause + 1) % variables
        c = (clause + 2) % variables
        ancilla = variables + clause % clause_ancillas
        _toffoli(circuit, a, b, ancilla)
        circuit.cx(c, ancilla)
        _toffoli(circuit, a, b, ancilla)
    return circuit


def qf21(num_qubits: int = 15) -> Circuit:
    """Order-finding circuit for factoring 21 (``qf21_n15``-like structure)."""
    _require(num_qubits >= 8, "qf21 needs at least eight qubits")
    counting = num_qubits // 2
    work = num_qubits - counting
    circuit = Circuit(num_qubits, name=f"qf21_n{num_qubits}")
    for qubit in range(counting):
        circuit.add_single("h", qubit)
    circuit.add_single("x", counting)
    for power in range(counting):
        # Controlled modular multiplication sketch: a few controlled swaps
        # across the work register per counting qubit.
        for offset in range(min(work - 1, 3)):
            a = counting + (power + offset) % work
            b = counting + (power + offset + 1) % work
            circuit.cx(power, a)
            circuit.cx(a, b)
            circuit.cx(power, a)
    # Inverse QFT on the counting register.
    for target_qubit in range(counting - 1, -1, -1):
        for control in range(counting - 1, target_qubit, -1):
            angle = -math.pi / (2 ** (control - target_qubit))
            _controlled_phase(circuit, control, target_qubit, angle)
        circuit.add_single("h", target_qubit)
    return circuit


def quantum_walk(num_qubits: int = 11, steps: int = 450) -> Circuit:
    """Discrete-time quantum walk on a cycle (``quantum_walk`` row of Table I).

    Each step applies a coin flip plus increment/decrement circuits built from
    CNOT ladders; many steps produce the very deep, mostly sequential circuit
    the paper reports (α in the tens of thousands).
    """
    _require(num_qubits >= 4, "quantum walk needs at least four qubits")
    coin = num_qubits - 1
    position = list(range(num_qubits - 1))
    circuit = Circuit(num_qubits, name=f"quantum_walk_n{num_qubits}")
    circuit.add_single("h", coin)
    for _ in range(steps):
        circuit.add_single("h", coin)
        # Controlled increment: ripple of CNOTs controlled by the coin.
        for i in range(len(position) - 1, 0, -1):
            _toffoli(circuit, coin, position[i - 1], position[i])
        circuit.cx(coin, position[0])
        circuit.add_single("x", coin)
        # Controlled decrement.
        circuit.cx(coin, position[0])
        for i in range(1, len(position)):
            _toffoli(circuit, coin, position[i - 1], position[i])
        circuit.add_single("x", coin)
    return circuit


def shor(num_qubits: int = 12, rounds: int = 340) -> Circuit:
    """Shor-style modular exponentiation skeleton (``shor`` row of Table I).

    Repeated controlled modular-addition blocks over a small work register;
    the round count controls depth and is calibrated to land in the same
    regime as the paper's benchmark (α ≈ 13k for 12 qubits).
    """
    _require(num_qubits >= 6, "shor skeleton needs at least six qubits")
    counting = num_qubits // 2
    work = list(range(counting, num_qubits))
    circuit = Circuit(num_qubits, name=f"shor_n{num_qubits}")
    for qubit in range(counting):
        circuit.add_single("h", qubit)
    for round_index in range(rounds):
        control = round_index % counting
        for i in range(len(work) - 1):
            _toffoli(circuit, control, work[i], work[i + 1])
        circuit.cx(control, work[0])
        circuit.add_single("rz", work[-1], 0.1)
    for target_qubit in range(counting - 1, -1, -1):
        for control in range(counting - 1, target_qubit, -1):
            angle = -math.pi / (2 ** (control - target_qubit))
            _controlled_phase(circuit, control, target_qubit, angle)
        circuit.add_single("h", target_qubit)
    return circuit


def multiply(num_qubits: int = 13) -> Circuit:
    """Small multiply benchmark (``multiply_n13``) with a shallow Toffoli network."""
    _require(num_qubits >= 7, "multiply needs at least seven qubits")
    circuit = Circuit(num_qubits, name=f"multiply_n{num_qubits}")
    third = num_qubits // 3
    reg_a = list(range(third))
    reg_b = list(range(third, 2 * third))
    reg_p = list(range(2 * third, num_qubits))
    for i in range(min(len(reg_a), len(reg_b), len(reg_p))):
        _toffoli(circuit, reg_a[i], reg_b[i], reg_p[i % len(reg_p)])
    for i in range(len(reg_p) - 1):
        circuit.cx(reg_p[i], reg_p[i + 1])
    return circuit
