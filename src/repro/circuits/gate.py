"""Gate-level intermediate representation.

The Ecmas transformation only needs to reason about CNOT gates (every
single-qubit gate is executed locally inside a tile, see Section III of the
paper), but the QASM front-end and the benchmark generators produce full
circuits.  The IR therefore keeps every gate, tagging each with enough
structure for the scheduler to extract the CNOT dependency DAG.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import CircuitError


class GateKind(enum.Enum):
    """Coarse classification of gates used by the transformation pipeline."""

    SINGLE_QUBIT = "single"
    CNOT = "cnot"
    TWO_QUBIT_OTHER = "two_other"
    MEASUREMENT = "measure"
    BARRIER = "barrier"


#: Names that the QASM front-end and the generators recognise as single-qubit.
SINGLE_QUBIT_NAMES = frozenset(
    {
        "id", "x", "y", "z", "h", "s", "sdg", "t", "tdg",
        "rx", "ry", "rz", "u1", "u2", "u3", "u", "p", "sx", "sxdg",
    }
)

#: Two-qubit names that are rewritten to CNOT-based decompositions.
TWO_QUBIT_NAMES = frozenset({"cx", "cnot", "cz", "swap", "ch", "crz", "cry", "crx", "cu1", "cp", "cu3", "rzz", "rxx"})

#: Three-qubit names that the expander decomposes.
THREE_QUBIT_NAMES = frozenset({"ccx", "toffoli", "cswap", "fredkin"})


@dataclass(frozen=True)
class Gate:
    """A single gate instance in a :class:`~repro.circuits.circuit.Circuit`.

    Attributes
    ----------
    name:
        Lower-case gate name, e.g. ``"cx"`` or ``"h"``.
    qubits:
        Tuple of logical qubit indices the gate acts on.  For CNOT gates the
        order is ``(control, target)``.
    params:
        Tuple of float parameters (rotation angles).  Kept for round-tripping
        QASM; ignored by the scheduler.
    index:
        Position of the gate in the owning circuit, assigned by the circuit.
        ``-1`` for free-standing gates.
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = field(default=())
    index: int = -1

    def __post_init__(self) -> None:
        if not self.qubits:
            raise CircuitError(f"gate {self.name!r} must act on at least one qubit")
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(f"gate {self.name!r} has repeated qubit operands {self.qubits}")
        if any(q < 0 for q in self.qubits):
            raise CircuitError(f"gate {self.name!r} has a negative qubit index {self.qubits}")

    @property
    def kind(self) -> GateKind:
        """Classify this gate for the transformation pipeline."""
        name = self.name
        if name in ("cx", "cnot"):
            return GateKind.CNOT
        if name == "barrier":
            return GateKind.BARRIER
        if name in ("measure", "reset"):
            return GateKind.MEASUREMENT
        if len(self.qubits) == 1:
            return GateKind.SINGLE_QUBIT
        return GateKind.TWO_QUBIT_OTHER

    @property
    def is_cnot(self) -> bool:
        """True when this is a CNOT gate (``cx``)."""
        return self.kind is GateKind.CNOT

    @property
    def control(self) -> int:
        """Control qubit of a CNOT gate."""
        if not self.is_cnot:
            raise CircuitError(f"gate {self.name!r} has no control qubit")
        return self.qubits[0]

    @property
    def target(self) -> int:
        """Target qubit of a CNOT gate."""
        if not self.is_cnot:
            raise CircuitError(f"gate {self.name!r} has no target qubit")
        return self.qubits[1]

    def with_index(self, index: int) -> "Gate":
        """Return a copy of this gate tagged with a circuit position."""
        return Gate(self.name, self.qubits, self.params, index)

    def remapped(self, mapping: dict[int, int]) -> "Gate":
        """Return a copy with qubits renamed through ``mapping``."""
        try:
            qubits = tuple(mapping[q] for q in self.qubits)
        except KeyError as exc:
            raise CircuitError(f"qubit {exc.args[0]} missing from remapping") from exc
        return Gate(self.name, qubits, self.params, self.index)

    def __str__(self) -> str:
        params = ""
        if self.params:
            params = "(" + ", ".join(f"{p:g}" for p in self.params) + ")"
        qubits = ", ".join(f"q{q}" for q in self.qubits)
        return f"{self.name}{params} {qubits}"


def cnot(control: int, target: int) -> Gate:
    """Convenience constructor for a CNOT gate."""
    if control == target:
        raise CircuitError("CNOT control and target must differ")
    return Gate("cx", (control, target))


def single(name: str, qubit: int, *params: float) -> Gate:
    """Convenience constructor for a single-qubit gate."""
    return Gate(name, (qubit,), tuple(params))
