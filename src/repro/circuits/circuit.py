"""The :class:`Circuit` container.

A circuit is an ordered list of gates over ``n`` logical qubits.  The Ecmas
pipeline cares about the CNOT sub-circuit: :meth:`Circuit.cnot_circuit`
extracts it while preserving gate order, and :meth:`Circuit.dag` /
:meth:`Circuit.communication_graph` build the two derived representations
from Fig. 6 of the paper.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import TYPE_CHECKING

from repro.circuits.gate import Gate, GateKind
from repro.errors import CircuitError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.circuits.comm_graph import CommunicationGraph
    from repro.circuits.dag import GateDAG


class Circuit:
    """An ordered quantum circuit over ``num_qubits`` logical qubits.

    Parameters
    ----------
    num_qubits:
        Number of logical qubits.  Gates may only reference indices below it.
    gates:
        Optional iterable of gates appended in order.
    name:
        Human-readable circuit name used in reports and benchmarks.
    """

    def __init__(self, num_qubits: int, gates: Iterable[Gate] = (), name: str = "circuit"):
        if num_qubits <= 0:
            raise CircuitError(f"a circuit needs at least one qubit, got {num_qubits}")
        self._num_qubits = int(num_qubits)
        self._gates: list[Gate] = []
        self.name = name
        for gate in gates:
            self.append(gate)

    # ------------------------------------------------------------------ basics
    @property
    def num_qubits(self) -> int:
        """Number of logical qubits."""
        return self._num_qubits

    @property
    def gates(self) -> tuple[Gate, ...]:
        """All gates in program order."""
        return tuple(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index: int) -> Gate:
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return (
            self._num_qubits == other._num_qubits
            and [(g.name, g.qubits, g.params) for g in self._gates]
            == [(g.name, g.qubits, g.params) for g in other._gates]
        )

    def __repr__(self) -> str:
        return f"Circuit(name={self.name!r}, num_qubits={self._num_qubits}, gates={len(self._gates)})"

    # --------------------------------------------------------------- mutation
    def append(self, gate: Gate) -> Gate:
        """Append ``gate``, validating its qubit indices; returns the stored gate."""
        if max(gate.qubits) >= self._num_qubits:
            raise CircuitError(
                f"gate {gate} references qubit {max(gate.qubits)} but the circuit has "
                f"only {self._num_qubits} qubits"
            )
        stored = gate.with_index(len(self._gates))
        self._gates.append(stored)
        return stored

    def extend(self, gates: Iterable[Gate]) -> None:
        """Append every gate in ``gates`` in order."""
        for gate in gates:
            self.append(gate)

    def cx(self, control: int, target: int) -> Gate:
        """Append a CNOT gate."""
        if control == target:
            raise CircuitError("CNOT control and target must differ")
        return self.append(Gate("cx", (control, target)))

    def add_single(self, name: str, qubit: int, *params: float) -> Gate:
        """Append a single-qubit gate."""
        return self.append(Gate(name, (qubit,), tuple(params)))

    # ------------------------------------------------------------- derived IR
    def cnot_gates(self) -> tuple[Gate, ...]:
        """The CNOT gates of the circuit in program order."""
        return tuple(g for g in self._gates if g.is_cnot)

    def cnot_circuit(self, name: str | None = None) -> "Circuit":
        """Return a new circuit containing only the CNOT gates.

        This is the circuit ``P`` the paper schedules: single-qubit gates are
        executed locally in tiles and do not constrain communication.
        """
        return Circuit(self._num_qubits, self.cnot_gates(), name=name or f"{self.name}-cnot")

    def dag(self) -> "GateDAG":
        """Dependency DAG ``G_P`` over the CNOT gates (Fig. 6b)."""
        from repro.circuits.dag import GateDAG

        return GateDAG.from_circuit(self)

    def communication_graph(self) -> "CommunicationGraph":
        """Weighted communication graph ``G_C`` (Fig. 6c)."""
        from repro.circuits.comm_graph import CommunicationGraph

        return CommunicationGraph.from_circuit(self)

    # ------------------------------------------------------------- statistics
    @property
    def num_cnots(self) -> int:
        """Number of CNOT gates (``g`` in the paper's tables)."""
        return sum(1 for g in self._gates if g.is_cnot)

    def depth(self, cnot_only: bool = True) -> int:
        """Circuit depth.

        With ``cnot_only=True`` (the default) this is the critical-path length
        ``α`` over CNOT gates used throughout the paper.
        """
        level: dict[int, int] = {}
        depth = 0
        for gate in self._gates:
            if cnot_only and not gate.is_cnot:
                continue
            if gate.kind is GateKind.BARRIER:
                continue
            gate_level = 1 + max((level.get(q, 0) for q in gate.qubits), default=0)
            for q in gate.qubits:
                level[q] = gate_level
            depth = max(depth, gate_level)
        return depth

    def used_qubits(self) -> set[int]:
        """Set of qubit indices referenced by at least one gate."""
        used: set[int] = set()
        for gate in self._gates:
            used.update(gate.qubits)
        return used

    def gate_counts(self) -> dict[str, int]:
        """Histogram of gate names."""
        counts: dict[str, int] = {}
        for gate in self._gates:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    # --------------------------------------------------------------- rewriting
    def remapped(self, mapping: dict[int, int], num_qubits: int | None = None) -> "Circuit":
        """Return a copy of the circuit with qubits renamed through ``mapping``."""
        new_size = num_qubits if num_qubits is not None else self._num_qubits
        remapped = Circuit(new_size, name=self.name)
        for gate in self._gates:
            remapped.append(gate.remapped(mapping))
        return remapped

    def reversed(self) -> "Circuit":
        """Return the circuit with gate order reversed (useful for tests)."""
        return Circuit(self._num_qubits, reversed(self._gates), name=f"{self.name}-reversed")

    def copy(self, name: str | None = None) -> "Circuit":
        """Shallow copy (gates are immutable, so this is effectively deep)."""
        return Circuit(self._num_qubits, self._gates, name=name or self.name)

    def compose(self, other: "Circuit") -> "Circuit":
        """Return a new circuit running ``self`` then ``other`` on shared qubits."""
        size = max(self._num_qubits, other._num_qubits)
        combined = Circuit(size, name=f"{self.name}+{other.name}")
        combined.extend(Gate(g.name, g.qubits, g.params) for g in self._gates)
        combined.extend(Gate(g.name, g.qubits, g.params) for g in other._gates)
        return combined
