"""Ablation configurations used by the sensitivity studies (Tables II–V).

Each function compiles a circuit with exactly one Ecmas pass replaced by the
baseline the paper compares against, via the parameterised method names of
:mod:`repro.pipeline.registry` (``location:<s>``, ``cut_init:<s>``,
``gate_order:<s>``, ``cut_sched:<s>``):

* Table II (location initialisation): trivial snake vs single-attempt Metis vs
  Ecmas multi-attempt placement.
* Table III (cut-type initialisation): random vs max-cut vs bipartite-prefix.
* Table IV (gate scheduling, lattice surgery): circuit order vs priority.
* Table V (cut-type scheduling): channel-first vs time-first vs adaptive.
"""

from __future__ import annotations

from repro.chip.chip import Chip
from repro.circuits.circuit import Circuit
from repro.core.ecmas import EcmasOptions
from repro.core.schedule import EncodedCircuit
from repro.pipeline.registry import run_pipeline_method


# ------------------------------------------------------------------ Table II
def compile_with_location_strategy(
    circuit: Circuit,
    strategy: str,
    chip: Chip | None = None,
    code_distance: int = 3,
) -> EncodedCircuit:
    """Ecmas (double defect, limited) with the location initialisation replaced.

    ``strategy`` is ``"trivial"``, ``"metis"``, ``"ecmas"``, ``"spectral"`` or
    ``"random"``.  The ``metis`` column is single-attempt recursive bisection,
    which :class:`~repro.pipeline.passes.InitialMappingPass` expresses as the
    ``"metis"`` placement strategy.
    """
    return run_pipeline_method(
        circuit, f"location:{strategy}", chip=chip, code_distance=code_distance
    ).encoded


# ----------------------------------------------------------------- Table III
def compile_with_cut_initialisation(
    circuit: Circuit,
    initialisation: str,
    chip: Chip | None = None,
    code_distance: int = 3,
    seed: int = 0,
) -> EncodedCircuit:
    """Ecmas (double defect, limited) with the cut-type initialisation replaced.

    ``initialisation`` is ``"random"``, ``"maxcut"``, ``"bipartite_prefix"`` or
    ``"uniform"``.
    """
    return run_pipeline_method(
        circuit,
        f"cut_init:{initialisation}",
        chip=chip,
        code_distance=code_distance,
        options=EcmasOptions(seed=seed),
    ).encoded


# ------------------------------------------------------------------ Table IV
def compile_with_gate_order(
    circuit: Circuit,
    priority: str,
    chip: Chip | None = None,
    code_distance: int = 3,
) -> EncodedCircuit:
    """Ecmas (lattice surgery, limited) with the gate priority replaced.

    ``priority`` is ``"circuit_order"``, ``"criticality"`` or ``"descendants"``.
    """
    return run_pipeline_method(
        circuit, f"gate_order:{priority}", chip=chip, code_distance=code_distance
    ).encoded


# ------------------------------------------------------------------- Table V
def compile_with_cut_scheduling(
    circuit: Circuit,
    strategy: str,
    chip: Chip | None = None,
    code_distance: int = 3,
) -> EncodedCircuit:
    """Ecmas (double defect, limited) with the cut-type scheduling strategy replaced.

    ``strategy`` is ``"channel_first"``, ``"time_first"`` or ``"adaptive"``.
    """
    return run_pipeline_method(
        circuit, f"cut_sched:{strategy}", chip=chip, code_distance=code_distance
    ).encoded
