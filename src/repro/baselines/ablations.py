"""Ablation configurations used by the sensitivity studies (Tables II–V).

Each function compiles a circuit with exactly one Ecmas component replaced by
the baseline the paper compares against:

* Table II (location initialisation): trivial snake vs single-attempt Metis vs
  Ecmas multi-attempt placement.
* Table III (cut-type initialisation): random vs max-cut vs bipartite-prefix.
* Table IV (gate scheduling, lattice surgery): circuit order vs priority.
* Table V (cut-type scheduling): channel-first vs time-first vs adaptive.
"""

from __future__ import annotations

from repro.chip.chip import Chip
from repro.chip.geometry import SurfaceCodeModel
from repro.circuits.circuit import Circuit
from repro.core.ecmas import EcmasOptions, compile_circuit
from repro.core.schedule import EncodedCircuit


def _dd_chip(circuit: Circuit, chip: Chip | None, code_distance: int) -> Chip:
    if chip is not None:
        return chip
    return Chip.minimum_viable(SurfaceCodeModel.DOUBLE_DEFECT, circuit.num_qubits, code_distance)


def _ls_chip(circuit: Circuit, chip: Chip | None, code_distance: int) -> Chip:
    if chip is not None:
        return chip
    return Chip.minimum_viable(SurfaceCodeModel.LATTICE_SURGERY, circuit.num_qubits, code_distance)


# ------------------------------------------------------------------ Table II
def compile_with_location_strategy(
    circuit: Circuit,
    strategy: str,
    chip: Chip | None = None,
    code_distance: int = 3,
) -> EncodedCircuit:
    """Ecmas (double defect, limited) with the location initialisation replaced.

    ``strategy`` is ``"trivial"``, ``"metis"``, ``"ecmas"``, ``"spectral"`` or
    ``"random"``.
    """
    options = EcmasOptions(placement_strategy=strategy)
    encoded = compile_circuit(
        circuit,
        model=SurfaceCodeModel.DOUBLE_DEFECT,
        chip=_dd_chip(circuit, chip, code_distance),
        scheduler="limited",
        options=options,
    )
    encoded.method = f"ecmas-dd/location={strategy}"
    return encoded


# ----------------------------------------------------------------- Table III
def compile_with_cut_initialisation(
    circuit: Circuit,
    initialisation: str,
    chip: Chip | None = None,
    code_distance: int = 3,
    seed: int = 0,
) -> EncodedCircuit:
    """Ecmas (double defect, limited) with the cut-type initialisation replaced.

    ``initialisation`` is ``"random"``, ``"maxcut"``, ``"bipartite_prefix"`` or
    ``"uniform"``.
    """
    options = EcmasOptions(cut_initialisation=initialisation, seed=seed)
    encoded = compile_circuit(
        circuit,
        model=SurfaceCodeModel.DOUBLE_DEFECT,
        chip=_dd_chip(circuit, chip, code_distance),
        scheduler="limited",
        options=options,
    )
    encoded.method = f"ecmas-dd/cut_init={initialisation}"
    return encoded


# ------------------------------------------------------------------ Table IV
def compile_with_gate_order(
    circuit: Circuit,
    priority: str,
    chip: Chip | None = None,
    code_distance: int = 3,
) -> EncodedCircuit:
    """Ecmas (lattice surgery, limited) with the gate priority replaced.

    ``priority`` is ``"circuit_order"``, ``"criticality"`` or ``"descendants"``.
    """
    options = EcmasOptions(priority=priority)
    encoded = compile_circuit(
        circuit,
        model=SurfaceCodeModel.LATTICE_SURGERY,
        chip=_ls_chip(circuit, chip, code_distance),
        scheduler="limited",
        options=options,
    )
    encoded.method = f"ecmas-ls/priority={priority}"
    return encoded


# ------------------------------------------------------------------- Table V
def compile_with_cut_scheduling(
    circuit: Circuit,
    strategy: str,
    chip: Chip | None = None,
    code_distance: int = 3,
) -> EncodedCircuit:
    """Ecmas (double defect, limited) with the cut-type scheduling strategy replaced.

    ``strategy`` is ``"channel_first"``, ``"time_first"`` or ``"adaptive"``.
    """
    options = EcmasOptions(cut_strategy=strategy)
    encoded = compile_circuit(
        circuit,
        model=SurfaceCodeModel.DOUBLE_DEFECT,
        chip=_dd_chip(circuit, chip, code_distance),
        scheduler="limited",
        options=options,
    )
    encoded.method = f"ecmas-dd/cut_sched={strategy}"
    return encoded
