"""Baseline compilers and ablation configurations the paper compares against."""

from repro.baselines.ablations import (
    compile_with_cut_initialisation,
    compile_with_cut_scheduling,
    compile_with_gate_order,
    compile_with_location_strategy,
)
from repro.baselines.autobraid import compile_autobraid
from repro.baselines.braidflash import compile_braidflash
from repro.baselines.edpci import compile_edpci

__all__ = [
    "compile_autobraid",
    "compile_braidflash",
    "compile_edpci",
    "compile_with_location_strategy",
    "compile_with_cut_initialisation",
    "compile_with_gate_order",
    "compile_with_cut_scheduling",
]
