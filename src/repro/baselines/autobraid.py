"""AutoBraid baseline (Hua et al., MICRO 2021) for the double defect model.

AutoBraid searches for sets of non-intersecting braiding paths and prioritises
gates on the critical path, but — as the paper points out — it treats every
tile as having the same cut type, so every CNOT costs the three-cycle
same-cut execution, and it neither customises the initial mapping to the
communication graph nor adjusts channel bandwidth.

This reimplementation is the standard Ecmas pass pipeline with that
configuration substituted in (see the ``"autobraid"`` entry of
:mod:`repro.pipeline.registry`): uniform cut types, the ``never_modify``
strategy, a trivial snake placement and no bandwidth adjusting.  Its cycle
counts land in the ``≈ 3×α`` regime the paper's Table I reports for
AutoBraid.
"""

from __future__ import annotations

from repro.chip.chip import Chip
from repro.circuits.circuit import Circuit
from repro.core.schedule import EncodedCircuit
from repro.pipeline.registry import run_pipeline_method


def compile_autobraid(circuit: Circuit, chip: Chip | None = None, code_distance: int = 3) -> EncodedCircuit:
    """Compile ``circuit`` with the AutoBraid baseline on a double defect chip."""
    return run_pipeline_method(circuit, "autobraid", chip=chip, code_distance=code_distance).encoded
