"""AutoBraid baseline (Hua et al., MICRO 2021) for the double defect model.

AutoBraid searches for sets of non-intersecting braiding paths and prioritises
gates on the critical path, but — as the paper points out — it treats every
tile as having the same cut type, so every CNOT costs the three-cycle
same-cut execution, and it neither customises the initial mapping to the
communication graph nor adjusts channel bandwidth.

This reimplementation reuses the double defect scheduling engine with that
configuration: uniform cut types, the ``never_modify`` strategy, a trivial
snake placement and no bandwidth adjusting.  Its cycle counts land in the
``≈ 3×α`` regime the paper's Table I reports for AutoBraid.
"""

from __future__ import annotations

from repro.chip.chip import Chip
from repro.chip.geometry import SurfaceCodeModel
from repro.circuits.circuit import Circuit
from repro.core.cut_decisions import never_modify_strategy
from repro.core.cut_types import uniform_cut_types
from repro.core.mapping import build_initial_mapping
from repro.core.priorities import criticality_priority
from repro.core.schedule import EncodedCircuit
from repro.core.scheduler_dd import DoubleDefectScheduler
from repro.errors import SchedulingError


def compile_autobraid(circuit: Circuit, chip: Chip | None = None, code_distance: int = 3) -> EncodedCircuit:
    """Compile ``circuit`` with the AutoBraid baseline on a double defect chip."""
    if chip is None:
        chip = Chip.minimum_viable(SurfaceCodeModel.DOUBLE_DEFECT, circuit.num_qubits, code_distance)
    if chip.model is not SurfaceCodeModel.DOUBLE_DEFECT:
        raise SchedulingError("AutoBraid targets the double defect model")
    mapping = build_initial_mapping(
        circuit,
        chip,
        uniform_cut_types(circuit.num_qubits),
        placement_strategy="trivial",
        adjust=False,
    )
    scheduler = DoubleDefectScheduler(
        circuit,
        mapping,
        priority=criticality_priority,
        cut_strategy=never_modify_strategy,
        method="autobraid",
    )
    return scheduler.run()
