"""EDPCI baseline (Beverland, Kliuchnikov, Schoute — PRX Quantum 2022).

EDPCI compiles lattice-surgery circuits by routing edge-disjoint paths through
ancilla tiles, completing every CNOT in one clock cycle, but it uses a trivial
(snake) initial mapping and does not adapt channel resources to the circuit —
which is why, in the paper's evaluation, it matches Ecmas on low-parallelism
circuits yet fails to capitalise on larger chips.

We model it as the standard pass pipeline with trivial snake placement, no
bandwidth adjusting, and per-cycle routing that attempts the ready gates
shortest-separation-first (the usual greedy EDP packing order) — the
``"edpci"`` entry of :mod:`repro.pipeline.registry`.
"""

from __future__ import annotations

from repro.chip.chip import Chip
from repro.circuits.circuit import Circuit
from repro.core.mapping import InitialMapping, build_initial_mapping
from repro.core.schedule import EncodedCircuit
from repro.pipeline.registry import run_pipeline_method


def edpci_mapping(circuit: Circuit, chip: Chip) -> InitialMapping:
    """EDPCI's trivial snake mapping without bandwidth adjusting."""
    return build_initial_mapping(
        circuit,
        chip,
        cut_types=None,
        placement_strategy="trivial",
        adjust=False,
    )


def compile_edpci(circuit: Circuit, chip: Chip | None = None, code_distance: int = 3) -> EncodedCircuit:
    """Compile ``circuit`` with the EDPCI baseline on a lattice surgery chip."""
    return run_pipeline_method(circuit, "edpci", chip=chip, code_distance=code_distance).encoded
