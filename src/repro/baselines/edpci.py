"""EDPCI baseline (Beverland, Kliuchnikov, Schoute — PRX Quantum 2022).

EDPCI compiles lattice-surgery circuits by routing edge-disjoint paths through
ancilla tiles, completing every CNOT in one clock cycle, but it uses a trivial
(snake) initial mapping and does not adapt channel resources to the circuit —
which is why, in the paper's evaluation, it matches Ecmas on low-parallelism
circuits yet fails to capitalise on larger chips.

We model it with the lattice-surgery scheduling engine: trivial snake
placement, no bandwidth adjusting, and per-cycle routing that attempts the
ready gates shortest-separation-first (the usual greedy EDP packing order).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.chip.chip import Chip
from repro.chip.geometry import SurfaceCodeModel
from repro.circuits.circuit import Circuit
from repro.circuits.dag import GateDAG
from repro.core.mapping import InitialMapping, build_initial_mapping
from repro.core.schedule import EncodedCircuit
from repro.core.scheduler_ls import LatticeSurgeryScheduler
from repro.errors import SchedulingError
from repro.partition.placement import Placement


def _edp_priority_factory(placement: Placement):
    """Order ready gates by tile separation (shortest first), then program order."""

    def priority(dag: GateDAG, ready: Sequence[int]) -> list[int]:
        def separation(node: int) -> int:
            gate = dag.gate(node)
            return placement.slot_of(gate.control).manhattan_distance(placement.slot_of(gate.target))

        return sorted(ready, key=lambda node: (separation(node), node))

    return priority


def edpci_mapping(circuit: Circuit, chip: Chip) -> InitialMapping:
    """EDPCI's trivial snake mapping without bandwidth adjusting."""
    return build_initial_mapping(
        circuit,
        chip,
        cut_types=None,
        placement_strategy="trivial",
        adjust=False,
    )


def compile_edpci(circuit: Circuit, chip: Chip | None = None, code_distance: int = 3) -> EncodedCircuit:
    """Compile ``circuit`` with the EDPCI baseline on a lattice surgery chip."""
    if chip is None:
        chip = Chip.minimum_viable(SurfaceCodeModel.LATTICE_SURGERY, circuit.num_qubits, code_distance)
    if chip.model is not SurfaceCodeModel.LATTICE_SURGERY:
        raise SchedulingError("EDPCI targets the lattice surgery model")
    mapping = edpci_mapping(circuit, chip)
    scheduler = LatticeSurgeryScheduler(
        circuit,
        mapping,
        priority=_edp_priority_factory(mapping.placement),
        method="edpci",
    )
    return scheduler.run()
