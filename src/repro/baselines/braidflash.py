"""Braidflash-style baseline (Javadi-Abhari et al., MICRO 2017).

Braidflash reduces braid-conflict latency by giving priority to CNOT gates on
the critical path, but like AutoBraid it is cut-type oblivious and keeps the
dispatch order close to the program order otherwise.  We model it as the
standard pass pipeline with uniform cut types, the ``never_modify`` strategy,
critical-path-then-program-order dispatch and a plain (non-congestion-aware)
router — the ``"braidflash"`` entry of :mod:`repro.pipeline.registry`.
"""

from __future__ import annotations

from repro.chip.chip import Chip
from repro.circuits.circuit import Circuit
from repro.core.schedule import EncodedCircuit
from repro.pipeline.registry import run_pipeline_method


def compile_braidflash(circuit: Circuit, chip: Chip | None = None, code_distance: int = 3) -> EncodedCircuit:
    """Compile ``circuit`` with the Braidflash-style baseline."""
    return run_pipeline_method(circuit, "braidflash", chip=chip, code_distance=code_distance).encoded
