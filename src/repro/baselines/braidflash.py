"""Braidflash-style baseline (Javadi-Abhari et al., MICRO 2017).

Braidflash reduces braid-conflict latency by giving priority to CNOT gates on
the critical path, but like AutoBraid it is cut-type oblivious and keeps the
dispatch order close to the program order otherwise.  We model it as the
double defect engine with uniform cut types, the ``never_modify`` strategy,
program-order dispatch and a plain (non-congestion-aware) router.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.chip.chip import Chip
from repro.chip.geometry import SurfaceCodeModel
from repro.circuits.circuit import Circuit
from repro.circuits.dag import GateDAG
from repro.core.cut_decisions import never_modify_strategy
from repro.core.cut_types import uniform_cut_types
from repro.core.mapping import build_initial_mapping
from repro.core.schedule import EncodedCircuit
from repro.core.scheduler_dd import DoubleDefectScheduler
from repro.errors import SchedulingError


def _braidflash_priority(dag: GateDAG, ready: Sequence[int]) -> list[int]:
    """Critical-path gates first, then program order (no descendant tie-break)."""
    return sorted(ready, key=lambda node: (-dag.criticality(node), node))


def compile_braidflash(circuit: Circuit, chip: Chip | None = None, code_distance: int = 3) -> EncodedCircuit:
    """Compile ``circuit`` with the Braidflash-style baseline."""
    if chip is None:
        chip = Chip.minimum_viable(SurfaceCodeModel.DOUBLE_DEFECT, circuit.num_qubits, code_distance)
    if chip.model is not SurfaceCodeModel.DOUBLE_DEFECT:
        raise SchedulingError("Braidflash targets the double defect model")
    mapping = build_initial_mapping(
        circuit,
        chip,
        uniform_cut_types(circuit.num_qubits),
        placement_strategy="trivial",
        adjust=False,
    )
    scheduler = DoubleDefectScheduler(
        circuit,
        mapping,
        priority=_braidflash_priority,
        cut_strategy=never_modify_strategy,
        congestion_weight=0.0,
        method="braidflash",
    )
    return scheduler.run()
