"""Composable compilation pipeline and parallel batch-evaluation engine.

* :mod:`repro.pipeline.framework` — :class:`Pass`, :class:`PassContext`,
  :class:`Pipeline`, :class:`PipelineResult` with per-stage timings.
* :mod:`repro.pipeline.passes` — the named Ecmas stages
  (``profile → build_chip → init_cut_types → initial_mapping →
  bandwidth_adjust → select_scheduler → schedule → validate``).
* :mod:`repro.pipeline.registry` — method names (Table I columns, baselines,
  ablation families) resolved to pass-substituted pipelines.
* :mod:`repro.pipeline.batch` — ``(circuit, method)`` job lists fanned across
  a process pool with a content-keyed on-disk result cache.
"""

from repro.pipeline.batch import (
    BatchFailure,
    BatchJob,
    BatchProgress,
    BatchResult,
    ResultCache,
    build_batch_jobs,
    chip_key,
    circuit_key,
    default_cache_dir,
    execute_job,
    resolve_workers,
    run_batch,
)
from repro.pipeline.framework import (
    Pass,
    PassContext,
    Pipeline,
    PipelineError,
    PipelineResult,
    StageTiming,
)
from repro.pipeline.passes import (
    BandwidthAdjustPass,
    BuildChipPass,
    InitCutTypesPass,
    InitialMappingPass,
    ProfileCircuitPass,
    SchedulePass,
    SelectSchedulerPass,
    ValidatePass,
)
from repro.pipeline.registry import (
    MethodSpec,
    ablation_families,
    build_pipeline,
    method_catalog,
    register_method,
    registered_methods,
    resolve_method,
    run_pipeline_method,
    standard_passes,
    validate_methods,
)

__all__ = [
    "Pass",
    "PassContext",
    "Pipeline",
    "PipelineError",
    "PipelineResult",
    "StageTiming",
    "ProfileCircuitPass",
    "BuildChipPass",
    "InitCutTypesPass",
    "InitialMappingPass",
    "BandwidthAdjustPass",
    "SelectSchedulerPass",
    "SchedulePass",
    "ValidatePass",
    "MethodSpec",
    "ablation_families",
    "method_catalog",
    "standard_passes",
    "register_method",
    "registered_methods",
    "resolve_method",
    "build_pipeline",
    "run_pipeline_method",
    "validate_methods",
    "BatchFailure",
    "BatchJob",
    "BatchProgress",
    "BatchResult",
    "ResultCache",
    "build_batch_jobs",
    "chip_key",
    "circuit_key",
    "default_cache_dir",
    "run_batch",
    "execute_job",
    "resolve_workers",
]
