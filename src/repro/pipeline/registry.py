"""Method registry: evaluation method names → configured pipelines.

Every compile entry point of the repository — the Ecmas configurations of
Table I, the AutoBraid / Braidflash / EDPCI baselines and the ablations of
Tables II–V — is a *pass substitution* over the same standard pipeline, not a
separate code path.  :func:`resolve_method` maps a method name to a
:class:`MethodSpec`; :func:`run_pipeline_method` builds the context, runs the
pipeline and returns a :class:`~repro.pipeline.framework.PipelineResult`.

Method name grammar
-------------------
Plain names (the Table I columns and CLI methods)::

    ecmas  autobraid  braidflash  edpci  edpci_min  edpci_4x
    ecmas_dd_min  ecmas_dd_4x  ecmas_dd_resu
    ecmas_ls_min  ecmas_ls_4x  ecmas_ls_resu

Parameterised ablation names (the Tables II–V columns)::

    location:<trivial|metis|ecmas|spectral|random>
    cut_init:<random|maxcut|bipartite_prefix|uniform>
    gate_order:<circuit_order|criticality|descendants>
    cut_sched:<channel_first|time_first|adaptive>
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.chip.chip import Chip
from repro.chip.defects import DefectSpec
from repro.chip.geometry import SurfaceCodeModel
from repro.circuits.circuit import Circuit
from repro.circuits.dag import GateDAG
from repro.core.cut_decisions import never_modify_strategy
from repro.core.ecmas import EcmasOptions
from repro.core.priorities import static_priority
from repro.errors import ReproError
from repro.pipeline.framework import Pass, PassContext, Pipeline, PipelineResult
from repro.pipeline.passes import (
    BandwidthAdjustPass,
    BuildChipPass,
    InitCutTypesPass,
    InitialMappingPass,
    ProfileCircuitPass,
    SchedulePass,
    SelectSchedulerPass,
    ValidatePass,
)

DD = SurfaceCodeModel.DOUBLE_DEFECT
LS = SurfaceCodeModel.LATTICE_SURGERY


# ------------------------------------------------------------ gate priorities
@static_priority(lambda dag, node: (-dag.criticality(node), node))
def braidflash_priority(dag: GateDAG, ready: Sequence[int]) -> list[int]:
    """Critical-path gates first, then program order (no descendant tie-break)."""
    return sorted(ready, key=lambda node: (-dag.criticality(node), node))


def edp_priority_factory(ctx: PassContext) -> Callable:
    """EDPCI gate order: shortest placed tile separation first, then program order."""
    mapping = ctx.require_mapping()
    placement = mapping.placement
    # Manhattan on square chips (unchanged ordering), BFS hops on graph chips.
    distance = mapping.chip.slot_distance

    def separation(dag: GateDAG, node: int) -> int:
        gate = dag.gate(node)
        return distance(placement.slot_of(gate.control), placement.slot_of(gate.target))

    @static_priority(lambda dag, node: (separation(dag, node), node))
    def priority(dag: GateDAG, ready: Sequence[int]) -> list[int]:
        return sorted(ready, key=lambda node: (separation(dag, node), node))

    return priority


# ----------------------------------------------------------------- MethodSpec
@dataclass(frozen=True)
class MethodSpec:
    """One named compile configuration: a model, defaults, and a pass list."""

    name: str
    model: SurfaceCodeModel
    build_passes: Callable[[], list[Pass]]
    resources: str = "minimum"
    scheduler: str = "auto"
    #: Post-hoc method string (ablations relabel the encoded circuit).
    relabel: str | None = None


def standard_passes(
    *,
    model_pin: SurfaceCodeModel | None = None,
    model_error: str | None = None,
    cut_initialisation: str | None = None,
    placement: str | None = None,
    adjust: bool | None = None,
    scheduler: str | None = None,
    priority: str | Callable | None = None,
    priority_factory: Callable[[PassContext], Callable] | None = None,
    cut_strategy: str | Callable | None = None,
    congestion_weight: float | None = None,
    method_label: str | None = None,
) -> list[Pass]:
    """The standard Ecmas pass sequence with optional substitutions.

    With no arguments this is exactly the paper's pipeline; each keyword
    substitutes one pass with a differently configured instance.
    """
    return [
        ProfileCircuitPass(),
        BuildChipPass(model=model_pin, error=model_error),
        InitCutTypesPass(initialisation=cut_initialisation),
        InitialMappingPass(strategy=placement),
        BandwidthAdjustPass(enabled=adjust),
        SelectSchedulerPass(
            scheduler=scheduler,
            priority=priority,
            priority_factory=priority_factory,
            cut_strategy=cut_strategy,
            congestion_weight=congestion_weight,
            method_label=method_label,
        ),
        SchedulePass(),
        ValidatePass(),
    ]


def _edpci_passes() -> list[Pass]:
    return standard_passes(
        model_pin=LS,
        model_error="EDPCI targets the lattice surgery model",
        placement="trivial",
        adjust=False,
        scheduler="limited",
        priority_factory=edp_priority_factory,
        method_label="edpci",
    )


_REGISTRY: dict[str, MethodSpec] = {}


def register_method(spec: MethodSpec) -> MethodSpec:
    """Add a method to the registry (last registration wins)."""
    _REGISTRY[spec.name] = spec
    return spec


def registered_methods() -> tuple[str, ...]:
    """All plain (non-parameterised) method names, sorted."""
    return tuple(sorted(_REGISTRY))


def ablation_families() -> tuple[str, ...]:
    """The parameterised method families (``location``, ``cut_init``, …), sorted."""
    return tuple(sorted(_ABLATIONS))


def method_catalog() -> dict:
    """A JSON-able catalogue of every compile configuration this build knows.

    Served by the compile daemon (``GET /stats``) and embedded in the docs
    site's API reference, so clients can discover valid ``method`` values
    without parsing error messages.  Plain methods list their registered
    model / resource / scheduler configuration; ablation families list the
    name grammar (``<family>:<value>``).
    """
    return {
        "methods": {
            name: {
                "model": spec.model.value,
                "resources": spec.resources,
                "scheduler": spec.scheduler,
            }
            for name, spec in sorted(_REGISTRY.items())
        },
        "ablation_families": [f"{family}:<value>" for family in ablation_families()],
    }


register_method(MethodSpec("ecmas", DD, standard_passes))
for _name, _model, _resources, _scheduler in (
    ("ecmas_dd_min", DD, "minimum", "limited"),
    ("ecmas_dd_4x", DD, "4x", "limited"),
    ("ecmas_dd_resu", DD, "sufficient", "resu"),
    ("ecmas_ls_min", LS, "minimum", "limited"),
    ("ecmas_ls_4x", LS, "4x", "limited"),
    ("ecmas_ls_resu", LS, "sufficient", "resu"),
):
    register_method(
        MethodSpec(_name, _model, standard_passes, resources=_resources, scheduler=_scheduler)
    )

register_method(
    MethodSpec(
        "autobraid",
        DD,
        lambda: standard_passes(
            model_pin=DD,
            model_error="AutoBraid targets the double defect model",
            cut_initialisation="uniform",
            placement="trivial",
            adjust=False,
            scheduler="limited",
            priority="criticality",
            cut_strategy=never_modify_strategy,
            method_label="autobraid",
        ),
    )
)
register_method(
    MethodSpec(
        "braidflash",
        DD,
        lambda: standard_passes(
            model_pin=DD,
            model_error="Braidflash targets the double defect model",
            cut_initialisation="uniform",
            placement="trivial",
            adjust=False,
            scheduler="limited",
            priority=braidflash_priority,
            cut_strategy=never_modify_strategy,
            congestion_weight=0.0,
            method_label="braidflash",
        ),
    )
)
register_method(MethodSpec("edpci", LS, _edpci_passes))
register_method(MethodSpec("edpci_min", LS, _edpci_passes, resources="minimum"))
register_method(MethodSpec("edpci_4x", LS, _edpci_passes, resources="4x"))


#: Ablation families: parameter name → (model, pass-substitution factory).
_ABLATIONS: dict[str, Callable[[str], MethodSpec]] = {
    "location": lambda value: MethodSpec(
        f"location:{value}",
        DD,
        lambda: standard_passes(placement=value),
        scheduler="limited",
        relabel=f"ecmas-dd/location={value}",
    ),
    "cut_init": lambda value: MethodSpec(
        f"cut_init:{value}",
        DD,
        lambda: standard_passes(cut_initialisation=value),
        scheduler="limited",
        relabel=f"ecmas-dd/cut_init={value}",
    ),
    "gate_order": lambda value: MethodSpec(
        f"gate_order:{value}",
        LS,
        lambda: standard_passes(priority=value),
        scheduler="limited",
        relabel=f"ecmas-ls/priority={value}",
    ),
    "cut_sched": lambda value: MethodSpec(
        f"cut_sched:{value}",
        DD,
        lambda: standard_passes(cut_strategy=value),
        scheduler="limited",
        relabel=f"ecmas-dd/cut_sched={value}",
    ),
}


def resolve_method(method: str) -> MethodSpec:
    """Look up a plain or parameterised method name."""
    spec = _REGISTRY.get(method)
    if spec is not None:
        return spec
    if ":" in method:
        family, _, value = method.partition(":")
        factory = _ABLATIONS.get(family)
        if factory is not None and value:
            return factory(value)
    raise ReproError(
        f"unknown evaluation method {method!r}; known methods: {', '.join(registered_methods())} "
        f"and the ablation families {', '.join(sorted(_ABLATIONS))}:<value>"
    )


def validate_methods(methods: Sequence[str]) -> None:
    """Resolve every method name up front, naming all unknown ones at once.

    The batch CLI calls this before spinning up a worker pool, so one typo in
    a method list fails fast with the full catalogue instead of surfacing as
    a per-job :class:`~repro.pipeline.batch.BatchFailure` after the fan-out.
    """
    unknown = []
    for method in methods:
        try:
            resolve_method(method)
        except ReproError:
            unknown.append(method)
    if unknown:
        raise ReproError(
            f"unknown evaluation method(s): {', '.join(unknown)}; known methods: "
            f"{', '.join(registered_methods())} and the ablation families "
            f"{', '.join(sorted(_ABLATIONS))}:<value>"
        )


def build_pipeline(method: str = "ecmas") -> Pipeline:
    """Construct the pipeline for a method name."""
    spec = resolve_method(method)
    return Pipeline(spec.build_passes(), name=spec.name)


def run_pipeline_method(
    circuit: Circuit,
    method: str,
    *,
    model: SurfaceCodeModel | None = None,
    chip: Chip | None = None,
    resources: str | None = None,
    scheduler: str | None = None,
    code_distance: int = 3,
    options: EcmasOptions | None = None,
    validate: bool = False,
    engine: str = "reference",
    placement: str = "reference",
    window: int | None = None,
    defects: DefectSpec | None = None,
    defect_rate: float = 0.0,
    defect_seed: int = 0,
) -> PipelineResult:
    """Compile ``circuit`` with a named method and return the full result.

    ``model`` / ``resources`` / ``scheduler`` default to the method's
    registered configuration; an explicit ``chip`` overrides ``resources``
    entirely (as in :func:`repro.compile_circuit`).  ``engine`` selects the
    Algorithm 1 hot path (``"reference"`` / ``"fast"``); both produce
    identical schedules.  ``placement`` selects the bisection core behind
    the placement strategies (``"reference"`` classic KL / ``"fast"``
    multilevel coarsen+FM); unlike ``engine`` the fast core may place qubits
    differently, within the quality bounds asserted by the placement-parity
    harness.  ``defects`` applies a defect spec to the target chip, whether
    supplied or built for the resource configuration; ``defect_rate``
    additionally degrades that chip with random, connectivity-preserving
    defects (seeded by ``defect_seed``).  ``window`` bounds the schedulers'
    working set to a sliding frontier window for very large circuits
    (schedules may differ but stay validator-clean).
    """
    spec = resolve_method(method)
    ctx = PassContext(
        circuit=circuit,
        model=model if model is not None else spec.model,
        options=options if options is not None else EcmasOptions(),
        code_distance=code_distance,
        chip=chip,
        resources=resources if resources is not None else spec.resources,
        scheduler=scheduler if scheduler is not None else spec.scheduler,
        engine=engine,
        placement_engine=placement,
        window=window,
        defects=defects,
        defect_rate=defect_rate,
        defect_seed=defect_seed,
        validate=validate,
    )
    result = Pipeline(spec.build_passes(), name=spec.name).run(ctx)
    if spec.relabel is not None:
        result.encoded.method = spec.relabel
    return result
