"""The concrete passes of the Ecmas compilation pipeline.

Each pass mirrors one stage of the paper's toolflow (Section IV):

* :class:`ProfileCircuitPass` — derive the CNOT DAG, communication graph and
  parallelism degree once, so later stages (and the scheduler auto-selection)
  never recompute them.
* :class:`BuildChipPass` — materialise the target chip for the requested
  resource configuration when the caller did not supply one.
* :class:`InitCutTypesPass` — cut-type initialisation (double defect only).
* :class:`InitialMappingPass` — tile-array shape + qubit placement.
* :class:`BandwidthAdjustPass` — corridor bandwidth adjusting; always
  assembles the final :class:`~repro.core.mapping.InitialMapping`.
* :class:`SelectSchedulerPass` — resolve Algorithm 1 vs Ecmas-ReSu, the gate
  priority and the cut-decision strategy.
* :class:`SchedulePass` — run the selected scheduling engine.
* :class:`ValidatePass` — optionally replay the schedule through the
  validator (not counted as compile time).

Baselines and ablations are these same passes with different constructor
arguments — see :mod:`repro.pipeline.registry`.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.chip.geometry import SurfaceCodeModel
from repro.core.cut_decisions import STRATEGIES as CUT_STRATEGIES
from repro.core.cut_types import (
    bipartite_prefix_cut_types,
    maxcut_cut_types,
    random_cut_types,
    uniform_cut_types,
)
from repro.core.ecmas import default_chip
from repro.core.mapping import (
    InitialMapping,
    adjust_bandwidth,
    determine_shape,
    establish_placement,
)
from repro.core.metrics import chip_communication_capacity
from repro.core.priorities import circuit_order_priority, criticality_priority, descendant_priority
from repro.core.engines import check_engine
from repro.core.resu import schedule_resu_double_defect, schedule_resu_lattice_surgery
from repro.core.scheduler_dd import DoubleDefectScheduler
from repro.core.scheduler_ls import LatticeSurgeryScheduler
from repro.errors import SchedulingError
from repro.partition.placement import check_placement_engine, communication_cost
from repro.pipeline.framework import Pass, PassContext

PRIORITIES: dict[str, Callable] = {
    "criticality": criticality_priority,
    "circuit_order": circuit_order_priority,
    "descendants": descendant_priority,
}

#: Default congestion weight of the Algorithm 1 schedulers.
DEFAULT_CONGESTION_WEIGHT = 0.25


class ProfileCircuitPass(Pass):
    """Derive the CNOT DAG and communication graph shared by later stages.

    The parallelism degree is *not* computed here: Para-Finding is only
    needed by ``scheduler="auto"`` / ``resources="sufficient"``, so it is
    derived lazily via :meth:`PassContext.ensure_parallelism`.
    """

    name = "profile"

    def run(self, ctx: PassContext) -> None:
        """Derive the DAG and communication graph into ``ctx``."""
        circuit = ctx.circuit
        ctx.dag = circuit.dag()
        ctx.comm_graph = circuit.communication_graph()
        ctx.artifacts["profile"] = {
            "num_qubits": circuit.num_qubits,
            "num_cnots": circuit.num_cnots,
        }


class BuildChipPass(Pass):
    """Build the chip for the requested resource configuration.

    A chip supplied by the caller (``ctx.chip``) always wins; ``model`` pins
    the surface-code model a baseline targets and rejects mismatched chips.
    """

    name = "build_chip"

    def __init__(self, model: SurfaceCodeModel | None = None, error: str | None = None):
        self._model = model
        self._error = error

    def run(self, ctx: PassContext) -> None:
        """Materialise (or degrade) the target chip on ``ctx``."""
        if self._model is not None:
            ctx.model = self._model
            if ctx.chip is not None and ctx.chip.model is not self._model:
                raise SchedulingError(self._error or f"chip model must be {self._model.name}")
        if ctx.chip is None:
            parallelism = ctx.ensure_parallelism() if ctx.resources == "sufficient" else None
            ctx.chip = default_chip(
                ctx.circuit,
                ctx.model,
                resources=ctx.resources,
                code_distance=ctx.code_distance,
                parallelism=parallelism,
            )
        if ctx.defects is not None:
            ctx.chip = ctx.chip.with_defects(ctx.defects)
        if ctx.defect_rate:
            from repro.chip.defects import random_defects

            ctx.chip = ctx.chip.with_defects(
                random_defects(
                    ctx.chip,
                    ctx.defect_rate,
                    seed=ctx.defect_seed,
                    min_alive_tiles=ctx.circuit.num_qubits,
                )
            )


class InitCutTypesPass(Pass):
    """Cut-type initialisation for the double defect model.

    ``initialisation`` overrides ``ctx.options.cut_initialisation`` (used by
    the AutoBraid/Braidflash baselines, which are pinned to ``"uniform"``).
    Lattice surgery has no cut types; the pass is a no-op there.
    """

    name = "init_cut_types"

    def __init__(self, initialisation: str | None = None):
        self._initialisation = initialisation

    def run(self, ctx: PassContext) -> None:
        """Assign initial cut types for the double defect model."""
        if ctx.model is not SurfaceCodeModel.DOUBLE_DEFECT:
            ctx.cut_types = None
            return
        name = self._initialisation or ctx.options.cut_initialisation
        circuit, seed = ctx.circuit, ctx.options.seed
        if name == "bipartite_prefix":
            ctx.cut_types = bipartite_prefix_cut_types(ctx.require_dag(), circuit.num_qubits)
        elif name == "random":
            ctx.cut_types = random_cut_types(circuit.num_qubits, seed=seed)
        elif name == "maxcut":
            ctx.cut_types = maxcut_cut_types(ctx.require_comm_graph(), seed=seed)
        elif name == "uniform":
            ctx.cut_types = uniform_cut_types(circuit.num_qubits)
        else:
            raise SchedulingError(f"unknown cut initialisation {name!r}")


class InitialMappingPass(Pass):
    """Shape determining + qubit placement (pre-processing steps 1 and 2)."""

    name = "initial_mapping"

    def __init__(self, strategy: str | None = None, attempts: int | None = None):
        self._strategy = strategy
        self._attempts = attempts

    def run(self, ctx: PassContext) -> None:
        """Determine the tile-array shape and place the qubits."""
        chip = ctx.require_chip()
        graph = ctx.require_comm_graph()
        strategy = self._strategy or ctx.options.placement_strategy
        attempts = self._attempts if self._attempts is not None else ctx.options.placement_attempts
        ctx.shape = determine_shape(ctx.circuit.num_qubits, chip)
        ctx.placement = establish_placement(
            graph,
            ctx.shape,
            strategy=strategy,
            attempts=attempts,
            seed=ctx.options.seed,
            dead=chip.defects.dead_set(),
            placement_engine=check_placement_engine(ctx.placement_engine),
            chip=chip,
        )
        ctx.placement.validate(chip)
        # slot_distance is Manhattan on square chips (bit-identical costs)
        # and BFS hop distance on graph chips.
        ctx.mapping_cost = communication_cost(graph, ctx.placement, distance=chip.slot_distance)


class BandwidthAdjustPass(Pass):
    """Bandwidth adjusting (pre-processing step 3) + mapping assembly.

    ``enabled`` overrides ``ctx.options.adjust_bandwidth`` (baselines pin it
    to ``False``).  The final :class:`InitialMapping` is always assembled
    here, so this pass must run even when adjusting is disabled.
    """

    name = "bandwidth_adjust"

    def __init__(self, enabled: bool | None = None):
        self._enabled = enabled

    def run(self, ctx: PassContext) -> None:
        """Redistribute corridor lanes and assemble the mapping."""
        chip = ctx.require_chip()
        if ctx.placement is None or ctx.shape is None or ctx.mapping_cost is None:
            raise SchedulingError("no placement in context — run InitialMapping first")
        enabled = self._enabled if self._enabled is not None else ctx.options.adjust_bandwidth
        if enabled:
            chip = adjust_bandwidth(chip, ctx.placement, ctx.require_comm_graph(), engine=ctx.engine)
            ctx.chip = chip
        ctx.mapping = InitialMapping(
            chip=chip,
            placement=ctx.placement,
            cut_types=ctx.cut_types,
            shape=ctx.shape,
            mapping_cost=ctx.mapping_cost,
        )


class SelectSchedulerPass(Pass):
    """Resolve the scheduling engine and its strategy functions.

    Parameters
    ----------
    scheduler:
        Overrides ``ctx.scheduler`` (``"auto"`` / ``"limited"`` / ``"resu"``).
    priority:
        A priority name (looked up in :data:`PRIORITIES`) or a priority
        function; defaults to ``ctx.options.priority``.
    priority_factory:
        A callable ``(ctx) -> priority_fn`` for priorities that depend on
        earlier artifacts (EDPCI orders gates by placed tile separation).
    cut_strategy:
        A cut-decision strategy name or function; defaults to
        ``ctx.options.cut_strategy``.
    congestion_weight:
        Router congestion weight; baselines with plain routers pass ``0.0``.
    method_label:
        Method string stamped on the encoded circuit (``None`` keeps the
        engine's default, e.g. ``"ecmas-dd"``).
    engine:
        Overrides ``ctx.engine`` (``"reference"`` / ``"fast"``); the fast
        engine swaps the Algorithm 1 hot path for incremental ready-set
        maintenance plus landmark A* routing, with identical schedules.
    """

    name = "select_scheduler"

    def __init__(
        self,
        scheduler: str | None = None,
        priority: str | Callable | None = None,
        priority_factory: Callable[[PassContext], Callable] | None = None,
        cut_strategy: str | Callable | None = None,
        congestion_weight: float | None = None,
        method_label: str | None = None,
        engine: str | None = None,
    ):
        self._scheduler = scheduler
        self._priority = priority
        self._priority_factory = priority_factory
        self._cut_strategy = cut_strategy
        self._congestion_weight = congestion_weight
        self._method_label = method_label
        self._engine = engine

    def run(self, ctx: PassContext) -> None:
        """Resolve the scheduler choice and strategy functions onto ``ctx``."""
        ctx.engine = check_engine(self._engine or ctx.engine)
        scheduler = self._scheduler or ctx.scheduler
        if scheduler == "auto":
            parallelism = ctx.ensure_parallelism()
            ctx.use_resu = chip_communication_capacity(ctx.require_mapping().chip) >= parallelism
        elif scheduler == "resu":
            ctx.use_resu = True
        elif scheduler == "limited":
            ctx.use_resu = False
        else:
            raise SchedulingError(f"unknown scheduler {scheduler!r}")

        if self._priority_factory is not None:
            ctx.priority_fn = self._priority_factory(ctx)
        else:
            priority = self._priority or ctx.options.priority
            if callable(priority):
                ctx.priority_fn = priority
            else:
                try:
                    ctx.priority_fn = PRIORITIES[priority]
                except KeyError:
                    raise SchedulingError(f"unknown priority {priority!r}") from None

        cut_strategy = self._cut_strategy or ctx.options.cut_strategy
        if callable(cut_strategy):
            ctx.cut_strategy_fn = cut_strategy
        else:
            try:
                ctx.cut_strategy_fn = CUT_STRATEGIES[cut_strategy]
            except KeyError:
                raise SchedulingError(f"unknown cut decision strategy {cut_strategy!r}") from None

        ctx.congestion_weight = (
            self._congestion_weight
            if self._congestion_weight is not None
            else DEFAULT_CONGESTION_WEIGHT
        )
        ctx.method_label = self._method_label


class SchedulePass(Pass):
    """Run the selected scheduling engine and store the encoded circuit."""

    name = "schedule"

    def run(self, ctx: PassContext) -> None:
        """Run the selected scheduler; stores ``ctx.encoded`` (and counters)."""
        mapping = ctx.require_mapping()
        if ctx.use_resu is None or ctx.priority_fn is None or ctx.cut_strategy_fn is None:
            raise SchedulingError("scheduler not selected — run SelectScheduler first")
        circuit, label = ctx.circuit, ctx.method_label
        scheduler = None
        if ctx.model is SurfaceCodeModel.DOUBLE_DEFECT:
            if ctx.use_resu:
                ctx.encoded = schedule_resu_double_defect(
                    circuit, mapping, **({"method": label} if label else {})
                )
            else:
                scheduler = DoubleDefectScheduler(
                    circuit,
                    mapping,
                    priority=ctx.priority_fn,
                    cut_strategy=ctx.cut_strategy_fn,
                    congestion_weight=ctx.congestion_weight,
                    engine=ctx.engine,
                    dag=ctx.dag,
                    window=ctx.window,
                    **({"method": label} if label else {}),
                )
        else:
            if ctx.use_resu:
                ctx.encoded = schedule_resu_lattice_surgery(
                    circuit, mapping, **({"method": label} if label else {})
                )
            else:
                scheduler = LatticeSurgeryScheduler(
                    circuit,
                    mapping,
                    priority=ctx.priority_fn,
                    congestion_weight=ctx.congestion_weight,
                    engine=ctx.engine,
                    dag=ctx.dag,
                    window=ctx.window,
                    **({"method": label} if label else {}),
                )
        if scheduler is not None:
            ctx.encoded = scheduler.run()
            ctx.artifacts["engine_counters"] = scheduler.counters.as_dict()


class ValidatePass(Pass):
    """Replay the schedule through the validator when ``ctx.validate`` is set.

    Validation is instrumentation, not compilation, so its time never counts
    towards ``compile_seconds``.
    """

    name = "validate"
    counts_as_compile = False

    def run(self, ctx: PassContext) -> None:
        """Replay the schedule through the validator when requested."""
        if not ctx.validate:
            return
        from repro.verify import validate_encoded_circuit

        report = validate_encoded_circuit(ctx.circuit, ctx.require_encoded())
        ctx.artifacts["validation"] = report
        report.raise_if_invalid()
