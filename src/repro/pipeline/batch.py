"""Streaming parallel batch evaluation with a tiered, sharded result cache.

The evaluation tables and figures all reduce to the same shape of work: a
list of ``(circuit, method)`` jobs, each producing one
:class:`~repro.eval.runner.ExperimentRecord`.  :func:`run_batch` fans such a
list across a :mod:`multiprocessing` pool and memoises results on disk, keyed
by a SHA-256 fingerprint of everything that determines the outcome — the
circuit's gate list, the method name, the chip, the code distance and the
options.  Because every compile is deterministic for a fixed seed, a cache
hit is exact: a warm rerun of a table recompiles nothing.

The engine is *streaming* and *fault-isolating*:

* results are consumed as they complete (``imap_unordered``), and each record
  is persisted to the cache the moment it lands — killing a long sweep
  mid-run loses only the jobs still in flight, and a rerun warm-starts from
  everything already finished;
* a job that raises does not tear down the pool: the exception is captured
  as a structured :class:`BatchFailure` entry (method, circuit, traceback,
  wall-clock) on the :class:`BatchResult` while sibling jobs run to
  completion, leaving ``None`` at the failed job's position in ``records``;
* a ``progress`` callback receives a :class:`BatchProgress` snapshot after
  the cache scan and after every completion, so long sweeps can report live
  ``done/failed/cached`` counts.

The :class:`ResultCache` itself is two-tiered: JSON files on disk, sharded
into ``<fingerprint[:2]>/`` subdirectories so million-record caches never put
every entry in one directory, below a bounded in-memory LRU of serialised
records that absorbs repeated lookups within a process.  Corrupt disk entries
self-heal (the unreadable file is deleted on the way to a miss), and writes
go through a per-writer unique temp file, so concurrent processes can share
one cache directory safely.

Example
-------
>>> from repro.circuits.generators import get_benchmark
>>> from repro.pipeline.batch import BatchJob, run_batch
>>> jobs = [BatchJob(get_benchmark("dnn_n8").build(), m)
...         for m in ("autobraid", "ecmas_dd_min")]
>>> result = run_batch(jobs, workers=2)
>>> [r.method for r in result.records]
['autobraid', 'ecmas_dd_min']
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
import traceback
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path

from repro.chip.chip import Chip
from repro.chip.defects import DefectSpec
from repro.circuits.circuit import Circuit
from repro.core.ecmas import EcmasOptions

#: Bump when a change invalidates previously cached results (scheduler or
#: record format changes).  2: canonical routing tie-break + engine field.
#: 3: defect-aware chips — the chip key carries the defect spec, jobs carry a
#: ``defects`` field, and the ReSu cut-remap fix changed ReSu schedules.
#: (The streaming rework did not bump it: records are bit-identical to the
#: barrier engine's, and pre-shard flat entries are still found on disk.)
#: 4: placement-engine field — the fast multilevel placement core produces
#: different (parity-bounded) placements, so ``placement`` is part of result
#: identity and pre-knob records must not be served for either value.
CACHE_FORMAT_VERSION = 5


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` (read at call time) or ``~/.cache/repro``.

    Resolved lazily so that setting the environment variable *after*
    ``repro`` is imported (tests, service deployments) still takes effect on
    the next :class:`ResultCache` construction.
    """
    configured = os.environ.get("REPRO_CACHE_DIR", "")
    return Path(configured) if configured else Path.home() / ".cache" / "repro"


@dataclass(frozen=True)
class BatchJob:
    """One (circuit, method) compilation request."""

    circuit: Circuit
    method: str
    circuit_name: str | None = None
    code_distance: int = 3
    chip: Chip | None = None
    options: EcmasOptions | None = None
    paper_cycles: int | None = None
    validate: bool = False
    #: Algorithm 1 engine ("reference" / "fast").  Part of the fingerprint
    #: even though schedules are engine-independent, because the cached
    #: record carries engine-specific wall-clock times and counters.
    engine: str = "reference"
    #: Placement bisection core ("reference" / "fast").  Part of the
    #: fingerprint because — unlike ``engine`` — the fast multilevel core
    #: genuinely changes placements (within parity-harness bounds), so the
    #: two values are different experiments.
    placement: str = "reference"
    #: Defect spec applied to the target chip (see BuildChipPass).  Part of
    #: the fingerprint: the same circuit on a degraded chip is a different
    #: experiment.
    defects: DefectSpec | None = None

    def fingerprint(self) -> str:
        """Content hash identifying this job's result."""
        from repro import __version__

        payload = {
            "v": CACHE_FORMAT_VERSION,
            "repro": __version__,
            "circuit": circuit_key(self.circuit),
            "method": self.method,
            "code_distance": self.code_distance,
            "chip": chip_key(self.chip),
            "options": asdict(self.options) if self.options is not None else None,
            "validate": self.validate,
            "engine": self.engine,
            "placement": self.placement,
            "defects": self.defects.key() if self.defects is not None else None,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def circuit_key(circuit: Circuit) -> list:
    """JSON-able content key of a circuit: qubit count plus the full gate list.

    Shared by the batch-cache fingerprint and the service layer's warm-state
    bookkeeping — two circuits with equal keys compile identically.
    """
    return [
        circuit.num_qubits,
        [[g.name, list(g.qubits), list(g.params)] for g in circuit],
    ]


def chip_key(chip: Chip | None) -> list | None:
    """JSON-able content key of a chip (``None`` for "method default chip").

    Covers everything that affects compilation: model, code distance, tile
    array, corridor bandwidths, side length and the defect spec.  The service
    layer keys its warm per-chip state (routing graph, landmark tables) by
    this same value, so cache identity and warm-state identity never drift.
    """
    if chip is None:
        return None
    return [
        chip.model.name,
        chip.code_distance,
        chip.tile_rows,
        chip.tile_cols,
        list(chip.h_bandwidths),
        list(chip.v_bandwidths),
        chip.side,
        chip.defects.key(),
        chip.tile_graph.key() if chip.tile_graph is not None else None,
    ]


def build_batch_jobs(
    circuits: "list[tuple[str, Circuit]]",
    methods: list[str],
    *,
    code_distance: int = 3,
    validate: bool = False,
    engine: str = "reference",
    placement: str = "reference",
    chip: Chip | None = None,
    options: EcmasOptions | None = None,
    defects: DefectSpec | None = None,
) -> list[BatchJob]:
    """Construct the circuits × methods job matrix shared by the CLI and service.

    ``circuits`` is a list of ``(name, circuit)`` pairs; the job list is
    ordered circuit-major (every method of the first circuit, then the
    second…), matching the historical ``repro batch`` output order.  All
    remaining knobs apply uniformly to every job, which is exactly the shape
    of a ``/batch`` request.
    """
    return [
        BatchJob(
            circuit=circuit,
            method=method,
            circuit_name=name,
            code_distance=code_distance,
            chip=chip,
            options=options,
            validate=validate,
            engine=engine,
            placement=placement,
            defects=defects,
        )
        for name, circuit in circuits
        for method in methods
    ]


class ResultCache:
    """Two-tier cache of JSON-serialised experiment records, one per job hash.

    Disk entries live under ``<directory>/<fingerprint[:2]>/<fingerprint>.json``
    (pre-sharding flat entries are still found and served); an in-memory LRU
    of at most ``memory_limit`` serialised records sits in front of the disk
    tier.  ``directory=None`` resolves :func:`default_cache_dir` at
    construction time, honouring ``$REPRO_CACHE_DIR`` changes made after
    import.
    """

    def __init__(
        self,
        directory: Path | str | None = None,
        memory_limit: int = 512,
    ):
        self.directory = Path(
            directory if directory is not None else default_cache_dir()
        ).expanduser()
        self.memory_limit = max(0, int(memory_limit))
        self._memory: OrderedDict[str, str] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def _legacy_path(self, key: str) -> Path:
        """Flat pre-sharding location, still honoured on reads."""
        return self.directory / f"{key}.json"

    def _entry_paths(self):
        """Every record file, sharded and legacy-flat alike."""
        if not self.directory.is_dir():
            return
        yield from self.directory.glob("*.json")
        yield from self.directory.glob("??/*.json")

    def _drop_empty_shards(self) -> None:
        if not self.directory.is_dir():
            return
        for shard in self.directory.glob("??"):
            if shard.is_dir():
                try:
                    shard.rmdir()  # only succeeds when the shard is empty
                except OSError:
                    pass

    def _remember(self, key: str, text: str) -> None:
        if self.memory_limit == 0:
            return
        self._memory[key] = text
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_limit:
            self._memory.popitem(last=False)

    def get(self, job: BatchJob):
        """Return the cached record for ``job``, or ``None`` (counts hit/miss)."""
        from repro.eval.runner import ExperimentRecord

        key = job.fingerprint()
        record = None
        text = self._memory.get(key)
        if text is not None:
            # The memory tier only ever holds text that parsed successfully.
            self._memory.move_to_end(key)
            record = ExperimentRecord.from_dict(json.loads(text))
        else:
            for path in (self._path(key), self._legacy_path(key)):
                try:
                    text = path.read_text(encoding="utf-8")
                except OSError:
                    continue
                try:
                    record = ExperimentRecord.from_dict(json.loads(text))
                except (ValueError, TypeError):
                    # Corrupt or schema-skewed entries self-heal: delete the
                    # unreadable file on the way to a miss so the rerun's
                    # fresh record replaces it for good.
                    path.unlink(missing_ok=True)
                    continue
                self._remember(key, text)
                break
        if record is None:
            self.misses += 1
            return None
        self.hits += 1
        # Presentation metadata is not part of the fingerprint; restamp it so
        # a hit returns exactly what a fresh compile of this job would.
        record.circuit = job.circuit_name or job.circuit.name
        record.paper_cycles = job.paper_cycles
        return record

    def put(self, job: BatchJob, record) -> None:
        """Persist ``record`` for ``job`` (atomically, concurrency-safe)."""
        key = job.fingerprint()
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(record.to_dict(), sort_keys=True)
        # A per-writer unique temp name: processes sharing a cache directory
        # must not interleave writes through one well-known tmp file.
        tmp = path.parent / f".{key}.{os.getpid()}.{os.urandom(4).hex()}.tmp"
        try:
            tmp.write_text(text, encoding="utf-8")
            tmp.replace(path)
        finally:
            tmp.unlink(missing_ok=True)
        self._remember(key, text)

    def clear(self) -> int:
        """Delete every cached record; returns the number removed."""
        removed = 0
        for path in list(self._entry_paths()):
            path.unlink(missing_ok=True)
            removed += 1
        self._memory.clear()
        self._drop_empty_shards()
        return removed

    def prune(self, older_than_seconds: float) -> int:
        """Delete records not rewritten in the last ``older_than_seconds``."""
        # Cache maintenance, not compilation: the prune cutoff is wall-clock
        # by definition.  # lint: disable=DET004
        cutoff = time.time() - older_than_seconds
        removed = 0
        for path in list(self._entry_paths()):
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink(missing_ok=True)
                    removed += 1
            except OSError:
                continue
        self._memory.clear()
        self._drop_empty_shards()
        return removed

    def counters(self) -> dict:
        """The in-memory counters only — O(1), safe to poll on a hot path.

        Unlike :meth:`stats`, this never touches the disk tier, so a
        monitoring endpoint can call it per-scrape even over a
        million-record cache directory.
        """
        return {
            "directory": str(self.directory),
            "memory_entries": len(self._memory),
            "hits": self.hits,
            "misses": self.misses,
        }

    def stats(self) -> dict:
        """Entry/size/shard counters for ``repro cache stats`` and monitoring.

        Walks (and ``stat``\\ s) every entry file, so cost scales with the
        cache size; prefer :meth:`counters` for frequent polling."""
        entries = 0
        total_bytes = 0
        for path in self._entry_paths():
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue
            entries += 1
        shards = 0
        if self.directory.is_dir():
            shards = sum(1 for p in self.directory.glob("??") if p.is_dir())
        return {
            "directory": str(self.directory),
            "entries": entries,
            "bytes": total_bytes,
            "shards": shards,
            "memory_entries": len(self._memory),
            "hits": self.hits,
            "misses": self.misses,
        }


@dataclass(frozen=True)
class BatchFailure:
    """One job that raised instead of producing a record."""

    index: int
    method: str
    circuit: str
    error: str
    traceback: str
    seconds: float


@dataclass
class BatchProgress:
    """Live counters handed to :func:`run_batch`'s progress callback.

    ``done`` counts compiles finished this run, ``cached`` jobs served from
    the cache scan, ``failed`` captured :class:`BatchFailure` entries; the
    run is over when :attr:`finished` reaches ``total``.  When the event that
    produced this snapshot was a job failure, ``last_failure`` carries it, so
    streaming consumers (CLI progress lines, table builders) can name the
    failed cell without waiting for the final :class:`BatchResult`.
    """

    total: int
    done: int = 0
    failed: int = 0
    cached: int = 0
    last_failure: BatchFailure | None = None

    @property
    def finished(self) -> int:
        """Jobs resolved so far, by any means (compiled, cached or failed)."""
        return self.done + self.failed + self.cached


@dataclass
class BatchResult:
    """Records for every job (in job order) plus failures and cache counters.

    ``records[i]`` is ``None`` exactly when job ``i`` appears in
    ``failures`` (sorted by job index).
    """

    records: list = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 1
    failures: list[BatchFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every job produced a record."""
        return not self.failures

    @property
    def recompilations(self) -> int:
        """Jobs that were actually compiled (i.e. not served from the cache)."""
        return sum(1 for record in self.records if record is not None) - self.cache_hits


def execute_job(job: BatchJob):
    """Compile one job in the current process (raises on failure)."""
    from repro.eval.runner import run_method

    return run_method(
        job.circuit,
        job.method,
        circuit_name=job.circuit_name,
        code_distance=job.code_distance,
        chip=job.chip,
        paper_cycles=job.paper_cycles,
        validate=job.validate,
        options=job.options,
        engine=job.engine,
        placement=job.placement,
        defects=job.defects,
    )


def _execute_indexed(item: tuple[int, BatchJob]):
    """Pool worker entry point: run one job, capturing any exception.

    Returns ``(index, record, None)`` on success and
    ``(index, None, BatchFailure)`` when the compile raised — the failure
    travels back as data, so one bad job never tears down the pool.
    """
    index, job = item
    started = time.perf_counter()
    try:
        return index, execute_job(job), None
    except Exception as exc:
        failure = BatchFailure(
            index=index,
            method=job.method,
            circuit=job.circuit_name or job.circuit.name,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
            seconds=time.perf_counter() - started,
        )
        return index, None, failure


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker count (``None``/``0`` → one per CPU).

    Negative counts are rejected: silently treating them as "one per CPU"
    hid sign bugs in callers.
    """
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(
            f"workers must be a positive integer, or None/0 for one per CPU; got {workers}"
        )
    return workers


def run_batch(
    jobs: list[BatchJob],
    workers: int | None = 1,
    cache: ResultCache | Path | str | None = None,
    progress: Callable[[BatchProgress], None] | None = None,
) -> BatchResult:
    """Run every job, streaming cache misses through a process pool.

    Completed records are written to the cache *as they finish*, so an
    interrupted run warm-starts from everything already done, and a job that
    raises becomes a :class:`BatchFailure` entry while its siblings complete.

    Parameters
    ----------
    jobs:
        The compilation requests; the result's ``records`` match their order
        (``None`` where the job failed).
    workers:
        Pool size.  ``1`` (the default) runs in-process with no pool overhead;
        ``None`` or ``0`` uses one worker per CPU; negatives raise.
    cache:
        A :class:`ResultCache`, a directory path to build one from, or
        ``None`` to disable caching.
    progress:
        Optional callback receiving a fresh :class:`BatchProgress` snapshot
        after the cache scan and after every job completion.
    """
    workers = resolve_workers(workers)
    if isinstance(cache, (str, Path)):
        cache = ResultCache(cache)

    result = BatchResult(records=[None] * len(jobs), workers=workers)
    tracker = BatchProgress(total=len(jobs))
    pending: list[tuple[int, BatchJob]] = []
    for index, job in enumerate(jobs):
        record = cache.get(job) if cache is not None else None
        if record is not None:
            result.records[index] = record
            result.cache_hits += 1
            tracker.cached += 1
        else:
            pending.append((index, job))
            if cache is not None:
                result.cache_misses += 1
    if progress is not None:
        progress(replace(tracker))

    job_of = dict(pending)

    def finish(index: int, record, failure: BatchFailure | None) -> None:
        # Persist before reporting: a progress callback that interrupts the
        # run must never lose the record that triggered it.
        if failure is None:
            result.records[index] = record
            if cache is not None:
                cache.put(job_of[index], record)
            tracker.done += 1
        else:
            result.failures.append(failure)
            tracker.failed += 1
        if progress is not None:
            progress(replace(tracker, last_failure=failure))

    if pending:
        if workers > 1 and len(pending) > 1:
            with multiprocessing.Pool(min(workers, len(pending))) as pool:
                for index, record, failure in pool.imap_unordered(_execute_indexed, pending):
                    finish(index, record, failure)
        else:
            for item in pending:
                index, record, failure = _execute_indexed(item)
                finish(index, record, failure)
    # imap_unordered delivers in completion order; report deterministically.
    result.failures.sort(key=lambda f: f.index)
    return result
