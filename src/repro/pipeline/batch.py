"""Parallel batch evaluation with a content-keyed on-disk result cache.

The evaluation tables and figures all reduce to the same shape of work: a
list of ``(circuit, method)`` jobs, each producing one
:class:`~repro.eval.runner.ExperimentRecord`.  :func:`run_batch` fans such a
list across a :mod:`multiprocessing` pool and memoises results on disk, keyed
by a SHA-256 fingerprint of everything that determines the outcome — the
circuit's gate list, the method name, the chip, the code distance and the
options.  Because every compile is deterministic for a fixed seed, a cache
hit is exact: a warm rerun of a table recompiles nothing.

Example
-------
>>> from repro.circuits.generators import get_benchmark
>>> from repro.pipeline.batch import BatchJob, run_batch
>>> jobs = [BatchJob(get_benchmark("dnn_n8").build(), m)
...         for m in ("autobraid", "ecmas_dd_min")]
>>> result = run_batch(jobs, workers=2)
>>> [r.method for r in result.records]
['autobraid', 'ecmas_dd_min']
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.chip.chip import Chip
from repro.chip.defects import DefectSpec
from repro.circuits.circuit import Circuit
from repro.core.ecmas import EcmasOptions

#: Bump when a change invalidates previously cached results (scheduler or
#: record format changes).  2: canonical routing tie-break + engine field.
#: 3: defect-aware chips — the chip key carries the defect spec, jobs carry a
#: ``defects`` field, and the ReSu cut-remap fix changed ReSu schedules.
CACHE_FORMAT_VERSION = 3

#: Default cache location, overridable via the ``REPRO_CACHE_DIR`` variable.
DEFAULT_CACHE_DIR = Path(
    os.environ.get("REPRO_CACHE_DIR", Path.home() / ".cache" / "repro")
)


@dataclass(frozen=True)
class BatchJob:
    """One (circuit, method) compilation request."""

    circuit: Circuit
    method: str
    circuit_name: str | None = None
    code_distance: int = 3
    chip: Chip | None = None
    options: EcmasOptions | None = None
    paper_cycles: int | None = None
    validate: bool = False
    #: Algorithm 1 engine ("reference" / "fast").  Part of the fingerprint
    #: even though schedules are engine-independent, because the cached
    #: record carries engine-specific wall-clock times and counters.
    engine: str = "reference"
    #: Defect spec applied to the target chip (see BuildChipPass).  Part of
    #: the fingerprint: the same circuit on a degraded chip is a different
    #: experiment.
    defects: DefectSpec | None = None

    def fingerprint(self) -> str:
        """Content hash identifying this job's result."""
        from repro import __version__

        payload = {
            "v": CACHE_FORMAT_VERSION,
            "repro": __version__,
            "circuit": _circuit_key(self.circuit),
            "method": self.method,
            "code_distance": self.code_distance,
            "chip": _chip_key(self.chip),
            "options": asdict(self.options) if self.options is not None else None,
            "validate": self.validate,
            "engine": self.engine,
            "defects": self.defects.key() if self.defects is not None else None,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _circuit_key(circuit: Circuit) -> list:
    return [
        circuit.num_qubits,
        [[g.name, list(g.qubits), list(g.params)] for g in circuit],
    ]


def _chip_key(chip: Chip | None) -> list | None:
    if chip is None:
        return None
    return [
        chip.model.name,
        chip.code_distance,
        chip.tile_rows,
        chip.tile_cols,
        list(chip.h_bandwidths),
        list(chip.v_bandwidths),
        chip.side,
        chip.defects.key(),
    ]


class ResultCache:
    """A directory of JSON-serialised experiment records, one per job hash."""

    def __init__(self, directory: Path | str = DEFAULT_CACHE_DIR):
        self.directory = Path(directory).expanduser()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, job: BatchJob):
        """Return the cached record for ``job``, or ``None`` (counts hit/miss)."""
        from repro.eval.runner import ExperimentRecord

        path = self._path(job.fingerprint())
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            record = ExperimentRecord(**payload)
        except (OSError, ValueError, TypeError):
            # Unreadable, corrupt or schema-skewed entries degrade to a miss.
            self.misses += 1
            return None
        self.hits += 1
        # Presentation metadata is not part of the fingerprint; restamp it so
        # a hit returns exactly what a fresh compile of this job would.
        record.circuit = job.circuit_name or job.circuit.name
        record.paper_cycles = job.paper_cycles
        return record

    def put(self, job: BatchJob, record) -> None:
        """Persist ``record`` for ``job``."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._path(job.fingerprint())
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(asdict(record), sort_keys=True), encoding="utf-8")
        tmp.replace(path)

    def clear(self) -> int:
        """Delete every cached record; returns the number removed."""
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*.json"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed


@dataclass
class BatchResult:
    """Records for every job (in job order) plus cache counters."""

    records: list = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    workers: int = 1

    @property
    def recompilations(self) -> int:
        """Jobs that were actually compiled (i.e. not served from the cache)."""
        return len(self.records) - self.cache_hits


def execute_job(job: BatchJob):
    """Compile one job in the current process (the pool worker entry point)."""
    from repro.eval.runner import run_method

    return run_method(
        job.circuit,
        job.method,
        circuit_name=job.circuit_name,
        code_distance=job.code_distance,
        chip=job.chip,
        paper_cycles=job.paper_cycles,
        validate=job.validate,
        options=job.options,
        engine=job.engine,
        defects=job.defects,
    )


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker count (``None``/``0`` → one per CPU)."""
    if workers is None or workers <= 0:
        return os.cpu_count() or 1
    return workers


def run_batch(
    jobs: list[BatchJob],
    workers: int | None = 1,
    cache: ResultCache | Path | str | None = None,
) -> BatchResult:
    """Run every job, fanning cache misses across a process pool.

    Parameters
    ----------
    jobs:
        The compilation requests; the result's ``records`` match their order.
    workers:
        Pool size.  ``1`` (the default) runs in-process with no pool overhead;
        ``None`` or ``0`` uses one worker per CPU.
    cache:
        A :class:`ResultCache`, a directory path to build one from, or
        ``None`` to disable caching.
    """
    workers = resolve_workers(workers)
    if isinstance(cache, (str, Path)):
        cache = ResultCache(cache)

    result = BatchResult(records=[None] * len(jobs), workers=workers)
    # The cache counters are cumulative across batches; report per-batch deltas.
    hits_before = cache.hits if cache is not None else 0
    misses_before = cache.misses if cache is not None else 0
    pending: list[tuple[int, BatchJob]] = []
    for index, job in enumerate(jobs):
        record = cache.get(job) if cache is not None else None
        if record is not None:
            result.records[index] = record
        else:
            pending.append((index, job))
    if cache is not None:
        result.cache_hits = cache.hits - hits_before
        result.cache_misses = cache.misses - misses_before

    if pending:
        if workers > 1 and len(pending) > 1:
            indices = [index for index, _ in pending]
            with multiprocessing.Pool(min(workers, len(pending))) as pool:
                records = pool.map(execute_job, [job for _, job in pending], chunksize=1)
            for index, record in zip(indices, records):
                result.records[index] = record
        else:
            for index, job in pending:
                result.records[index] = execute_job(job)
        if cache is not None:
            for index, job in pending:
                cache.put(job, result.records[index])
    return result
