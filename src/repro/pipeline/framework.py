"""The pass framework: contexts, passes, pipelines and their results.

A :class:`Pipeline` is an ordered list of :class:`Pass` instances that each
transform a shared mutable :class:`PassContext`.  The standard Ecmas flow is
expressed as the pass sequence

``ProfileCircuit → BuildChip → InitCutTypes → InitialMapping →
BandwidthAdjust → SelectScheduler → Schedule → Validate``

and every baseline / ablation is the same sequence with one or two passes
substituted by a differently configured instance (see
:mod:`repro.pipeline.registry`).  Running a pipeline produces a
:class:`PipelineResult` carrying the encoded circuit together with per-stage
wall-clock timings, which is the single source of truth for compile times in
the evaluation harness.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.chip.chip import Chip
from repro.chip.defects import DefectSpec
from repro.chip.geometry import SurfaceCodeModel
from repro.circuits.circuit import Circuit
from repro.circuits.comm_graph import CommunicationGraph
from repro.circuits.dag import GateDAG
from repro.core.cut_types import CutAssignment
from repro.core.mapping import InitialMapping
from repro.core.schedule import EncodedCircuit
from repro.errors import ReproError


class PipelineError(ReproError):
    """A pass was run on a context missing one of its prerequisites."""


@dataclass
class PassContext:
    """Mutable state threaded through the passes of one compilation.

    The first block holds the compilation *request*; the remaining fields are
    artifacts filled in by passes.  Passes read the artifacts of their
    predecessors via the ``require_*`` accessors, which raise
    :class:`PipelineError` with the missing prerequisite's name instead of an
    ``AttributeError`` deep inside a scheduler.
    """

    circuit: Circuit
    model: SurfaceCodeModel
    options: "EcmasOptions"  # noqa: F821 - forward reference, see repro.core.ecmas
    code_distance: int = 3
    chip: Chip | None = None
    resources: str = "minimum"
    scheduler: str = "auto"
    #: Algorithm 1 hot-path engine: ``"reference"`` or ``"fast"`` (identical
    #: schedules; the fast engine uses incremental ready-set maintenance and
    #: landmark A* routing).  Ecmas-ReSu (Algorithm 2) ignores this knob.
    engine: str = "reference"
    #: Placement bisection core: ``"reference"`` (classic KL, the golden
    #: baseline) or ``"fast"`` (multilevel coarsen/FM gain buckets,
    #: near-linear — for n >= 500 circuits).  Unlike ``engine``, the fast
    #: core produces *different* (quality-parity-checked) placements, so the
    #: reference core stays the default everywhere.
    placement_engine: str = "reference"
    #: When set, the Algorithm 1 schedulers bound their working set to a
    #: sliding window of this many ready gates
    #: (:class:`repro.core.incremental.WindowedDagFrontier`).  Windowed
    #: schedules may differ from full-frontier ones but stay validator-clean;
    #: intended for n >= 500 / 10k+ gate circuits.  Ecmas-ReSu ignores it.
    window: int | None = None
    #: Defects applied to the target chip by BuildChip (whether the chip was
    #: supplied by the caller or built for ``resources``).  ``None`` keeps
    #: whatever defects the supplied chip already carries.
    defects: DefectSpec | None = None
    #: When positive, BuildChip additionally degrades the target chip with
    #: random, connectivity-preserving defects at this rate (seeded by
    #: ``defect_seed``), on top of ``defects`` / the chip's own spec.  Living
    #: here rather than in the CLI keeps the degraded chip exactly the one
    #: the pipeline would compile pristine.
    defect_rate: float = 0.0
    defect_seed: int = 0
    validate: bool = False

    # -- artifacts (produced by passes) -----------------------------------
    dag: GateDAG | None = None
    comm_graph: CommunicationGraph | None = None
    parallelism: int | None = None
    cut_types: CutAssignment | None = None
    shape: tuple[int, int] | None = None
    placement: object | None = None
    mapping_cost: float | None = None
    mapping: InitialMapping | None = None
    use_resu: bool | None = None
    priority_fn: Callable | None = None
    cut_strategy_fn: Callable | None = None
    congestion_weight: float | None = None
    method_label: str | None = None
    encoded: EncodedCircuit | None = None
    artifacts: dict = field(default_factory=dict)

    def require_chip(self) -> Chip:
        """The target chip (raises :class:`PipelineError` before BuildChip)."""
        if self.chip is None:
            raise PipelineError("no chip in context — run BuildChip first")
        return self.chip

    def require_dag(self) -> GateDAG:
        """The CNOT DAG (raises :class:`PipelineError` before ProfileCircuit)."""
        if self.dag is None:
            raise PipelineError("no gate DAG in context — run ProfileCircuit first")
        return self.dag

    def ensure_parallelism(self) -> int:
        """Circuit parallelism degree ``gPM``, computed lazily.

        Para-Finding is only needed by the ``"auto"`` scheduler choice and
        the ``"sufficient"`` resource configuration; methods pinned to
        ``"limited"`` never pay for it.
        """
        if self.parallelism is None:
            from repro.core.metrics import para_finding

            dag = self.require_dag()
            self.parallelism = para_finding(dag).parallelism if len(dag) else 0
        return self.parallelism

    def require_comm_graph(self) -> CommunicationGraph:
        """The communication graph (raises :class:`PipelineError` before ProfileCircuit)."""
        if self.comm_graph is None:
            raise PipelineError("no communication graph in context — run ProfileCircuit first")
        return self.comm_graph

    def require_mapping(self) -> InitialMapping:
        """The assembled mapping (raises :class:`PipelineError` before BandwidthAdjust)."""
        if self.mapping is None:
            raise PipelineError("no initial mapping in context — run BandwidthAdjust first")
        return self.mapping

    def require_encoded(self) -> EncodedCircuit:
        """The scheduled circuit (raises :class:`PipelineError` before Schedule)."""
        if self.encoded is None:
            raise PipelineError("no encoded circuit in context — run Schedule first")
        return self.encoded


class Pass:
    """One named stage of a compilation pipeline.

    Subclasses set :attr:`name` and implement :meth:`run`.  Stages whose time
    should not count towards the reported compile time (validation,
    diagnostics) set ``counts_as_compile = False``.
    """

    name: str = "pass"
    counts_as_compile: bool = True

    def run(self, ctx: PassContext) -> None:
        """Transform ``ctx`` in place (implemented by each concrete pass)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass(frozen=True)
class StageTiming:
    """Wall-clock seconds spent in one pass."""

    name: str
    seconds: float
    counts_as_compile: bool = True


@dataclass
class PipelineResult:
    """The outcome of running a pipeline: encoded circuit plus instrumentation."""

    context: PassContext
    timings: tuple[StageTiming, ...]

    @property
    def encoded(self) -> EncodedCircuit:
        """The scheduled circuit (raises if the pipeline had no Schedule pass)."""
        return self.context.require_encoded()

    @property
    def compile_seconds(self) -> float:
        """Total seconds across compile-counted stages — the one true compile time."""
        return sum(t.seconds for t in self.timings if t.counts_as_compile)

    @property
    def total_seconds(self) -> float:
        """Total seconds across all stages, including validation."""
        return sum(t.seconds for t in self.timings)

    def stage_seconds(self, name: str) -> float:
        """Seconds spent in the stage called ``name`` (0.0 when absent)."""
        return sum(t.seconds for t in self.timings if t.name == name)

    @property
    def counters(self) -> dict | None:
        """Scheduling-engine work counters (``None`` before the schedule pass).

        Filled by :class:`~repro.pipeline.passes.SchedulePass` from the
        engine's :class:`~repro.profiling.EngineCounters`: route calls,
        search-node expansions, memoized landmark tables, cycles simulated…
        """
        return self.context.artifacts.get("engine_counters")

    @property
    def engine(self) -> str:
        """The Algorithm 1 engine this compilation ran with."""
        return self.context.engine

    def timings_dict(self) -> dict[str, float]:
        """Stage name → seconds, in execution order."""
        out: dict[str, float] = {}
        for t in self.timings:
            out[t.name] = out.get(t.name, 0.0) + t.seconds
        return out


class Pipeline:
    """An ordered, immutable sequence of passes."""

    def __init__(self, passes: Iterable[Pass], name: str = "pipeline"):
        self._passes: tuple[Pass, ...] = tuple(passes)
        self.name = name

    @property
    def passes(self) -> tuple[Pass, ...]:
        """The pass instances, in execution order."""
        return self._passes

    def pass_names(self) -> tuple[str, ...]:
        """The pass names, in execution order."""
        return tuple(p.name for p in self._passes)

    def replace(self, name: str, replacement: Pass) -> "Pipeline":
        """Return a new pipeline with the pass called ``name`` substituted."""
        if name not in self.pass_names():
            raise PipelineError(f"pipeline {self.name!r} has no pass named {name!r}")
        return Pipeline(
            (replacement if p.name == name else p for p in self._passes),
            name=self.name,
        )

    def without(self, *names: str) -> "Pipeline":
        """Return a new pipeline with the named passes removed."""
        return Pipeline((p for p in self._passes if p.name not in names), name=self.name)

    def run(self, ctx: PassContext) -> PipelineResult:
        """Run every pass in order, timing each stage."""
        timings: list[StageTiming] = []
        for stage in self._passes:
            started = time.perf_counter()
            stage.run(ctx)
            timings.append(
                StageTiming(stage.name, time.perf_counter() - started, stage.counts_as_compile)
            )
        result = PipelineResult(context=ctx, timings=tuple(timings))
        if ctx.encoded is not None:
            ctx.encoded.compile_seconds = result.compile_seconds
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pipeline({self.name!r}, passes={list(self.pass_names())})"
