"""Builders for the paper's evaluation figures (Fig. 11 and Fig. 12).

Both figures evaluate QUEKO-style random circuits with 49 qubits and depth 50:

* **Figure 11** sweeps the circuit parallelism degree from 1 to 21 on the
  minimum viable chip and compares Ecmas against the model's baseline
  (EDPCI for lattice surgery, AutoBraid for double defect), averaging the
  cycle count over a group of circuits per parallelism value.
* **Figure 12** fixes two parallelism values (11 and 21) and sweeps the chip
  size (average corridor bandwidth 1–5), reporting both the cycle count and
  the compile-time ratio relative to the minimum viable chip.

The group sizes default to values that keep the sweeps tractable on a laptop;
the paper uses 50 circuits per group, which the benchmark harness can request
explicitly.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from statistics import mean

from repro.chip.chip import Chip
from repro.chip.geometry import SurfaceCodeModel
from repro.circuits.generators import parallelism_group
from repro.errors import ReproError
from repro.pipeline.batch import BatchJob, BatchProgress, BatchResult, run_batch

#: Workload parameters of the paper's scalability study.
FIGURE_NUM_QUBITS = 49
FIGURE_DEPTH = 50


def _require_complete(batch: BatchResult, what: str) -> None:
    """Figures average over whole groups, so any failed job aborts the sweep.

    Unlike a table cell (rendered as ``-``), a missing sample would silently
    skew a figure's group means; raise with the captured failure detail
    instead of letting ``None`` records surface as an AttributeError.
    """
    if batch.ok:
        return
    first = batch.failures[0]
    raise ReproError(
        f"{len(batch.failures)} {what} job(s) failed; first: {first.circuit} x "
        f"{first.method} after {first.seconds:.2f}s — {first.error}\n{first.traceback}"
    )


@dataclass
class SweepPoint:
    """One averaged data point of a figure sweep."""

    x: float
    series: str
    cycles: float
    compile_seconds: float
    extra: dict = field(default_factory=dict)


def figure11_parallelism(
    model: SurfaceCodeModel,
    parallelisms: tuple[int, ...] = tuple(range(1, 22)),
    group_size: int = 3,
    num_qubits: int = FIGURE_NUM_QUBITS,
    depth: int = FIGURE_DEPTH,
    code_distance: int = 3,
    seed: int = 0,
    jobs: int | None = 1,
    progress: Callable[[BatchProgress], None] | None = None,
    chip: Chip | None = None,
    validate: bool = False,
) -> list[SweepPoint]:
    """Figure 11: average cycles vs circuit parallelism degree on the minimum chip.

    ``chip`` pins every job to one explicit chip (e.g. a heavy-hex or sparse
    graph chip) instead of each method's minimum viable square chip, and
    ``validate`` runs the schedule validator inside every job — together they
    let the Figure 11 machinery sweep non-square geometries validator-clean.
    """
    baseline_method = "edpci_min" if model is SurfaceCodeModel.LATTICE_SURGERY else "autobraid"
    ecmas_method = "ecmas_ls_min" if model is SurfaceCodeModel.LATTICE_SURGERY else "ecmas_dd_min"
    groups = {
        parallelism: parallelism_group(
            num_qubits, depth, parallelism, group_size, seed=seed + parallelism
        )
        for parallelism in parallelisms
    }
    batch_jobs = [
        BatchJob(
            circuit=circuit,
            method=method,
            code_distance=code_distance,
            chip=chip,
            validate=validate,
        )
        for parallelism in parallelisms
        for method in (baseline_method, ecmas_method)
        for circuit in groups[parallelism]
    ]
    batch = run_batch(batch_jobs, workers=jobs, progress=progress)
    _require_complete(batch, "figure 11")
    points: list[SweepPoint] = []
    cursor = 0
    for parallelism in parallelisms:
        for method, series in ((baseline_method, "baseline"), (ecmas_method, "ecmas")):
            records = batch.records[cursor : cursor + len(groups[parallelism])]
            cursor += len(records)
            points.append(
                SweepPoint(
                    x=float(parallelism),
                    series=series,
                    cycles=mean(record.cycles for record in records),
                    compile_seconds=mean(record.compile_seconds for record in records),
                    extra={"method": method, "group_size": group_size},
                )
            )
    return points


def figure12_chip_size(
    model: SurfaceCodeModel,
    parallelisms: tuple[int, ...] = (11, 21),
    bandwidths: tuple[int, ...] = (1, 2, 3, 4, 5),
    group_size: int = 2,
    num_qubits: int = FIGURE_NUM_QUBITS,
    depth: int = FIGURE_DEPTH,
    code_distance: int = 3,
    seed: int = 0,
    jobs: int | None = 1,
    progress: Callable[[BatchProgress], None] | None = None,
) -> list[SweepPoint]:
    """Figure 12: cycles and compile-time ratio vs chip size for PM ∈ {11, 21}.

    The x value of each point is the number of physical qubits divided by
    ``d²`` (the unit of the paper's x axis), and the ``extra`` dict carries
    the compile-time ratio relative to that series' smallest chip.  The whole
    sweep runs through the batch engine, so ``jobs``/``progress`` behave as
    in :func:`figure11_parallelism`.
    """
    ecmas_method = "ecmas_ls_min" if model is SurfaceCodeModel.LATTICE_SURGERY else "ecmas_dd_min"
    baseline_method = "edpci" if model is SurfaceCodeModel.LATTICE_SURGERY else "autobraid"
    groups = {
        parallelism: parallelism_group(
            num_qubits, depth, parallelism, group_size, seed=seed + parallelism
        )
        for parallelism in parallelisms
    }
    chips = {
        bandwidth: Chip.for_bandwidth(model, num_qubits, code_distance, bandwidth)
        for bandwidth in bandwidths
    }
    batch_jobs = [
        BatchJob(
            circuit=circuit,
            method=ecmas_method if series == "ecmas" else baseline_method,
            code_distance=code_distance,
            chip=chips[bandwidth],
        )
        for parallelism in parallelisms
        for bandwidth in bandwidths
        for series in ("ecmas", "baseline")
        for circuit in groups[parallelism]
    ]
    batch = run_batch(batch_jobs, workers=jobs, progress=progress)
    _require_complete(batch, "figure 12")

    points: list[SweepPoint] = []
    cursor = 0
    for parallelism in parallelisms:
        group = groups[parallelism]
        series_points: dict[str, list[SweepPoint]] = {"ecmas": [], "baseline": []}
        for bandwidth in bandwidths:
            x = chips[bandwidth].physical_qubits / (code_distance**2)
            for series in ("ecmas", "baseline"):
                records = batch.records[cursor : cursor + len(group)]
                cursor += len(records)
                cycles_samples = [record.cycles for record in records]
                compile_samples = [record.compile_seconds for record in records]
                series_points[series].append(
                    SweepPoint(
                        x=x,
                        series=f"{series}_pm{parallelism}",
                        cycles=mean(cycles_samples),
                        compile_seconds=mean(compile_samples) if any(compile_samples) else 0.0,
                        extra={"bandwidth": bandwidth, "parallelism": parallelism},
                    )
                )
        # Compile-time ratio relative to the smallest chip of each series.
        for series_list in series_points.values():
            if not series_list:
                continue
            base = series_list[0].compile_seconds or None
            for point in series_list:
                ratio = (point.compile_seconds / base) if base else 1.0
                point.extra["compile_time_ratio"] = ratio
            points.extend(series_list)
    return points
