"""Plain-text rendering of evaluation tables and figure sweeps."""

from __future__ import annotations

from collections.abc import Sequence

from repro.eval.figures import SweepPoint


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None, title: str = "") -> str:
    """Render a list of row dicts as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {col: max(len(str(col)), max(len(_fmt(row.get(col))) for row in rows)) for col in columns}
    lines: list[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(" | ".join(_fmt(row.get(col)).ljust(widths[col]) for col in columns))
    return "\n".join(lines) + "\n"


def format_sweep(points: Sequence[SweepPoint], title: str = "") -> str:
    """Render a figure sweep as an aligned text table grouped by series."""
    rows = [
        {
            "series": point.series,
            "x": point.x,
            "cycles": round(point.cycles, 1),
            "compile_s": round(point.compile_seconds, 4),
            **{k: _round(v) for k, v in point.extra.items()},
        }
        for point in points
    ]
    return format_table(rows, title=title)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _round(value):
    if isinstance(value, float):
        return round(value, 3)
    return value
