"""Evaluation harness: experiment runner, table and figure builders, rendering."""

from repro.eval.export import rows_to_csv, rows_to_json, sweep_to_csv, sweep_to_json, write_csv, write_json
from repro.eval.figures import SweepPoint, figure11_parallelism, figure12_chip_size
from repro.eval.report import format_sweep, format_table
from repro.eval.runner import ExperimentRecord, compile_with_method, run_method
from repro.eval.tables import (
    TABLE1_METHODS,
    summarise_reduction,
    table1_overview,
    table2_location,
    table3_cut_initialisation,
    table4_gate_scheduling,
    table5_cut_scheduling,
)

__all__ = [
    "ExperimentRecord",
    "run_method",
    "compile_with_method",
    "TABLE1_METHODS",
    "table1_overview",
    "table2_location",
    "table3_cut_initialisation",
    "table4_gate_scheduling",
    "table5_cut_scheduling",
    "summarise_reduction",
    "figure11_parallelism",
    "figure12_chip_size",
    "SweepPoint",
    "format_table",
    "format_sweep",
    "rows_to_json",
    "rows_to_csv",
    "sweep_to_json",
    "sweep_to_csv",
    "write_json",
    "write_csv",
]
