"""Experiment runner: one (circuit, chip, method) → one record.

The evaluation tables and figures are built from :class:`ExperimentRecord`
rows produced by :func:`run_method`.  Method names follow the columns of the
paper's tables and are resolved by :mod:`repro.pipeline.registry`:

``autobraid``, ``braidflash``
    Double defect baselines on the minimum viable chip.
``ecmas_dd_min``, ``ecmas_dd_4x``, ``ecmas_dd_resu``
    Ecmas for double defect on the minimum viable chip, the 4x chip, and the
    sufficient-resources configuration (Ecmas-ReSu).
``edpci_min``, ``edpci_4x``
    EDPCI baseline for lattice surgery on the minimum viable / 4x chip.
``ecmas_ls_min``, ``ecmas_ls_4x``, ``ecmas_ls_resu``
    Ecmas for lattice surgery.
``location:<s>``, ``cut_init:<s>``, ``gate_order:<s>``, ``cut_sched:<s>``
    The ablation columns of Tables II–V.

``compile_seconds`` has a single source of truth: the per-stage timings of
the :class:`~repro.pipeline.framework.PipelineResult` (validation time is
excluded).  The per-stage breakdown is kept in ``record.extra["stages"]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chip.chip import Chip
from repro.chip.defects import DefectSpec
from repro.circuits.circuit import Circuit
from repro.core.ecmas import EcmasOptions
from repro.core.schedule import EncodedCircuit
from repro.pipeline.registry import run_pipeline_method


@dataclass
class ExperimentRecord:
    """One measured data point of the evaluation."""

    circuit: str
    method: str
    num_qubits: int
    alpha: int
    num_cnots: int
    cycles: int
    compile_seconds: float
    chip: str
    paper_cycles: int | None = None
    extra: dict = field(default_factory=dict)

    @property
    def relative_to_paper(self) -> float | None:
        """Measured cycles divided by the paper-reported cycles (``None`` if unknown)."""
        if not self.paper_cycles:
            return None
        return self.cycles / self.paper_cycles

    @property
    def stage_seconds(self) -> dict[str, float]:
        """Per-stage compile-time breakdown (empty for legacy records)."""
        return self.extra.get("stages", {})

    def to_dict(self) -> dict:
        """JSON-able representation — the cache's and the HTTP API's wire format.

        The inverse of :meth:`from_dict`; both the batch :class:`ResultCache
        <repro.pipeline.batch.ResultCache>` and the compile service serialise
        records through this single pair, so an entry written by one layer is
        always readable by the other.
        """
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentRecord":
        """Rebuild a record from :meth:`to_dict` output (raises on bad shapes)."""
        if not isinstance(payload, dict):
            raise TypeError(f"record payload must be an object, got {type(payload).__name__}")
        return cls(**payload)


def compile_with_method(
    circuit: Circuit,
    method: str,
    code_distance: int = 3,
    chip: Chip | None = None,
    options: EcmasOptions | None = None,
) -> EncodedCircuit:
    """Compile ``circuit`` with a named method (see module docstring)."""
    return run_pipeline_method(
        circuit, method, chip=chip, code_distance=code_distance, options=options
    ).encoded


def record_from_result(
    result,
    circuit: Circuit,
    method: str,
    circuit_name: str | None = None,
    paper_cycles: int | None = None,
) -> ExperimentRecord:
    """Measure a finished :class:`~repro.pipeline.framework.PipelineResult`.

    The single place a pipeline outcome becomes an :class:`ExperimentRecord`
    — :func:`run_method` (tables, figures, batch engine) and the compile
    service's schedule-inlining path both build their records here, so the
    two layers can never disagree about the record shape.
    """
    encoded = result.encoded
    extra = {"stages": result.timings_dict(), "engine": result.engine}
    if result.counters is not None:
        extra["counters"] = result.counters
    return ExperimentRecord(
        circuit=circuit_name or circuit.name,
        method=method,
        num_qubits=circuit.num_qubits,
        alpha=circuit.depth(),
        num_cnots=circuit.num_cnots,
        cycles=encoded.num_cycles,
        compile_seconds=result.compile_seconds,
        chip=encoded.chip.describe(),
        paper_cycles=paper_cycles,
        extra=extra,
    )


def run_method(
    circuit: Circuit,
    method: str,
    circuit_name: str | None = None,
    code_distance: int = 3,
    chip: Chip | None = None,
    paper_cycles: int | None = None,
    validate: bool = False,
    options: EcmasOptions | None = None,
    engine: str = "reference",
    placement: str = "reference",
    defects: DefectSpec | None = None,
) -> ExperimentRecord:
    """Compile and measure one data point; optionally validate the schedule."""
    result = run_pipeline_method(
        circuit,
        method,
        chip=chip,
        code_distance=code_distance,
        options=options,
        validate=validate,
        engine=engine,
        placement=placement,
        defects=defects,
    )
    return record_from_result(
        result, circuit, method, circuit_name=circuit_name, paper_cycles=paper_cycles
    )
