"""Experiment runner: one (circuit, chip, method) → one record.

The evaluation tables and figures are built from :class:`ExperimentRecord`
rows produced by :func:`run_method`.  Method names follow the columns of the
paper's tables:

``autobraid``, ``braidflash``
    Double defect baselines on the minimum viable chip.
``ecmas_dd_min``, ``ecmas_dd_4x``, ``ecmas_dd_resu``
    Ecmas for double defect on the minimum viable chip, the 4x chip, and the
    sufficient-resources configuration (Ecmas-ReSu).
``edpci_min``, ``edpci_4x``
    EDPCI baseline for lattice surgery on the minimum viable / 4x chip.
``ecmas_ls_min``, ``ecmas_ls_4x``, ``ecmas_ls_resu``
    Ecmas for lattice surgery.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines import compile_autobraid, compile_braidflash, compile_edpci
from repro.chip.chip import Chip
from repro.chip.geometry import SurfaceCodeModel
from repro.circuits.circuit import Circuit
from repro.core.ecmas import EcmasOptions, compile_circuit
from repro.core.schedule import EncodedCircuit
from repro.errors import ReproError
from repro.verify import validate_encoded_circuit


@dataclass
class ExperimentRecord:
    """One measured data point of the evaluation."""

    circuit: str
    method: str
    num_qubits: int
    alpha: int
    num_cnots: int
    cycles: int
    compile_seconds: float
    chip: str
    paper_cycles: int | None = None
    extra: dict = field(default_factory=dict)

    @property
    def relative_to_paper(self) -> float | None:
        """Measured cycles divided by the paper-reported cycles (``None`` if unknown)."""
        if not self.paper_cycles:
            return None
        return self.cycles / self.paper_cycles


#: Method name -> (surface code model, resources) for the Ecmas configurations.
_ECMAS_CONFIGS: dict[str, tuple[SurfaceCodeModel, str, str]] = {
    "ecmas_dd_min": (SurfaceCodeModel.DOUBLE_DEFECT, "minimum", "limited"),
    "ecmas_dd_4x": (SurfaceCodeModel.DOUBLE_DEFECT, "4x", "limited"),
    "ecmas_dd_resu": (SurfaceCodeModel.DOUBLE_DEFECT, "sufficient", "resu"),
    "ecmas_ls_min": (SurfaceCodeModel.LATTICE_SURGERY, "minimum", "limited"),
    "ecmas_ls_4x": (SurfaceCodeModel.LATTICE_SURGERY, "4x", "limited"),
    "ecmas_ls_resu": (SurfaceCodeModel.LATTICE_SURGERY, "sufficient", "resu"),
}


def compile_with_method(
    circuit: Circuit,
    method: str,
    code_distance: int = 3,
    chip: Chip | None = None,
    options: EcmasOptions | None = None,
) -> EncodedCircuit:
    """Compile ``circuit`` with a named method (see module docstring)."""
    if method == "autobraid":
        return compile_autobraid(circuit, chip=chip, code_distance=code_distance)
    if method == "braidflash":
        return compile_braidflash(circuit, chip=chip, code_distance=code_distance)
    if method == "edpci_min":
        chip = chip or Chip.minimum_viable(SurfaceCodeModel.LATTICE_SURGERY, circuit.num_qubits, code_distance)
        return compile_edpci(circuit, chip=chip, code_distance=code_distance)
    if method == "edpci_4x":
        chip = chip or Chip.four_x(SurfaceCodeModel.LATTICE_SURGERY, circuit.num_qubits, code_distance)
        return compile_edpci(circuit, chip=chip, code_distance=code_distance)
    if method in _ECMAS_CONFIGS:
        model, resources, scheduler = _ECMAS_CONFIGS[method]
        return compile_circuit(
            circuit,
            model=model,
            chip=chip,
            resources=resources,
            scheduler=scheduler,
            code_distance=code_distance,
            options=options,
        )
    raise ReproError(f"unknown evaluation method {method!r}")


def run_method(
    circuit: Circuit,
    method: str,
    circuit_name: str | None = None,
    code_distance: int = 3,
    chip: Chip | None = None,
    paper_cycles: int | None = None,
    validate: bool = False,
    options: EcmasOptions | None = None,
) -> ExperimentRecord:
    """Compile and measure one data point; optionally validate the schedule."""
    started = time.perf_counter()
    encoded = compile_with_method(circuit, method, code_distance=code_distance, chip=chip, options=options)
    elapsed = time.perf_counter() - started
    if validate:
        validate_encoded_circuit(circuit, encoded).raise_if_invalid()
    return ExperimentRecord(
        circuit=circuit_name or circuit.name,
        method=method,
        num_qubits=circuit.num_qubits,
        alpha=circuit.depth(),
        num_cnots=circuit.num_cnots,
        cycles=encoded.num_cycles,
        compile_seconds=elapsed,
        chip=encoded.chip.describe(),
        paper_cycles=paper_cycles,
    )
