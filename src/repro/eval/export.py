"""Export evaluation results as JSON or CSV.

The table builders return lists of row dictionaries and the figure builders
return :class:`~repro.eval.figures.SweepPoint` lists; these helpers serialise
either form so results can be archived or plotted with external tooling.
"""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Sequence

from repro.eval.figures import SweepPoint


def rows_to_json(rows: Sequence[dict], indent: int = 2) -> str:
    """Serialise table rows as a JSON array."""
    return json.dumps(list(rows), indent=indent, sort_keys=True, default=str)


def rows_to_csv(rows: Sequence[dict]) -> str:
    """Serialise table rows as CSV (union of all keys, in first-seen order)."""
    if not rows:
        return ""
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def sweep_to_rows(points: Sequence[SweepPoint]) -> list[dict]:
    """Flatten sweep points into plain row dictionaries."""
    rows = []
    for point in points:
        row = {
            "series": point.series,
            "x": point.x,
            "cycles": point.cycles,
            "compile_seconds": point.compile_seconds,
        }
        row.update(point.extra)
        rows.append(row)
    return rows


def sweep_to_json(points: Sequence[SweepPoint], indent: int = 2) -> str:
    """Serialise a figure sweep as a JSON array."""
    return rows_to_json(sweep_to_rows(points), indent=indent)


def sweep_to_csv(points: Sequence[SweepPoint]) -> str:
    """Serialise a figure sweep as CSV."""
    return rows_to_csv(sweep_to_rows(points))


def write_json(path, rows_or_points) -> None:
    """Write rows or sweep points to ``path`` as JSON."""
    if rows_or_points and isinstance(rows_or_points[0], SweepPoint):
        text = sweep_to_json(rows_or_points)
    else:
        text = rows_to_json(rows_or_points)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)


def write_csv(path, rows_or_points) -> None:
    """Write rows or sweep points to ``path`` as CSV."""
    if rows_or_points and isinstance(rows_or_points[0], SweepPoint):
        text = sweep_to_csv(rows_or_points)
    else:
        text = rows_to_csv(rows_or_points)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
