"""Builders for the paper's evaluation tables (Table I–V).

Every function returns a list of row dictionaries (one per benchmark circuit)
containing the measured cycle counts for each method column, alongside the
paper-reported values where available.  :mod:`repro.eval.report` renders them
as text tables, and the benchmark harness under ``benchmarks/`` regenerates
them under pytest-benchmark.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.baselines import (
    compile_with_cut_initialisation,
    compile_with_cut_scheduling,
    compile_with_gate_order,
    compile_with_location_strategy,
)
from repro.circuits.generators import BenchmarkSpec, default_suite, sensitivity_suite
from repro.eval.runner import ExperimentRecord, run_method

#: The method columns of Table I, in the paper's order.
TABLE1_METHODS: tuple[str, ...] = (
    "autobraid",
    "ecmas_dd_min",
    "ecmas_dd_resu",
    "edpci_min",
    "edpci_4x",
    "ecmas_ls_min",
    "ecmas_ls_4x",
)


def table1_overview(
    suite: Sequence[BenchmarkSpec] | None = None,
    methods: Iterable[str] = TABLE1_METHODS,
    include_large: bool = False,
    validate: bool = False,
    code_distance: int = 3,
) -> list[dict]:
    """Table I: cycle counts of every method over the benchmark suite."""
    specs = list(suite) if suite is not None else default_suite(include_large=include_large)
    rows: list[dict] = []
    for spec in specs:
        circuit = spec.build()
        row: dict = {
            "circuit": spec.name,
            "n": circuit.num_qubits,
            "alpha": circuit.depth(),
            "g": circuit.num_cnots,
            "paper_alpha": spec.paper_alpha,
            "paper_g": spec.paper_g,
        }
        for method in methods:
            paper = (spec.paper_cycles or {}).get(method)
            record = run_method(
                circuit,
                method,
                circuit_name=spec.name,
                code_distance=code_distance,
                paper_cycles=paper,
                validate=validate,
            )
            row[method] = record.cycles
            if paper is not None:
                row[f"paper_{method}"] = paper
        rows.append(row)
    return rows


def _sensitivity_rows(
    column_runs: dict[str, callable],
    suite: Sequence[BenchmarkSpec] | None,
    code_distance: int,
) -> list[dict]:
    specs = list(suite) if suite is not None else sensitivity_suite()
    rows: list[dict] = []
    for spec in specs:
        circuit = spec.build()
        row: dict = {
            "circuit": spec.name,
            "n": circuit.num_qubits,
            "alpha": circuit.depth(),
            "g": circuit.num_cnots,
        }
        for column, compile_fn in column_runs.items():
            encoded = compile_fn(circuit, code_distance)
            row[column] = encoded.num_cycles
        rows.append(row)
    return rows


def table2_location(
    suite: Sequence[BenchmarkSpec] | None = None, code_distance: int = 3
) -> list[dict]:
    """Table II: location-initialisation ablation (Trivial / Metis / Ours)."""
    return _sensitivity_rows(
        {
            "trivial": lambda c, d: compile_with_location_strategy(c, "trivial", code_distance=d),
            "metis": lambda c, d: compile_with_location_strategy(c, "metis", code_distance=d),
            "ours": lambda c, d: compile_with_location_strategy(c, "ecmas", code_distance=d),
        },
        suite,
        code_distance,
    )


def table3_cut_initialisation(
    suite: Sequence[BenchmarkSpec] | None = None, code_distance: int = 3
) -> list[dict]:
    """Table III: cut-type initialisation ablation (Random / Max-cut / Ours)."""
    return _sensitivity_rows(
        {
            "random": lambda c, d: compile_with_cut_initialisation(c, "random", code_distance=d),
            "maxcut": lambda c, d: compile_with_cut_initialisation(c, "maxcut", code_distance=d),
            "ours": lambda c, d: compile_with_cut_initialisation(c, "bipartite_prefix", code_distance=d),
        },
        suite,
        code_distance,
    )


def table4_gate_scheduling(
    suite: Sequence[BenchmarkSpec] | None = None, code_distance: int = 3
) -> list[dict]:
    """Table IV: gate-scheduling ablation in the lattice surgery model."""
    return _sensitivity_rows(
        {
            "circuit_order": lambda c, d: compile_with_gate_order(c, "circuit_order", code_distance=d),
            "ours": lambda c, d: compile_with_gate_order(c, "criticality", code_distance=d),
        },
        suite,
        code_distance,
    )


def table5_cut_scheduling(
    suite: Sequence[BenchmarkSpec] | None = None, code_distance: int = 3
) -> list[dict]:
    """Table V: cut-type scheduling ablation (Channel-first / Time-first / Ours)."""
    return _sensitivity_rows(
        {
            "channel_first": lambda c, d: compile_with_cut_scheduling(c, "channel_first", code_distance=d),
            "time_first": lambda c, d: compile_with_cut_scheduling(c, "time_first", code_distance=d),
            "ours": lambda c, d: compile_with_cut_scheduling(c, "adaptive", code_distance=d),
        },
        suite,
        code_distance,
    )


def summarise_reduction(rows: list[dict], baseline: str, ours: str) -> dict:
    """Average / maximum relative cycle reduction of ``ours`` vs ``baseline``.

    This is the statistic the paper headlines (e.g. "51.5% on average, 67.3%
    at most" for Ecmas-dd vs AutoBraid).
    """
    reductions = []
    for row in rows:
        base = row.get(baseline)
        new = row.get(ours)
        if not base or new is None:
            continue
        reductions.append(1.0 - new / base)
    if not reductions:
        return {"average": 0.0, "maximum": 0.0, "count": 0}
    return {
        "average": sum(reductions) / len(reductions),
        "maximum": max(reductions),
        "count": len(reductions),
    }
