"""Builders for the paper's evaluation tables (Table I–V).

Every function returns a list of row dictionaries (one per benchmark circuit)
containing the measured cycle counts for each method column, alongside the
paper-reported values where available.  :mod:`repro.eval.report` renders them
as text tables, and the benchmark harness under ``benchmarks/`` regenerates
them under pytest-benchmark.

All tables run through the batch engine (:mod:`repro.pipeline.batch`): pass
``jobs=N`` to fan the per-cell compilations across ``N`` worker processes and
``cache=`` a directory / :class:`~repro.pipeline.batch.ResultCache` to make
warm reruns free.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from pathlib import Path

from repro.circuits.generators import BenchmarkSpec, default_suite, sensitivity_suite
from repro.pipeline.batch import BatchJob, BatchProgress, ResultCache, run_batch

#: The method columns of Table I, in the paper's order.
TABLE1_METHODS: tuple[str, ...] = (
    "autobraid",
    "ecmas_dd_min",
    "ecmas_dd_resu",
    "edpci_min",
    "edpci_4x",
    "ecmas_ls_min",
    "ecmas_ls_4x",
)

#: Ablation method names backing each column of Tables II–V.
TABLE2_COLUMNS: dict[str, str] = {
    "trivial": "location:trivial",
    "metis": "location:metis",
    "ours": "location:ecmas",
}
TABLE3_COLUMNS: dict[str, str] = {
    "random": "cut_init:random",
    "maxcut": "cut_init:maxcut",
    "ours": "cut_init:bipartite_prefix",
}
TABLE4_COLUMNS: dict[str, str] = {
    "circuit_order": "gate_order:circuit_order",
    "ours": "gate_order:criticality",
}
TABLE5_COLUMNS: dict[str, str] = {
    "channel_first": "cut_sched:channel_first",
    "time_first": "cut_sched:time_first",
    "ours": "cut_sched:adaptive",
}


def _run_grid(
    specs: Sequence[BenchmarkSpec],
    columns: dict[str, str],
    code_distance: int,
    validate: bool,
    jobs: int | None,
    cache: ResultCache | Path | str | None,
    paper_lookup: bool = False,
    engine: str = "reference",
    progress: Callable[[BatchProgress], None] | None = None,
) -> list[dict]:
    """Compile every (circuit, column) cell through the batch engine.

    A cell whose compile failed (see :class:`~repro.pipeline.batch.BatchFailure`)
    renders as ``None`` instead of discarding the rest of the table.
    """
    circuits = [spec.build() for spec in specs]
    batch_jobs: list[BatchJob] = []
    for spec, circuit in zip(specs, circuits):
        for method in columns.values():
            batch_jobs.append(
                BatchJob(
                    circuit=circuit,
                    method=method,
                    circuit_name=spec.name,
                    code_distance=code_distance,
                    paper_cycles=(spec.paper_cycles or {}).get(method) if paper_lookup else None,
                    validate=validate,
                    engine=engine,
                )
            )
    batch = run_batch(batch_jobs, workers=jobs, cache=cache, progress=progress)

    rows: list[dict] = []
    cursor = 0
    for spec, circuit in zip(specs, circuits):
        row: dict = {
            "circuit": spec.name,
            "n": circuit.num_qubits,
            "alpha": circuit.depth(),
            "g": circuit.num_cnots,
        }
        if paper_lookup:
            row["paper_alpha"] = spec.paper_alpha
            row["paper_g"] = spec.paper_g
        for column in columns:
            record = batch.records[cursor]
            cursor += 1
            row[column] = record.cycles if record is not None else None
            if record is not None and record.paper_cycles is not None:
                row[f"paper_{column}"] = record.paper_cycles
        rows.append(row)
    return rows


def table1_overview(
    suite: Sequence[BenchmarkSpec] | None = None,
    methods: Iterable[str] = TABLE1_METHODS,
    include_large: bool = False,
    validate: bool = False,
    code_distance: int = 3,
    jobs: int | None = 1,
    cache: ResultCache | Path | str | None = None,
    engine: str = "reference",
    progress: Callable[[BatchProgress], None] | None = None,
) -> list[dict]:
    """Table I: cycle counts of every method over the benchmark suite."""
    specs = list(suite) if suite is not None else default_suite(include_large=include_large)
    return _run_grid(
        specs,
        {method: method for method in methods},
        code_distance,
        validate,
        jobs,
        cache,
        paper_lookup=True,
        engine=engine,
        progress=progress,
    )


def _sensitivity_rows(
    columns: dict[str, str],
    suite: Sequence[BenchmarkSpec] | None,
    code_distance: int,
    jobs: int | None = 1,
    cache: ResultCache | Path | str | None = None,
    engine: str = "reference",
    progress: Callable[[BatchProgress], None] | None = None,
) -> list[dict]:
    specs = list(suite) if suite is not None else sensitivity_suite()
    return _run_grid(
        specs, columns, code_distance, False, jobs, cache, engine=engine, progress=progress
    )


def table2_location(
    suite: Sequence[BenchmarkSpec] | None = None,
    code_distance: int = 3,
    jobs: int | None = 1,
    cache: ResultCache | Path | str | None = None,
    engine: str = "reference",
    progress: Callable[[BatchProgress], None] | None = None,
) -> list[dict]:
    """Table II: location-initialisation ablation (Trivial / Metis / Ours)."""
    return _sensitivity_rows(
        TABLE2_COLUMNS, suite, code_distance, jobs, cache, engine=engine, progress=progress
    )


def table3_cut_initialisation(
    suite: Sequence[BenchmarkSpec] | None = None,
    code_distance: int = 3,
    jobs: int | None = 1,
    cache: ResultCache | Path | str | None = None,
    engine: str = "reference",
    progress: Callable[[BatchProgress], None] | None = None,
) -> list[dict]:
    """Table III: cut-type initialisation ablation (Random / Max-cut / Ours)."""
    return _sensitivity_rows(
        TABLE3_COLUMNS, suite, code_distance, jobs, cache, engine=engine, progress=progress
    )


def table4_gate_scheduling(
    suite: Sequence[BenchmarkSpec] | None = None,
    code_distance: int = 3,
    jobs: int | None = 1,
    cache: ResultCache | Path | str | None = None,
    engine: str = "reference",
    progress: Callable[[BatchProgress], None] | None = None,
) -> list[dict]:
    """Table IV: gate-scheduling ablation in the lattice surgery model."""
    return _sensitivity_rows(
        TABLE4_COLUMNS, suite, code_distance, jobs, cache, engine=engine, progress=progress
    )


def table5_cut_scheduling(
    suite: Sequence[BenchmarkSpec] | None = None,
    code_distance: int = 3,
    jobs: int | None = 1,
    cache: ResultCache | Path | str | None = None,
    engine: str = "reference",
    progress: Callable[[BatchProgress], None] | None = None,
) -> list[dict]:
    """Table V: cut-type scheduling ablation (Channel-first / Time-first / Ours)."""
    return _sensitivity_rows(
        TABLE5_COLUMNS, suite, code_distance, jobs, cache, engine=engine, progress=progress
    )


def summarise_reduction(rows: list[dict], baseline: str, ours: str) -> dict:
    """Average / maximum relative cycle reduction of ``ours`` vs ``baseline``.

    This is the statistic the paper headlines (e.g. "51.5% on average, 67.3%
    at most" for Ecmas-dd vs AutoBraid).
    """
    reductions = []
    for row in rows:
        base = row.get(baseline)
        new = row.get(ours)
        if not base or new is None:
            continue
        reductions.append(1.0 - new / base)
    if not reductions:
        return {"average": 0.0, "maximum": 0.0, "count": 0}
    return {
        "average": sum(reductions) / len(reductions),
        "maximum": max(reductions),
        "count": len(reductions),
    }
