"""Initial mapping: tile-array shape, qubit placement, bandwidth adjusting.

This implements the three pre-processing steps of Ecmas (Section IV-B1):

1. **Shape determining** — choose the logical tile array shape (e.g. 3×3 vs
   2×4 for eight qubits) with the smallest perimeter that fits on the chip.
2. **Mapping establishing** — map qubits to tiles so that heavily
   communicating qubits are close, by recursive Kernighan–Lin bisection of
   the communication graph (the METIS substitute); several seeded attempts
   are generated and the one with the smallest communication cost
   ``f = Σ γ_ij · l_ij`` is kept.
3. **Bandwidth adjusting** — pre-route every CNOT along its unconstrained
   shortest path, attribute the load to corridors, and hand the chip's spare
   lanes to the most loaded corridors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chip.chip import Chip, TileSlot
from repro.chip.routing_graph import tile_node_for
from repro.circuits.circuit import Circuit
from repro.circuits.comm_graph import CommunicationGraph
from repro.core.cut_types import CutAssignment
from repro.core.engines import routing_for
from repro.errors import ChipError, MappingError
from repro.partition.placement import (
    Placement,
    alive_in_window,
    best_placement,
    communication_cost,
    graph_best_placement,
    graph_random_placement,
    graph_snake_placement,
    graph_spectral_placement,
    random_placement,
    spectral_placement,
    trivial_snake_placement,
)
from repro.routing.paths import CapacityUsage
from repro.routing.router import find_path


@dataclass(frozen=True)
class InitialMapping:
    """The output of the pre-processing stage.

    ``chip`` may differ from the input chip in its corridor bandwidths (the
    bandwidth-adjusting step); the tile array itself never changes.
    """

    chip: Chip
    placement: Placement
    cut_types: CutAssignment | None
    shape: tuple[int, int]
    mapping_cost: float


def determine_shape(num_qubits: int, chip: Chip) -> tuple[int, int]:
    """Choose the tile-array shape with minimum perimeter that fits the chip.

    Among shapes ``r × c`` with ``r*c >= num_qubits`` that fit inside the
    chip's tile array, the one minimising the perimeter ``2(r+c)`` is chosen;
    ties prefer the squarer shape (paper Fig. 10a picks 3×3 over 2×4).

    On a defective chip a shape only qualifies when its window (anchored at
    the tile-array origin) still holds ``num_qubits`` *alive* slots; when no
    compact shape survives the defects, the full tile array is used.  A chip
    without enough alive slots at all raises :class:`ChipError`.
    """
    if num_qubits > chip.num_tile_slots:
        raise MappingError(
            f"chip has {chip.num_tile_slots} tile slots but the circuit needs {num_qubits}"
        )
    if num_qubits > chip.num_alive_tile_slots:
        raise ChipError(
            f"chip has {chip.num_alive_tile_slots} alive tile slots "
            f"({len(chip.defects.dead_tiles)} dead) but the circuit needs {num_qubits}"
        )
    if chip.tile_graph is not None:
        # Graph chips have no rectangular windows; the "shape" is the whole
        # graph, reported as (num_nodes, 1) to match the slot addressing.
        return (chip.tile_rows, chip.tile_cols)
    dead = chip.defects.dead_set()
    best: tuple[int, int] | None = None
    best_key: tuple[int, int, int] | None = None
    for rows in range(1, chip.tile_rows + 1):
        cols = -(-num_qubits // rows)  # ceil division
        while cols <= chip.tile_cols and alive_in_window(0, rows, 0, cols, dead) < num_qubits:
            cols += 1  # widen the window until the dead tiles are compensated
        if cols > chip.tile_cols:
            continue
        key = (rows + cols, abs(rows - cols), rows * cols)
        if best_key is None or key < best_key:
            best, best_key = (rows, cols), key
    if best is None:
        # Dead tiles ruled out every compact window; fall back to the full
        # array, which the alive-slot check above guarantees is sufficient.
        return (chip.tile_rows, chip.tile_cols)
    return best


def establish_placement(
    graph: CommunicationGraph,
    shape: tuple[int, int],
    strategy: str = "ecmas",
    attempts: int = 4,
    seed: int = 0,
    dead: frozenset[tuple[int, int]] = frozenset(),
    placement_engine: str = "reference",
    chip: Chip | None = None,
) -> Placement:
    """Map qubits to tile slots within ``shape`` using the requested strategy.

    Strategies: ``"ecmas"`` (multi-attempt recursive bisection, the default),
    ``"metis"`` (single-attempt recursive bisection, the Table II "Metis"
    column), ``"trivial"`` (EDPCI snake), ``"spectral"``, ``"random"``.
    ``dead`` lists tile slots no strategy may use.  ``placement_engine``
    picks the bisection core for the bisection-based strategies (classic KL
    ``reference`` vs multilevel ``fast``); the other strategies ignore it.

    Passing a graph ``chip`` (``tile_graph`` set) dispatches every strategy
    to its graph-aware counterpart: bisection splits the tile graph's layout
    instead of grid windows and costs use BFS hop distance; ``shape`` and
    ``dead`` are then taken from the chip itself.
    """
    if chip is not None and chip.tile_graph is not None:
        if strategy == "ecmas":
            return graph_best_placement(
                graph, chip, attempts=attempts, seed=seed, engine=placement_engine
            )
        if strategy == "metis":
            return graph_best_placement(
                graph, chip, attempts=1, seed=seed, engine=placement_engine
            )
        if strategy == "trivial":
            return graph_snake_placement(graph.num_qubits, chip)
        if strategy == "spectral":
            return graph_spectral_placement(graph, chip)
        if strategy == "random":
            return graph_random_placement(graph.num_qubits, chip, seed=seed)
        raise MappingError(f"unknown placement strategy {strategy!r}")
    rows, cols = shape
    if strategy == "ecmas":
        return best_placement(
            graph, rows, cols, attempts=attempts, seed=seed, dead=dead, engine=placement_engine
        )
    if strategy == "metis":
        return best_placement(
            graph, rows, cols, attempts=1, seed=seed, dead=dead, engine=placement_engine
        )
    if strategy == "trivial":
        return trivial_snake_placement(graph.num_qubits, rows, cols, dead=dead)
    if strategy == "spectral":
        return spectral_placement(graph, rows, cols, dead=dead)
    if strategy == "random":
        return random_placement(graph.num_qubits, rows, cols, seed=seed, dead=dead)
    raise MappingError(f"unknown placement strategy {strategy!r}")


def corridor_load(
    chip: Chip,
    placement: Placement,
    graph: CommunicationGraph,
    engine: str = "reference",
) -> tuple[dict[int, float], dict[int, float]]:
    """Pre-route every CNOT (ignoring conflicts) and accumulate corridor load.

    Returns per-corridor load for horizontal and vertical corridors.  The
    load of an edge's corridor increases by the CNOT multiplicity of the pair
    whose unconstrained shortest path uses that edge.

    Routing state comes from the :func:`repro.core.engines.routing_for`
    seam, so daemon processes reuse their warm per-chip graphs here instead
    of rebuilding one per compile.  On the fast engine the per-pair search
    is the router's cached static walk over BFS hop tables; both engines
    produce the canonical (lexicographically smallest shortest) path, so
    the accumulated loads are engine-independent.
    """
    routing_graph, router = routing_for(chip, engine)
    h_load: dict[int, float] = {r: 0.0 for r in range(chip.tile_rows + 1)}
    v_load: dict[int, float] = {c: 0.0 for c in range(chip.tile_cols + 1)}
    empty = CapacityUsage()
    for a, b, weight in graph.edges():
        source = tile_node_for(placement.slot_of(a))
        target = tile_node_for(placement.slot_of(b))
        if router is not None:
            path = router.find(empty, source, target)
        else:
            path = find_path(routing_graph, empty, source, target)
        if path is None:
            continue  # disconnected pair (defective chips); no load to record
        for edge_a, edge_b in zip(path.nodes, path.nodes[1:]):
            corridor = routing_graph.corridor_of(edge_a, edge_b)
            if corridor is None:
                continue
            kind, index = corridor
            if kind == "h":
                h_load[index] += weight
            else:
                v_load[index] += weight
    return h_load, v_load


def edge_load(
    chip: Chip,
    placement: Placement,
    graph: CommunicationGraph,
    engine: str = "reference",
) -> dict[int, float]:
    """Graph-chip counterpart of :func:`corridor_load`: per-edge path load.

    Pre-routes every CNOT over the unconstrained canonical path and
    accumulates the pair's multiplicity on each tile-graph edge the path
    crosses (keyed by edge index).  Engine-independent for the same reason
    as :func:`corridor_load`.
    """
    routing_graph, router = routing_for(chip, engine)
    load: dict[int, float] = {e: 0.0 for e in range(chip.tile_graph.num_edges)}
    empty = CapacityUsage()
    for a, b, weight in graph.edges():
        source = tile_node_for(placement.slot_of(a))
        target = tile_node_for(placement.slot_of(b))
        if router is not None:
            path = router.find(empty, source, target)
        else:
            path = find_path(routing_graph, empty, source, target)
        if path is None:
            continue  # disconnected pair (defective chips); no load to record
        for edge_a, edge_b in zip(path.nodes, path.nodes[1:]):
            corridor = routing_graph.corridor_of(edge_a, edge_b)
            if corridor is None:
                continue
            load[corridor[1]] += weight
    return load


def adjust_edge_bandwidth(
    chip: Chip, placement: Placement, graph: CommunicationGraph, engine: str = "reference"
) -> Chip:
    """Per-edge bandwidth adjusting for graph chips.

    Every edge starts at one lane; the remaining width of each node's budget
    is then granted to edges in descending load order (ties broken by edge
    index), an edge receiving another lane only while *both* its endpoints
    have budget left.  With no spare budget anywhere (the default budgets
    derived from nominal bandwidths on a uniform chip) the chip is returned
    unchanged.
    """
    tile_graph = chip.tile_graph
    budgets = list(tile_graph.effective_node_budgets())
    bandwidths = [1] * tile_graph.num_edges
    for a, b in tile_graph.edges:
        budgets[a] -= 1
        budgets[b] -= 1
    if all(b <= 0 for b in budgets):
        return chip  # no spare width anywhere; skip the pre-routing pass
    load = edge_load(chip, placement, graph, engine=engine)
    order = sorted(range(tile_graph.num_edges), key=lambda e: (-load[e], e))
    granted = True
    while granted:
        granted = False
        for index in order:
            if load[index] <= 0:
                continue
            a, b = tile_graph.edges[index]
            if budgets[a] >= 1 and budgets[b] >= 1:
                bandwidths[index] += 1
                budgets[a] -= 1
                budgets[b] -= 1
                granted = True
    if bandwidths == list(tile_graph.bandwidths):
        return chip
    return chip.with_edge_bandwidths(bandwidths)


def adjust_bandwidth(
    chip: Chip, placement: Placement, graph: CommunicationGraph, engine: str = "reference"
) -> Chip:
    """Redistribute spare lanes towards the most loaded corridors.

    The chip's per-axis lane budget is respected; every corridor keeps at
    least one lane.  On the minimum viable chip there is no spare budget and
    the chip is returned unchanged.  Graph chips redistribute per edge under
    per-node width budgets instead (:func:`adjust_edge_bandwidth`).
    """
    if chip.tile_graph is not None:
        return adjust_edge_bandwidth(chip, placement, graph, engine=engine)
    h_budget, v_budget = chip.lane_budget_per_axis()
    h_spare = h_budget - (chip.tile_rows + 1)
    v_spare = v_budget - (chip.tile_cols + 1)
    if h_spare <= 0 and v_spare <= 0:
        return chip
    h_load, v_load = corridor_load(chip, placement, graph, engine=engine)
    h_bandwidths = _distribute(h_load, chip.tile_rows + 1, h_budget)
    v_bandwidths = _distribute(v_load, chip.tile_cols + 1, v_budget)
    return chip.with_bandwidths(h_bandwidths, v_bandwidths)


def _distribute(load: dict[int, float], corridors: int, budget: int) -> list[int]:
    """Give every corridor one lane, then spare lanes proportionally to load."""
    bandwidths = [1] * corridors
    spare = budget - corridors
    if spare <= 0:
        return bandwidths
    total_load = sum(load.values())
    if total_load <= 0:
        # No recorded traffic: spread the spare lanes evenly from the centre out.
        order = sorted(range(corridors), key=lambda i: abs(i - corridors / 2.0 + 0.5))
        for offset in range(spare):
            bandwidths[order[offset % corridors]] += 1
        return bandwidths
    # Largest-remainder proportional allocation.
    shares = {i: spare * load.get(i, 0.0) / total_load for i in range(corridors)}
    allocated = {i: int(shares[i]) for i in range(corridors)}
    remaining = spare - sum(allocated.values())
    remainder_order = sorted(range(corridors), key=lambda i: shares[i] - allocated[i], reverse=True)
    for i in remainder_order[:remaining]:
        allocated[i] += 1
    return [1 + allocated[i] for i in range(corridors)]


def build_initial_mapping(
    circuit: Circuit,
    chip: Chip,
    cut_types: CutAssignment | None,
    placement_strategy: str = "ecmas",
    adjust: bool = True,
    attempts: int = 4,
    seed: int = 0,
    placement_engine: str = "reference",
    routing_engine: str = "reference",
) -> InitialMapping:
    """Run the full pre-processing pipeline for ``circuit`` on ``chip``."""
    graph = circuit.communication_graph()
    shape = determine_shape(circuit.num_qubits, chip)
    placement = establish_placement(
        graph,
        shape,
        strategy=placement_strategy,
        attempts=attempts,
        seed=seed,
        dead=chip.defects.dead_set(),
        placement_engine=placement_engine,
        chip=chip,
    )
    placement.validate(chip)
    adjusted_chip = adjust_bandwidth(chip, placement, graph, engine=routing_engine) if adjust else chip
    cost = communication_cost(graph, placement, distance=chip.slot_distance)
    return InitialMapping(
        chip=adjusted_chip,
        placement=placement,
        cut_types=cut_types,
        shape=shape,
        mapping_cost=cost,
    )
