"""Cut-type initialisation for the double defect model.

In the double defect model every tile holds either an X-cut or a Z-cut
logical qubit.  A CNOT between tiles of *different* cut types costs one clock
cycle (a single braid); between tiles of the *same* cut type it costs three
cycles directly or a cut-type modification (three tile-local cycles) plus a
one-cycle braid.

The paper's initialisation (Section IV-C1) greedily builds a bipartite prefix
of the communication graph: gates are added in dependency order until the
accumulated sub-graph stops being bipartite, and the 2-colouring of that
prefix fixes the initial cut types.  This prioritises the front of the
circuit, which is what matters because cut types can be modified later.

Baselines for the Table III ablation:

* :func:`random_cut_types` — uniformly random assignment,
* :func:`maxcut_cut_types` — a local-search max-cut over the whole weighted
  communication graph (the "max-cut" column of Table III).
"""

from __future__ import annotations

import enum
import random
from collections import deque

from repro.circuits.comm_graph import CommunicationGraph
from repro.circuits.dag import GateDAG
from repro.errors import MappingError


class CutType(enum.Enum):
    """The two defect types a double-defect tile can be initialised into."""

    X = "x"
    Z = "z"

    def flipped(self) -> "CutType":
        """The opposite cut type."""
        return CutType.Z if self is CutType.X else CutType.X


CutAssignment = dict[int, CutType]


def _color_components(adjacency: dict[int, set[int]], num_qubits: int) -> CutAssignment | None:
    """2-colour the graph; ``None`` when it is not bipartite."""
    colors: dict[int, int] = {}
    for start in range(num_qubits):
        if start in colors:
            continue
        colors[start] = 0
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbor in adjacency.get(node, ()):
                if neighbor not in colors:
                    colors[neighbor] = 1 - colors[node]
                    queue.append(neighbor)
                elif colors[neighbor] == colors[node]:
                    return None
    return {q: (CutType.X if colors.get(q, 0) == 0 else CutType.Z) for q in range(num_qubits)}


def bipartite_prefix_cut_types(dag: GateDAG, num_qubits: int) -> CutAssignment:
    """The paper's greedy bipartite-prefix initialisation.

    Gates are consumed front-to-back (peeling DAG sources layer by layer) and
    their edges added to a growing sub-graph of the communication graph; the
    process stops just before the sub-graph would stop being bipartite, and
    the 2-colouring of the accumulated prefix becomes the cut assignment.
    """
    if num_qubits <= 0:
        raise MappingError("cut-type initialisation needs at least one qubit")
    adjacency: dict[int, set[int]] = {}
    best = _color_components(adjacency, num_qubits)
    assert best is not None  # empty graph is bipartite

    frontier = dag.frontier()
    while not frontier.is_done():
        ready = frontier.ready_nodes()
        # Tentatively add this whole front layer of gates.
        trial = {q: set(neighbors) for q, neighbors in adjacency.items()}
        for node in ready:
            gate = dag.gate(node)
            a, b = gate.control, gate.target
            trial.setdefault(a, set()).add(b)
            trial.setdefault(b, set()).add(a)
        colored = _color_components(trial, num_qubits)
        if colored is None:
            # Adding this layer breaks bipartiteness; try gate-by-gate so the
            # earliest possible gates still influence the colouring.
            for node in ready:
                gate = dag.gate(node)
                a, b = gate.control, gate.target
                candidate = {q: set(neighbors) for q, neighbors in adjacency.items()}
                candidate.setdefault(a, set()).add(b)
                candidate.setdefault(b, set()).add(a)
                colored_single = _color_components(candidate, num_qubits)
                if colored_single is None:
                    continue
                adjacency = candidate
                best = colored_single
            break
        adjacency = trial
        best = colored
        for node in ready:
            frontier.complete(node)
    return best


def cut_types_from_bipartition(sides: tuple[set[int], set[int]], num_qubits: int) -> CutAssignment:
    """Turn an explicit bipartition into a cut assignment (X for the first side)."""
    assignment: CutAssignment = {}
    side_a, side_b = sides
    for qubit in range(num_qubits):
        if qubit in side_a:
            assignment[qubit] = CutType.X
        elif qubit in side_b:
            assignment[qubit] = CutType.Z
        else:
            assignment[qubit] = CutType.X
    return assignment


def random_cut_types(num_qubits: int, seed: int | None = None) -> CutAssignment:
    """The Table III "Random" baseline."""
    rng = random.Random(seed)
    return {q: (CutType.X if rng.random() < 0.5 else CutType.Z) for q in range(num_qubits)}


def uniform_cut_types(num_qubits: int, cut: CutType = CutType.X) -> CutAssignment:
    """Every tile gets the same cut type (the AutoBraid / Braidflash assumption)."""
    return {q: cut for q in range(num_qubits)}


def maxcut_cut_types(graph: CommunicationGraph, seed: int | None = None, passes: int = 4) -> CutAssignment:
    """The Table III "Max-cut" baseline: one-exchange local search on the weighted graph.

    Maximises the total weight of CNOT edges whose endpoints get different cut
    types (so those CNOTs execute in one cycle), without regard to *when* the
    gates occur — which is exactly the weakness the paper points out.
    """
    rng = random.Random(seed)
    num_qubits = graph.num_qubits
    side = {q: rng.random() < 0.5 for q in range(num_qubits)}
    improved = True
    for _ in range(passes):
        if not improved:
            break
        improved = False
        for qubit in range(num_qubits):
            gain = 0
            for neighbor in graph.neighbors(qubit):
                weight = graph.weight(qubit, neighbor)
                if side[qubit] == side[neighbor]:
                    gain += weight
                else:
                    gain -= weight
            if gain > 0:
                side[qubit] = not side[qubit]
                improved = True
    return {q: (CutType.X if side[q] else CutType.Z) for q in range(num_qubits)}


def count_single_cycle_gates(dag: GateDAG, assignment: CutAssignment) -> int:
    """Number of CNOTs whose operands start with different cut types."""
    return sum(
        1
        for node in range(len(dag))
        if assignment[dag.gate(node).control] != assignment[dag.gate(node).target]
    )
