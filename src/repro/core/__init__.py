"""Ecmas core: metrics, initial mapping, cut types, schedulers, top-level API."""

from repro.core.cut_types import CutType
from repro.core.ecmas import EcmasOptions, compile_circuit, default_chip, prepare_mapping
from repro.core.mapping import InitialMapping, build_initial_mapping
from repro.core.metrics import (
    ExecutionScheme,
    chip_communication_capacity,
    circuit_parallelism_degree,
    has_sufficient_resources,
    para_finding,
)
from repro.core.schedule import EncodedCircuit, OperationKind, ScheduledOperation
from repro.core.scheduler_dd import DoubleDefectScheduler, schedule_double_defect
from repro.core.scheduler_ls import LatticeSurgeryScheduler, schedule_lattice_surgery
from repro.core.resu import schedule_resu_double_defect, schedule_resu_lattice_surgery

__all__ = [
    "compile_circuit",
    "default_chip",
    "prepare_mapping",
    "EcmasOptions",
    "CutType",
    "EncodedCircuit",
    "ScheduledOperation",
    "OperationKind",
    "InitialMapping",
    "build_initial_mapping",
    "ExecutionScheme",
    "para_finding",
    "circuit_parallelism_degree",
    "chip_communication_capacity",
    "has_sufficient_resources",
    "DoubleDefectScheduler",
    "LatticeSurgeryScheduler",
    "schedule_double_defect",
    "schedule_lattice_surgery",
    "schedule_resu_double_defect",
    "schedule_resu_lattice_surgery",
]
