"""Incremental ready-set and priority maintenance for the fast engine.

The reference Algorithm 1 loop rebuilds its view of the ready set every
cycle: it sorts the frontier's ready nodes, filters out already-dispatched
gates, filters out busy tiles and then re-sorts by priority.  All of that is
O(R log R) per cycle even though the ready set changes only at gate dispatch
and gate retirement.

:class:`IncrementalReadyQueue` keeps the ready set permanently ordered
instead.  Priorities with a ``static_key`` (see
:mod:`repro.core.priorities`) are evaluated once per node when it becomes
ready — criticality and descendant counts are already computed once on the
DAG — and maintained under two O(log R) events:

* :meth:`add` when gate retirement makes new nodes ready,
* :meth:`discard` when a gate is dispatched.

The per-cycle cost is then a single linear scan over the ordered entries to
drop busy tiles (:meth:`available`), which yields *exactly* the list the
reference engine computes.  Priorities without a static key fall back to
calling the priority function per cycle on the identically-ordered input the
reference engine would pass it, so seeded/random ablations stay bit-equal
too.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from heapq import heappop, heappush

from repro.circuits.dag import GateDAG
from repro.core.priorities import PriorityFunction
from repro.errors import SchedulingError


class IncrementalReadyQueue:
    """Priority-ordered view of the not-yet-dispatched ready gates."""

    def __init__(self, dag: GateDAG, priority: PriorityFunction, initial_ready=()):
        self._dag = dag
        self._priority = priority
        self._key = getattr(priority, "static_key", None)
        #: Sorted (key, node, control, target) entries (static-key mode) …
        self._entries: list[tuple] = []
        #: … or the plain ready set (fallback mode).
        self._ready: set[int] = set()
        self.add(initial_ready)

    def __len__(self) -> int:
        return len(self._entries) if self._key is not None else len(self._ready)

    @property
    def uses_static_key(self) -> bool:
        """True when the queue maintains a permanently sorted ready list."""
        return self._key is not None

    def add(self, nodes) -> None:
        """Insert newly ready nodes (from gate retirement)."""
        if self._key is None:
            self._ready.update(nodes)
            return
        dag, key = self._dag, self._key
        operands = dag.operand_pairs
        for node in nodes:
            control, target = operands[node]
            insort(self._entries, (key(dag, node), node, control, target))

    def discard(self, node: int) -> None:
        """Remove a dispatched node from the ready view."""
        if self._key is None:
            self._ready.discard(node)
            return
        # A (key, node) 2-tuple sorts immediately before the 4-tuple entry it
        # prefixes, so bisect_left lands exactly on the node's entry.
        index = bisect_left(self._entries, (self._key(self._dag, node), node))
        if index < len(self._entries) and self._entries[index][1] == node:
            del self._entries[index]

    def available(self, busy_until: dict[int, int], cycle: int) -> list[int]:
        """Ready nodes whose operand tiles are free, in dispatch order.

        Matches the reference engine's ``priority(dag, available)`` output:
        in static-key mode the entries are already in key order; in fallback
        mode the priority function receives the ascending-id list the
        reference engine would build from ``frontier.ready_nodes()``.
        """
        if self._key is not None:
            return [
                node
                for _key, node, control, target in self._entries
                if busy_until[control] <= cycle and busy_until[target] <= cycle
            ]
        dag = self._dag
        operands = dag.operand_pairs
        candidates = []
        for node in sorted(self._ready):
            control, target = operands[node]
            if busy_until[control] <= cycle and busy_until[target] <= cycle:
                candidates.append(node)
        return self._priority(dag, candidates)


class WindowedDagFrontier:
    """A sliding-window view over a :class:`~repro.circuits.dag.DagFrontier`.

    Large circuits (n >= 500 qubits, 10k+ gates) can expose thousands of
    simultaneously-ready gates: the full frontier makes every scheduling
    cycle pay for a ready set far wider than the chip can route anyway, and
    the working structures (priority queue, per-cycle bookkeeping) grow with
    it.  This view caps the *visible* ready set to a window of ``window``
    gates in program order: only nodes with id below ``low + window`` are
    presented, where ``low`` is the smallest not-yet-completed node.  As the
    oldest gates finish, the window slides forward and the DAG-ready nodes it
    admits are surfaced through :meth:`complete` exactly as if they had just
    become ready.

    Deadlock-free by construction: DAG edges always point forward in program
    order, so the smallest incomplete node has all predecessors completed —
    it is ready and always inside the window.

    Windowed schedules are generally *different* from full-frontier schedules
    (the scheduler cannot pull far-ahead gates into early cycles), but every
    dependency and capacity constraint still holds — the validator accepts
    them unchanged (``tests/test_windowed.py``).
    """

    def __init__(self, dag: GateDAG, window: int):
        if window < 1:
            raise SchedulingError(f"scheduling window must be >= 1, got {window}")
        self._inner = dag.frontier()
        self._window = window
        self._low = 0
        self._limit = min(window, len(dag))
        #: DAG-ready nodes currently beyond the window limit (min-heap).
        self._hidden: list[int] = []
        for node in self._inner.ready_nodes():
            if node >= self._limit:
                heappush(self._hidden, node)

    @property
    def dag(self) -> GateDAG:
        """The underlying immutable DAG."""
        return self._inner.dag

    @property
    def window(self) -> int:
        """The configured window width (gates in program order)."""
        return self._window

    @property
    def num_remaining(self) -> int:
        """Number of gates not yet completed."""
        return self._inner.num_remaining

    def is_done(self) -> bool:
        """True when every gate has completed."""
        return self._inner.is_done()

    def ready_nodes(self) -> tuple[int, ...]:
        """Ready nodes inside the window, in ascending node id order."""
        return tuple(
            node for node in self._inner.ready_nodes() if node < self._limit
        )

    def is_ready(self, node: int) -> bool:
        """True if ``node`` is DAG-ready and inside the window."""
        return node < self._limit and self._inner.is_ready(node)

    def is_completed(self, node: int) -> bool:
        """True if ``node`` has been completed."""
        return self._inner.is_completed(node)

    def remaining_nodes(self) -> tuple[int, ...]:
        """All nodes not yet completed (windowed or not)."""
        return self._inner.remaining_nodes()

    def complete(self, node: int) -> tuple[int, ...]:
        """Mark ``node`` executed; returns nodes that became *visible* ready.

        Covers both nodes that just became DAG-ready inside the window and
        previously-ready nodes the sliding window just admitted.
        """
        surfaced = []
        for ready in self._inner.complete(node):
            if ready < self._limit:
                surfaced.append(ready)
            else:
                heappush(self._hidden, ready)
        inner = self._inner
        low = self._low
        while low < len(inner.dag) and inner.is_completed(low):
            low += 1
        self._low = low
        new_limit = min(len(inner.dag), low + self._window)
        if new_limit > self._limit:
            self._limit = new_limit
            while self._hidden and self._hidden[0] < self._limit:
                surfaced.append(heappop(self._hidden))
        return tuple(sorted(surfaced))
