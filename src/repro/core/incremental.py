"""Incremental ready-set and priority maintenance for the fast engine.

The reference Algorithm 1 loop rebuilds its view of the ready set every
cycle: it sorts the frontier's ready nodes, filters out already-dispatched
gates, filters out busy tiles and then re-sorts by priority.  All of that is
O(R log R) per cycle even though the ready set changes only at gate dispatch
and gate retirement.

:class:`IncrementalReadyQueue` keeps the ready set permanently ordered
instead.  Priorities with a ``static_key`` (see
:mod:`repro.core.priorities`) are evaluated once per node when it becomes
ready — criticality and descendant counts are already computed once on the
DAG — and maintained under two O(log R) events:

* :meth:`add` when gate retirement makes new nodes ready,
* :meth:`discard` when a gate is dispatched.

The per-cycle cost is then a single linear scan over the ordered entries to
drop busy tiles (:meth:`available`), which yields *exactly* the list the
reference engine computes.  Priorities without a static key fall back to
calling the priority function per cycle on the identically-ordered input the
reference engine would pass it, so seeded/random ablations stay bit-equal
too.
"""

from __future__ import annotations

from bisect import bisect_left, insort

from repro.circuits.dag import GateDAG
from repro.core.priorities import PriorityFunction


class IncrementalReadyQueue:
    """Priority-ordered view of the not-yet-dispatched ready gates."""

    def __init__(self, dag: GateDAG, priority: PriorityFunction, initial_ready=()):
        self._dag = dag
        self._priority = priority
        self._key = getattr(priority, "static_key", None)
        #: Sorted (key, node, control, target) entries (static-key mode) …
        self._entries: list[tuple] = []
        #: … or the plain ready set (fallback mode).
        self._ready: set[int] = set()
        self.add(initial_ready)

    def __len__(self) -> int:
        return len(self._entries) if self._key is not None else len(self._ready)

    @property
    def uses_static_key(self) -> bool:
        """True when the queue maintains a permanently sorted ready list."""
        return self._key is not None

    def add(self, nodes) -> None:
        """Insert newly ready nodes (from gate retirement)."""
        if self._key is None:
            self._ready.update(nodes)
            return
        dag, key = self._dag, self._key
        for node in nodes:
            gate = dag.gate(node)
            insort(self._entries, (key(dag, node), node, gate.control, gate.target))

    def discard(self, node: int) -> None:
        """Remove a dispatched node from the ready view."""
        if self._key is None:
            self._ready.discard(node)
            return
        # A (key, node) 2-tuple sorts immediately before the 4-tuple entry it
        # prefixes, so bisect_left lands exactly on the node's entry.
        index = bisect_left(self._entries, (self._key(self._dag, node), node))
        if index < len(self._entries) and self._entries[index][1] == node:
            del self._entries[index]

    def available(self, busy_until: dict[int, int], cycle: int) -> list[int]:
        """Ready nodes whose operand tiles are free, in dispatch order.

        Matches the reference engine's ``priority(dag, available)`` output:
        in static-key mode the entries are already in key order; in fallback
        mode the priority function receives the ascending-id list the
        reference engine would build from ``frontier.ready_nodes()``.
        """
        if self._key is not None:
            return [
                node
                for _key, node, control, target in self._entries
                if busy_until[control] <= cycle and busy_until[target] <= cycle
            ]
        dag = self._dag
        candidates = []
        for node in sorted(self._ready):
            gate = dag.gate(node)
            if busy_until[gate.control] <= cycle and busy_until[gate.target] <= cycle:
                candidates.append(node)
        return self._priority(dag, candidates)
