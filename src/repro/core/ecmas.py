"""Top-level Ecmas API.

:func:`compile_circuit` is the one-call entry point: give it a circuit, a
surface-code model and (optionally) a chip, and it runs the full Ecmas
pipeline — pre-processing (profiling, chip analysis), initial mapping (shape,
placement, bandwidth adjusting, cut-type initialisation) and scheduling
(Algorithm 1 for limited resources or Algorithm 2 / Ecmas-ReSu for sufficient
resources) — returning an :class:`~repro.core.schedule.EncodedCircuit`.

Since the pass-based refactor this function is a thin compatibility wrapper
over :mod:`repro.pipeline`: the stages run as named passes
(``profile → build_chip → init_cut_types → initial_mapping →
bandwidth_adjust → select_scheduler → schedule → validate``) and callers who
want per-stage timings or artifacts should use
:func:`repro.pipeline.run_pipeline_method` directly.

Example
-------
>>> from repro import compile_circuit, SurfaceCodeModel
>>> from repro.circuits.generators import standard
>>> circuit = standard.qft(8)
>>> encoded = compile_circuit(circuit, model=SurfaceCodeModel.DOUBLE_DEFECT)
>>> encoded.num_cycles > 0
True
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.chip.chip import Chip
from repro.chip.defects import DefectSpec
from repro.chip.geometry import SurfaceCodeModel
from repro.circuits.circuit import Circuit
from repro.core.cut_decisions import STRATEGIES as _CUT_STRATEGIES
from repro.core.cut_types import (
    bipartite_prefix_cut_types,
    maxcut_cut_types,
    random_cut_types,
    uniform_cut_types,
)
from repro.core.mapping import InitialMapping, build_initial_mapping
from repro.core.metrics import circuit_parallelism_degree
from repro.core.schedule import EncodedCircuit
from repro.errors import SchedulingError

#: Default code distance used throughout the evaluation (the cycle counts the
#: paper reports are independent of d, which only scales the wall-clock time).
DEFAULT_CODE_DISTANCE = 3

#: Valid values for each validated :class:`EcmasOptions` field.
VALID_PLACEMENT_STRATEGIES = frozenset({"ecmas", "metis", "trivial", "spectral", "random"})
VALID_CUT_INITIALISATIONS = frozenset({"bipartite_prefix", "random", "maxcut", "uniform"})
VALID_PRIORITIES = frozenset({"criticality", "circuit_order", "descendants"})
VALID_CUT_STRATEGIES = frozenset(_CUT_STRATEGIES)


@dataclass
class EcmasOptions:
    """Tuning knobs of the Ecmas pipeline (all default to the paper's choices).

    Every value is validated eagerly: an unknown ``priority`` or
    ``cut_strategy`` fails at construction rather than mid-compile.
    """

    placement_strategy: str = "ecmas"
    placement_attempts: int = 4
    adjust_bandwidth: bool = True
    cut_initialisation: str = "bipartite_prefix"
    cut_strategy: str = "adaptive"
    priority: str = "criticality"
    seed: int = 0

    def __post_init__(self) -> None:
        _check_choice("placement_strategy", self.placement_strategy, VALID_PLACEMENT_STRATEGIES)
        _check_choice("cut_initialisation", self.cut_initialisation, VALID_CUT_INITIALISATIONS)
        _check_choice("cut_strategy", self.cut_strategy, VALID_CUT_STRATEGIES)
        _check_choice("priority", self.priority, VALID_PRIORITIES)
        if not isinstance(self.placement_attempts, int) or self.placement_attempts < 1:
            raise SchedulingError(
                f"placement_attempts must be a positive integer, got {self.placement_attempts!r}"
            )

    @classmethod
    def field_names(cls) -> tuple[str, ...]:
        """The option names, e.g. for CLI flag generation."""
        return tuple(f.name for f in fields(cls))


def _check_choice(field_name: str, value: str, valid: frozenset) -> None:
    if value not in valid:
        raise SchedulingError(
            f"unknown {field_name} {value!r}; valid choices: {', '.join(sorted(valid))}"
        )


def _initial_cut_types(circuit: Circuit, options: EcmasOptions):
    name = options.cut_initialisation
    if name == "bipartite_prefix":
        return bipartite_prefix_cut_types(circuit.dag(), circuit.num_qubits)
    if name == "random":
        return random_cut_types(circuit.num_qubits, seed=options.seed)
    if name == "maxcut":
        return maxcut_cut_types(circuit.communication_graph(), seed=options.seed)
    if name == "uniform":
        return uniform_cut_types(circuit.num_qubits)
    raise SchedulingError(f"unknown cut initialisation {name!r}")  # pragma: no cover - validated


def default_chip(
    circuit: Circuit,
    model: SurfaceCodeModel,
    resources: str = "minimum",
    code_distance: int = DEFAULT_CODE_DISTANCE,
    parallelism: int | None = None,
) -> Chip:
    """Build the chip for one of the paper's resource configurations.

    ``resources`` is one of ``"minimum"`` (minimum viable chip), ``"4x"``
    (four times the physical qubits) or ``"sufficient"`` (capacity covers the
    circuit parallelism degree, the Ecmas-ReSu setting).  For
    ``"sufficient"``, a precomputed ``parallelism`` skips re-running
    Para-Finding.
    """
    if resources == "minimum":
        return Chip.minimum_viable(model, circuit.num_qubits, code_distance)
    if resources == "4x":
        return Chip.four_x(model, circuit.num_qubits, code_distance)
    if resources == "sufficient":
        if parallelism is None:
            parallelism = circuit_parallelism_degree(circuit)
        return Chip.sufficient(model, circuit.num_qubits, code_distance, max(1, parallelism))
    raise SchedulingError(f"unknown resource configuration {resources!r}")


def prepare_mapping(
    circuit: Circuit,
    chip: Chip,
    model: SurfaceCodeModel,
    options: EcmasOptions | None = None,
) -> InitialMapping:
    """Run only the pre-processing / initial-mapping stage."""
    options = options or EcmasOptions()
    cut_types = (
        _initial_cut_types(circuit, options) if model is SurfaceCodeModel.DOUBLE_DEFECT else None
    )
    return build_initial_mapping(
        circuit,
        chip,
        cut_types,
        placement_strategy=options.placement_strategy,
        adjust=options.adjust_bandwidth,
        attempts=options.placement_attempts,
        seed=options.seed,
    )


def compile_circuit(
    circuit: Circuit,
    model: SurfaceCodeModel = SurfaceCodeModel.DOUBLE_DEFECT,
    chip: Chip | None = None,
    resources: str = "minimum",
    scheduler: str = "auto",
    code_distance: int = DEFAULT_CODE_DISTANCE,
    options: EcmasOptions | None = None,
    engine: str = "reference",
    placement: str = "reference",
    defects: DefectSpec | None = None,
) -> EncodedCircuit:
    """Compile ``circuit`` into a surface-code encoded circuit with Ecmas.

    Parameters
    ----------
    circuit:
        The logical circuit; only its CNOT gates constrain the schedule.
    model:
        Double defect or lattice surgery.
    chip:
        Target chip.  When omitted, the chip for ``resources`` is built.
    resources:
        ``"minimum"``, ``"4x"`` or ``"sufficient"`` — ignored when ``chip`` is
        given explicitly.
    scheduler:
        ``"auto"`` picks Ecmas-ReSu when the chip capacity covers the circuit
        parallelism degree and Algorithm 1 otherwise; ``"limited"`` forces
        Algorithm 1 and ``"resu"`` forces Algorithm 2.
    options:
        Pipeline tuning knobs; defaults reproduce the paper's configuration.
    engine:
        Algorithm 1 hot path: ``"reference"`` or ``"fast"`` (identical
        schedules, the fast engine is wall-clock faster).
    placement:
        Placement bisection core: ``"reference"`` (classic KL) or ``"fast"``
        (multilevel coarsen/FM — may place differently, quality bounded by
        the parity harness; use for n >= 500 circuits).
    defects:
        Optional :class:`~repro.chip.defects.DefectSpec` applied to the
        target chip (dead tiles, disabled / degraded corridor segments).
    """
    from repro.pipeline.registry import run_pipeline_method

    return run_pipeline_method(
        circuit,
        "ecmas",
        model=model,
        chip=chip,
        resources=resources,
        scheduler=scheduler,
        code_distance=code_distance,
        options=options,
        engine=engine,
        placement=placement,
        defects=defects,
    ).encoded
