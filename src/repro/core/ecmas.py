"""Top-level Ecmas API.

:func:`compile_circuit` is the one-call entry point: give it a circuit, a
surface-code model and (optionally) a chip, and it runs the full Ecmas
pipeline — pre-processing (profiling, chip analysis), initial mapping (shape,
placement, bandwidth adjusting, cut-type initialisation) and scheduling
(Algorithm 1 for limited resources or Algorithm 2 / Ecmas-ReSu for sufficient
resources) — returning an :class:`~repro.core.schedule.EncodedCircuit`.

Example
-------
>>> from repro import compile_circuit, SurfaceCodeModel
>>> from repro.circuits.generators import standard
>>> circuit = standard.qft(8)
>>> encoded = compile_circuit(circuit, model=SurfaceCodeModel.DOUBLE_DEFECT)
>>> encoded.num_cycles > 0
True
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.chip.chip import Chip
from repro.chip.geometry import SurfaceCodeModel
from repro.circuits.circuit import Circuit
from repro.core.cut_decisions import get_strategy
from repro.core.cut_types import (
    CutAssignment,
    bipartite_prefix_cut_types,
    maxcut_cut_types,
    random_cut_types,
    uniform_cut_types,
)
from repro.core.mapping import InitialMapping, build_initial_mapping
from repro.core.metrics import chip_communication_capacity, circuit_parallelism_degree
from repro.core.priorities import circuit_order_priority, criticality_priority, descendant_priority
from repro.core.resu import schedule_resu_double_defect, schedule_resu_lattice_surgery
from repro.core.schedule import EncodedCircuit
from repro.core.scheduler_dd import DoubleDefectScheduler
from repro.core.scheduler_ls import LatticeSurgeryScheduler
from repro.errors import SchedulingError

_PRIORITIES = {
    "criticality": criticality_priority,
    "circuit_order": circuit_order_priority,
    "descendants": descendant_priority,
}

#: Default code distance used throughout the evaluation (the cycle counts the
#: paper reports are independent of d, which only scales the wall-clock time).
DEFAULT_CODE_DISTANCE = 3


@dataclass
class EcmasOptions:
    """Tuning knobs of the Ecmas pipeline (all default to the paper's choices)."""

    placement_strategy: str = "ecmas"
    placement_attempts: int = 4
    adjust_bandwidth: bool = True
    cut_initialisation: str = "bipartite_prefix"
    cut_strategy: str = "adaptive"
    priority: str = "criticality"
    seed: int = 0
    extra: dict = field(default_factory=dict)


def _initial_cut_types(circuit: Circuit, options: EcmasOptions) -> CutAssignment:
    name = options.cut_initialisation
    if name == "bipartite_prefix":
        return bipartite_prefix_cut_types(circuit.dag(), circuit.num_qubits)
    if name == "random":
        return random_cut_types(circuit.num_qubits, seed=options.seed)
    if name == "maxcut":
        return maxcut_cut_types(circuit.communication_graph(), seed=options.seed)
    if name == "uniform":
        return uniform_cut_types(circuit.num_qubits)
    raise SchedulingError(f"unknown cut initialisation {name!r}")


def default_chip(
    circuit: Circuit,
    model: SurfaceCodeModel,
    resources: str = "minimum",
    code_distance: int = DEFAULT_CODE_DISTANCE,
) -> Chip:
    """Build the chip for one of the paper's resource configurations.

    ``resources`` is one of ``"minimum"`` (minimum viable chip), ``"4x"``
    (four times the physical qubits) or ``"sufficient"`` (capacity covers the
    circuit parallelism degree, the Ecmas-ReSu setting).
    """
    if resources == "minimum":
        return Chip.minimum_viable(model, circuit.num_qubits, code_distance)
    if resources == "4x":
        return Chip.four_x(model, circuit.num_qubits, code_distance)
    if resources == "sufficient":
        parallelism = max(1, circuit_parallelism_degree(circuit))
        return Chip.sufficient(model, circuit.num_qubits, code_distance, parallelism)
    raise SchedulingError(f"unknown resource configuration {resources!r}")


def prepare_mapping(
    circuit: Circuit,
    chip: Chip,
    model: SurfaceCodeModel,
    options: EcmasOptions | None = None,
) -> InitialMapping:
    """Run only the pre-processing / initial-mapping stage."""
    options = options or EcmasOptions()
    cut_types = (
        _initial_cut_types(circuit, options) if model is SurfaceCodeModel.DOUBLE_DEFECT else None
    )
    return build_initial_mapping(
        circuit,
        chip,
        cut_types,
        placement_strategy=options.placement_strategy,
        adjust=options.adjust_bandwidth,
        attempts=options.placement_attempts,
        seed=options.seed,
    )


def compile_circuit(
    circuit: Circuit,
    model: SurfaceCodeModel = SurfaceCodeModel.DOUBLE_DEFECT,
    chip: Chip | None = None,
    resources: str = "minimum",
    scheduler: str = "auto",
    code_distance: int = DEFAULT_CODE_DISTANCE,
    options: EcmasOptions | None = None,
) -> EncodedCircuit:
    """Compile ``circuit`` into a surface-code encoded circuit with Ecmas.

    Parameters
    ----------
    circuit:
        The logical circuit; only its CNOT gates constrain the schedule.
    model:
        Double defect or lattice surgery.
    chip:
        Target chip.  When omitted, the chip for ``resources`` is built.
    resources:
        ``"minimum"``, ``"4x"`` or ``"sufficient"`` — ignored when ``chip`` is
        given explicitly.
    scheduler:
        ``"auto"`` picks Ecmas-ReSu when the chip capacity covers the circuit
        parallelism degree and Algorithm 1 otherwise; ``"limited"`` forces
        Algorithm 1 and ``"resu"`` forces Algorithm 2.
    options:
        Pipeline tuning knobs; defaults reproduce the paper's configuration.
    """
    options = options or EcmasOptions()
    if chip is None:
        chip = default_chip(circuit, model, resources=resources, code_distance=code_distance)
    started = time.perf_counter()
    mapping = prepare_mapping(circuit, chip, model, options)

    if scheduler == "auto":
        parallelism = circuit_parallelism_degree(circuit)
        use_resu = chip_communication_capacity(mapping.chip) >= parallelism
    elif scheduler == "resu":
        use_resu = True
    elif scheduler == "limited":
        use_resu = False
    else:
        raise SchedulingError(f"unknown scheduler {scheduler!r}")

    priority = _PRIORITIES.get(options.priority)
    if priority is None:
        raise SchedulingError(f"unknown priority {options.priority!r}")

    if model is SurfaceCodeModel.DOUBLE_DEFECT:
        if use_resu:
            encoded = schedule_resu_double_defect(circuit, mapping)
        else:
            encoded = DoubleDefectScheduler(
                circuit,
                mapping,
                priority=priority,
                cut_strategy=get_strategy(options.cut_strategy),
            ).run()
    else:
        if use_resu:
            encoded = schedule_resu_lattice_surgery(circuit, mapping)
        else:
            encoded = LatticeSurgeryScheduler(circuit, mapping, priority=priority).run()
    encoded.compile_seconds = time.perf_counter() - started
    return encoded
