"""Circuit Parallelism Degree (Para-Finding) and Chip Communication Capacity.

*Circuit Parallelism Degree* (PM, Definition 1) is the smallest possible
maximum layer width over all minimum-length layerings of the CNOT DAG.
Computing it exactly is NP-complete (machine-minimisation scheduling), so the
paper's *Para-Finding* heuristic is used: gates are assigned to layers in
order of increasing slack (``High - Low``), each to the legal layer currently
holding the fewest gates, and the bounds of their neighbours are tightened
after every assignment.  The result is both the estimate ``gPM`` and a
concrete execution scheme (a list of layers) that Ecmas-ReSu consumes.

*Chip Communication Capacity* (Definition 2 / Theorem 2) is
``⌊(b-1)/2⌋ + 3`` for a chip of bandwidth ``b``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from functools import cached_property

from repro.chip.chip import Chip
from repro.circuits.circuit import Circuit
from repro.circuits.dag import GateDAG
from repro.errors import SchedulingError


@dataclass(frozen=True)
class ExecutionScheme:
    """A layering of the CNOT DAG produced by Para-Finding.

    Attributes
    ----------
    layers:
        ``layers[i]`` holds the DAG node ids scheduled in layer ``i`` (0-based).
        Every layer's gates are mutually independent and all dependencies point
        from earlier to later layers.
    parallelism:
        The estimated circuit parallelism degree ``gPM`` — the width of the
        widest layer.
    """

    layers: tuple[tuple[int, ...], ...]
    parallelism: int

    @property
    def depth(self) -> int:
        """Number of layers (equals the DAG critical-path length)."""
        return len(self.layers)

    @cached_property
    def _layer_by_node(self) -> dict[int, int]:
        # Built once per scheme: per-node lookups over a linear scan were
        # O(layers × width) each, quadratic in aggregate on wide circuits.
        return {node: index for index, layer in enumerate(self.layers) for node in layer}

    def layer_of(self, node: int) -> int:
        """Layer index (0-based) of a DAG node (O(1) after the first lookup)."""
        try:
            return self._layer_by_node[node]
        except KeyError:
            raise SchedulingError(f"gate node {node} missing from execution scheme") from None


def para_finding(dag: GateDAG) -> ExecutionScheme:
    """The paper's Para-Finding heuristic (Section IV-A1).

    Returns an execution scheme whose number of layers equals the DAG depth
    and whose maximum layer width is the estimate ``gPM``.
    """
    num_layers = dag.depth()
    if len(dag) == 0:
        return ExecutionScheme(layers=(), parallelism=0)
    low = [dag.asap_level(node) for node in range(len(dag))]
    high = [dag.alap_level(node) for node in range(len(dag))]
    layer_load = [0] * (num_layers + 1)  # 1-based layers
    assignment: dict[int, int] = {}
    # Priority queue keyed by (slack, node); stale entries are skipped lazily.
    heap: list[tuple[int, int]] = [(high[n] - low[n], n) for n in range(len(dag))]
    heapq.heapify(heap)

    def raise_low(start: int, value: int) -> None:
        """Propagate ``low[start] >= value`` transitively through successors."""
        stack = [(start, value)]
        while stack:
            node, bound = stack.pop()
            if low[node] >= bound:
                continue
            low[node] = bound
            heapq.heappush(heap, (high[node] - low[node], node))
            for child in dag.successors(node):
                if child not in assignment:
                    stack.append((child, bound + 1))

    def lower_high(start: int, value: int) -> None:
        """Propagate ``high[start] <= value`` transitively through predecessors."""
        stack = [(start, value)]
        while stack:
            node, bound = stack.pop()
            if high[node] <= bound:
                continue
            high[node] = bound
            heapq.heappush(heap, (high[node] - low[node], node))
            for parent in dag.predecessors(node):
                if parent not in assignment:
                    stack.append((parent, bound - 1))

    while heap:
        slack, node = heapq.heappop(heap)
        if node in assignment:
            continue
        if slack != high[node] - low[node]:
            heapq.heappush(heap, (high[node] - low[node], node))
            continue
        if low[node] > high[node]:  # pragma: no cover - propagation keeps bounds consistent
            raise SchedulingError(f"Para-Finding bounds collapsed for node {node}")
        candidates = range(low[node], high[node] + 1)
        layer = min(candidates, key=lambda idx: (layer_load[idx], idx))
        assignment[node] = layer
        layer_load[layer] += 1
        # Tighten the bounds of every transitively constrained neighbour, so
        # that the invariant low[v] >= low[u] + 1 and high[u] <= high[v] - 1
        # holds along every edge u -> v and no interval ever becomes empty.
        for child in dag.successors(node):
            if child not in assignment:
                raise_low(child, layer + 1)
        for parent in dag.predecessors(node):
            if parent not in assignment:
                lower_high(parent, layer - 1)

    layers: list[list[int]] = [[] for _ in range(num_layers)]
    for node, layer in assignment.items():
        layers[layer - 1].append(node)
    for index, layer_nodes in enumerate(layers):
        layer_nodes.sort()
        if not layer_nodes:
            raise SchedulingError(f"Para-Finding produced an empty layer {index + 1}")  # pragma: no cover
    parallelism = max(len(layer_nodes) for layer_nodes in layers)
    return ExecutionScheme(layers=tuple(tuple(l) for l in layers), parallelism=parallelism)


def circuit_parallelism_degree(circuit: Circuit) -> int:
    """The estimate ``gPM`` of the circuit parallelism degree."""
    dag = circuit.dag()
    if len(dag) == 0:
        return 0
    return para_finding(dag).parallelism


def asap_parallelism(circuit: Circuit) -> int:
    """Maximum ASAP-layer width — an upper-bound baseline for ``gPM``.

    Para-Finding should never report a larger value than this greedy layering
    (it balances layers), which the property tests assert.
    """
    dag = circuit.dag()
    if len(dag) == 0:
        return 0
    return max(len(layer) for layer in dag.asap_layers())


def chip_communication_capacity(chip: Chip) -> int:
    """Chip communication capacity ``⌊(b-1)/2⌋ + 3`` (Theorem 2).

    Delegates to :attr:`Chip.communication_capacity`, which reports 0 for a
    defective chip whose corridor grid is fully disabled.
    """
    return chip.communication_capacity


def has_sufficient_resources(circuit: Circuit, chip: Chip) -> bool:
    """True when the chip capacity covers the circuit parallelism degree.

    This is the dispatch condition between Algorithm 1 (limited resources)
    and Algorithm 2 / Ecmas-ReSu (sufficient resources).
    """
    return chip_communication_capacity(chip) >= circuit_parallelism_degree(circuit)
