"""Layer-fingerprint memoization for the Algorithm 1 schedulers.

Generator circuits (ising, dnn, qft, ghz …) repeat the same dependency layer
many times: the same ordered set of tile pairs, the same cut types, the same
residual capacities.  The schedulers therefore re-derive the exact same cycle
— the same routing queries, the same cut decisions, the same reservations —
over and over.  This module builds a *fingerprint* of everything one
scheduling cycle can read, so a scheduler can cache the cycle's outcome on
the first occurrence and replay it on repeats without touching the router or
the decision strategies.

Soundness is the whole game: a fingerprint hit must imply a bit-identical
cycle.  The keys below are derived from the schedulers' actual read sets:

Lattice surgery (:class:`LsLayerKey`)
    A cycle starts from an empty :class:`CapacityUsage` and schedules braids
    in priority order; two simultaneously-ready gates can never share a qubit
    (gates on a common qubit are chained in the DAG), so no mid-cycle state
    leaks between gates beyond the usage tracker itself.  The outcome is a
    pure function of the **ordered operand-slot pairs**.

Double defect (:class:`DdLayerKey`)
    Richer reads: per-gate cut types and idle times (idle matters only capped
    at :data:`MODIFICATION_CYCLES` — beyond that, overlap and
    ``remaining_modification`` saturate), the residual-capacity state of the
    current and next two cycles (direct CNOTs reserve a three-cycle span),
    θ via the ready count (the key's length), and — for the adaptive strategy
    — the look-ahead over successor partners' cut types.  A partner that is
    itself an operand of a gate in the current order may have its cut flipped
    *mid-cycle* (a modification overlapping enough idle time completes
    immediately), so such partners are encoded as **layer-local position
    references** rather than concrete cut values; partners outside the order
    cannot flip mid-cycle and are encoded by their concrete cut type.

Key builders precompute every static per-gate component (operand slots, the
look-ahead partner structure) once per run, so the per-cycle fingerprint is
a few list indexes per gate rather than DAG walks.

Only the strategies in :data:`MEMO_SAFE_STRATEGIES` are memoized: their read
sets are known.  A custom strategy silently disables memoization rather than
risking an unsound replay.

``tests/test_layer_memo.py`` asserts memoized schedules are bit-identical to
unmemoized ones across the benchmark suite and under Hypothesis-generated
circuits.
"""

from __future__ import annotations

from repro.circuits.dag import GateDAG
from repro.core.cut_decisions import (
    MODIFICATION_CYCLES,
    adaptive_strategy,
    channel_first_strategy,
    never_modify_strategy,
    time_first_strategy,
)
from repro.core.cut_types import CutType
from repro.routing.paths import CapacityUsage

#: Strategies whose complete read set is covered by :class:`DdLayerKey`.
#: ``adaptive`` additionally reads the successor look-ahead (captured when
#: ``lookahead=True``); the other three read at most capped idle times.
MEMO_SAFE_STRATEGIES = (
    adaptive_strategy,
    time_first_strategy,
    channel_first_strategy,
    never_modify_strategy,
)

#: Strategies that require the successor look-ahead in the fingerprint.
LOOKAHEAD_STRATEGIES = (adaptive_strategy,)

#: Cache-miss sentinel for :class:`DdLayerKey`'s signature cache (``None`` is
#: a legitimate cached signature — it means "no reservations").
_NO_SIGNATURE = object()


def usage_signature(usage: CapacityUsage | None):
    """Hashable content signature of one cycle's reservations (None if empty)."""
    if usage is None or (not usage.used and not usage.node_used):
        return None
    return (
        tuple(sorted(usage.used.items())),
        tuple(sorted(usage.node_used.items())),
    )


class LsLayerKey:
    """Per-run fingerprint builder for lattice-surgery cycles."""

    def __init__(self, dag: GateDAG, slots):
        #: (slot_a, slot_b) per DAG node, precomputed once.
        self._pair_slots = [
            (slots[control], slots[target]) for control, target in dag.operand_pairs
        ]

    def key(self, order) -> tuple:
        """Fingerprint of one cycle: the ordered operand slots."""
        pair_slots = self._pair_slots
        return tuple(pair_slots[node] for node in order)


class DdLayerKey:
    """Per-run fingerprint builder for double-defect cycles.

    ``span`` is the number of cycles a direct CNOT reserves
    (:data:`~repro.core.cut_decisions.DIRECT_SAME_CUT_CYCLES`): the residual
    state of cycles ``cycle .. cycle + span - 1`` can influence routing, so
    their signatures are part of the key.
    """

    def __init__(self, dag: GateDAG, slots, span: int, lookahead: bool):
        self._dag = dag
        self._operands = dag.operand_pairs
        self._pair_slots = [
            (slots[control], slots[target]) for control, target in dag.operand_pairs
        ]
        self._span = span
        # Per-node look-ahead partner tuples, computed lazily on first use
        # (schedulers may stop fingerprinting mid-run when the memo never
        # hits; eager construction would charge the whole DAG up front).
        self._lookahead: list[tuple[int, ...] | None] | None = (
            [None] * len(dag) if lookahead else None
        )

    def _lookahead_partners(self, node: int) -> tuple[int, ...]:
        """The look-ahead read order of the adaptive strategy for ``node``:
        for each operand qubit, the partners of the successor gates sharing
        it, flattened to the qubits their cut types are compared against."""
        dag = self._dag
        qubit_a, qubit_b = self._operands[node]
        partners = []
        for qubit in (qubit_a, qubit_b):
            for child in dag.successors(node):
                child_a, child_b = dag.operands(child)
                if qubit == child_a:
                    partners.append(child_b)
                elif qubit == child_b:
                    partners.append(child_a)
        return tuple(partners)

    def key(
        self,
        order,
        cut: dict[int, CutType],
        busy_until: dict[int, int],
        cycle: int,
        usage_by_cycle: dict[int, CapacityUsage],
        signature_cache: dict[int, object] | None = None,
    ) -> tuple:
        """Fingerprint of one cycle under the current scheduler state.

        ``signature_cache`` memoizes residual-usage signatures by cycle
        number; the scheduler must evict a cycle's entry whenever it reserves
        capacity into that cycle (direct CNOTs reserve forward spans).
        """
        operands = self._operands
        pair_slots = self._pair_slots
        lookahead = self._lookahead
        position_get = None
        if lookahead is not None:
            # Where each qubit appears in this cycle's order — look-ahead
            # partners found here are encoded positionally (their cut may
            # flip mid-cycle).
            qubit_position: dict[int, tuple[int, int]] = {}
            for position, node in enumerate(order):
                qubit_a, qubit_b = operands[node]
                qubit_position[qubit_a] = (position, 0)
                qubit_position[qubit_b] = (position, 1)
            position_get = qubit_position.get
        parts = []
        append = parts.append
        for node in order:
            qubit_a, qubit_b = operands[node]
            idle_a = cycle - busy_until[qubit_a]
            idle_b = cycle - busy_until[qubit_b]
            entry = (
                pair_slots[node],
                cut[qubit_a],
                cut[qubit_b],
                # Idle beyond MODIFICATION_CYCLES saturates both the overlap
                # rule and remaining_modification, so the cap loses nothing.
                idle_a if idle_a < MODIFICATION_CYCLES else MODIFICATION_CYCLES,
                idle_b if idle_b < MODIFICATION_CYCLES else MODIFICATION_CYCLES,
            )
            if lookahead is not None:
                partners = lookahead[node]
                if partners is None:
                    partners = self._lookahead_partners(node)
                    lookahead[node] = partners
                if partners:
                    entry = entry + tuple(
                        position_get(partner) or ("cut", cut[partner])
                        for partner in partners
                    )
            append(entry)
        if signature_cache is None:
            signatures = tuple(
                usage_signature(usage_by_cycle.get(cycle + offset))
                for offset in range(self._span)
            )
        else:
            parts_sig = []
            for offset in range(self._span):
                at = cycle + offset
                sig = signature_cache.get(at, _NO_SIGNATURE)
                if sig is _NO_SIGNATURE:
                    sig = usage_signature(usage_by_cycle.get(at))
                    signature_cache[at] = sig
                parts_sig.append(sig)
            signatures = tuple(parts_sig)
        return (tuple(parts), signatures)
