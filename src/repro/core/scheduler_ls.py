"""Algorithm 1 — priority scheduling for the lattice surgery model.

Lattice surgery CNOTs all cost one clock cycle: a Bell state is built through
a corridor of ancilla tiles between the two operand tiles (Fig. 4), so the
scheduling problem reduces to picking, in every cycle, a maximal
capacity-respecting set of ready gates.  The scheduler processes ready gates
in priority order (criticality then descendant count by default) and routes
each through the corridor graph; gates that cannot be routed wait for the
next cycle.

The same engine with the EDPCI gate order (shortest tile separation first,
trivial snake placement) is used as the EDPCI baseline.
"""

from __future__ import annotations

from collections import defaultdict

from repro.chip.geometry import SurfaceCodeModel
from repro.chip.routing_graph import Node, RoutingGraph, tile_node_for
from repro.circuits.circuit import Circuit
from repro.core.mapping import InitialMapping
from repro.core.priorities import PriorityFunction, criticality_priority
from repro.core.schedule import EncodedCircuit, OperationKind, ScheduledOperation
from repro.errors import SchedulingError
from repro.routing.paths import CapacityUsage
from repro.routing.router import find_path

_SAFETY_FACTOR = 8


class LatticeSurgeryScheduler:
    """Schedules one circuit on one lattice-surgery chip (Algorithm 1)."""

    def __init__(
        self,
        circuit: Circuit,
        mapping: InitialMapping,
        priority: PriorityFunction = criticality_priority,
        congestion_weight: float = 0.25,
        method: str = "ecmas-ls",
    ):
        self._circuit = circuit
        self._mapping = mapping
        self._priority = priority
        self._congestion_weight = congestion_weight
        self._method = method
        self._dag = circuit.dag()
        self._graph = RoutingGraph(mapping.chip)

    def run(self) -> EncodedCircuit:
        """Produce the encoded circuit."""
        result = EncodedCircuit(
            model=SurfaceCodeModel.LATTICE_SURGERY,
            chip=self._mapping.chip,
            placement=self._mapping.placement,
            initial_cut_types=None,
            method=self._method,
        )
        if len(self._dag) == 0:
            return result

        frontier = self._dag.frontier()
        busy_until: dict[int, int] = defaultdict(int)
        completions: dict[int, list[int]] = defaultdict(list)
        scheduled: set[int] = set()
        operations: list[ScheduledOperation] = []

        max_cycles = _SAFETY_FACTOR * (len(self._dag) + 10)
        cycle = 0
        while not frontier.is_done():
            if cycle > max_cycles:
                raise SchedulingError(
                    f"lattice surgery scheduler exceeded {max_cycles} cycles; "
                    f"{frontier.num_remaining} gates remain"
                )
            for node in completions.pop(cycle, []):
                frontier.complete(node)

            ready = [node for node in frontier.ready_nodes() if node not in scheduled]
            available = [
                node
                for node in ready
                if busy_until[self._dag.gate(node).control] <= cycle
                and busy_until[self._dag.gate(node).target] <= cycle
            ]
            order = self._priority(self._dag, available)
            usage = CapacityUsage()

            for node in order:
                gate = self._dag.gate(node)
                qubit_a, qubit_b = gate.control, gate.target
                if busy_until[qubit_a] > cycle or busy_until[qubit_b] > cycle:
                    continue
                path = find_path(
                    self._graph, usage, self._tile(qubit_a), self._tile(qubit_b), self._congestion_weight
                )
                if path is None:
                    continue
                usage.add_path(path)
                operations.append(
                    ScheduledOperation(
                        kind=OperationKind.CNOT_BRAID,
                        start_cycle=cycle,
                        duration=1,
                        qubits=(qubit_a, qubit_b),
                        gate_node=node,
                        path=path,
                    )
                )
                busy_until[qubit_a] = cycle + 1
                busy_until[qubit_b] = cycle + 1
                completions[cycle + 1].append(node)
                scheduled.add(node)

            cycle += 1

        result.operations = operations
        return result

    def _tile(self, qubit: int) -> Node:
        return tile_node_for(self._mapping.placement.slot_of(qubit))


def schedule_lattice_surgery(
    circuit: Circuit,
    mapping: InitialMapping,
    priority: PriorityFunction = criticality_priority,
    method: str = "ecmas-ls",
) -> EncodedCircuit:
    """Convenience wrapper around :class:`LatticeSurgeryScheduler`."""
    scheduler = LatticeSurgeryScheduler(circuit, mapping, priority=priority, method=method)
    return scheduler.run()
