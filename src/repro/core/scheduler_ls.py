"""Algorithm 1 — priority scheduling for the lattice surgery model.

Lattice surgery CNOTs all cost one clock cycle: a Bell state is built through
a corridor of ancilla tiles between the two operand tiles (Fig. 4), so the
scheduling problem reduces to picking, in every cycle, a maximal
capacity-respecting set of ready gates.  The scheduler processes ready gates
in priority order (criticality then descendant count by default) and routes
each through the corridor graph; gates that cannot be routed wait for the
next cycle.

The same engine with the EDPCI gate order (shortest tile separation first,
trivial snake placement) is used as the EDPCI baseline.

Engines
-------
As in :mod:`repro.core.scheduler_dd`, ``engine="fast"`` swaps the per-cycle
ready-set rebuild for an incrementally maintained priority queue and the
Dijkstra router for the landmark A* router, without changing the produced
schedule; the per-cycle :class:`CapacityUsage` is recycled instead of
reallocated.  The fast engine additionally memoizes whole cycles by their
layer fingerprint (:mod:`repro.core.layer_memo`): a lattice-surgery cycle is
a pure function of its ordered operand slots, so repeated layers replay
their recorded braids without touching the router.  ``window`` enables the
sliding-window frontier of :class:`~repro.core.incremental.WindowedDagFrontier`
for bounded working sets on very large circuits (the schedule then differs
from the full-frontier one but stays validator-clean).
"""

from __future__ import annotations

from collections import defaultdict

from repro.chip.geometry import SurfaceCodeModel
from repro.chip.routing_graph import Node, tile_node_for
from repro.circuits.circuit import Circuit
from repro.core.engines import check_engine, route_query, routing_for, stalled_schedule_error
from repro.core.incremental import IncrementalReadyQueue, WindowedDagFrontier
from repro.core.layer_memo import LsLayerKey
from repro.core.mapping import InitialMapping
from repro.core.priorities import PriorityFunction, criticality_priority
from repro.core.schedule import EncodedCircuit, OperationKind, ScheduledOperation
from repro.profiling.instrumentation import EngineCounters
from repro.routing.paths import CapacityUsage, RoutedPath

_SAFETY_FACTOR = 8


class LatticeSurgeryScheduler:
    """Schedules one circuit on one lattice-surgery chip (Algorithm 1)."""

    def __init__(
        self,
        circuit: Circuit,
        mapping: InitialMapping,
        priority: PriorityFunction = criticality_priority,
        congestion_weight: float = 0.25,
        method: str = "ecmas-ls",
        engine: str = "reference",
        max_cycles: int | None = None,
        dag=None,
        window: int | None = None,
        memoize: bool | None = None,
    ):
        self._circuit = circuit
        self._mapping = mapping
        self._priority = priority
        self._congestion_weight = congestion_weight
        self._method = method
        self._engine = check_engine(engine)
        self._max_cycles = max_cycles
        self._window = window
        # Layer memoization defaults on for the fast engine; ``memoize=False``
        # forces it off (the parity tests compare both modes).
        self._memoize = (self._engine == "fast") if memoize is None else memoize
        # A DAG precomputed by the pipeline's profile pass is reused as-is.
        self._dag = dag if dag is not None else circuit.dag()
        self._graph, self._router = routing_for(mapping.chip, self._engine)
        #: Tile node per placed qubit, resolved once (placements are frozen).
        self._tiles = {
            qubit: tile_node_for(slot)
            for qubit, slot in mapping.placement.qubit_to_slot.items()
        }
        self.counters = EngineCounters()

    def _find_path(self, usage: CapacityUsage, source: Node, target: Node) -> RoutedPath | None:
        return route_query(
            self._router, self._graph, usage, source, target, self._congestion_weight, self.counters
        )

    def run(self) -> EncodedCircuit:
        """Produce the encoded circuit."""
        result = EncodedCircuit(
            model=SurfaceCodeModel.LATTICE_SURGERY,
            chip=self._mapping.chip,
            placement=self._mapping.placement,
            initial_cut_types=None,
            method=self._method,
        )
        if len(self._dag) == 0:
            return result

        frontier = (
            WindowedDagFrontier(self._dag, self._window)
            if self._window is not None
            else self._dag.frontier()
        )
        busy_until: dict[int, int] = defaultdict(int)
        completions: dict[int, list[int]] = defaultdict(list)
        scheduled: set[int] = set()
        operations: list[ScheduledOperation] = []
        queue = (
            IncrementalReadyQueue(self._dag, self._priority, frontier.ready_nodes())
            if self._engine == "fast"
            else None
        )
        # The fast engine reuses one usage tracker across cycles (cleared in
        # place) instead of allocating a fresh one per cycle.
        recycled_usage = CapacityUsage() if self._engine == "fast" else None
        operands = self._dag.operand_pairs
        # Layer memoization: a cycle is a pure function of its ordered operand
        # slots (usage starts empty; ready gates never share qubits), so the
        # per-position path outcomes can be replayed on fingerprint repeats.
        memo: dict[tuple, tuple] | None = {} if self._memoize else None
        fingerprint = (
            LsLayerKey(self._dag, self._mapping.placement.qubit_to_slot)
            if self._memoize
            else None
        )

        max_cycles = (
            self._max_cycles if self._max_cycles is not None else _SAFETY_FACTOR * (len(self._dag) + 10)
        )
        cycle = 0
        while not frontier.is_done():
            if cycle > max_cycles:
                raise stalled_schedule_error(
                    "lattice surgery", cycle, max_cycles, frontier, self._dag, busy_until, scheduled
                )
            for node in completions.pop(cycle, []):
                newly_ready = frontier.complete(node)
                if queue is not None:
                    queue.add(newly_ready)

            if queue is not None:
                order = queue.available(busy_until, cycle)
            else:
                ready = [node for node in frontier.ready_nodes() if node not in scheduled]
                available = [
                    node
                    for node in ready
                    if busy_until[operands[node][0]] <= cycle
                    and busy_until[operands[node][1]] <= cycle
                ]
                order = self._priority(self._dag, available)

            if memo is not None:
                key = fingerprint.key(order)
                cached = memo.get(key)
                if cached is not None:
                    self.counters.layer_memo_hits += 1
                    self._replay_cycle(
                        cached, order, cycle, busy_until, completions,
                        scheduled, operations, queue,
                    )
                    cycle += 1
                    continue
                self.counters.layer_memo_misses += 1

            if recycled_usage is not None:
                usage = recycled_usage
                usage.used.clear()
                usage.node_used.clear()
            else:
                usage = CapacityUsage()

            outcomes: list[RoutedPath | None] = []
            for node in order:
                qubit_a, qubit_b = operands[node]
                if busy_until[qubit_a] > cycle or busy_until[qubit_b] > cycle:
                    outcomes.append(None)
                    continue
                path = self._find_path(usage, self._tile(qubit_a), self._tile(qubit_b))
                outcomes.append(path)
                if path is None:
                    continue
                self.counters.gates_scheduled += 1
                usage.add_path(path)
                operations.append(
                    ScheduledOperation(
                        kind=OperationKind.CNOT_BRAID,
                        start_cycle=cycle,
                        duration=1,
                        qubits=(qubit_a, qubit_b),
                        gate_node=node,
                        path=path,
                    )
                )
                busy_until[qubit_a] = cycle + 1
                busy_until[qubit_b] = cycle + 1
                completions[cycle + 1].append(node)
                scheduled.add(node)
                if queue is not None:
                    queue.discard(node)
            if memo is not None:
                memo[key] = tuple(outcomes)

            cycle += 1

        self.counters.cycles_simulated = cycle
        result.operations = operations
        return result

    def _replay_cycle(
        self,
        outcomes: tuple[RoutedPath | None, ...],
        order,
        cycle: int,
        busy_until: dict[int, int],
        completions: dict[int, list[int]],
        scheduled: set[int],
        operations: list[ScheduledOperation],
        queue: IncrementalReadyQueue | None,
    ) -> None:
        """Apply a memoized cycle's braids to the current order's gates."""
        operands = self._dag.operand_pairs
        for node, path in zip(order, outcomes):
            if path is None:
                continue
            qubit_a, qubit_b = operands[node]
            self.counters.gates_scheduled += 1
            operations.append(
                ScheduledOperation(
                    kind=OperationKind.CNOT_BRAID,
                    start_cycle=cycle,
                    duration=1,
                    qubits=(qubit_a, qubit_b),
                    gate_node=node,
                    path=path,
                )
            )
            busy_until[qubit_a] = cycle + 1
            busy_until[qubit_b] = cycle + 1
            completions[cycle + 1].append(node)
            scheduled.add(node)
            if queue is not None:
                queue.discard(node)

    def _tile(self, qubit: int) -> Node:
        tile = self._tiles.get(qubit)
        if tile is None:
            # Unplaced qubit: surface the mapping error, not a KeyError.
            return tile_node_for(self._mapping.placement.slot_of(qubit))
        return tile


def schedule_lattice_surgery(
    circuit: Circuit,
    mapping: InitialMapping,
    priority: PriorityFunction = criticality_priority,
    method: str = "ecmas-ls",
    engine: str = "reference",
) -> EncodedCircuit:
    """Convenience wrapper around :class:`LatticeSurgeryScheduler`."""
    scheduler = LatticeSurgeryScheduler(circuit, mapping, priority=priority, method=method, engine=engine)
    return scheduler.run()
