"""Algorithm 1 — priority scheduling for the lattice surgery model.

Lattice surgery CNOTs all cost one clock cycle: a Bell state is built through
a corridor of ancilla tiles between the two operand tiles (Fig. 4), so the
scheduling problem reduces to picking, in every cycle, a maximal
capacity-respecting set of ready gates.  The scheduler processes ready gates
in priority order (criticality then descendant count by default) and routes
each through the corridor graph; gates that cannot be routed wait for the
next cycle.

The same engine with the EDPCI gate order (shortest tile separation first,
trivial snake placement) is used as the EDPCI baseline.

Engines
-------
As in :mod:`repro.core.scheduler_dd`, ``engine="fast"`` swaps the per-cycle
ready-set rebuild for an incrementally maintained priority queue and the
Dijkstra router for the landmark A* router, without changing the produced
schedule; the per-cycle :class:`CapacityUsage` is recycled instead of
reallocated.
"""

from __future__ import annotations

from collections import defaultdict

from repro.chip.geometry import SurfaceCodeModel
from repro.chip.routing_graph import Node, tile_node_for
from repro.circuits.circuit import Circuit
from repro.core.engines import check_engine, route_query, routing_for, stalled_schedule_error
from repro.core.incremental import IncrementalReadyQueue
from repro.core.mapping import InitialMapping
from repro.core.priorities import PriorityFunction, criticality_priority
from repro.core.schedule import EncodedCircuit, OperationKind, ScheduledOperation
from repro.profiling.instrumentation import EngineCounters
from repro.routing.paths import CapacityUsage, RoutedPath

_SAFETY_FACTOR = 8


class LatticeSurgeryScheduler:
    """Schedules one circuit on one lattice-surgery chip (Algorithm 1)."""

    def __init__(
        self,
        circuit: Circuit,
        mapping: InitialMapping,
        priority: PriorityFunction = criticality_priority,
        congestion_weight: float = 0.25,
        method: str = "ecmas-ls",
        engine: str = "reference",
        max_cycles: int | None = None,
        dag=None,
    ):
        self._circuit = circuit
        self._mapping = mapping
        self._priority = priority
        self._congestion_weight = congestion_weight
        self._method = method
        self._engine = check_engine(engine)
        self._max_cycles = max_cycles
        # A DAG precomputed by the pipeline's profile pass is reused as-is.
        self._dag = dag if dag is not None else circuit.dag()
        self._graph, self._router = routing_for(mapping.chip, self._engine)
        self.counters = EngineCounters()

    def _find_path(self, usage: CapacityUsage, source: Node, target: Node) -> RoutedPath | None:
        return route_query(
            self._router, self._graph, usage, source, target, self._congestion_weight, self.counters
        )

    def run(self) -> EncodedCircuit:
        """Produce the encoded circuit."""
        result = EncodedCircuit(
            model=SurfaceCodeModel.LATTICE_SURGERY,
            chip=self._mapping.chip,
            placement=self._mapping.placement,
            initial_cut_types=None,
            method=self._method,
        )
        if len(self._dag) == 0:
            return result

        frontier = self._dag.frontier()
        busy_until: dict[int, int] = defaultdict(int)
        completions: dict[int, list[int]] = defaultdict(list)
        scheduled: set[int] = set()
        operations: list[ScheduledOperation] = []
        queue = (
            IncrementalReadyQueue(self._dag, self._priority, frontier.ready_nodes())
            if self._engine == "fast"
            else None
        )
        # The fast engine reuses one usage tracker across cycles (cleared in
        # place) instead of allocating a fresh one per cycle.
        recycled_usage = CapacityUsage() if self._engine == "fast" else None

        max_cycles = (
            self._max_cycles if self._max_cycles is not None else _SAFETY_FACTOR * (len(self._dag) + 10)
        )
        cycle = 0
        while not frontier.is_done():
            if cycle > max_cycles:
                raise stalled_schedule_error(
                    "lattice surgery", cycle, max_cycles, frontier, self._dag, busy_until, scheduled
                )
            for node in completions.pop(cycle, []):
                newly_ready = frontier.complete(node)
                if queue is not None:
                    queue.add(newly_ready)

            if queue is not None:
                order = queue.available(busy_until, cycle)
                usage = recycled_usage
                usage.used.clear()
                usage.node_used.clear()
            else:
                ready = [node for node in frontier.ready_nodes() if node not in scheduled]
                available = [
                    node
                    for node in ready
                    if busy_until[self._dag.gate(node).control] <= cycle
                    and busy_until[self._dag.gate(node).target] <= cycle
                ]
                order = self._priority(self._dag, available)
                usage = CapacityUsage()

            for node in order:
                gate = self._dag.gate(node)
                qubit_a, qubit_b = gate.control, gate.target
                if busy_until[qubit_a] > cycle or busy_until[qubit_b] > cycle:
                    continue
                path = self._find_path(usage, self._tile(qubit_a), self._tile(qubit_b))
                if path is None:
                    continue
                self.counters.gates_scheduled += 1
                usage.add_path(path)
                operations.append(
                    ScheduledOperation(
                        kind=OperationKind.CNOT_BRAID,
                        start_cycle=cycle,
                        duration=1,
                        qubits=(qubit_a, qubit_b),
                        gate_node=node,
                        path=path,
                    )
                )
                busy_until[qubit_a] = cycle + 1
                busy_until[qubit_b] = cycle + 1
                completions[cycle + 1].append(node)
                scheduled.add(node)
                if queue is not None:
                    queue.discard(node)

            cycle += 1

        self.counters.cycles_simulated = cycle
        result.operations = operations
        return result

    def _tile(self, qubit: int) -> Node:
        return tile_node_for(self._mapping.placement.slot_of(qubit))


def schedule_lattice_surgery(
    circuit: Circuit,
    mapping: InitialMapping,
    priority: PriorityFunction = criticality_priority,
    method: str = "ecmas-ls",
    engine: str = "reference",
) -> EncodedCircuit:
    """Convenience wrapper around :class:`LatticeSurgeryScheduler`."""
    scheduler = LatticeSurgeryScheduler(circuit, mapping, priority=priority, method=method, engine=engine)
    return scheduler.run()
