"""Algorithm 2 — Ecmas-ReSu, scheduling for sufficient resources.

When the chip communication capacity ``⌊(b-1)/2⌋ + 3`` covers the circuit
parallelism degree ``gPM``, the execution scheme produced by Para-Finding can
be executed layer by layer: every layer fits in one clock cycle by Theorem 2.

For the double defect model the remaining cost is cut-type management.
Algorithm 2 walks the execution scheme, accumulating layers into the largest
prefix whose communication sub-graph stays bipartite (Lemma 1 guarantees at
least two layers fit); the bipartition of each group becomes its cut-type
mapping.  The first group's mapping is the initialisation; each subsequent
group is preceded by a three-cycle cut-type remap.  This yields the paper's
5/2-approximation guarantee (Theorem 3).

For lattice surgery no cut types exist, so the schedule is simply one cycle
per layer — the optimal ``α`` cycles.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.chip.geometry import SurfaceCodeModel
from repro.chip.routing_graph import tile_node_for
from repro.core.engines import routing_for
from repro.circuits.circuit import Circuit
from repro.circuits.dag import GateDAG
from repro.core.cut_types import CutAssignment, CutType
from repro.core.mapping import InitialMapping
from repro.core.metrics import ExecutionScheme, para_finding
from repro.core.schedule import EncodedCircuit, OperationKind, ScheduledOperation
from repro.errors import SchedulingError
from repro.routing.paths import CapacityUsage
from repro.routing.router import find_path

#: Cycles spent remapping cut types between bipartite groups (Theorem 3 uses 3).
CUT_REMAP_CYCLES = 3


@dataclass(frozen=True)
class BipartiteGroup:
    """A maximal run of consecutive layers whose communication sub-graph is bipartite."""

    layer_indices: tuple[int, ...]
    cut_types: CutAssignment


def _bipartition_colors(adjacency: dict[int, set[int]], num_qubits: int) -> dict[int, int] | None:
    colors: dict[int, int] = {}
    for start in adjacency:
        if start in colors:
            continue
        colors[start] = 0
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbor in adjacency.get(node, ()):
                if neighbor not in colors:
                    colors[neighbor] = 1 - colors[node]
                    queue.append(neighbor)
                elif colors[neighbor] == colors[node]:
                    return None
    return colors


def split_into_bipartite_groups(
    dag: GateDAG, scheme: ExecutionScheme, num_qubits: int
) -> list[BipartiteGroup]:
    """Greedily group consecutive layers while their union stays bipartite.

    By Lemma 1 every group contains at least two layers (except possibly the
    final one), which underpins the 5/2-approximation bound.

    A qubit with no gates in a group keeps the cut type it had in the
    previous group (defaulting to X in the first).  Assigning such qubits an
    arbitrary colour would list them in the inter-group remap diff and emit
    spurious three-cycle remap blocks for tiles that never communicate.
    """
    groups: list[BipartiteGroup] = []
    current_layers: list[int] = []
    adjacency: dict[int, set[int]] = {}
    colors: dict[int, int] = {}
    previous_assignment: CutAssignment | None = None

    def close_group() -> None:
        nonlocal previous_assignment
        if not current_layers:
            return
        assignment: CutAssignment = {}
        for q in range(num_qubits):
            if q in colors:
                assignment[q] = CutType.X if colors[q] == 0 else CutType.Z
            elif previous_assignment is not None:
                assignment[q] = previous_assignment[q]  # untouched: carry forward
            else:
                assignment[q] = CutType.X
        previous_assignment = assignment
        groups.append(BipartiteGroup(tuple(current_layers), assignment))

    for layer_index, layer in enumerate(scheme.layers):
        trial = {q: set(neighbors) for q, neighbors in adjacency.items()}
        for node in layer:
            gate = dag.gate(node)
            trial.setdefault(gate.control, set()).add(gate.target)
            trial.setdefault(gate.target, set()).add(gate.control)
        trial_colors = _bipartition_colors(trial, num_qubits)
        if trial_colors is None:
            close_group()
            current_layers = []
            adjacency = {}
            for node in layer:
                gate = dag.gate(node)
                adjacency.setdefault(gate.control, set()).add(gate.target)
                adjacency.setdefault(gate.target, set()).add(gate.control)
            colors = _bipartition_colors(adjacency, num_qubits) or {}
            current_layers.append(layer_index)
        else:
            adjacency = trial
            colors = trial_colors
            current_layers.append(layer_index)
    close_group()
    return groups


class _LayerRouter:
    """Routes one execution-scheme layer per clock cycle, spilling on congestion."""

    def __init__(self, dag: GateDAG, mapping: InitialMapping, congestion_weight: float = 0.25):
        self._dag = dag
        self._mapping = mapping
        self._graph, _ = routing_for(mapping.chip, "reference")
        self._congestion_weight = congestion_weight

    def _describe_gates(self, nodes: list[int]) -> str:
        """Human-readable gate list for diagnostics: ``CX(q0, q3) [node 7], …``."""
        parts = []
        for node in nodes:
            gate = self._dag.gate(node)
            parts.append(f"CX(q{gate.control}, q{gate.target}) [node {node}]")
        return ", ".join(parts)

    def route_layer(
        self, nodes: tuple[int, ...], start_cycle: int, kind: OperationKind
    ) -> tuple[list[ScheduledOperation], int]:
        """Route every gate of a layer starting at ``start_cycle``.

        Returns the operations and the number of cycles consumed (1 when the
        whole layer fits, more when the greedy router needs spill cycles —
        which Theorem 2 says should not happen on a sufficient chip, but the
        router is heuristic so the fallback keeps the schedule valid).  A
        cycle that routes nothing means the remaining gates can never be
        routed (each cycle starts from empty usage), so the no-progress error
        names the unroutable gates.
        """
        remaining = list(nodes)
        operations: list[ScheduledOperation] = []
        cycles_used = 0
        while remaining:
            usage = CapacityUsage()
            still_waiting: list[int] = []
            for node in remaining:
                gate = self._dag.gate(node)
                source = tile_node_for(self._mapping.placement.slot_of(gate.control))
                target = tile_node_for(self._mapping.placement.slot_of(gate.target))
                path = find_path(self._graph, usage, source, target, self._congestion_weight)
                if path is None:
                    still_waiting.append(node)
                    continue
                usage.add_path(path)
                operations.append(
                    ScheduledOperation(
                        kind=kind,
                        start_cycle=start_cycle + cycles_used,
                        duration=1,
                        qubits=(gate.control, gate.target),
                        gate_node=node,
                        path=path,
                    )
                )
            if len(still_waiting) == len(remaining):
                raise SchedulingError(
                    f"layer routing made no progress at cycle {start_cycle + cycles_used}: "
                    f"unroutable gates {self._describe_gates(still_waiting)} "
                    f"on chip {self._mapping.chip.describe()}"
                )
            remaining = still_waiting
            cycles_used += 1
        return operations, cycles_used


def schedule_resu_double_defect(
    circuit: Circuit, mapping: InitialMapping, method: str = "ecmas-resu-dd"
) -> EncodedCircuit:
    """Ecmas-ReSu for the double defect model (Algorithm 2)."""
    dag = circuit.dag()
    result = EncodedCircuit(
        model=SurfaceCodeModel.DOUBLE_DEFECT,
        chip=mapping.chip,
        placement=mapping.placement,
        initial_cut_types=None,
        method=method,
    )
    if len(dag) == 0:
        # Consistent with the non-empty path: a full assignment over every
        # qubit (the mapping's initialisation, or all-X when none was given).
        result.initial_cut_types = dict(
            mapping.cut_types or {q: CutType.X for q in range(circuit.num_qubits)}
        )
        return result

    scheme = para_finding(dag)
    groups = split_into_bipartite_groups(dag, scheme, circuit.num_qubits)
    router = _LayerRouter(dag, mapping)
    operations: list[ScheduledOperation] = []
    cycle = 0
    previous_cuts: CutAssignment | None = None
    initial_cuts: CutAssignment = groups[0].cut_types if groups else dict(mapping.cut_types or {})

    for group in groups:
        if previous_cuts is not None:
            changed = tuple(
                sorted(q for q in group.cut_types if group.cut_types[q] != previous_cuts[q])
            )
            if changed:
                operations.append(
                    ScheduledOperation(
                        kind=OperationKind.CUT_REMAP,
                        start_cycle=cycle,
                        duration=CUT_REMAP_CYCLES,
                        qubits=changed,
                    )
                )
                cycle += CUT_REMAP_CYCLES
        for layer_index in group.layer_indices:
            layer_ops, used = router.route_layer(
                scheme.layers[layer_index], cycle, OperationKind.CNOT_BRAID
            )
            operations.extend(layer_ops)
            cycle += used
        previous_cuts = group.cut_types

    result.operations = operations
    result.initial_cut_types = dict(initial_cuts)
    return result


def schedule_resu_lattice_surgery(
    circuit: Circuit, mapping: InitialMapping, method: str = "ecmas-resu-ls"
) -> EncodedCircuit:
    """Ecmas-ReSu for the lattice surgery model: one cycle per Para-Finding layer."""
    dag = circuit.dag()
    result = EncodedCircuit(
        model=SurfaceCodeModel.LATTICE_SURGERY,
        chip=mapping.chip,
        placement=mapping.placement,
        initial_cut_types=None,
        method=method,
    )
    if len(dag) == 0:
        # Lattice surgery has no cut types: ``initial_cut_types`` is ``None``
        # on the empty path exactly as on the non-empty one.
        return result
    scheme = para_finding(dag)
    router = _LayerRouter(dag, mapping)
    operations: list[ScheduledOperation] = []
    cycle = 0
    for layer in scheme.layers:
        layer_ops, used = router.route_layer(layer, cycle, OperationKind.CNOT_BRAID)
        operations.extend(layer_ops)
        cycle += used
    result.operations = operations
    return result
