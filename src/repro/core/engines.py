"""Engine selection and stall diagnostics shared by the Algorithm 1 schedulers.

Both :class:`~repro.core.scheduler_dd.DoubleDefectScheduler` and
:class:`~repro.core.scheduler_ls.LatticeSurgeryScheduler` accept an
``engine`` argument naming their hot-path implementation; the pipeline's
scheduler-selection pass validates the same names.  Keeping the contract
here avoids coupling the two concrete schedulers to each other.

This module is also the *routing acquisition* seam: every scheduler obtains
its :class:`~repro.chip.routing_graph.RoutingGraph` (and, on the fast engine,
its :class:`~repro.routing.fast_router.FastRouter`) through
:func:`routing_for`, which consults an installable provider.  Long-lived
processes — the compile daemon in :mod:`repro.service` — install a provider
backed by an LRU of warm per-chip state so that repeated compiles against the
same chip reuse the graph and the router's memoized landmark tables instead
of rebuilding them from cold.  One-shot callers never notice: with no
provider installed, :func:`routing_for` builds fresh state exactly as the
schedulers used to.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.chip.chip import Chip
from repro.chip.routing_graph import Node, RoutingGraph
from repro.errors import SchedulingError
from repro.routing.fast_router import FastRouter
from repro.routing.paths import CapacityUsage, RoutedPath
from repro.routing.router import find_path

#: The recognised Algorithm 1 engine names.
ENGINES = ("reference", "fast")

#: A routing provider maps ``(chip, engine)`` to a ``(graph, router)`` pair;
#: ``router`` is ``None`` on the reference engine.  Both returned objects are
#: immutable-after-construction (the FastRouter only grows memo tables), so a
#: provider may hand the same instances to any number of sequential compiles.
RoutingProvider = Callable[[Chip, str], "tuple[RoutingGraph, FastRouter | None]"]

_routing_provider: RoutingProvider | None = None


def check_engine(engine: str) -> str:
    """Validate an engine name, returning it unchanged."""
    if engine not in ENGINES:
        raise SchedulingError(f"unknown scheduling engine {engine!r}; choose from {ENGINES}")
    return engine


def build_router(graph: RoutingGraph, engine: str) -> FastRouter | None:
    """The fast engine's router for ``graph``, or ``None`` on the reference engine."""
    return FastRouter(graph) if engine == "fast" else None


def set_routing_provider(provider: RoutingProvider | None) -> RoutingProvider | None:
    """Install (or with ``None`` clear) the process-wide routing provider.

    Returns the previous provider so callers can restore it; see
    :class:`repro.service.state.WarmStateCache` for the canonical user.
    """
    global _routing_provider  # lint: disable=FRK001 — this IS the sanctioned seam
    previous = _routing_provider
    _routing_provider = provider
    return previous


def routing_for(chip: Chip, engine: str) -> tuple[RoutingGraph, FastRouter | None]:
    """The routing graph and router a scheduler should use for ``chip``.

    Delegates to the installed provider when there is one (warm-state reuse
    in daemon processes) and otherwise builds fresh state.  The result is
    always semantically identical either way: graphs are value-determined by
    the chip, and router memo tables only cache derived data.
    """
    if _routing_provider is not None:
        return _routing_provider(chip, engine)
    graph = RoutingGraph(chip)
    return graph, build_router(graph, engine)


def route_query(
    router: FastRouter | None,
    graph: RoutingGraph,
    usage: CapacityUsage,
    source: Node,
    target: Node,
    congestion_weight: float,
    counters,
) -> RoutedPath | None:
    """Dispatch one path query to the engine's router, accounting it in ``counters``."""
    counters.route_calls += 1
    if router is not None:
        return router.find(usage, source, target, congestion_weight, counters)
    return find_path(graph, usage, source, target, congestion_weight, counters)


def stalled_schedule_error(
    kind: str,
    cycle: int,
    max_cycles: int,
    frontier,
    dag,
    busy_until: dict[int, int],
    dispatched=(),
) -> SchedulingError:
    """Build the safety-bound diagnostic for a scheduler that stopped progressing.

    Names the first *blocked* ready gate — ready but not yet dispatched —
    with its operand qubits and tile busy horizons, so a stall points at the
    offending gate instead of only at the cycle budget.  Gates in
    ``dispatched`` are executing, not blocked; when only those remain the
    message says so instead of blaming one of them.
    """
    message = (
        f"{kind} scheduler exceeded {max_cycles} cycles at cycle {cycle}; "
        f"{frontier.num_remaining} gates remain"
    )
    blocked = [node for node in frontier.ready_nodes() if node not in dispatched]
    if blocked:
        node = blocked[0]
        gate = dag.gate(node)
        message += (
            f"; first blocked gate: node {node} CX(q{gate.control}, q{gate.target})"
            f" with tiles busy until cycles {busy_until[gate.control]} and"
            f" {busy_until[gate.target]}"
        )
    elif frontier.ready_nodes():
        message += f"; {len(frontier.ready_nodes())} dispatched gate(s) still in flight"
    return SchedulingError(message)
