"""Algorithm 1 — priority scheduling for the double defect model.

The scheduler walks the CNOT DAG cycle by cycle.  In every cycle it considers
the ready gates whose operand tiles are free, in priority order (criticality,
then descendant count), and for each gate either

* routes a one-cycle braid when the operand cut types differ,
* or — for same-cut operands — consults a cut-decision strategy
  (:mod:`repro.core.cut_decisions`) to choose between a three-cycle direct
  execution (which occupies a channel path for its whole duration) and a
  three-cycle tile-local cut-type modification that may overlap the tile's
  idle cycles and is followed by a one-cycle braid.

Paths are routed on the corridor graph with per-cycle capacities equal to the
corridor bandwidths, so gates that fail to find a path simply wait — this is
exactly the congestion the paper's bandwidth adjusting and cut-type
optimisations are designed to relieve.

The same engine, configured with uniform cut types and the ``never_modify``
strategy, serves as the AutoBraid / Braidflash baseline scheduler.

Engines
-------
``engine="reference"`` (the default) recomputes the prioritised ready list
from the frontier every cycle and routes with the canonical Dijkstra of
:func:`repro.routing.router.find_path`.  ``engine="fast"`` keeps the ready
set incrementally sorted (:class:`repro.core.incremental.IncrementalReadyQueue`)
and routes with the landmark A* of :class:`repro.routing.fast_router.FastRouter`;
both components preserve the reference semantics exactly, so the two engines
produce identical schedules (enforced by ``tests/test_differential_engines.py``).
"""

from __future__ import annotations

from collections import defaultdict

from repro.chip.geometry import SurfaceCodeModel
from repro.chip.routing_graph import Node, tile_node_for
from repro.circuits.circuit import Circuit
from repro.core.cut_decisions import (
    DIRECT_SAME_CUT_CYCLES,
    MODIFICATION_CYCLES,
    CutContext,
    CutDecisionStrategy,
    adaptive_strategy,
)
from repro.core.cut_types import CutType
from repro.core.engines import check_engine, route_query, routing_for, stalled_schedule_error
from repro.core.incremental import IncrementalReadyQueue
from repro.core.mapping import InitialMapping
from repro.core.priorities import PriorityFunction, criticality_priority
from repro.core.schedule import EncodedCircuit, OperationKind, ScheduledOperation
from repro.errors import SchedulingError
from repro.profiling.instrumentation import EngineCounters
from repro.routing.paths import CapacityUsage, RoutedPath

#: Hard safety bound: a valid schedule never needs more cycles than four per
#: gate plus the modification overhead; exceeding it indicates a scheduler bug.
_SAFETY_FACTOR = 8


class DoubleDefectScheduler:
    """Schedules one circuit on one double-defect chip (Algorithm 1)."""

    def __init__(
        self,
        circuit: Circuit,
        mapping: InitialMapping,
        priority: PriorityFunction = criticality_priority,
        cut_strategy: CutDecisionStrategy = adaptive_strategy,
        congestion_weight: float = 0.25,
        method: str = "ecmas-dd",
        engine: str = "reference",
        max_cycles: int | None = None,
        dag=None,
    ):
        if mapping.cut_types is None:
            raise SchedulingError("double defect scheduling needs an initial cut-type assignment")
        self._circuit = circuit
        self._mapping = mapping
        self._priority = priority
        self._cut_strategy = cut_strategy
        self._congestion_weight = congestion_weight
        self._method = method
        self._engine = check_engine(engine)
        self._max_cycles = max_cycles
        # A DAG precomputed by the pipeline's profile pass is reused as-is;
        # standalone callers pay for one derivation here.
        self._dag = dag if dag is not None else circuit.dag()
        self._graph, self._router = routing_for(mapping.chip, self._engine)
        self.counters = EngineCounters()

    def _find_path(self, usage: CapacityUsage, source: Node, target: Node) -> RoutedPath | None:
        """Route one query through the engine's router."""
        return route_query(
            self._router, self._graph, usage, source, target, self._congestion_weight, self.counters
        )

    # ------------------------------------------------------------------ public
    def run(self) -> EncodedCircuit:
        """Produce the encoded circuit."""
        result = EncodedCircuit(
            model=SurfaceCodeModel.DOUBLE_DEFECT,
            chip=self._mapping.chip,
            placement=self._mapping.placement,
            initial_cut_types=dict(self._mapping.cut_types or {}),
            method=self._method,
        )
        if len(self._dag) == 0:
            return result

        frontier = self._dag.frontier()
        cut = dict(self._mapping.cut_types or {})
        busy_until: dict[int, int] = defaultdict(int)
        usage_by_cycle: dict[int, CapacityUsage] = {}
        completions: dict[int, list[int]] = defaultdict(list)
        cut_flips: dict[int, list[int]] = defaultdict(list)
        scheduled: set[int] = set()
        operations: list[ScheduledOperation] = []
        # Fast engine: the ready set stays sorted across cycles instead of
        # being rebuilt from the frontier every cycle.
        queue = (
            IncrementalReadyQueue(self._dag, self._priority, frontier.ready_nodes())
            if self._engine == "fast"
            else None
        )

        max_cycles = (
            self._max_cycles
            if self._max_cycles is not None
            else _SAFETY_FACTOR * (len(self._dag) * (DIRECT_SAME_CUT_CYCLES + MODIFICATION_CYCLES) + 10)
        )
        cycle = 0
        while not frontier.is_done():
            if cycle > max_cycles:
                raise stalled_schedule_error(
                    "double defect", cycle, max_cycles, frontier, self._dag, busy_until, scheduled
                )
            for qubit in cut_flips.pop(cycle, []):
                cut[qubit] = cut[qubit].flipped()
            for node in completions.pop(cycle, []):
                newly_ready = frontier.complete(node)
                if queue is not None:
                    queue.add(newly_ready)

            if queue is not None:
                order = queue.available(busy_until, cycle)
            else:
                ready = [node for node in frontier.ready_nodes() if node not in scheduled]
                available = [
                    node
                    for node in ready
                    if busy_until[self._dag.gate(node).control] <= cycle
                    and busy_until[self._dag.gate(node).target] <= cycle
                ]
                order = self._priority(self._dag, available)
            usage_now = usage_by_cycle.setdefault(cycle, CapacityUsage())

            for node in order:
                gate = self._dag.gate(node)
                qubit_a, qubit_b = gate.control, gate.target
                if busy_until[qubit_a] > cycle or busy_until[qubit_b] > cycle:
                    continue  # an earlier decision in this cycle occupied a tile
                if cut[qubit_a] != cut[qubit_b]:
                    if self._try_braid(
                        node, qubit_a, qubit_b, cycle, usage_now,
                        busy_until, completions, scheduled, operations,
                    ) and queue is not None:
                        queue.discard(node)
                    continue
                context = CutContext(
                    dag=self._dag,
                    node=node,
                    qubit_a=qubit_a,
                    qubit_b=qubit_b,
                    cut_types=cut,
                    idle_a=cycle - busy_until[qubit_a],
                    idle_b=cycle - busy_until[qubit_b],
                    ready_count=len(order),
                    bandwidth=self._mapping.chip.bandwidth,
                    num_qubits=self._circuit.num_qubits,
                )
                decision = self._cut_strategy(context)
                if decision.modify and decision.qubit is not None:
                    finished_now = self._schedule_modification(
                        decision.qubit, cycle, cut, busy_until, cut_flips, operations,
                        idle=cycle - busy_until[decision.qubit],
                    )
                    if finished_now:
                        # The modification fit entirely into past idle cycles;
                        # the cut types now differ, so try the braid immediately.
                        if self._try_braid(
                            node, qubit_a, qubit_b, cycle, usage_now,
                            busy_until, completions, scheduled, operations,
                        ) and queue is not None:
                            queue.discard(node)
                else:
                    if self._try_direct(
                        node, qubit_a, qubit_b, cycle, usage_by_cycle,
                        busy_until, completions, scheduled, operations,
                    ) and queue is not None:
                        queue.discard(node)

            cycle += 1
            usage_by_cycle.pop(cycle - 1, None)

        self.counters.cycles_simulated = cycle
        result.operations = operations
        return result

    # ---------------------------------------------------------------- helpers
    def _tile(self, qubit: int) -> Node:
        return tile_node_for(self._mapping.placement.slot_of(qubit))

    def _try_braid(
        self,
        node: int,
        qubit_a: int,
        qubit_b: int,
        cycle: int,
        usage_now: CapacityUsage,
        busy_until: dict[int, int],
        completions: dict[int, list[int]],
        scheduled: set[int],
        operations: list[ScheduledOperation],
    ) -> bool:
        """One-cycle braid between different-cut tiles; returns True if scheduled."""
        path = self._find_path(usage_now, self._tile(qubit_a), self._tile(qubit_b))
        if path is None:
            return False
        self.counters.gates_scheduled += 1
        usage_now.add_path(path)
        operations.append(
            ScheduledOperation(
                kind=OperationKind.CNOT_BRAID,
                start_cycle=cycle,
                duration=1,
                qubits=(qubit_a, qubit_b),
                gate_node=node,
                path=path,
            )
        )
        busy_until[qubit_a] = cycle + 1
        busy_until[qubit_b] = cycle + 1
        completions[cycle + 1].append(node)
        scheduled.add(node)
        return True

    def _try_direct(
        self,
        node: int,
        qubit_a: int,
        qubit_b: int,
        cycle: int,
        usage_by_cycle: dict[int, CapacityUsage],
        busy_until: dict[int, int],
        completions: dict[int, list[int]],
        scheduled: set[int],
        operations: list[ScheduledOperation],
    ) -> bool:
        """Three-cycle same-cut CNOT occupying its path for the whole duration."""
        path = self._find_multicycle_path(cycle, DIRECT_SAME_CUT_CYCLES, qubit_a, qubit_b, usage_by_cycle)
        if path is None:
            return False
        self.counters.gates_scheduled += 1
        for offset in range(DIRECT_SAME_CUT_CYCLES):
            usage_by_cycle.setdefault(cycle + offset, CapacityUsage()).add_path(path)
        operations.append(
            ScheduledOperation(
                kind=OperationKind.CNOT_SAME_CUT,
                start_cycle=cycle,
                duration=DIRECT_SAME_CUT_CYCLES,
                qubits=(qubit_a, qubit_b),
                gate_node=node,
                path=path,
            )
        )
        end = cycle + DIRECT_SAME_CUT_CYCLES
        busy_until[qubit_a] = end
        busy_until[qubit_b] = end
        completions[end].append(node)
        scheduled.add(node)
        return True

    def _schedule_modification(
        self,
        qubit: int,
        cycle: int,
        cut: dict[int, CutType],
        busy_until: dict[int, int],
        cut_flips: dict[int, list[int]],
        operations: list[ScheduledOperation],
        idle: int,
    ) -> bool:
        """Schedule a cut-type modification; returns True when it completes immediately.

        The modification may overlap up to ``MODIFICATION_CYCLES`` cycles the
        tile has already spent idle (the paper's "performed earlier" rule); the
        recorded operation keeps its true start cycle so the validator can
        check the tile really was idle.
        """
        overlap = min(MODIFICATION_CYCLES, max(0, idle))
        start = cycle - overlap
        end = start + MODIFICATION_CYCLES
        self.counters.cut_modifications += 1
        operations.append(
            ScheduledOperation(
                kind=OperationKind.CUT_MODIFICATION,
                start_cycle=start,
                duration=MODIFICATION_CYCLES,
                qubits=(qubit,),
                new_cut=cut[qubit].flipped(),
            )
        )
        if end <= cycle:
            cut[qubit] = cut[qubit].flipped()
            return True
        busy_until[qubit] = end
        cut_flips[end].append(qubit)
        return False

    def _find_multicycle_path(
        self,
        cycle: int,
        duration: int,
        qubit_a: int,
        qubit_b: int,
        usage_by_cycle: dict[int, CapacityUsage],
    ) -> RoutedPath | None:
        """Find a path free in every cycle of ``[cycle, cycle + duration)``.

        The search runs against a merged usage view holding, for every edge,
        the maximum reservation over the involved cycles.
        """
        involved = [
            cycle_usage
            for offset in range(duration)
            if (cycle_usage := usage_by_cycle.get(cycle + offset)) is not None
            and (cycle_usage.used or cycle_usage.node_used)
        ]
        if len(involved) == 1:
            # Common case: only the current cycle carries reservations, so the
            # merged view is that cycle's usage verbatim — search it directly.
            merged = involved[0]
        else:
            merged = CapacityUsage()
            for cycle_usage in involved:
                for key, used in cycle_usage.used.items():
                    merged.used[key] = max(merged.used.get(key, 0), used)
                for node, used in cycle_usage.node_used.items():
                    merged.node_used[node] = max(merged.node_used.get(node, 0), used)
        return self._find_path(merged, self._tile(qubit_a), self._tile(qubit_b))


def schedule_double_defect(
    circuit: Circuit,
    mapping: InitialMapping,
    priority: PriorityFunction = criticality_priority,
    cut_strategy: CutDecisionStrategy = adaptive_strategy,
    method: str = "ecmas-dd",
    engine: str = "reference",
) -> EncodedCircuit:
    """Convenience wrapper around :class:`DoubleDefectScheduler`."""
    scheduler = DoubleDefectScheduler(
        circuit, mapping, priority=priority, cut_strategy=cut_strategy, method=method, engine=engine
    )
    return scheduler.run()
