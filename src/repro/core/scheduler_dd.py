"""Algorithm 1 — priority scheduling for the double defect model.

The scheduler walks the CNOT DAG cycle by cycle.  In every cycle it considers
the ready gates whose operand tiles are free, in priority order (criticality,
then descendant count), and for each gate either

* routes a one-cycle braid when the operand cut types differ,
* or — for same-cut operands — consults a cut-decision strategy
  (:mod:`repro.core.cut_decisions`) to choose between a three-cycle direct
  execution (which occupies a channel path for its whole duration) and a
  three-cycle tile-local cut-type modification that may overlap the tile's
  idle cycles and is followed by a one-cycle braid.

Paths are routed on the corridor graph with per-cycle capacities equal to the
corridor bandwidths, so gates that fail to find a path simply wait — this is
exactly the congestion the paper's bandwidth adjusting and cut-type
optimisations are designed to relieve.

The same engine, configured with uniform cut types and the ``never_modify``
strategy, serves as the AutoBraid / Braidflash baseline scheduler.

Engines
-------
``engine="reference"`` (the default) recomputes the prioritised ready list
from the frontier every cycle and routes with the canonical Dijkstra of
:func:`repro.routing.router.find_path`.  ``engine="fast"`` keeps the ready
set incrementally sorted (:class:`repro.core.incremental.IncrementalReadyQueue`)
and routes with the landmark A* of :class:`repro.routing.fast_router.FastRouter`;
both components preserve the reference semantics exactly, so the two engines
produce identical schedules (enforced by ``tests/test_differential_engines.py``).

The fast engine additionally memoizes whole cycles by their layer
fingerprint (:mod:`repro.core.layer_memo`): cut types, capped idle times,
the three-cycle residual-capacity signature and — for the adaptive strategy
— the successor look-ahead together determine a cycle's outcome, so
repeated layers replay their recorded actions without routing or strategy
calls.  ``window`` enables the sliding-window frontier of
:class:`~repro.core.incremental.WindowedDagFrontier` for bounded working
sets on very large circuits.
"""

from __future__ import annotations

from collections import defaultdict

from repro.chip.geometry import SurfaceCodeModel
from repro.chip.routing_graph import Node, tile_node_for
from repro.circuits.circuit import Circuit
from repro.core.cut_decisions import (
    DIRECT_SAME_CUT_CYCLES,
    MODIFICATION_CYCLES,
    CutContext,
    CutDecisionStrategy,
    adaptive_strategy,
)
from repro.core.cut_types import CutType
from repro.core.engines import check_engine, route_query, routing_for, stalled_schedule_error
from repro.core.incremental import IncrementalReadyQueue, WindowedDagFrontier
from repro.core.layer_memo import LOOKAHEAD_STRATEGIES, MEMO_SAFE_STRATEGIES, DdLayerKey
from repro.core.mapping import InitialMapping
from repro.core.priorities import PriorityFunction, criticality_priority
from repro.core.schedule import EncodedCircuit, OperationKind, ScheduledOperation
from repro.errors import SchedulingError
from repro.profiling.instrumentation import EngineCounters
from repro.routing.paths import CapacityUsage, RoutedPath

#: Hard safety bound: a valid schedule never needs more cycles than four per
#: gate plus the modification overhead; exceeding it indicates a scheduler bug.
_SAFETY_FACTOR = 8


class DoubleDefectScheduler:
    """Schedules one circuit on one double-defect chip (Algorithm 1)."""

    def __init__(
        self,
        circuit: Circuit,
        mapping: InitialMapping,
        priority: PriorityFunction = criticality_priority,
        cut_strategy: CutDecisionStrategy = adaptive_strategy,
        congestion_weight: float = 0.25,
        method: str = "ecmas-dd",
        engine: str = "reference",
        max_cycles: int | None = None,
        dag=None,
        window: int | None = None,
        memoize: bool | None = None,
    ):
        if mapping.cut_types is None:
            raise SchedulingError("double defect scheduling needs an initial cut-type assignment")
        self._circuit = circuit
        self._mapping = mapping
        self._priority = priority
        self._cut_strategy = cut_strategy
        self._congestion_weight = congestion_weight
        self._method = method
        self._engine = check_engine(engine)
        self._max_cycles = max_cycles
        self._window = window
        # Layer memoization defaults on for the fast engine, but only for
        # strategies whose read set the fingerprint provably covers; a custom
        # strategy disables it rather than risking an unsound replay.
        requested = (self._engine == "fast") if memoize is None else memoize
        self._memoize = requested and cut_strategy in MEMO_SAFE_STRATEGIES
        self._memo_lookahead = cut_strategy in LOOKAHEAD_STRATEGIES
        # A DAG precomputed by the pipeline's profile pass is reused as-is;
        # standalone callers pay for one derivation here.
        self._dag = dag if dag is not None else circuit.dag()
        self._graph, self._router = routing_for(mapping.chip, self._engine)
        #: Tile node per placed qubit, resolved once (placements are frozen).
        self._tiles = {
            qubit: tile_node_for(slot)
            for qubit, slot in mapping.placement.qubit_to_slot.items()
        }
        #: Cycle-keyed residual-usage signature cache, active only while the
        #: layer memo is (set up per run; _apply_direct evicts from it).
        self._signature_cache: dict[int, object] | None = None
        self.counters = EngineCounters()

    def _find_path(self, usage: CapacityUsage, source: Node, target: Node) -> RoutedPath | None:
        """Route one query through the engine's router."""
        return route_query(
            self._router, self._graph, usage, source, target, self._congestion_weight, self.counters
        )

    # ------------------------------------------------------------------ public
    def run(self) -> EncodedCircuit:
        """Produce the encoded circuit."""
        result = EncodedCircuit(
            model=SurfaceCodeModel.DOUBLE_DEFECT,
            chip=self._mapping.chip,
            placement=self._mapping.placement,
            initial_cut_types=dict(self._mapping.cut_types or {}),
            method=self._method,
        )
        if len(self._dag) == 0:
            return result

        frontier = (
            WindowedDagFrontier(self._dag, self._window)
            if self._window is not None
            else self._dag.frontier()
        )
        cut = dict(self._mapping.cut_types or {})
        busy_until: dict[int, int] = defaultdict(int)
        usage_by_cycle: dict[int, CapacityUsage] = {}
        completions: dict[int, list[int]] = defaultdict(list)
        cut_flips: dict[int, list[int]] = defaultdict(list)
        scheduled: set[int] = set()
        operations: list[ScheduledOperation] = []
        # Fast engine: the ready set stays sorted across cycles instead of
        # being rebuilt from the frontier every cycle.
        queue = (
            IncrementalReadyQueue(self._dag, self._priority, frontier.ready_nodes())
            if self._engine == "fast"
            else None
        )
        operands = self._dag.operand_pairs
        # Layer-fingerprint memoization (see repro.core.layer_memo).
        memo: dict[tuple, tuple] | None = {} if self._memoize else None
        fingerprint = (
            DdLayerKey(
                self._dag,
                self._mapping.placement.qubit_to_slot,
                DIRECT_SAME_CUT_CYCLES,
                self._memo_lookahead,
            )
            if self._memoize
            else None
        )
        # Residual-usage signatures by cycle, shared between the fingerprint
        # and _apply_direct (which evicts the cycles it reserves into).
        self._signature_cache = {} if self._memoize else None

        max_cycles = (
            self._max_cycles
            if self._max_cycles is not None
            else _SAFETY_FACTOR * (len(self._dag) * (DIRECT_SAME_CUT_CYCLES + MODIFICATION_CYCLES) + 10)
        )
        cycle = 0
        while not frontier.is_done():
            if cycle > max_cycles:
                raise stalled_schedule_error(
                    "double defect", cycle, max_cycles, frontier, self._dag, busy_until, scheduled
                )
            for qubit in cut_flips.pop(cycle, []):
                cut[qubit] = cut[qubit].flipped()
            for node in completions.pop(cycle, []):
                newly_ready = frontier.complete(node)
                if queue is not None:
                    queue.add(newly_ready)

            if queue is not None:
                order = queue.available(busy_until, cycle)
            else:
                ready = [node for node in frontier.ready_nodes() if node not in scheduled]
                available = [
                    node
                    for node in ready
                    if busy_until[operands[node][0]] <= cycle
                    and busy_until[operands[node][1]] <= cycle
                ]
                order = self._priority(self._dag, available)

            if memo is not None:
                key = fingerprint.key(
                    order, cut, busy_until, cycle, usage_by_cycle, self._signature_cache
                )
                cached = memo.get(key)
                if cached is not None:
                    self.counters.layer_memo_hits += 1
                    self._replay_cycle(
                        cached, order, cycle, cut, busy_until, usage_by_cycle,
                        completions, cut_flips, scheduled, operations, queue,
                    )
                    cycle += 1
                    usage_by_cycle.pop(cycle - 1, None)
                    self._signature_cache.pop(cycle - 1, None)
                    continue
                misses = self.counters.layer_memo_misses = self.counters.layer_memo_misses + 1
                if (
                    misses >= 32
                    and self.counters.layer_memo_hits * 8 < misses
                    and frontier.num_remaining * 2 <= len(self._dag)
                ):
                    # Fingerprinting is not paying for itself on this circuit:
                    # half the gates are scheduled and layers still almost
                    # never repeat exactly.  Stop keying.  (Repetitive
                    # circuits front-load their misses — every layer is new
                    # once — so the cutoff also waits for schedule progress,
                    # not just a miss count.)  Purely a performance decision:
                    # replays only ever happen on hits, so the schedule is
                    # unaffected.
                    memo = None
                    fingerprint = None
                    self._signature_cache = None
            usage_now = usage_by_cycle.setdefault(cycle, CapacityUsage())

            record: list | None = [] if memo is not None else None
            for node in order:
                qubit_a, qubit_b = operands[node]
                if busy_until[qubit_a] > cycle or busy_until[qubit_b] > cycle:
                    # An earlier decision in this cycle occupied a tile.
                    if record is not None:
                        record.append(None)
                    continue
                if cut[qubit_a] != cut[qubit_b]:
                    path = self._try_braid(
                        node, qubit_a, qubit_b, cycle, usage_now,
                        busy_until, completions, scheduled, operations,
                    )
                    if path is not None and queue is not None:
                        queue.discard(node)
                    if record is not None:
                        record.append(("braid", path) if path is not None else None)
                    continue
                context = CutContext(
                    dag=self._dag,
                    node=node,
                    qubit_a=qubit_a,
                    qubit_b=qubit_b,
                    cut_types=cut,
                    idle_a=cycle - busy_until[qubit_a],
                    idle_b=cycle - busy_until[qubit_b],
                    ready_count=len(order),
                    bandwidth=self._mapping.chip.bandwidth,
                    num_qubits=self._circuit.num_qubits,
                )
                decision = self._cut_strategy(context)
                if decision.modify and decision.qubit is not None:
                    finished_now = self._schedule_modification(
                        decision.qubit, cycle, cut, busy_until, cut_flips, operations,
                        idle=cycle - busy_until[decision.qubit],
                    )
                    braid_path = None
                    if finished_now:
                        # The modification fit entirely into past idle cycles;
                        # the cut types now differ, so try the braid immediately.
                        braid_path = self._try_braid(
                            node, qubit_a, qubit_b, cycle, usage_now,
                            busy_until, completions, scheduled, operations,
                        )
                        if braid_path is not None and queue is not None:
                            queue.discard(node)
                    if record is not None:
                        side = 0 if decision.qubit == qubit_a else 1
                        record.append(("modify", side, finished_now, braid_path))
                else:
                    path = self._try_direct(
                        node, qubit_a, qubit_b, cycle, usage_by_cycle,
                        busy_until, completions, scheduled, operations,
                    )
                    if path is not None and queue is not None:
                        queue.discard(node)
                    if record is not None:
                        record.append(("direct", path) if path is not None else None)
            if memo is not None:
                memo[key] = tuple(record)

            cycle += 1
            usage_by_cycle.pop(cycle - 1, None)
            if self._signature_cache is not None:
                self._signature_cache.pop(cycle - 1, None)

        self.counters.cycles_simulated = cycle
        result.operations = operations
        return result

    # ---------------------------------------------------------------- helpers
    def _tile(self, qubit: int) -> Node:
        tile = self._tiles.get(qubit)
        if tile is None:
            # Unplaced qubit: surface the mapping error, not a KeyError.
            return tile_node_for(self._mapping.placement.slot_of(qubit))
        return tile

    def _try_braid(
        self,
        node: int,
        qubit_a: int,
        qubit_b: int,
        cycle: int,
        usage_now: CapacityUsage,
        busy_until: dict[int, int],
        completions: dict[int, list[int]],
        scheduled: set[int],
        operations: list[ScheduledOperation],
    ) -> RoutedPath | None:
        """One-cycle braid between different-cut tiles; returns the path if scheduled."""
        path = self._find_path(usage_now, self._tile(qubit_a), self._tile(qubit_b))
        if path is None:
            return None
        usage_now.add_path(path)
        self._apply_braid(
            node, qubit_a, qubit_b, cycle, path, busy_until, completions, scheduled, operations
        )
        return path

    def _apply_braid(
        self,
        node: int,
        qubit_a: int,
        qubit_b: int,
        cycle: int,
        path: RoutedPath,
        busy_until: dict[int, int],
        completions: dict[int, list[int]],
        scheduled: set[int],
        operations: list[ScheduledOperation],
    ) -> None:
        """Record the bookkeeping of one scheduled braid (shared with replay)."""
        self.counters.gates_scheduled += 1
        operations.append(
            ScheduledOperation(
                kind=OperationKind.CNOT_BRAID,
                start_cycle=cycle,
                duration=1,
                qubits=(qubit_a, qubit_b),
                gate_node=node,
                path=path,
            )
        )
        busy_until[qubit_a] = cycle + 1
        busy_until[qubit_b] = cycle + 1
        completions[cycle + 1].append(node)
        scheduled.add(node)

    def _try_direct(
        self,
        node: int,
        qubit_a: int,
        qubit_b: int,
        cycle: int,
        usage_by_cycle: dict[int, CapacityUsage],
        busy_until: dict[int, int],
        completions: dict[int, list[int]],
        scheduled: set[int],
        operations: list[ScheduledOperation],
    ) -> RoutedPath | None:
        """Three-cycle same-cut CNOT occupying its path for the whole duration."""
        path = self._find_multicycle_path(cycle, DIRECT_SAME_CUT_CYCLES, qubit_a, qubit_b, usage_by_cycle)
        if path is None:
            return None
        self._apply_direct(
            node, qubit_a, qubit_b, cycle, path, usage_by_cycle,
            busy_until, completions, scheduled, operations,
        )
        return path

    def _apply_direct(
        self,
        node: int,
        qubit_a: int,
        qubit_b: int,
        cycle: int,
        path: RoutedPath,
        usage_by_cycle: dict[int, CapacityUsage],
        busy_until: dict[int, int],
        completions: dict[int, list[int]],
        scheduled: set[int],
        operations: list[ScheduledOperation],
    ) -> None:
        """Reserve and book one direct same-cut CNOT (shared with replay)."""
        self.counters.gates_scheduled += 1
        for offset in range(DIRECT_SAME_CUT_CYCLES):
            usage_by_cycle.setdefault(cycle + offset, CapacityUsage()).add_path(path)
        cache = self._signature_cache
        if cache is not None:
            # Future fingerprints read these cycles' signatures; evict them.
            for offset in range(DIRECT_SAME_CUT_CYCLES):
                cache.pop(cycle + offset, None)
        operations.append(
            ScheduledOperation(
                kind=OperationKind.CNOT_SAME_CUT,
                start_cycle=cycle,
                duration=DIRECT_SAME_CUT_CYCLES,
                qubits=(qubit_a, qubit_b),
                gate_node=node,
                path=path,
            )
        )
        end = cycle + DIRECT_SAME_CUT_CYCLES
        busy_until[qubit_a] = end
        busy_until[qubit_b] = end
        completions[end].append(node)
        scheduled.add(node)

    def _replay_cycle(
        self,
        actions,
        order,
        cycle: int,
        cut: dict[int, CutType],
        busy_until: dict[int, int],
        usage_by_cycle: dict[int, CapacityUsage],
        completions: dict[int, list[int]],
        cut_flips: dict[int, list[int]],
        scheduled: set[int],
        operations: list[ScheduledOperation],
        queue: IncrementalReadyQueue | None,
    ) -> None:
        """Apply a memoized cycle's recorded actions to the current order.

        The fingerprint guarantees the recorded decisions and paths are valid
        verbatim; only the gate nodes and absolute cycle numbers differ.
        Braid reservations for the *current* cycle are not re-applied — that
        usage tracker is dropped when the cycle ends and nothing routes
        during a replay — but direct CNOTs reserve their full three-cycle
        span, which future fingerprints read.
        """
        operands = self._dag.operand_pairs
        for node, action in zip(order, actions):
            if action is None:
                continue
            qubit_a, qubit_b = operands[node]
            tag = action[0]
            if tag == "braid":
                self._apply_braid(
                    node, qubit_a, qubit_b, cycle, action[1],
                    busy_until, completions, scheduled, operations,
                )
                if queue is not None:
                    queue.discard(node)
            elif tag == "direct":
                self._apply_direct(
                    node, qubit_a, qubit_b, cycle, action[1], usage_by_cycle,
                    busy_until, completions, scheduled, operations,
                )
                if queue is not None:
                    queue.discard(node)
            else:  # "modify"
                _tag, side, finished_recorded, braid_path = action
                qubit = qubit_a if side == 0 else qubit_b
                finished_now = self._schedule_modification(
                    qubit, cycle, cut, busy_until, cut_flips, operations,
                    idle=cycle - busy_until[qubit],
                )
                assert finished_now == finished_recorded  # fingerprint soundness
                if finished_now and braid_path is not None:
                    self._apply_braid(
                        node, qubit_a, qubit_b, cycle, braid_path,
                        busy_until, completions, scheduled, operations,
                    )
                    if queue is not None:
                        queue.discard(node)

    def _schedule_modification(
        self,
        qubit: int,
        cycle: int,
        cut: dict[int, CutType],
        busy_until: dict[int, int],
        cut_flips: dict[int, list[int]],
        operations: list[ScheduledOperation],
        idle: int,
    ) -> bool:
        """Schedule a cut-type modification; returns True when it completes immediately.

        The modification may overlap up to ``MODIFICATION_CYCLES`` cycles the
        tile has already spent idle (the paper's "performed earlier" rule); the
        recorded operation keeps its true start cycle so the validator can
        check the tile really was idle.
        """
        overlap = min(MODIFICATION_CYCLES, max(0, idle))
        start = cycle - overlap
        end = start + MODIFICATION_CYCLES
        self.counters.cut_modifications += 1
        operations.append(
            ScheduledOperation(
                kind=OperationKind.CUT_MODIFICATION,
                start_cycle=start,
                duration=MODIFICATION_CYCLES,
                qubits=(qubit,),
                new_cut=cut[qubit].flipped(),
            )
        )
        if end <= cycle:
            cut[qubit] = cut[qubit].flipped()
            return True
        busy_until[qubit] = end
        cut_flips[end].append(qubit)
        return False

    def _find_multicycle_path(
        self,
        cycle: int,
        duration: int,
        qubit_a: int,
        qubit_b: int,
        usage_by_cycle: dict[int, CapacityUsage],
    ) -> RoutedPath | None:
        """Find a path free in every cycle of ``[cycle, cycle + duration)``.

        The search runs against a merged usage view holding, for every edge,
        the maximum reservation over the involved cycles.
        """
        involved = [
            cycle_usage
            for offset in range(duration)
            if (cycle_usage := usage_by_cycle.get(cycle + offset)) is not None
            and (cycle_usage.used or cycle_usage.node_used)
        ]
        if len(involved) == 1:
            # Common case: only the current cycle carries reservations, so the
            # merged view is that cycle's usage verbatim — search it directly.
            merged = involved[0]
        else:
            merged = CapacityUsage()
            for cycle_usage in involved:
                for key, used in cycle_usage.used.items():
                    merged.used[key] = max(merged.used.get(key, 0), used)
                for node, used in cycle_usage.node_used.items():
                    merged.node_used[node] = max(merged.node_used.get(node, 0), used)
        return self._find_path(merged, self._tile(qubit_a), self._tile(qubit_b))


def schedule_double_defect(
    circuit: Circuit,
    mapping: InitialMapping,
    priority: PriorityFunction = criticality_priority,
    cut_strategy: CutDecisionStrategy = adaptive_strategy,
    method: str = "ecmas-dd",
    engine: str = "reference",
) -> EncodedCircuit:
    """Convenience wrapper around :class:`DoubleDefectScheduler`."""
    scheduler = DoubleDefectScheduler(
        circuit, mapping, priority=priority, cut_strategy=cut_strategy, method=method, engine=engine
    )
    return scheduler.run()
