"""Gate prioritisation for Algorithm 1 (scheduling for limited resources).

The paper prioritises ready gates by *criticality* — the length of the
critical path of the remaining gates hanging off the gate — and breaks ties
by the *remaining gate count* (how many gates transitively depend on it), so
that bottleneck gates go first and non-congested cycles are used well.

Static sort keys
----------------
Each built-in priority's ordering depends only on per-node quantities that
the DAG computes once at construction, never on the cycle being scheduled.
Such priorities expose that key as a ``static_key(dag, node)`` attribute
(via :func:`static_priority`), which lets the fast engine keep the ready set
permanently sorted — updated on gate retirement — instead of re-sorting it
every cycle.  Priorities without a ``static_key`` (e.g. the seeded
:func:`random_priority` ablation) still work on the fast engine; it falls
back to calling them per cycle exactly like the reference engine.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import Callable

from repro.circuits.dag import GateDAG

#: A priority function orders ready DAG nodes; larger keys are scheduled first.
PriorityFunction = Callable[[GateDAG, Sequence[int]], list[int]]

#: A static key: smaller sorts first, and the value never changes mid-schedule.
StaticKeyFunction = Callable[[GateDAG, int], tuple]


def static_priority(key: StaticKeyFunction) -> Callable[[PriorityFunction], PriorityFunction]:
    """Attach a cycle-independent sort key to a priority function.

    The decorated function must order nodes exactly as ``sorted(ready,
    key=lambda n: key(dag, n))`` would — the fast engine relies on the two
    being interchangeable, and ``tests/test_differential_engines.py`` checks
    the schedules they produce are identical.
    """

    def decorate(priority: PriorityFunction) -> PriorityFunction:
        priority.static_key = key
        return priority

    return decorate


@static_priority(lambda dag, node: (-dag.criticality(node), -dag.descendant_count(node), node))
def criticality_priority(dag: GateDAG, ready: Sequence[int]) -> list[int]:
    """The paper's priority: criticality first, then descendant count, then id."""
    return sorted(
        ready,
        key=lambda node: (-dag.criticality(node), -dag.descendant_count(node), node),
    )


@static_priority(lambda dag, node: node)
def circuit_order_priority(dag: GateDAG, ready: Sequence[int]) -> list[int]:
    """The Table IV "Circuit-order" baseline: schedule in program order."""
    return sorted(ready)


@static_priority(lambda dag, node: (-dag.descendant_count(node), -dag.criticality(node), node))
def descendant_priority(dag: GateDAG, ready: Sequence[int]) -> list[int]:
    """Descendant count first (ablation variant)."""
    return sorted(ready, key=lambda node: (-dag.descendant_count(node), -dag.criticality(node), node))


def random_priority(seed: int = 0) -> PriorityFunction:
    """A seeded random order (ablation baseline)."""
    rng = random.Random(seed)

    def order(dag: GateDAG, ready: Sequence[int]) -> list[int]:
        nodes = list(ready)
        rng.shuffle(nodes)
        return nodes

    return order
