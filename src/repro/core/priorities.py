"""Gate prioritisation for Algorithm 1 (scheduling for limited resources).

The paper prioritises ready gates by *criticality* — the length of the
critical path of the remaining gates hanging off the gate — and breaks ties
by the *remaining gate count* (how many gates transitively depend on it), so
that bottleneck gates go first and non-congested cycles are used well.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import Callable

from repro.circuits.dag import GateDAG

#: A priority function orders ready DAG nodes; larger keys are scheduled first.
PriorityFunction = Callable[[GateDAG, Sequence[int]], list[int]]


def criticality_priority(dag: GateDAG, ready: Sequence[int]) -> list[int]:
    """The paper's priority: criticality first, then descendant count, then id."""
    return sorted(
        ready,
        key=lambda node: (-dag.criticality(node), -dag.descendant_count(node), node),
    )


def circuit_order_priority(dag: GateDAG, ready: Sequence[int]) -> list[int]:
    """The Table IV "Circuit-order" baseline: schedule in program order."""
    return sorted(ready)


def descendant_priority(dag: GateDAG, ready: Sequence[int]) -> list[int]:
    """Descendant count first (ablation variant)."""
    return sorted(ready, key=lambda node: (-dag.descendant_count(node), -dag.criticality(node), node))


def random_priority(seed: int = 0) -> PriorityFunction:
    """A seeded random order (ablation baseline)."""
    rng = random.Random(seed)

    def order(dag: GateDAG, ready: Sequence[int]) -> list[int]:
        nodes = list(ready)
        rng.shuffle(nodes)
        return nodes

    return order
