"""Encoded-circuit result types shared by every scheduler and baseline.

An :class:`EncodedCircuit` is the output ``P^S`` of the transformation: a list
of :class:`ScheduledOperation` with explicit start cycles, durations and
(where applicable) routed paths, plus the mapping and cut-type context needed
to validate it.  The schedule validator in :mod:`repro.verify` replays these
operations and checks every constraint from Section III of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.chip.chip import Chip
from repro.chip.geometry import SurfaceCodeModel
from repro.core.cut_types import CutAssignment, CutType
from repro.errors import SchedulingError
from repro.partition.placement import Placement
from repro.routing.paths import RoutedPath


class OperationKind(enum.Enum):
    """The kinds of scheduled operations an encoded circuit may contain."""

    #: One-cycle CNOT between different-cut tiles (double defect braid) or any
    #: lattice-surgery CNOT via a Bell-state corridor.
    CNOT_BRAID = "cnot_braid"
    #: Three-cycle CNOT between same-cut tiles executed directly via the
    #: ancilla qubit of the tile (double defect only).
    CNOT_SAME_CUT = "cnot_same_cut"
    #: Three-cycle tile-local cut-type modification (double defect only).
    CUT_MODIFICATION = "cut_modification"
    #: Multi-cycle cut-type remapping phase used by Ecmas-ReSu (Algorithm 2).
    CUT_REMAP = "cut_remap"


@dataclass(frozen=True, slots=True)
class ScheduledOperation:
    """One operation of the encoded circuit.

    ``gate_node`` identifies the CNOT DAG node for CNOT operations and is
    ``None`` for cut-type modifications / remaps.  ``qubits`` holds the
    logical qubits involved (both operands for a CNOT, the modified qubit for
    a modification, every remapped qubit for a remap).  ``path`` is the routed
    corridor path for operations that occupy channels; ``lanes`` is the number
    of lanes the operation reserves on each edge of that path during each
    cycle of its duration.
    """

    kind: OperationKind
    start_cycle: int
    duration: int
    qubits: tuple[int, ...]
    gate_node: int | None = None
    path: RoutedPath | None = None
    lanes: int = 1
    new_cut: CutType | None = None

    def __post_init__(self) -> None:
        if self.start_cycle < 0:
            raise SchedulingError(f"operation starts at negative cycle {self.start_cycle}")
        if self.duration < 1:
            raise SchedulingError(f"operation duration must be >= 1, got {self.duration}")
        if self.kind in (OperationKind.CNOT_BRAID, OperationKind.CNOT_SAME_CUT) and self.gate_node is None:
            raise SchedulingError("CNOT operations must reference their DAG node")

    @property
    def end_cycle(self) -> int:
        """First cycle after the operation has finished."""
        return self.start_cycle + self.duration

    def occupies_cycle(self, cycle: int) -> bool:
        """True when the operation is active during ``cycle``."""
        return self.start_cycle <= cycle < self.end_cycle


@dataclass
class EncodedCircuit:
    """The result ``P^S`` of mapping and scheduling a circuit onto a chip."""

    model: SurfaceCodeModel
    chip: Chip
    placement: Placement
    initial_cut_types: CutAssignment | None
    operations: list[ScheduledOperation] = field(default_factory=list)
    method: str = "ecmas"
    compile_seconds: float = 0.0

    @property
    def num_cycles(self) -> int:
        """Total clock cycles ``Δ`` of the encoded circuit."""
        if not self.operations:
            return 0
        return max(op.end_cycle for op in self.operations)

    @property
    def num_cnots(self) -> int:
        """Number of CNOT operations scheduled."""
        return sum(
            1
            for op in self.operations
            if op.kind in (OperationKind.CNOT_BRAID, OperationKind.CNOT_SAME_CUT)
        )

    @property
    def num_cut_modifications(self) -> int:
        """Number of cut-type modification / remap operations."""
        return sum(
            1
            for op in self.operations
            if op.kind in (OperationKind.CUT_MODIFICATION, OperationKind.CUT_REMAP)
        )

    def cnot_operations(self) -> list[ScheduledOperation]:
        """All CNOT operations sorted by start cycle."""
        return sorted(
            (
                op
                for op in self.operations
                if op.kind in (OperationKind.CNOT_BRAID, OperationKind.CNOT_SAME_CUT)
            ),
            key=lambda op: (op.start_cycle, op.gate_node),
        )

    def operations_in_cycle(self, cycle: int) -> list[ScheduledOperation]:
        """All operations active during ``cycle``."""
        return [op for op in self.operations if op.occupies_cycle(cycle)]

    def completion_cycle_by_node(self) -> dict[int, int]:
        """Map DAG node id -> first cycle after that CNOT finished."""
        completion: dict[int, int] = {}
        for op in self.operations:
            if op.gate_node is None:
                continue
            if op.gate_node in completion:
                raise SchedulingError(f"gate node {op.gate_node} scheduled twice")
            completion[op.gate_node] = op.end_cycle
        return completion

    def channel_utilisation(self) -> float:
        """Average reserved lanes per cycle (a coarse congestion statistic)."""
        cycles = self.num_cycles
        if cycles == 0:
            return 0.0
        lane_cycles = sum(
            op.duration * op.lanes * (op.path.length if op.path else 0) for op in self.operations
        )
        return lane_cycles / cycles
