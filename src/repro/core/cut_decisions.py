"""Cut-type scheduling decisions for the double defect model.

When Algorithm 1 reaches a CNOT whose two tiles currently share a cut type it
must choose between

* **direct execution** — three clock cycles using the tile's ancilla qubit,
  occupying a channel path for the whole duration, and
* **cut-type modification** — three tile-local cycles (which can overlap
  cycles the tile has already spent idle) followed by a one-cycle braid.

The paper scores both options with an *M-value* ``M = Mt + θ·Ms`` per operand
tile, where ``Mt`` is the time impact, ``Ms`` the channel-occupation impact
weighted by a look-ahead over the gate's children, and
``θ = (|ready gates| · 2) / (bandwidth · n)`` adapts the weighting to the
current congestion.  Modification is chosen when the smaller of the two
M-values is negative (Algorithm 1, lines 14–23).

The alternative strategies of Table V are also provided: *Time-first* always
minimises the completion time of the current gate and *Channel-first* always
minimises channel occupation (i.e. always modifies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.circuits.dag import GateDAG
from repro.core.cut_types import CutAssignment

#: Duration (cycles) of a direct same-cut CNOT via the tile's ancilla.
DIRECT_SAME_CUT_CYCLES = 3
#: Duration (cycles) of a tile-local cut-type modification.
MODIFICATION_CYCLES = 3
#: Channel braids used by a direct same-cut CNOT vs. after modification.
DIRECT_BRAIDS = 2
MODIFIED_BRAIDS = 1


@dataclass(frozen=True)
class CutContext:
    """Everything a decision strategy may inspect for one same-cut CNOT."""

    dag: GateDAG
    node: int
    qubit_a: int
    qubit_b: int
    cut_types: CutAssignment
    #: Cycles each operand tile has been idle before the current cycle.
    idle_a: int
    idle_b: int
    #: Number of currently ready gates (drives θ).
    ready_count: int
    #: Chip bandwidth and number of logical qubits (drive θ).
    bandwidth: int
    num_qubits: int

    def remaining_modification(self, qubit: int) -> int:
        """Modification cycles still needed after overlapping idle time."""
        idle = self.idle_a if qubit == self.qubit_a else self.idle_b
        return max(0, MODIFICATION_CYCLES - idle)

    def theta(self) -> float:
        """The adaptive weight θ of the paper."""
        return (self.ready_count * 2.0) / (max(1, self.bandwidth) * max(1, self.num_qubits))


@dataclass(frozen=True)
class CutDecision:
    """The outcome of a strategy: modify a tile, or execute directly."""

    modify: bool
    qubit: int | None = None  # the tile whose cut type is modified


#: A strategy maps a context to a decision.
CutDecisionStrategy = Callable[[CutContext], CutDecision]


def _look_ahead_channel_impact(context: CutContext, qubit: int) -> float:
    """Channel-impact term ``Ms`` for flipping ``qubit``'s cut type.

    Starts from the immediate saving (one braid instead of two for the current
    gate) and adds a look-ahead over the not-yet-executed children of the gate
    that involve ``qubit``: children whose partner currently has the *same*
    cut type as ``qubit`` will also become single-braid CNOTs after the flip
    (negative contribution); children whose partner already differs would be
    hurt by the flip (positive contribution).
    """
    impact = float(MODIFIED_BRAIDS - DIRECT_BRAIDS)  # -1: the current gate gets cheaper
    current = context.cut_types[qubit]
    for child in context.dag.successors(context.node):
        gate = context.dag.gate(child)
        if qubit not in gate.qubits:
            continue
        partner = gate.control if gate.target == qubit else gate.target
        if context.cut_types[partner] == current:
            impact -= 1.0
        else:
            impact += 1.0
    return impact


def _time_impact(context: CutContext, qubit: int) -> float:
    """Time-impact term ``Mt``: modification completion vs direct completion."""
    modified_total = context.remaining_modification(qubit) + 1  # braid after the flip
    return float(modified_total - DIRECT_SAME_CUT_CYCLES)


def m_value(context: CutContext, qubit: int) -> float:
    """The M-value of modifying ``qubit``'s tile for the current gate."""
    return _time_impact(context, qubit) + context.theta() * _look_ahead_channel_impact(context, qubit)


def adaptive_strategy(context: CutContext) -> CutDecision:
    """The paper's strategy: modify the tile with the smaller M-value if it is negative."""
    value_a = m_value(context, context.qubit_a)
    value_b = m_value(context, context.qubit_b)
    if value_a <= value_b:
        best_value, best_qubit = value_a, context.qubit_a
    else:
        best_value, best_qubit = value_b, context.qubit_b
    if best_value < 0:
        return CutDecision(modify=True, qubit=best_qubit)
    return CutDecision(modify=False)


def time_first_strategy(context: CutContext) -> CutDecision:
    """Table V "Time-first": minimise the completion time of the current gate."""
    best_qubit = min(
        (context.qubit_a, context.qubit_b), key=lambda q: context.remaining_modification(q)
    )
    modified_total = context.remaining_modification(best_qubit) + 1
    if modified_total < DIRECT_SAME_CUT_CYCLES:
        return CutDecision(modify=True, qubit=best_qubit)
    return CutDecision(modify=False)


def channel_first_strategy(context: CutContext) -> CutDecision:
    """Table V "Channel-first": always minimise channel occupation (always modify)."""
    best_qubit = min(
        (context.qubit_a, context.qubit_b), key=lambda q: context.remaining_modification(q)
    )
    return CutDecision(modify=True, qubit=best_qubit)


def never_modify_strategy(context: CutContext) -> CutDecision:
    """Baselines without cut-type awareness (AutoBraid / Braidflash): always direct."""
    return CutDecision(modify=False)


STRATEGIES: dict[str, CutDecisionStrategy] = {
    "adaptive": adaptive_strategy,
    "time_first": time_first_strategy,
    "channel_first": channel_first_strategy,
    "never_modify": never_modify_strategy,
}


def get_strategy(name: str) -> CutDecisionStrategy:
    """Look up a strategy by name."""
    try:
        return STRATEGIES[name]
    except KeyError as exc:
        raise KeyError(f"unknown cut decision strategy {name!r}; options: {sorted(STRATEGIES)}") from exc
