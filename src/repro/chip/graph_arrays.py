"""Dense integer-indexed view of a :class:`~repro.chip.routing_graph.RoutingGraph`.

The tuple-keyed :class:`RoutingGraph` is the *semantic* model — defects,
capacities and the canonical path contract are all defined over its
``("j", r, c)`` / ``("t", i, j)`` nodes.  The hot path, however, spends its
time hashing those tuples.  :class:`CompactRoutingGraph` compiles the graph
once into contiguous integer node ids and CSR-style numpy arrays so that the
fast engine's landmark tables and A* search run over flat arrays instead of
dict-of-dicts.

Node-id ordering invariant
--------------------------
Node ids are assigned in **sorted node-tuple order**.  Junction tuples sort
before tile tuples (``"j" < "t"``) and both families sort row-major, so

    ``id(a) < id(b)  ⟺  a < b``  (as node tuples).

Consequently the lexicographic order of two *id sequences* equals the
lexicographic order of the corresponding *node-tuple sequences* — the
canonical tie-break of :func:`repro.routing.router.find_path` survives the
translation to integers unchanged, which is what lets the array router return
bit-identical paths (``tests/test_graph_arrays.py`` round-trips this).

Edge ids are likewise assigned in sorted ``(min_id, max_id)`` endpoint order,
giving every undirected edge one stable integer the residual-capacity
bookkeeping can index by.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.chip.routing_graph import EdgeKey, Node, RoutingGraph
from repro.errors import RoutingError

#: Through-capacity stored for tile nodes (path endpoints, effectively
#: unbounded).  Matches :meth:`RoutingGraph.node_capacity`.
TILE_NODE_CAPACITY = 1 << 30


class CompactRoutingGraph:
    """A compiled-once flat-array image of one :class:`RoutingGraph`.

    Attributes
    ----------
    nodes:
        Node tuples indexed by node id (sorted tuple order).
    indptr, neighbor_ids, adj_edge_ids:
        CSR adjacency: the neighbors of node ``u`` are
        ``neighbor_ids[indptr[u]:indptr[u + 1]]`` (ascending id order), and
        ``adj_edge_ids`` maps each adjacency slot to its undirected edge id.
    edge_capacity:
        Base capacity per edge id (defect-adjusted, like the source graph).
    node_capacity:
        Through-capacity per node id (junction lane counts; tiles get
        :data:`TILE_NODE_CAPACITY`).
    is_tile:
        Boolean mask over node ids.
    """

    def __init__(self, graph: RoutingGraph):
        self._graph = graph
        nodes = sorted(graph.nodes)
        self.nodes: tuple[Node, ...] = tuple(nodes)
        node_id = {node: i for i, node in enumerate(nodes)}
        self.node_id: dict[Node, int] = node_id
        num_nodes = len(nodes)

        # Canonical edge keys are endpoint-sorted tuples, and the node-id
        # invariant makes tuple order equal id order — plain key sort is the
        # (id_a, id_b) sort.
        capacity_by_key = graph.edge_capacities
        edge_keys = sorted(capacity_by_key)
        self.edge_keys: tuple[EdgeKey, ...] = tuple(edge_keys)
        self.edge_id: dict[EdgeKey, int] = {key: i for i, key in enumerate(edge_keys)}
        self._capacity_list = [capacity_by_key[key] for key in edge_keys]
        self._endpoint_ids = [(node_id[a], node_id[b]) for a, b in edge_keys]

        is_tile_list = [node[0] == "t" for node in nodes]
        self._is_tile_list = is_tile_list
        junction_capacity = graph.junction_capacities
        self._node_capacity_list = [
            TILE_NODE_CAPACITY if tile else junction_capacity[node]
            for node, tile in zip(nodes, is_tile_list)
        ]
        #: True when every junction can pass at least one path through it.
        #: A defective chip may strand a junction with only tile-access edges
        #: (through-capacity 0); the unloaded-graph greedy walk of the fast
        #: router is only canonical when no such junction exists.
        self.junctions_passable: bool = all(
            tile or capacity >= 1
            for tile, capacity in zip(is_tile_list, self._node_capacity_list)
        )

        #: Directed (u, v) id pair -> canonical EdgeKey, both orientations;
        #: lets the router emit RoutedPath edges without re-deriving keys.
        pair_edge_key: dict[tuple[int, int], EdgeKey] = {}
        self.pair_edge_key = pair_edge_key
        adj_lists: list[list[tuple[int, int, int]]] = [[] for _ in range(num_nodes)]
        for eid, (key, (ia, ib)) in enumerate(zip(edge_keys, self._endpoint_ids)):
            capacity = self._capacity_list[eid]
            adj_lists[ia].append((ib, eid, capacity))
            adj_lists[ib].append((ia, eid, capacity))
            pair_edge_key[(ia, ib)] = key
            pair_edge_key[(ib, ia)] = key
        self._adj_lists = adj_lists

        # Flattened per-node adjacency for the Python-level search loops, all
        # built in one pass (plain lists/dicts beat per-element numpy indexing
        # by a wide margin there):
        # * ``adjacency`` — every neighbor as (id, edge, capacity, is_tile);
        # * ``junction_adjacency`` — junction neighbors only: the A* inner
        #   loop never passes *through* a tile;
        # * ``tile_access`` — tile neighbors keyed by id, probed for targets;
        # * ``_tile_corner_ids`` — per tile, its corner junction ids (BFS
        #   derives tile distances from corners).
        adjacency_rows = []
        junction_rows = []
        access_rows = []
        tile_corner_ids: list[tuple[int, tuple[int, ...]]] = []
        for node, entries in enumerate(adj_lists):
            entries.sort()
            full_row = []
            junction_row = []
            access: dict[int, tuple[int, int]] = {}
            for neighbor, eid, capacity in entries:
                tile = is_tile_list[neighbor]
                full_row.append((neighbor, eid, capacity, tile))
                if tile:
                    access[neighbor] = (eid, capacity)
                else:
                    junction_row.append((neighbor, eid, capacity))
            adjacency_rows.append(tuple(full_row))
            junction_rows.append(tuple(junction_row))
            access_rows.append(access)
            if is_tile_list[node]:
                tile_corner_ids.append((node, tuple(entry[0] for entry in entries)))
        self.adjacency: tuple[tuple[tuple[int, int, int, bool], ...], ...] = tuple(adjacency_rows)
        self.junction_adjacency: tuple[tuple[tuple[int, int, int], ...], ...] = tuple(junction_rows)
        self.tile_access: tuple[dict[int, tuple[int, int]], ...] = tuple(access_rows)
        self._tile_corner_ids = tile_corner_ids

    # ----------------------------------------------------------- array views
    # The numpy faces of the graph are materialised lazily: the scalar hot
    # path (small chips) never touches them, and charging every compile for
    # arrays only the vectorised BFS and offline analyses read would put the
    # constructor back on the profile of shallow circuits.
    @cached_property
    def edge_capacity(self) -> np.ndarray:
        """Base capacity per edge id (defect-adjusted, like the source graph)."""
        return np.array(self._capacity_list, dtype=np.int64)

    @cached_property
    def edge_endpoints(self) -> np.ndarray:
        """``(num_edges, 2)`` node-id endpoints per edge id."""
        return np.array(self._endpoint_ids, dtype=np.int32).reshape(len(self.edge_keys), 2)

    @cached_property
    def is_tile(self) -> np.ndarray:
        """Boolean mask over node ids (True for tiles)."""
        return np.array(self._is_tile_list, dtype=bool)

    @cached_property
    def node_capacity(self) -> np.ndarray:
        """Through-capacity per node id (tiles get the unbounded sentinel)."""
        return np.array(self._node_capacity_list, dtype=np.int64)

    @cached_property
    def tile_ids(self) -> np.ndarray:
        """Node ids of all tiles, ascending."""
        return np.flatnonzero(self.is_tile).astype(np.int32)

    @cached_property
    def indptr(self) -> np.ndarray:
        """CSR row pointer: node ``u``'s adjacency occupies slots
        ``indptr[u]:indptr[u + 1]`` of :attr:`neighbor_ids`."""
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum([len(entries) for entries in self._adj_lists], out=indptr[1:])
        return indptr

    @cached_property
    def neighbor_ids(self) -> np.ndarray:
        """CSR neighbor ids, ascending within each row."""
        return np.array(
            [entry[0] for entries in self._adj_lists for entry in entries], dtype=np.int32
        )

    @cached_property
    def adj_edge_ids(self) -> np.ndarray:
        """Undirected edge id per CSR adjacency slot."""
        return np.array(
            [entry[1] for entries in self._adj_lists for entry in entries], dtype=np.int32
        )

    # ---------------------------------------------------------------- queries
    @property
    def graph(self) -> RoutingGraph:
        """The tuple-keyed source graph this image was compiled from."""
        return self._graph

    @property
    def num_nodes(self) -> int:
        """Number of nodes (contiguous ids ``0 .. num_nodes - 1``)."""
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (contiguous ids ``0 .. num_edges - 1``)."""
        return len(self.edge_keys)

    def id_of(self, node: Node) -> int:
        """The integer id of ``node``."""
        try:
            return self.node_id[node]
        except KeyError as exc:
            raise RoutingError(f"unknown node {node}") from exc

    def node_of(self, node_id: int) -> Node:
        """The node tuple for an integer id."""
        return self.nodes[node_id]

    def edge_id_of(self, key: EdgeKey) -> int:
        """The integer id of a canonical undirected edge key."""
        try:
            return self.edge_id[key]
        except KeyError as exc:
            raise RoutingError(f"unknown edge {key}") from exc

    def node_capacity_of(self, node_id: int) -> int:
        """Through-capacity of a node id (tiles report the unbounded sentinel)."""
        return self._node_capacity_list[node_id]

    # -------------------------------------------------------------- landmarks
    #: Below this node count the per-level numpy call overhead of the
    #: vectorised sweep exceeds a plain scalar BFS over the flat adjacency
    #: (measured crossover is a few hundred nodes; the margin keeps every
    #: Table I chip on the scalar path and n>=500 chips on the vector path).
    _VECTOR_BFS_MIN_NODES = 1024

    def hop_distances_from(self, target_id: int) -> np.ndarray:
        """Static hop distance of every node to ``target_id`` (``-1`` unreachable).

        One backward breadth-first sweep.  Like the reference search, tiles
        receive a distance (a path may *start* there) but are never expanded
        through — only the target itself seeds the sweep.  Small chips take a
        scalar BFS over the flattened adjacency; large chips switch to
        vectorised level expansion over the CSR arrays, keeping the per-table
        cost flat-array cheap on n>=500 chips.
        """
        if self.num_nodes < self._VECTOR_BFS_MIN_NODES:
            return self._hop_distances_scalar(target_id)
        return self._hop_distances_vector(target_id)

    def _hop_distances_scalar(self, target_id: int) -> np.ndarray:
        distances = [-1] * self.num_nodes
        distances[target_id] = 0
        junction_adjacency = self.junction_adjacency
        # Seed with the target's neighbors, then sweep the junction subgraph
        # only — tiles are never expanded through, so their distances follow
        # from their corner junctions afterwards (one access hop).
        frontier: list[int] = []
        for neighbor, _eid, _capacity, neighbor_is_tile in self.adjacency[target_id]:
            distances[neighbor] = 1
            if not neighbor_is_tile:
                frontier.append(neighbor)
        level = 1
        while frontier:
            level += 1
            fresh: list[int] = []
            for node in frontier:
                for neighbor, _eid, _capacity in junction_adjacency[node]:
                    if distances[neighbor] < 0:
                        distances[neighbor] = level
                        fresh.append(neighbor)
            frontier = fresh
        for tile, corners in self._tile_corner_ids:
            if distances[tile] < 0:
                best = -1
                for corner in corners:
                    d = distances[corner]
                    if d >= 0 and (best < 0 or d < best):
                        best = d
                if best >= 0:
                    distances[tile] = best + 1
        return np.array(distances, dtype=np.int64)

    def _hop_distances_vector(self, target_id: int) -> np.ndarray:
        distance = np.full(self.num_nodes, -1, dtype=np.int64)
        distance[target_id] = 0
        frontier = np.array([target_id], dtype=np.int64)
        level = 0
        while frontier.size:
            level += 1
            if level > 1:
                frontier = frontier[~self.is_tile[frontier]]
                if not frontier.size:
                    break
            starts = self.indptr[frontier]
            counts = self.indptr[frontier + 1] - starts
            total = int(counts.sum())
            if not total:
                break
            # Gather the concatenated CSR neighbor slices of the frontier.
            offsets = np.arange(total) - np.repeat(counts.cumsum() - counts, counts)
            neighbors = self.neighbor_ids[np.repeat(starts, counts) + offsets]
            fresh = np.unique(neighbors[distance[neighbors] < 0])
            if not fresh.size:
                break
            distance[fresh] = level
            frontier = fresh
        return distance
