"""Chip substrate: physical-qubit accounting, tile arrays, defects and routing graphs."""

from repro.chip.chip import Chip, TileSlot
from repro.chip.defects import NO_DEFECTS, DefectSpec, chip_is_routable, random_defects
from repro.chip.geometry import (
    SurfaceCodeModel,
    channel_bandwidth,
    communication_capacity,
    lane_width,
    minimum_viable_side,
    sufficient_bandwidth,
    tile_block_side,
    tile_side,
)
from repro.chip.routing_graph import RoutingGraph, edge_key, junction, tile_node, tile_node_for
from repro.chip.spec import chip_from_dict, chip_to_dict, load_chip_spec, save_chip_spec
from repro.chip.tile_graph import (
    BUILTIN_GEOMETRIES,
    TileGraph,
    builtin_tile_graph,
    degree3_sparse,
    heavy_hex,
    hex_lattice,
    square_lattice,
)

__all__ = [
    "Chip",
    "TileSlot",
    "TileGraph",
    "BUILTIN_GEOMETRIES",
    "builtin_tile_graph",
    "square_lattice",
    "hex_lattice",
    "heavy_hex",
    "degree3_sparse",
    "DefectSpec",
    "NO_DEFECTS",
    "SurfaceCodeModel",
    "RoutingGraph",
    "junction",
    "tile_node",
    "tile_node_for",
    "edge_key",
    "tile_side",
    "tile_block_side",
    "lane_width",
    "channel_bandwidth",
    "communication_capacity",
    "sufficient_bandwidth",
    "minimum_viable_side",
    "chip_is_routable",
    "random_defects",
    "chip_to_dict",
    "chip_from_dict",
    "load_chip_spec",
    "save_chip_spec",
]
