"""Chip substrate: physical-qubit accounting, tile arrays and routing graphs."""

from repro.chip.chip import Chip, TileSlot
from repro.chip.geometry import (
    SurfaceCodeModel,
    channel_bandwidth,
    communication_capacity,
    lane_width,
    minimum_viable_side,
    sufficient_bandwidth,
    tile_block_side,
    tile_side,
)
from repro.chip.routing_graph import RoutingGraph, edge_key, junction, tile_node, tile_node_for

__all__ = [
    "Chip",
    "TileSlot",
    "SurfaceCodeModel",
    "RoutingGraph",
    "junction",
    "tile_node",
    "tile_node_for",
    "edge_key",
    "tile_side",
    "tile_block_side",
    "lane_width",
    "channel_bandwidth",
    "communication_capacity",
    "sufficient_bandwidth",
    "minimum_viable_side",
]
