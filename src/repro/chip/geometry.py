"""Physical-qubit accounting for surface-code chips.

This module turns the paper's geometric statements (Section III and Fig. 5)
into arithmetic:

Double defect model
    * a tile block is a square of ``5d × 5d`` physical qubits containing a
      ``2d``-wide defect core plus half-channels on each side (Fig. 5a),
    * a braiding lane needs a channel width of ``2.5d`` physical qubits,
    * the bandwidth of a channel of width ``W`` is ``⌊W / 2.5d⌋``.

Lattice surgery model
    * a tile is ``⌈√2·d⌉ × ⌈√2·d⌉`` physical qubits (rotated surface code,
      Fig. 5b),
    * channels are built from ancilla tiles, so a lane is exactly one tile
      wide and the bandwidth of a channel of width ``W`` is ``⌊W / ⌈√2·d⌉⌋``.

The minimum viable chip of the paper (``l = ⌈√n⌉·5d`` for double defect and
``l = ⌈√n⌉·⌈√2·d⌉`` for lattice surgery) corresponds to bandwidth 1 in the
double defect model and to the densest packing in lattice surgery; the "4x"
chip doubles the side length.  :func:`corridor_widths` distributes the
leftover physical width across the ``rows + 1`` channel corridors, which is
the quantity the *bandwidth adjusting* step of Ecmas redistributes.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import ChipError


class SurfaceCodeModel(enum.Enum):
    """The two logical-qubit encodings the paper studies."""

    DOUBLE_DEFECT = "double_defect"
    LATTICE_SURGERY = "lattice_surgery"


#: Tile block side in units of the code distance ``d`` (double defect).
DD_TILE_BLOCK_FACTOR = 5.0
#: Defect-core side in units of ``d``; the rest of the block is channel margin.
DD_TILE_CORE_FACTOR = 2.0
#: Braiding-lane width in units of ``d``.
DD_LANE_FACTOR = 2.5


def tile_side(model: SurfaceCodeModel, code_distance: int) -> int:
    """Physical-qubit side length of one tile *core* (the logical patch itself)."""
    _check_distance(code_distance)
    if model is SurfaceCodeModel.DOUBLE_DEFECT:
        return int(math.ceil(DD_TILE_CORE_FACTOR * code_distance))
    return int(math.ceil(math.sqrt(2.0) * code_distance))


def tile_block_side(model: SurfaceCodeModel, code_distance: int) -> int:
    """Side length of a tile *block*: the core plus its share of channels.

    The minimum viable chip packs one block per logical qubit.
    """
    _check_distance(code_distance)
    if model is SurfaceCodeModel.DOUBLE_DEFECT:
        return int(math.ceil(DD_TILE_BLOCK_FACTOR * code_distance))
    # Lattice surgery: one data tile plus one ancilla-channel tile per block
    # (EDPCI-style layout: qubit tiles separated by single-tile corridors).
    return 2 * tile_side(model, code_distance)


def lane_width(model: SurfaceCodeModel, code_distance: int) -> float:
    """Channel width consumed by one communication lane."""
    _check_distance(code_distance)
    if model is SurfaceCodeModel.DOUBLE_DEFECT:
        return DD_LANE_FACTOR * code_distance
    return float(tile_side(model, code_distance))


def channel_bandwidth(model: SurfaceCodeModel, code_distance: int, width: float) -> int:
    """Bandwidth ``⌊W / lane⌋`` of a channel of physical width ``width``."""
    if width < 0:
        raise ChipError(f"channel width must be non-negative, got {width}")
    return int(width // lane_width(model, code_distance))


def minimum_viable_side(model: SurfaceCodeModel, num_qubits: int, code_distance: int) -> int:
    """Side length ``l`` of the paper's minimum viable chip ``L_{l×l}``."""
    _check_qubits(num_qubits)
    tiles_per_side = int(math.ceil(math.sqrt(num_qubits)))
    if model is SurfaceCodeModel.DOUBLE_DEFECT:
        return tiles_per_side * int(math.ceil(DD_TILE_BLOCK_FACTOR * code_distance))
    return tiles_per_side * tile_side(model, code_distance)


def four_x_side(model: SurfaceCodeModel, num_qubits: int, code_distance: int) -> int:
    """Side length of the paper's "4x" resource configuration.

    For the lattice surgery model the paper defines the 4x chip as
    ``l = ⌈√n⌉ · 5d`` (the double defect minimum); for double defect it is a
    chip with four times the physical qubits, i.e. double the side.
    """
    tiles_per_side = int(math.ceil(math.sqrt(num_qubits)))
    if model is SurfaceCodeModel.LATTICE_SURGERY:
        return tiles_per_side * int(math.ceil(DD_TILE_BLOCK_FACTOR * code_distance))
    return 2 * minimum_viable_side(model, num_qubits, code_distance)


def corridor_widths(
    model: SurfaceCodeModel,
    code_distance: int,
    tiles_per_side: int,
    side: int,
) -> list[float]:
    """Split the free width of a chip side into ``tiles_per_side + 1`` corridors.

    The tile cores occupy ``tiles_per_side * tile_side`` physical columns;
    whatever remains is channel width, distributed as evenly as possible over
    the corridors between and around the tile columns.  Bandwidth adjusting
    later redistributes this same total width non-uniformly.
    """
    if tiles_per_side <= 0:
        raise ChipError("a chip needs at least one tile per side")
    core = tile_side(model, code_distance)
    occupied = tiles_per_side * core
    if side < occupied:
        raise ChipError(
            f"chip side {side} cannot hold {tiles_per_side} tiles of core width {core}"
        )
    free = side - occupied
    corridors = tiles_per_side + 1
    base = free / corridors
    return [base] * corridors


def total_lane_budget(
    model: SurfaceCodeModel,
    code_distance: int,
    tiles_per_side: int,
    side: int,
) -> int:
    """Total number of lanes available along one axis of the chip.

    Computed as the free width (side minus tile cores) divided by the lane
    width, with a floor of one lane per corridor: the paper's minimum viable
    chips support single-lane braiding everywhere by construction (each tile
    block reserves its half-channels, Fig. 5a), even though the even split of
    the leftover width alone would round down to zero.
    """
    widths = corridor_widths(model, code_distance, tiles_per_side, side)
    lane = lane_width(model, code_distance)
    corridors = tiles_per_side + 1
    return max(corridors, int(sum(widths) // lane))


def uniform_bandwidths(
    model: SurfaceCodeModel,
    code_distance: int,
    tiles_per_side: int,
    side: int,
) -> list[int]:
    """Per-corridor bandwidths for an evenly laid-out chip.

    The total lane budget of the axis is spread as evenly as possible over the
    ``tiles_per_side + 1`` corridors; when it does not divide evenly the inner
    corridors receive the extra lanes first (they carry the most traffic).
    """
    corridors = tiles_per_side + 1
    total = total_lane_budget(model, code_distance, tiles_per_side, side)
    base, extra = divmod(total, corridors)
    bandwidths = [base] * corridors
    # Hand the remainder to the innermost corridors first.
    order = sorted(range(corridors), key=lambda i: abs(i - corridors / 2.0 + 0.5))
    for i in order[:extra]:
        bandwidths[i] += 1
    return [max(1, b) for b in bandwidths]


def total_physical_qubits(side: int) -> int:
    """Number of physical qubits of a square chip of side ``side``."""
    if side <= 0:
        raise ChipError(f"chip side must be positive, got {side}")
    return side * side


def side_for_bandwidth(
    model: SurfaceCodeModel,
    num_qubits: int,
    code_distance: int,
    bandwidth: int,
) -> int:
    """Smallest square chip side giving every corridor at least ``bandwidth`` lanes.

    Used for the chip-size sweeps of Figure 12, where the paper scales the
    chip so the average bandwidth per channel rises from 1 to 5.
    """
    if bandwidth < 1:
        raise ChipError(f"bandwidth must be at least 1, got {bandwidth}")
    tiles_per_side = int(math.ceil(math.sqrt(num_qubits)))
    core = tile_side(model, code_distance)
    lane = lane_width(model, code_distance)
    corridors = tiles_per_side + 1
    free = bandwidth * lane * corridors
    side = tiles_per_side * core + int(math.ceil(free))
    return max(side, minimum_viable_side(model, num_qubits, code_distance))


def sufficient_bandwidth(parallelism: int) -> int:
    """Smallest bandwidth whose communication capacity covers ``parallelism``.

    Inverts Theorem 2: capacity ``⌊(b-1)/2⌋ + 3 ≥ PM`` requires
    ``b ≥ 2·(PM - 3) + 1`` for PM > 3 and ``b = 1`` otherwise.
    """
    if parallelism < 1:
        raise ChipError(f"parallelism must be at least 1, got {parallelism}")
    if parallelism <= 3:
        return 1
    return 2 * (parallelism - 3) + 1


def communication_capacity(bandwidth: int) -> int:
    """Chip communication capacity ``⌊(b-1)/2⌋ + 3`` (Theorem 2)."""
    if bandwidth < 1:
        raise ChipError(f"bandwidth must be at least 1, got {bandwidth}")
    return (bandwidth - 1) // 2 + 3


@dataclass(frozen=True)
class ChipBudget:
    """Total channel-width budget of a chip along one dimension.

    ``total_width`` is the physical width available to corridors along one
    axis (free width plus the per-block margins); bandwidth adjusting may
    redistribute it between corridors but never exceed it.
    """

    model: SurfaceCodeModel
    code_distance: int
    corridors: int
    total_width: float

    def max_total_lanes(self) -> int:
        """Upper bound on the sum of corridor bandwidths along this axis."""
        return int(self.total_width // lane_width(self.model, self.code_distance))


def axis_budget(
    model: SurfaceCodeModel,
    code_distance: int,
    tiles_per_side: int,
    side: int,
) -> ChipBudget:
    """Channel-width budget along one axis of a square chip."""
    lanes = total_lane_budget(model, code_distance, tiles_per_side, side)
    total = lanes * lane_width(model, code_distance)
    return ChipBudget(model, code_distance, tiles_per_side + 1, total)


def _check_distance(code_distance: int) -> None:
    if code_distance < 1:
        raise ChipError(f"code distance must be positive, got {code_distance}")


def _check_qubits(num_qubits: int) -> None:
    if num_qubits < 1:
        raise ChipError(f"need at least one logical qubit, got {num_qubits}")
