"""Arbitrary tile-graph geometries: the topology core behind :class:`Chip`.

The paper models a chip as a square ``l×l`` tile lattice with row/column
corridors.  Real devices are heading elsewhere — heavy-hex layouts, degree-3
couplers, sparse user-drawn topologies — so this module generalises the chip
substrate to an explicit graph:

* **nodes** are tile slots, identified by their index ``0..n-1`` and carrying
  a 2-D coordinate (used by placement splits and by :mod:`repro.viz`),
* **edges** are corridor segments between tile slots, each with an integer
  nominal bandwidth (number of lanes), and
* each node has a **width budget** bounding the total lanes of its incident
  edges — the graph generalisation of the per-axis lane budget that square
  chips derive from their physical side.

The square lattice is then just one constructor among several
(:func:`square_lattice`, :func:`hex_lattice`, :func:`heavy_hex`,
:func:`degree3_sparse`); a :class:`TileGraph` attached to a chip switches
every downstream consumer — routing graph, placement, bandwidth adjusting,
validator, viz — onto the graph view.  Graph chips address tile slot ``i``
as ``TileSlot(i, 0)`` and persist as CHIP_SPEC version 2 (see
:mod:`repro.chip.spec`).

Everything here is deterministic: node and edge orders are canonical (edges
sorted by endpoint pair), and the only randomness — :func:`degree3_sparse` —
draws from a seeded private ``random.Random``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace

from repro.errors import ChipError


@dataclass(frozen=True)
class TileGraph:
    """An immutable tile-graph geometry.

    ``coords[i]`` is the 2-D coordinate of tile slot ``i`` (layout only —
    distances come from graph hops, not Euclidean geometry).  ``edges`` holds
    canonical ``(a, b)`` endpoint pairs with ``a < b``, sorted; ``bandwidths``
    is parallel to ``edges``.  ``node_budgets`` optionally bounds the total
    lanes incident to each node; omitted, each node's budget is exactly the
    sum of its incident nominal bandwidths (no spare to redistribute).
    """

    name: str
    coords: tuple[tuple[float, float], ...]
    edges: tuple[tuple[int, int], ...]
    bandwidths: tuple[int, ...]
    node_budgets: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        coords = tuple((float(x), float(y)) for x, y in self.coords)
        object.__setattr__(self, "coords", coords)
        n = len(coords)
        if n < 1:
            raise ChipError("tile graph needs at least one node")
        if len(self.bandwidths) != len(self.edges):
            raise ChipError(
                f"tile graph has {len(self.edges)} edges but {len(self.bandwidths)} bandwidths"
            )
        normalised: list[tuple[int, int, int]] = []
        for (a, b), bandwidth in zip(self.edges, self.bandwidths):
            a, b, bandwidth = int(a), int(b), int(bandwidth)
            if a == b:
                raise ChipError(f"tile graph edge ({a}, {b}) is a self-loop")
            if a > b:
                a, b = b, a
            if not (0 <= a < n and 0 <= b < n):
                raise ChipError(f"tile graph edge ({a}, {b}) references a node outside 0..{n - 1}")
            if bandwidth < 1:
                raise ChipError(f"tile graph edge ({a}, {b}) must have bandwidth >= 1, got {bandwidth}")
            normalised.append((a, b, bandwidth))
        normalised.sort()
        pairs = [(a, b) for a, b, _ in normalised]
        if len(set(pairs)) != len(pairs):
            duplicate = next(p for i, p in enumerate(pairs) if p in pairs[:i])
            raise ChipError(f"tile graph edge {duplicate} is declared twice")
        object.__setattr__(self, "edges", tuple(pairs))
        object.__setattr__(self, "bandwidths", tuple(b for _, _, b in normalised))
        # Derived views, cached once (not dataclass fields; eq/hash unaffected).
        incident: list[list[int]] = [[] for _ in range(n)]
        index: dict[tuple[int, int], int] = {}
        for i, (a, b) in enumerate(self.edges):
            index[(a, b)] = i
            incident[a].append(i)
            incident[b].append(i)
        object.__setattr__(self, "_edge_index", index)
        object.__setattr__(self, "_incident", tuple(tuple(e) for e in incident))
        if self.node_budgets is not None:
            budgets = tuple(int(b) for b in self.node_budgets)
            if len(budgets) != n:
                raise ChipError(
                    f"tile graph has {n} nodes but {len(budgets)} node budgets"
                )
            for node in range(n):
                incident_total = sum(self.bandwidths[e] for e in incident[node])
                if budgets[node] < incident_total:
                    raise ChipError(
                        f"node {node} width budget {budgets[node]} is below its "
                        f"incident bandwidth total {incident_total}"
                    )
            object.__setattr__(self, "node_budgets", budgets)

    # ---------------------------------------------------------------- queries
    @property
    def num_nodes(self) -> int:
        """Number of tile slots."""
        return len(self.coords)

    @property
    def num_edges(self) -> int:
        """Number of corridor edges."""
        return len(self.edges)

    def incident_edges(self, node: int) -> tuple[int, ...]:
        """Indices (into :attr:`edges`) of the edges touching ``node``."""
        return self._incident[node]

    def degree(self, node: int) -> int:
        """Number of edges touching ``node``."""
        return len(self._incident[node])

    def edge_index(self, a: int, b: int) -> int | None:
        """The index of edge ``{a, b}``, or ``None`` when absent."""
        return self._edge_index.get((a, b) if a < b else (b, a))

    def effective_node_budgets(self) -> tuple[int, ...]:
        """Per-node lane budgets, deriving absent ones from incident bandwidth."""
        if self.node_budgets is not None:
            return self.node_budgets
        return tuple(
            sum(self.bandwidths[e] for e in self._incident[node])
            for node in range(self.num_nodes)
        )

    def with_bandwidths(self, bandwidths: list[int] | tuple[int, ...]) -> "TileGraph":
        """Return a graph with per-edge bandwidths replaced (budgets validated).

        Raises :class:`ChipError` when a bandwidth drops below one lane or a
        node's incident total exceeds its width budget.
        """
        bandwidths = tuple(int(b) for b in bandwidths)
        if len(bandwidths) != self.num_edges:
            raise ChipError(
                f"expected {self.num_edges} edge bandwidths, got {len(bandwidths)}"
            )
        if any(b < 1 for b in bandwidths):
            raise ChipError("every corridor edge must keep at least one lane")
        budgets = self.effective_node_budgets()
        for node in range(self.num_nodes):
            total = sum(bandwidths[e] for e in self._incident[node])
            if total > budgets[node]:
                raise ChipError(
                    f"node {node} lane budget exceeded: {total} > {budgets[node]}"
                )
        return replace(self, bandwidths=bandwidths)

    # ------------------------------------------------------------ persistence
    def key(self) -> list:
        """Canonical JSON-able representation (cache fingerprints)."""
        return [
            self.name,
            [[x, y] for x, y in self.coords],
            [[a, b, w] for (a, b), w in zip(self.edges, self.bandwidths)],
            list(self.node_budgets) if self.node_budgets is not None else None,
        ]

    def to_dict(self) -> dict:
        """JSON-able dict used by the CHIP_SPEC v2 ``geometry`` block."""
        payload = {
            "name": self.name,
            "nodes": [[x, y] for x, y in self.coords],
            "edges": [[a, b, w] for (a, b), w in zip(self.edges, self.bandwidths)],
        }
        if self.node_budgets is not None:
            payload["node_budgets"] = list(self.node_budgets)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TileGraph":
        """Inverse of :meth:`to_dict`; raises :class:`ChipError` on bad shapes."""
        if not isinstance(payload, dict):
            raise ChipError(
                f"chip spec field 'geometry' must be an object, got {type(payload).__name__}"
            )
        allowed = {"name", "nodes", "edges", "node_budgets"}
        for field in sorted(payload):
            if field not in allowed:
                raise ChipError(
                    f"chip spec geometry has unknown field {field!r}; "
                    f"expected one of {sorted(allowed)}"
                )
        name = payload.get("name", "custom")
        if not isinstance(name, str):
            raise ChipError(
                f"chip spec field 'geometry.name' must be a string, got {type(name).__name__}"
            )
        nodes = payload.get("nodes")
        if not isinstance(nodes, list) or not all(
            isinstance(p, (list, tuple)) and len(p) == 2 for p in nodes
        ):
            raise ChipError("chip spec field 'geometry.nodes' must be a list of [x, y] pairs")
        edges = payload.get("edges")
        if not isinstance(edges, list) or not all(
            isinstance(e, (list, tuple)) and len(e) == 3 for e in edges
        ):
            raise ChipError(
                "chip spec field 'geometry.edges' must be a list of [a, b, bandwidth] triples"
            )
        budgets = payload.get("node_budgets")
        if budgets is not None and not isinstance(budgets, list):
            raise ChipError(
                "chip spec field 'geometry.node_budgets' must be a list of integers"
            )
        try:
            return cls(
                name=name,
                coords=tuple((float(x), float(y)) for x, y in nodes),
                edges=tuple((int(a), int(b)) for a, b, _ in edges),
                bandwidths=tuple(int(w) for _, _, w in edges),
                node_budgets=tuple(int(b) for b in budgets) if budgets is not None else None,
            )
        except (TypeError, ValueError) as exc:
            raise ChipError(f"malformed chip spec geometry: {exc}") from exc

    def describe(self) -> str:
        """Short human-readable summary for :meth:`Chip.describe`."""
        return f"{self.name} graph, {self.num_nodes} tiles, {self.num_edges} edges"


# ----------------------------------------------------------------- generators
def square_lattice(rows: int, cols: int, bandwidth: int = 1) -> TileGraph:
    """A ``rows × cols`` grid graph — the paper's lattice as a tile graph.

    Note square :class:`~repro.chip.chip.Chip` objects keep the legacy
    corridor representation for bit-compatibility; this constructor exists so
    the square lattice is *also* expressible in the graph core (comparisons,
    tests, custom specs).
    """
    if rows < 1 or cols < 1:
        raise ChipError("square lattice needs at least a 1x1 grid")
    coords = tuple((float(c), float(r)) for r in range(rows) for c in range(cols))
    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows:
                edges.append((node, node + cols))
    return TileGraph(
        name=f"square_{rows}x{cols}",
        coords=coords,
        edges=tuple(edges),
        bandwidths=tuple([int(bandwidth)] * len(edges)),
    )


def hex_lattice(rows: int, cols: int, bandwidth: int = 1) -> TileGraph:
    """A brick-wall honeycomb lattice: degree <= 3 everywhere.

    Every row is a horizontal chain; vertical rungs connect ``(r, c)`` to
    ``(r + 1, c)`` only where ``r + c`` is even, which tiles the plane with
    hexagonal cells (drawn as bricks).
    """
    if rows < 1 or cols < 2:
        raise ChipError("hex lattice needs at least 1 row and 2 columns")
    coords = tuple((float(c), float(r)) for r in range(rows) for c in range(cols))
    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                edges.append((node, node + 1))
            if r + 1 < rows and (r + c) % 2 == 0:
                edges.append((node, node + cols))
    return TileGraph(
        name=f"hex_{rows}x{cols}",
        coords=coords,
        edges=tuple(edges),
        bandwidths=tuple([int(bandwidth)] * len(edges)),
    )


def heavy_hex(rows: int, cols: int, bandwidth: int = 1) -> TileGraph:
    """A heavy-hex lattice: the hex lattice with every edge subdivided.

    Mid-edge nodes (degree 2) model the flag/coupler tiles of heavy-hex
    devices; original hex nodes keep degree <= 3.  Node ids: the ``rows*cols``
    hex nodes first, then one mid node per hex edge in the hex lattice's
    canonical edge order.
    """
    base = hex_lattice(rows, cols, bandwidth)
    coords = list(base.coords)
    edges: list[tuple[int, int]] = []
    bandwidths: list[int] = []
    for (a, b), lanes in zip(base.edges, base.bandwidths):
        mid = len(coords)
        (ax, ay), (bx, by) = base.coords[a], base.coords[b]
        coords.append(((ax + bx) / 2.0, (ay + by) / 2.0))
        edges.extend([(a, mid), (mid, b)])
        bandwidths.extend([lanes, lanes])
    return TileGraph(
        name=f"heavy_hex_{rows}x{cols}",
        coords=tuple(coords),
        edges=tuple(edges),
        bandwidths=tuple(bandwidths),
    )


def degree3_sparse(num_tiles: int, seed: int = 0, bandwidth: int = 1) -> TileGraph:
    """A connected random graph with maximum degree 3 (seeded, deterministic).

    Starts from a seeded-random Hamiltonian path (guaranteeing connectivity,
    degree <= 2) and adds extra edges between low-degree nodes until roughly
    ``num_tiles / 2`` extras are placed or no candidate pair remains with
    both degrees below 3.  Nodes sit on a circle for rendering.
    """
    if num_tiles < 2:
        raise ChipError("sparse graph needs at least 2 tiles")
    rng = random.Random(seed)
    order = list(range(num_tiles))
    rng.shuffle(order)
    edges = {tuple(sorted((order[i], order[i + 1]))) for i in range(num_tiles - 1)}
    degree = [0] * num_tiles
    for a, b in sorted(edges):
        degree[a] += 1
        degree[b] += 1
    candidates = [
        (a, b) for a in range(num_tiles) for b in range(a + 1, num_tiles)
    ]
    rng.shuffle(candidates)
    extras_wanted = num_tiles // 2
    extras = 0
    for a, b in candidates:
        if extras >= extras_wanted:
            break
        if (a, b) in edges or degree[a] >= 3 or degree[b] >= 3:
            continue
        edges.add((a, b))
        degree[a] += 1
        degree[b] += 1
        extras += 1
    coords = tuple(
        (
            round(math.cos(2.0 * math.pi * i / num_tiles) * num_tiles / 2.0, 3),
            round(math.sin(2.0 * math.pi * i / num_tiles) * num_tiles / 2.0, 3),
        )
        for i in range(num_tiles)
    )
    ordered = tuple(sorted(edges))
    return TileGraph(
        name=f"sparse3_n{num_tiles}_s{seed}",
        coords=coords,
        edges=ordered,
        bandwidths=tuple([int(bandwidth)] * len(ordered)),
    )


#: Built-in geometry families accepted by :func:`builtin_tile_graph` (CLI
#: ``--geometry``): ``heavy_hex:RxC``, ``hex:RxC``, ``square:RxC``,
#: ``sparse3:N[:SEED]``.
BUILTIN_GEOMETRIES = ("heavy_hex", "hex", "square", "sparse3")


def builtin_tile_graph(spec: str) -> TileGraph:
    """Parse a built-in geometry spec string like ``heavy_hex:3x3``.

    Formats: ``heavy_hex:RxC``, ``hex:RxC``, ``square:RxC``,
    ``sparse3:N`` or ``sparse3:N:SEED``.  Raises :class:`ChipError` with the
    accepted grammar on anything else.
    """
    usage = (
        f"expected one of {', '.join(BUILTIN_GEOMETRIES)} as "
        "'heavy_hex:RxC', 'hex:RxC', 'square:RxC', or 'sparse3:N[:SEED]'"
    )
    parts = spec.split(":")
    family = parts[0]
    try:
        if family in ("heavy_hex", "hex", "square") and len(parts) == 2:
            rows_text, _, cols_text = parts[1].partition("x")
            rows, cols = int(rows_text), int(cols_text)
            if family == "heavy_hex":
                return heavy_hex(rows, cols)
            if family == "hex":
                return hex_lattice(rows, cols)
            return square_lattice(rows, cols)
        if family == "sparse3" and len(parts) in (2, 3):
            num_tiles = int(parts[1])
            seed = int(parts[2]) if len(parts) == 3 else 0
            return degree3_sparse(num_tiles, seed=seed)
    except ValueError as exc:
        raise ChipError(f"bad geometry spec {spec!r}: {usage}") from exc
    raise ChipError(f"bad geometry spec {spec!r}: {usage}")
