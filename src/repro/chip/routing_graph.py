"""Corridor routing graph built from a :class:`~repro.chip.chip.Chip`.

Nodes
-----
* **Junction nodes** ``("j", r, c)`` — the crossing of horizontal corridor
  ``r`` (``0..tile_rows``) and vertical corridor ``c`` (``0..tile_cols``).
* **Tile nodes** ``("t", i, j)`` — the logical tile slot at row ``i``,
  column ``j``.  Tile nodes are only legal as path *endpoints*: a braiding /
  Bell-state path may start and end at a tile but never pass through one.

Edges
-----
* Horizontal corridor segments ``("j", r, c) – ("j", r, c+1)`` with capacity
  equal to the bandwidth of horizontal corridor ``r``.
* Vertical corridor segments ``("j", r, c) – ("j", r+1, c)`` with capacity
  equal to the bandwidth of vertical corridor ``c``.
* Tile access edges between a tile node and its four corner junctions.

Capacities are *per clock cycle*: a set of CNOT paths executes simultaneously
iff, for every edge, the number of paths using the edge does not exceed the
edge capacity.  With all bandwidths equal to one this reduces to the
edge-disjointness constraint of prior work; larger bandwidths model the
paper's software-defined channels.

Defects
-------
The graph is built from the chip's *effective* capacities: dead tiles get no
node (and no access edges), disabled corridor segments are omitted, and
per-segment bandwidth overrides replace the corridor's nominal capacity.
Both routing engines and the validator share this graph, so a defect declared
on the chip is honored everywhere without further plumbing.

Graph chips
-----------
When the chip carries a :class:`~repro.chip.tile_graph.TileGraph`, the
corridor grid is replaced by one junction ``("j", i, 0)`` per tile-graph
node: corridor edges connect junctions along the tile-graph edges at their
defect-adjusted capacities, and each alive tile ``("t", i, 0)`` attaches to
its own junction only.  Everything downstream — canonical path search, the
fast router's landmark tables, :class:`CompactRoutingGraph` — consumes the
same node/edge/capacity interface and needs no topology awareness.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.chip.chip import Chip, TileSlot
from repro.chip.defects import segment_endpoints
from repro.errors import ChipError, RoutingError

#: Node type alias: ("j", row, col) for junctions, ("t", row, col) for tiles.
Node = tuple[str, int, int]
#: Canonical undirected edge key (the two endpoints, sorted).
EdgeKey = tuple[Node, Node]


def junction(row: int, col: int) -> Node:
    """The junction node at corridor crossing ``(row, col)``."""
    return ("j", row, col)


def tile_node(row: int, col: int) -> Node:
    """The tile node for tile slot ``(row, col)``."""
    return ("t", row, col)


def tile_node_for(slot: TileSlot) -> Node:
    """The tile node for a :class:`TileSlot`."""
    return tile_node(slot.row, slot.col)


def edge_key(a: Node, b: Node) -> EdgeKey:
    """Canonical (order-independent) key for the undirected edge ``{a, b}``."""
    return (a, b) if a <= b else (b, a)


#: Capacity of a tile-access edge.  A tile participates in at most one CNOT
#: per cycle, but the double defect model may attach both an entry and an
#: ancilla braid to the same tile, so two lanes are allowed at the boundary.
TILE_ACCESS_CAPACITY = 2


class RoutingGraph:
    """Undirected capacitated graph over junction and tile nodes."""

    def __init__(self, chip: Chip):
        self._chip = chip
        self._adjacency: dict[Node, list[Node]] = {}
        self._capacity: dict[EdgeKey, int] = {}
        self._junction_capacity: dict[Node, int] = {}
        self._build()

    # ----------------------------------------------------------- construction
    def _build(self) -> None:
        chip = self._chip
        dead = chip.defects.dead_set()
        if chip.tile_graph is not None:
            self._build_from_tile_graph(dead)
            return
        for r in range(chip.tile_rows + 1):
            for c in range(chip.tile_cols + 1):
                self._adjacency.setdefault(junction(r, c), [])
                self._junction_capacity[junction(r, c)] = 0
        # Corridor segments, at their defect-adjusted effective capacities.
        # Disabled segments (capacity 0) are omitted entirely; a junction's
        # through-capacity is the best lane count among its enabled segments,
        # which reduces to max(bh[row], bv[col]) on a pristine chip.
        for key, capacity in chip.corridor_segments():
            if capacity < 1:
                continue
            (_, ra, ca), (_, rb, cb) = segment_endpoints(key)
            a, b = junction(ra, ca), junction(rb, cb)
            self._add_edge(a, b, capacity)
            for node in (a, b):
                self._junction_capacity[node] = max(self._junction_capacity[node], capacity)
        # Tile access edges (dead tiles get no node and no edges).
        for i in range(chip.tile_rows):
            for j in range(chip.tile_cols):
                if (i, j) in dead:
                    continue
                tile = tile_node(i, j)
                self._adjacency.setdefault(tile, [])
                for corner in (junction(i, j), junction(i, j + 1), junction(i + 1, j), junction(i + 1, j + 1)):
                    self._add_edge(tile, corner, TILE_ACCESS_CAPACITY)

    def _build_from_tile_graph(self, dead) -> None:
        chip = self._chip
        graph = chip.tile_graph
        for i in range(graph.num_nodes):
            self._adjacency.setdefault(junction(i, 0), [])
            self._junction_capacity[junction(i, 0)] = 0
        # Corridor edges along the tile-graph edges, defect-adjusted exactly
        # like square corridor segments; a junction's through-capacity is the
        # best lane count among its enabled incident edges.
        for key, capacity in chip.corridor_segments():
            if capacity < 1:
                continue
            a, b = segment_endpoints(key)
            self._add_edge(a, b, capacity)
            for node in (a, b):
                self._junction_capacity[node] = max(self._junction_capacity[node], capacity)
        # Each alive tile reaches the corridor network through its own junction.
        for i in range(graph.num_nodes):
            if (i, 0) in dead:
                continue
            tile = tile_node(i, 0)
            self._adjacency.setdefault(tile, [])
            self._add_edge(tile, junction(i, 0), TILE_ACCESS_CAPACITY)

    def _add_edge(self, a: Node, b: Node, capacity: int) -> None:
        if capacity < 1:
            raise ChipError(f"edge {a}-{b} must have positive capacity")
        key = edge_key(a, b)
        if key in self._capacity:
            return
        self._capacity[key] = capacity
        self._adjacency.setdefault(a, []).append(b)
        self._adjacency.setdefault(b, []).append(a)

    # ---------------------------------------------------------------- queries
    @property
    def chip(self) -> Chip:
        """The chip this graph was built from."""
        return self._chip

    def node_capacity(self, node: Node) -> int:
        """Number of distinct paths that may pass *through* ``node`` in one cycle.

        The paper requires simultaneously executed CNOT paths to be
        non-intersecting, i.e. vertex-disjoint at unit bandwidth.  A junction
        where a horizontal corridor of bandwidth ``bh`` crosses a vertical
        corridor of bandwidth ``bv`` provides ``max(bh, bv)`` disjoint lanes
        through the crossing; with defects, only the *enabled* incident
        segments (at their effective capacities) count.  Tile nodes are only
        path endpoints, so their capacity is effectively unbounded.
        """
        if self.is_tile(node):
            return 1 << 30
        return self._junction_capacity[node]

    @property
    def nodes(self) -> tuple[Node, ...]:
        """All nodes (junctions then tiles, in insertion order)."""
        return tuple(self._adjacency)

    @property
    def edges(self) -> tuple[EdgeKey, ...]:
        """All undirected edge keys."""
        return tuple(self._capacity)

    @property
    def edge_capacities(self) -> dict[EdgeKey, int]:
        """The live capacity map, keyed by canonical edge key.  Do not mutate.

        Bulk accessor for :class:`~repro.chip.graph_arrays.CompactRoutingGraph`,
        which reads every edge once at compile time; per-edge
        :meth:`capacity` calls would dominate its constructor.
        """
        return self._capacity

    @property
    def junction_capacities(self) -> dict[Node, int]:
        """The live junction through-capacity map.  Do not mutate.

        Bulk counterpart of :meth:`node_capacity` for junction nodes (tiles
        are not in the map; their capacity is the unbounded sentinel).
        """
        return self._junction_capacity

    def capacity(self, a: Node, b: Node) -> int:
        """Capacity of the edge between ``a`` and ``b``."""
        try:
            return self._capacity[edge_key(a, b)]
        except KeyError as exc:
            raise RoutingError(f"no edge between {a} and {b}") from exc

    def has_edge(self, a: Node, b: Node) -> bool:
        """True when the graph contains the edge ``{a, b}``."""
        return edge_key(a, b) in self._capacity

    def neighbors(self, node: Node) -> tuple[Node, ...]:
        """Adjacent nodes of ``node``."""
        try:
            return tuple(self._adjacency[node])
        except KeyError as exc:
            raise RoutingError(f"unknown node {node}") from exc

    def is_tile(self, node: Node) -> bool:
        """True for tile nodes."""
        return node[0] == "t"

    def tile_nodes(self) -> tuple[Node, ...]:
        """All alive tile nodes in row-major order (dead tiles are not nodes)."""
        dead = self._chip.defects.dead_set()
        return tuple(
            tile_node(i, j)
            for i in range(self._chip.tile_rows)
            for j in range(self._chip.tile_cols)
            if (i, j) not in dead
        )

    def corridor_of(self, a: Node, b: Node) -> tuple[str, int] | None:
        """Identify the corridor an edge belongs to.

        Returns ``("h", r)`` for a segment of horizontal corridor ``r``,
        ``("v", c)`` for a vertical corridor segment, and ``None`` for tile
        access edges.  Graph chips return ``("e", index)`` with the tile-graph
        edge index.  Used by bandwidth adjusting to attribute path load to
        corridors.
        """
        if self.is_tile(a) or self.is_tile(b):
            return None
        if self._chip.tile_graph is not None:
            index = self._chip.tile_graph.edge_index(a[1], b[1])
            if index is None:  # pragma: no cover - adjacency guarantees an edge
                raise RoutingError(f"{a} and {b} are not adjacent junctions")
            return ("e", index)
        (_, ra, ca), (_, rb, cb) = a, b
        if ra == rb:
            return ("h", ra)
        if ca == cb:
            return ("v", ca)
        raise RoutingError(f"{a} and {b} are not adjacent junctions")  # pragma: no cover

    def path_edges(self, path: Iterable[Node]) -> list[EdgeKey]:
        """Edge keys traversed by a node path, validating adjacency."""
        nodes = list(path)
        edges: list[EdgeKey] = []
        for a, b in zip(nodes, nodes[1:]):
            if not self.has_edge(a, b):
                raise RoutingError(f"path step {a} -> {b} is not an edge")
            edges.append(edge_key(a, b))
        return edges
