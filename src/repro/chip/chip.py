"""The :class:`Chip` model: a 2-D tile array with bandwidth-annotated channels.

A chip ``L_{l×l}`` is summarised by:

* the surface-code model (double defect / lattice surgery) and code distance,
* the tile array dimensions (``tile_rows × tile_cols`` logical tile slots),
* one *horizontal corridor* between/around each tile row (``tile_rows + 1``)
  and one *vertical corridor* between/around each tile column
  (``tile_cols + 1``), each with an integer bandwidth (number of lanes),
* the physical side length, from which the per-axis channel-width budget is
  derived (see :mod:`repro.chip.geometry`).

The corridors carry the communication; their bandwidths are exactly what the
*bandwidth adjusting* step of Ecmas redistributes (within the physical
budget), and the chip bandwidth of the paper is the minimum over corridors.

Graph chips
-----------
A chip may instead carry an explicit :class:`~repro.chip.tile_graph.TileGraph`
(heavy-hex, degree-3, sparse layouts — see :mod:`repro.chip.tile_graph`).
Graph chips address tile slot ``i`` as ``TileSlot(i, 0)`` — ``tile_rows`` is
the node count and ``tile_cols`` is 1 — and replace the corridor vectors with
per-edge bandwidths: segments are keyed ``("e", a, b)``, distances come from
BFS hops instead of Manhattan geometry (:meth:`Chip.slot_distance`), and
bandwidth adjusting redistributes lanes per edge under per-node width budgets
(:meth:`Chip.with_edge_bandwidths`).  Square chips are untouched by all of
this: their representation, validation, and every derived quantity are
bit-identical to the pre-graph model.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, replace

from repro.chip import geometry
from repro.chip.defects import NO_DEFECTS, DefectSpec, SegmentKey
from repro.chip.geometry import SurfaceCodeModel
from repro.chip.tile_graph import TileGraph
from repro.errors import ChipError


@dataclass(frozen=True)
class TileSlot:
    """A position in the logical tile array (row-major)."""

    row: int
    col: int

    def manhattan_distance(self, other: "TileSlot") -> int:
        """Grid distance between two tile slots."""
        return abs(self.row - other.row) + abs(self.col - other.col)


@dataclass(frozen=True)
class Chip:
    """An immutable chip description.

    Use the factory class methods (:meth:`minimum_viable`, :meth:`four_x`,
    :meth:`for_bandwidth`, :meth:`sufficient`) rather than the constructor;
    they perform the physical-qubit accounting of the paper.
    """

    model: SurfaceCodeModel
    code_distance: int
    tile_rows: int
    tile_cols: int
    h_bandwidths: tuple[int, ...]
    v_bandwidths: tuple[int, ...]
    side: int
    #: Fabrication defects: dead tiles and degraded / disabled corridor
    #: segments.  Defaults to the pristine chip; see :mod:`repro.chip.defects`.
    defects: DefectSpec = NO_DEFECTS
    #: Explicit tile-graph geometry, or ``None`` for the square lattice.
    #: Graph chips set ``tile_rows = num_nodes``, ``tile_cols = 1`` and leave
    #: the corridor vectors empty; build them with :meth:`from_tile_graph`.
    tile_graph: TileGraph | None = None

    def __post_init__(self) -> None:
        if self.tile_graph is not None:
            if self.tile_rows != self.tile_graph.num_nodes or self.tile_cols != 1:
                raise ChipError(
                    f"graph chip must have tile_rows={self.tile_graph.num_nodes} and "
                    f"tile_cols=1, got {self.tile_rows}x{self.tile_cols}"
                )
            if self.h_bandwidths or self.v_bandwidths:
                raise ChipError(
                    "graph chip carries bandwidths on its tile-graph edges; "
                    "corridor vectors must be empty"
                )
            self.defects.validate_for_graph(self.tile_graph)
            return
        if self.tile_rows < 1 or self.tile_cols < 1:
            raise ChipError("chip needs at least a 1x1 tile array")
        if len(self.h_bandwidths) != self.tile_rows + 1:
            raise ChipError(
                f"expected {self.tile_rows + 1} horizontal corridors, got {len(self.h_bandwidths)}"
            )
        if len(self.v_bandwidths) != self.tile_cols + 1:
            raise ChipError(
                f"expected {self.tile_cols + 1} vertical corridors, got {len(self.v_bandwidths)}"
            )
        if any(b < 1 for b in self.h_bandwidths + self.v_bandwidths):
            raise ChipError("every corridor must have bandwidth at least 1")
        self.defects.validate_for(self.tile_rows, self.tile_cols)

    # ------------------------------------------------------------- factories
    @classmethod
    def minimum_viable(cls, model: SurfaceCodeModel, num_qubits: int, code_distance: int) -> "Chip":
        """The paper's minimum viable chip for ``num_qubits`` logical qubits."""
        side = geometry.minimum_viable_side(model, num_qubits, code_distance)
        return cls.from_side(model, num_qubits, code_distance, side)

    @classmethod
    def four_x(cls, model: SurfaceCodeModel, num_qubits: int, code_distance: int) -> "Chip":
        """The paper's "4x" resource configuration."""
        side = geometry.four_x_side(model, num_qubits, code_distance)
        return cls.from_side(model, num_qubits, code_distance, side)

    @classmethod
    def for_bandwidth(
        cls, model: SurfaceCodeModel, num_qubits: int, code_distance: int, bandwidth: int
    ) -> "Chip":
        """Smallest chip whose every corridor has at least ``bandwidth`` lanes."""
        side = geometry.side_for_bandwidth(model, num_qubits, code_distance, bandwidth)
        chip = cls.from_side(model, num_qubits, code_distance, side)
        if chip.bandwidth < bandwidth:
            # The uniform accounting rounds down; bump the side until satisfied.
            while chip.bandwidth < bandwidth:
                side += code_distance
                chip = cls.from_side(model, num_qubits, code_distance, side)
        return chip

    @classmethod
    def sufficient(
        cls, model: SurfaceCodeModel, num_qubits: int, code_distance: int, parallelism: int
    ) -> "Chip":
        """A chip whose communication capacity covers the circuit parallelism.

        This is the configuration Ecmas-ReSu assumes (Section IV-B2): the
        bandwidth ``b`` satisfies ``⌊(b-1)/2⌋ + 3 ≥ PM``.
        """
        bandwidth = geometry.sufficient_bandwidth(parallelism)
        return cls.for_bandwidth(model, num_qubits, code_distance, bandwidth)

    @classmethod
    def from_side(
        cls, model: SurfaceCodeModel, num_qubits: int, code_distance: int, side: int
    ) -> "Chip":
        """Build a chip of physical side ``side`` hosting ``num_qubits`` logical qubits."""
        tiles_per_side = int(math.ceil(math.sqrt(num_qubits)))
        bandwidths = geometry.uniform_bandwidths(model, code_distance, tiles_per_side, side)
        return cls(
            model=model,
            code_distance=code_distance,
            tile_rows=tiles_per_side,
            tile_cols=tiles_per_side,
            h_bandwidths=tuple(bandwidths),
            v_bandwidths=tuple(bandwidths),
            side=side,
        )

    @classmethod
    def from_tile_graph(
        cls,
        model: SurfaceCodeModel,
        code_distance: int,
        graph: TileGraph,
        defects: DefectSpec = NO_DEFECTS,
    ) -> "Chip":
        """Build a chip over an explicit tile-graph geometry.

        The physical ``side`` is an accounting figure (physical-qubit counts
        in reports): the side of the smallest square that fits the graph's
        tiles plus channel width for the widest edge, mirroring the square
        chips' accounting.
        """
        lane = geometry.lane_width(model, code_distance)
        core = geometry.tile_side(model, code_distance)
        tiles_per_side = int(math.ceil(math.sqrt(graph.num_nodes)))
        widest = max(graph.bandwidths) if graph.bandwidths else 1
        side = tiles_per_side * core + int(math.ceil((tiles_per_side + 1) * widest * lane))
        return cls(
            model=model,
            code_distance=code_distance,
            tile_rows=graph.num_nodes,
            tile_cols=1,
            h_bandwidths=(),
            v_bandwidths=(),
            side=side,
            defects=defects,
            tile_graph=graph,
        )

    @classmethod
    def with_tile_array(
        cls,
        model: SurfaceCodeModel,
        code_distance: int,
        tile_rows: int,
        tile_cols: int,
        bandwidth: int = 1,
    ) -> "Chip":
        """Explicit tile-array constructor with a uniform bandwidth (for tests)."""
        lane = geometry.lane_width(model, code_distance)
        core = geometry.tile_side(model, code_distance)
        side = max(tile_rows, tile_cols) * core + int(
            math.ceil((max(tile_rows, tile_cols) + 1) * bandwidth * lane)
        )
        return cls(
            model=model,
            code_distance=code_distance,
            tile_rows=tile_rows,
            tile_cols=tile_cols,
            h_bandwidths=tuple([bandwidth] * (tile_rows + 1)),
            v_bandwidths=tuple([bandwidth] * (tile_cols + 1)),
            side=side,
        )

    # ------------------------------------------------------------- properties
    @property
    def num_tile_slots(self) -> int:
        """Number of logical tile positions on the chip."""
        return self.tile_rows * self.tile_cols

    @property
    def bandwidth(self) -> int:
        """The chip bandwidth: the minimum capacity over all enabled corridor segments.

        On a pristine chip this is the minimum corridor bandwidth of the
        paper; with defects, per-segment overrides lower it and disabled
        segments are excluded (a fully disconnected corridor grid reports 0).
        """
        if self.tile_graph is None and self.defects.is_empty:
            return min(min(self.h_bandwidths), min(self.v_bandwidths))
        capacities = [
            capacity for _key, capacity in self.corridor_segments() if capacity > 0
        ]
        return min(capacities) if capacities else 0

    @property
    def communication_capacity(self) -> int:
        """Chip communication capacity ``⌊(b-1)/2⌋ + 3`` (Theorem 2).

        A defective chip whose corridor grid is fully disabled has no
        communication capacity at all.
        """
        bandwidth = self.bandwidth
        if bandwidth < 1:
            return 0
        return geometry.communication_capacity(bandwidth)

    @property
    def physical_qubits(self) -> int:
        """Total number of physical qubits of the square chip."""
        return geometry.total_physical_qubits(self.side)

    def tile_slots(self) -> list[TileSlot]:
        """All tile slots in row-major order."""
        return [TileSlot(r, c) for r in range(self.tile_rows) for c in range(self.tile_cols)]

    def contains_slot(self, slot: TileSlot) -> bool:
        """True when ``slot`` lies within the tile array."""
        return 0 <= slot.row < self.tile_rows and 0 <= slot.col < self.tile_cols

    # ---------------------------------------------------------------- defects
    def with_defects(self, defects: DefectSpec) -> "Chip":
        """Return a chip with ``defects`` attached (replacing any existing spec)."""
        return replace(self, defects=defects)

    def is_dead_slot(self, slot: TileSlot) -> bool:
        """True when ``slot`` is a dead tile."""
        return (slot.row, slot.col) in self.defects.dead_set()

    def alive_tile_slots(self) -> list[TileSlot]:
        """All non-dead tile slots in row-major order."""
        dead = self.defects.dead_set()
        return [slot for slot in self.tile_slots() if (slot.row, slot.col) not in dead]

    @property
    def num_alive_tile_slots(self) -> int:
        """Number of tile slots that can host a logical qubit."""
        return self.num_tile_slots - len(self.defects.dead_tiles)

    def segment_capacity(self, key: SegmentKey) -> int:
        """Effective lane count of one corridor segment (0 when disabled).

        The nominal capacity is the corridor's bandwidth; per-segment
        overrides and disabled segments from :attr:`defects` take precedence.
        Overrides model *degraded* hardware, so they are clamped to the
        nominal bandwidth — a spec cannot grant a segment phantom lanes the
        physical corridor does not have.
        """
        kind, r, c = key
        if key in self.defects.disabled_set():
            return 0
        if kind == "e":
            index = self.tile_graph.edge_index(r, c) if self.tile_graph is not None else None
            if index is None:
                raise ChipError(f"chip has no tile-graph edge ({r}, {c})")
            nominal = self.tile_graph.bandwidths[index]
        else:
            nominal = self.h_bandwidths[r] if kind == "h" else self.v_bandwidths[c]
        override = self.defects.override_for(key)
        if override is not None:
            return min(override, nominal)
        return nominal

    def corridor_segments(self) -> list[tuple[SegmentKey, int]]:
        """Every corridor segment with its effective capacity (including 0).

        On graph chips a segment is a tile-graph edge, keyed ``("e", a, b)``
        in the graph's canonical edge order.
        """
        if self.tile_graph is not None:
            return [
                (("e", a, b), self.segment_capacity(("e", a, b)))
                for a, b in self.tile_graph.edges
            ]
        return [
            (key, self.segment_capacity(key))
            for key in (
                [("h", r, c) for r in range(self.tile_rows + 1) for c in range(self.tile_cols)]
                + [("v", r, c) for r in range(self.tile_rows) for c in range(self.tile_cols + 1)]
            )
        ]

    # ------------------------------------------------------ bandwidth adjusting
    def lane_budget_per_axis(self) -> tuple[int, int]:
        """Maximum total lanes per axis (horizontal corridors, vertical corridors).

        Bandwidth adjusting may redistribute lanes between corridors of the
        same axis but may not exceed these totals, which reflect the physical
        width available on the chip.
        """
        if self.tile_graph is not None:
            raise ChipError(
                "graph chips budget lanes per node, not per axis; "
                "see TileGraph.effective_node_budgets"
            )
        h_budget = geometry.axis_budget(self.model, self.code_distance, self.tile_rows, self.side)
        v_budget = geometry.axis_budget(self.model, self.code_distance, self.tile_cols, self.side)
        h_total = max(h_budget.max_total_lanes(), sum(self.h_bandwidths))
        v_total = max(v_budget.max_total_lanes(), sum(self.v_bandwidths))
        return h_total, v_total

    def with_bandwidths(
        self, h_bandwidths: list[int] | tuple[int, ...], v_bandwidths: list[int] | tuple[int, ...]
    ) -> "Chip":
        """Return a chip with redistributed corridor bandwidths.

        Raises :class:`ChipError` if the requested layout exceeds the physical
        lane budget of either axis or drops a corridor below one lane.
        """
        if self.tile_graph is not None:
            raise ChipError("graph chips redistribute lanes with with_edge_bandwidths")
        h_bandwidths = tuple(int(b) for b in h_bandwidths)
        v_bandwidths = tuple(int(b) for b in v_bandwidths)
        h_total, v_total = self.lane_budget_per_axis()
        if len(h_bandwidths) != self.tile_rows + 1 or len(v_bandwidths) != self.tile_cols + 1:
            raise ChipError("bandwidth vectors must match the corridor counts")
        if any(b < 1 for b in h_bandwidths + v_bandwidths):
            raise ChipError("every corridor must keep at least one lane")
        if sum(h_bandwidths) > h_total:
            raise ChipError(
                f"horizontal lane budget exceeded: {sum(h_bandwidths)} > {h_total}"
            )
        if sum(v_bandwidths) > v_total:
            raise ChipError(
                f"vertical lane budget exceeded: {sum(v_bandwidths)} > {v_total}"
            )
        return replace(self, h_bandwidths=h_bandwidths, v_bandwidths=v_bandwidths)

    def with_edge_bandwidths(self, bandwidths: list[int] | tuple[int, ...]) -> "Chip":
        """Graph-chip counterpart of :meth:`with_bandwidths`: per-edge lanes.

        ``bandwidths`` is parallel to the tile graph's canonical edge order.
        Raises :class:`ChipError` when the chip is square, when an edge drops
        below one lane, or when a node's incident total exceeds its width
        budget (the per-node generalisation of the axis lane budget).
        """
        if self.tile_graph is None:
            raise ChipError("square chips redistribute lanes with with_bandwidths")
        return replace(self, tile_graph=self.tile_graph.with_bandwidths(bandwidths))

    def slot_distance(self, a: TileSlot, b: TileSlot) -> int:
        """Placement distance between two tile slots.

        Square chips use Manhattan distance (the paper's metric, unchanged).
        Graph chips use the BFS hop distance between the slots' tiles over
        the defect-adjusted routing graph, precomputed once per chip via the
        :mod:`repro.chip.graph_arrays` kernels; unreachable or dead slots
        report a large finite sentinel so placement costs stay comparable.
        """
        if self.tile_graph is None:
            return a.manhattan_distance(b)
        if a.row == b.row and a.col == b.col:
            return 0
        return _graph_hop_distances(self)[a.row][b.row]

    def scaled_bandwidth(self, bandwidth: int) -> "Chip":
        """Return a copy with every corridor set to ``bandwidth`` lanes (for sweeps)."""
        if self.tile_graph is not None:
            graph = replace(
                self.tile_graph,
                bandwidths=tuple([int(bandwidth)] * self.tile_graph.num_edges),
                node_budgets=None,
            )
            return replace(self, tile_graph=graph)
        lane = geometry.lane_width(self.model, self.code_distance)
        core = geometry.tile_side(self.model, self.code_distance)
        tiles = max(self.tile_rows, self.tile_cols)
        side = tiles * core + int(math.ceil((tiles + 1) * bandwidth * lane))
        return Chip(
            model=self.model,
            code_distance=self.code_distance,
            tile_rows=self.tile_rows,
            tile_cols=self.tile_cols,
            h_bandwidths=tuple([bandwidth] * (self.tile_rows + 1)),
            v_bandwidths=tuple([bandwidth] * (self.tile_cols + 1)),
            side=max(side, self.side),
            defects=self.defects,
        )

    def describe(self) -> str:
        """One-line human-readable description used by reports."""
        if self.tile_graph is not None:
            text = (
                f"{self.model.value} chip (d={self.code_distance}), "
                f"{self.tile_graph.describe()}, bandwidth={self.bandwidth}, "
                f"capacity={self.communication_capacity}"
            )
        else:
            text = (
                f"{self.model.value} chip L{self.side}x{self.side} (d={self.code_distance}), "
                f"{self.tile_rows}x{self.tile_cols} tiles, bandwidth={self.bandwidth}, "
                f"capacity={self.communication_capacity}"
            )
        if not self.defects.is_empty:
            text += f", defects: {self.defects.describe()}"
        return text


#: Finite "effectively unreachable" distance for graph chips: larger than any
#: real hop distance yet safe to sum in placement costs.
UNREACHABLE_DISTANCE = 1 << 20


@functools.lru_cache(maxsize=8)
def _graph_hop_distances(chip: Chip) -> tuple[tuple[int, ...], ...]:
    """All-pairs tile hop distances for a graph chip (cached per chip value).

    Runs one BFS per tile slot over the defect-adjusted routing graph using
    :meth:`~repro.chip.graph_arrays.CompactRoutingGraph.hop_distances_from`
    seeded at each slot's junction — on graph chips a slot's junction hop
    distance is exactly the tile-graph hop distance.  Dead or unreachable
    slots report :data:`UNREACHABLE_DISTANCE`.
    """
    from repro.chip.graph_arrays import CompactRoutingGraph
    from repro.chip.routing_graph import RoutingGraph

    compact = CompactRoutingGraph(RoutingGraph(chip))
    n = chip.tile_rows
    rows: list[tuple[int, ...]] = []
    for source in range(n):
        source_id = compact.node_id.get(("j", source, 0))
        if source_id is None:
            rows.append(tuple([UNREACHABLE_DISTANCE] * n))
            continue
        table = compact.hop_distances_from(source_id)
        row = []
        for target in range(n):
            target_id = compact.node_id.get(("j", target, 0))
            hops = int(table[target_id]) if target_id is not None else -1
            row.append(hops if hops >= 0 else UNREACHABLE_DISTANCE)
        rows.append(tuple(row))
    return tuple(rows)
