"""Defect specifications: dead tiles and degraded / disabled corridor segments.

Real superconducting devices are not pristine rectangles: fabrication defects
kill individual qubits and degrade couplers.  On the tile-and-corridor
abstraction of this reproduction a defect shows up as either

* a **dead tile slot** — the tile cannot host a logical qubit and its access
  edges disappear from the routing graph, or
* a **degraded corridor segment** — one junction-to-junction segment of a
  corridor carries fewer lanes than the corridor's nominal bandwidth
  (capacity ``0`` removes the segment entirely).

A :class:`DefectSpec` is an immutable, hashable value attached to a
:class:`~repro.chip.chip.Chip`; every consumer (routing graph, placement,
validator, cache fingerprints) derives its view from the chip, so a defect
declared once is honored end-to-end.

Segment keys
------------
Corridor segments are addressed as ``(kind, index, offset)``:

* ``("h", r, c)`` — the segment of horizontal corridor ``r`` between
  junctions ``(r, c)`` and ``(r, c + 1)``, with ``0 <= r <= tile_rows`` and
  ``0 <= c < tile_cols``;
* ``("v", r, c)`` — the segment of vertical corridor ``c`` between junctions
  ``(r, c)`` and ``(r + 1, c)``, with ``0 <= r < tile_rows`` and
  ``0 <= c <= tile_cols``.

Graph chips (:attr:`~repro.chip.chip.Chip.tile_graph` set) instead address
segments as ``("e", a, b)`` — the tile-graph edge between nodes ``a < b`` —
and dead tiles as ``(node, 0)``.  The two families never mix: ``"e"`` keys
are invalid on square chips and ``"h"``/``"v"`` keys on graph chips.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ChipError

#: ``(kind, row, col)`` address of one corridor segment (see module docstring).
SegmentKey = tuple[str, int, int]


def segment_endpoints(key: SegmentKey) -> tuple[tuple[str, int, int], tuple[str, int, int]]:
    """The two junction nodes a corridor segment connects."""
    kind, r, c = key
    if kind == "h":
        return ("j", r, c), ("j", r, c + 1)
    if kind == "v":
        return ("j", r, c), ("j", r + 1, c)
    if kind == "e":
        # Tile-graph edge between nodes r and c: one junction per node.
        return ("j", r, 0), ("j", c, 0)
    raise ChipError(f"unknown corridor segment kind {kind!r}")


@dataclass(frozen=True)
class DefectSpec:
    """An immutable set of chip defects.

    ``dead_tiles`` lists ``(row, col)`` tile slots that cannot host logical
    qubits.  ``disabled_segments`` lists corridor segments removed from the
    routing graph.  ``bandwidth_overrides`` maps corridor segments to an
    explicit lane count overriding the corridor's nominal bandwidth (an
    override of ``0`` disables the segment, same as listing it in
    ``disabled_segments``; overrides model degraded hardware, so values
    above the nominal bandwidth are clamped down to it by the chip).

    All collections are canonicalised (sorted, deduplicated) so two specs
    describing the same defects compare and hash equal.
    """

    dead_tiles: tuple[tuple[int, int], ...] = ()
    disabled_segments: tuple[SegmentKey, ...] = ()
    bandwidth_overrides: tuple[tuple[SegmentKey, int], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "dead_tiles", tuple(sorted({(int(r), int(c)) for r, c in self.dead_tiles}))
        )
        object.__setattr__(
            self,
            "disabled_segments",
            tuple(sorted({(str(k), int(r), int(c)) for k, r, c in self.disabled_segments})),
        )
        overrides: dict[SegmentKey, int] = {}
        for key, capacity in self.bandwidth_overrides:
            kind, r, c = key
            capacity = int(capacity)
            if capacity < 0:
                raise ChipError(f"bandwidth override for segment {key} must be >= 0, got {capacity}")
            overrides[(str(kind), int(r), int(c))] = capacity
        object.__setattr__(self, "bandwidth_overrides", tuple(sorted(overrides.items())))
        # Derived views, cached once: these are queried per-slot / per-segment
        # in hot loops (placement validation, routing-graph construction).
        # Cached attributes are not dataclass fields, so eq/hash/pickle are
        # unaffected.
        object.__setattr__(self, "_dead", frozenset(self.dead_tiles))
        zero = frozenset(key for key, capacity in self.bandwidth_overrides if capacity == 0)
        object.__setattr__(self, "_disabled", frozenset(self.disabled_segments) | zero)
        object.__setattr__(self, "_overrides", overrides)

    # ---------------------------------------------------------------- queries
    @property
    def is_empty(self) -> bool:
        """True when the spec declares no defects at all."""
        return not (self.dead_tiles or self.disabled_segments or self.bandwidth_overrides)

    def dead_set(self) -> frozenset[tuple[int, int]]:
        """The dead tile slots as a set of ``(row, col)`` pairs."""
        return self._dead

    def override_map(self) -> dict[SegmentKey, int]:
        """Segment → capacity overrides as a dict (a copy; mutate freely)."""
        return dict(self._overrides)

    def override_for(self, key: SegmentKey) -> int | None:
        """The capacity override for one segment, or ``None``."""
        return self._overrides.get(key)

    def disabled_set(self) -> frozenset[SegmentKey]:
        """Segments removed from the graph (explicit plus zero-capacity overrides)."""
        return self._disabled

    def describe(self) -> str:
        """Short human-readable summary for :meth:`Chip.describe`."""
        return (
            f"{len(self.dead_tiles)} dead tiles, "
            f"{len(self.disabled_set())} disabled segments, "
            f"{len(self.bandwidth_overrides)} overrides"
        )

    # ------------------------------------------------------------- validation
    def validate_for(self, tile_rows: int, tile_cols: int) -> None:
        """Raise :class:`ChipError` when any defect lies outside the tile array."""
        for row, col in self.dead_tiles:
            if not (0 <= row < tile_rows and 0 <= col < tile_cols):
                raise ChipError(
                    f"dead tile ({row}, {col}) outside the {tile_rows}x{tile_cols} tile array"
                )
        keys = list(self.disabled_segments) + [key for key, _ in self.bandwidth_overrides]
        for kind, r, c in keys:
            if kind == "h":
                valid = 0 <= r <= tile_rows and 0 <= c < tile_cols
            elif kind == "v":
                valid = 0 <= r < tile_rows and 0 <= c <= tile_cols
            else:
                raise ChipError(f"unknown corridor segment kind {kind!r}")
            if not valid:
                raise ChipError(
                    f"corridor segment ({kind!r}, {r}, {c}) outside the "
                    f"{tile_rows}x{tile_cols} tile array"
                )

    def validate_for_graph(self, graph) -> None:
        """Raise :class:`ChipError` when any defect lies outside a tile graph.

        Graph chips address dead tiles as ``(node, 0)`` and segments as
        ``("e", a, b)`` tile-graph edges; anything else is rejected by name.
        """
        n = graph.num_nodes
        for row, col in self.dead_tiles:
            if col != 0 or not (0 <= row < n):
                raise ChipError(
                    f"dead tile ({row}, {col}) outside the {n}-node tile graph "
                    "(graph chips address tiles as (node, 0))"
                )
        keys = list(self.disabled_segments) + [key for key, _ in self.bandwidth_overrides]
        for kind, a, b in keys:
            if kind != "e":
                raise ChipError(
                    f"corridor segment ({kind!r}, {a}, {b}) is not a tile-graph "
                    "edge key (graph chips address segments as ('e', a, b))"
                )
            if graph.edge_index(a, b) is None:
                raise ChipError(f"tile graph has no edge ({a}, {b}) to degrade")

    # ------------------------------------------------------------ persistence
    def key(self) -> list:
        """Canonical JSON-able representation (cache fingerprints, specs)."""
        return [
            [list(t) for t in self.dead_tiles],
            [list(s) for s in self.disabled_segments],
            [[list(k), capacity] for k, capacity in self.bandwidth_overrides],
        ]

    def to_dict(self) -> dict:
        """JSON-able dict used by the chip-spec file format."""
        return {
            "dead_tiles": [list(t) for t in self.dead_tiles],
            "disabled_segments": [list(s) for s in self.disabled_segments],
            "bandwidth_overrides": [[list(k), capacity] for k, capacity in self.bandwidth_overrides],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DefectSpec":
        """Inverse of :meth:`to_dict` (missing keys mean "no such defects")."""
        return cls(
            dead_tiles=tuple((r, c) for r, c in payload.get("dead_tiles", ())),
            disabled_segments=tuple((k, r, c) for k, r, c in payload.get("disabled_segments", ())),
            bandwidth_overrides=tuple(
                ((k, r, c), capacity) for (k, r, c), capacity in payload.get("bandwidth_overrides", ())
            ),
        )


#: The pristine-chip spec, shared as the `Chip.defects` default.
NO_DEFECTS = DefectSpec()


# ----------------------------------------------------------- random generation
def chip_is_routable(chip) -> bool:
    """True when every alive tile of ``chip`` can route to every other.

    A path's interior consists solely of junctions, each needing at least one
    enabled incident segment (zero-through-capacity junctions cannot be
    crossed), and tiles are endpoints only — so tile-to-tile routability is
    *not* transitive: one tile's corners may touch two mutually disconnected
    junction components.  The check therefore computes the connected
    components of the usable-junction subgraph (corridor edges between
    junctions of capacity >= 1) and requires every pair of alive tiles to
    share at least one component among their corner junctions, which is
    exactly the feasibility condition of
    :func:`repro.routing.router.find_path` on an empty usage state.
    """
    from collections import deque

    from repro.chip.routing_graph import RoutingGraph

    graph = RoutingGraph(chip)
    tiles = graph.tile_nodes()
    if len(tiles) <= 1:
        return True
    # Connected components of the usable-junction subgraph.
    component: dict = {}
    for start in graph.nodes:
        if graph.is_tile(start) or graph.node_capacity(start) < 1 or start in component:
            continue
        component[start] = start
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbor in graph.neighbors(node):
                if graph.is_tile(neighbor) or neighbor in component:
                    continue
                if graph.node_capacity(neighbor) < 1:
                    continue
                component[neighbor] = start
                queue.append(neighbor)
    # Each tile can start a path into any component its corners touch.
    reach = [
        {component[j] for j in graph.neighbors(tile) if j in component} for tile in tiles
    ]
    if any(not r for r in reach):
        return False  # a tile with no usable corner junction routes nowhere
    return all(a & b for i, a in enumerate(reach) for b in reach[i + 1 :])


def random_defects(
    chip,
    rate: float,
    seed: int = 0,
    min_alive_tiles: int = 1,
) -> DefectSpec:
    """Sample a random, connectivity-preserving defect spec for ``chip``.

    ``rate`` is the fraction of tile slots killed and of corridor segments
    degraded (half of the degraded segments are disabled outright, the other
    half drop to one lane).  Defects already declared on ``chip`` are kept:
    the returned spec is a superset of ``chip.defects``, so a chip loaded
    from a measured spec file composes with further random degradation.

    At least ``min_alive_tiles`` tile slots stay alive, and any disabled
    segment that would disconnect the alive tiles (including via a junction
    left with no enabled segment) is demoted to a one-lane override instead,
    so a routable input chip always yields a routable result.
    """
    if not 0.0 <= rate <= 1.0:
        raise ChipError(f"defect rate must be in [0, 1], got {rate}")
    base: DefectSpec = chip.defects
    alive = [(slot.row, slot.col) for slot in chip.alive_tile_slots()]
    if min_alive_tiles > len(alive):
        raise ChipError(
            f"chip has only {len(alive)} alive tile slots, cannot keep {min_alive_tiles} alive"
        )
    rng = random.Random(seed)
    num_dead = min(int(rate * chip.num_tile_slots), len(alive) - min_alive_tiles)
    dead = tuple(base.dead_tiles) + (tuple(rng.sample(alive, num_dead)) if num_dead else ())

    segments: list[SegmentKey] = [key for key, _ in chip.corridor_segments()]
    num_degraded = int(rate * len(segments))
    degraded = rng.sample(segments, num_degraded) if num_degraded else []

    disabled: list[SegmentKey] = list(base.disabled_segments)
    overrides: dict[SegmentKey, int] = base.override_map()
    for index, segment in enumerate(degraded):
        if index % 2 == 0:
            # Try to disable the segment; keep only if the chip stays routable.
            trial = DefectSpec(
                dead_tiles=dead,
                disabled_segments=tuple(disabled) + (segment,),
                bandwidth_overrides=tuple(overrides.items()),
            )
            if chip_is_routable(chip.with_defects(trial)):
                disabled.append(segment)
            else:
                overrides[segment] = min(overrides.get(segment, 1), 1)
        else:
            overrides[segment] = min(overrides.get(segment, 1), 1)
    spec = DefectSpec(
        dead_tiles=dead,
        disabled_segments=tuple(disabled),
        bandwidth_overrides=tuple(overrides.items()),
    )
    if not chip_is_routable(chip.with_defects(spec)):  # pragma: no cover - defensive
        spec = DefectSpec(
            dead_tiles=dead,
            disabled_segments=tuple(base.disabled_segments),
            bandwidth_overrides=tuple(overrides.items()),
        )
    return spec
