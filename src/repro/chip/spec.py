"""JSON chip-spec files: persist a :class:`Chip` including its defects.

A chip spec is a small JSON document describing a concrete device — model,
code distance, tile array, corridor bandwidths and defect list — so that a
defective chip measured once (or synthesised for an experiment) can be
compiled against repeatedly, from the CLI (``repro compile --chip-spec``) or
programmatically.  Format::

    {
      "format": "repro-chip-spec",
      "version": 1,
      "model": "double_defect",
      "code_distance": 3,
      "tile_rows": 4,
      "tile_cols": 4,
      "h_bandwidths": [1, 1, 1, 1, 1],
      "v_bandwidths": [1, 1, 1, 1, 1],
      "side": 60,
      "defects": {
        "dead_tiles": [[1, 2]],
        "disabled_segments": [["h", 0, 1]],
        "bandwidth_overrides": [[["v", 2, 3], 1]]
      }
    }

The ``defects`` block is optional; omitted, the chip is pristine.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.chip.chip import Chip
from repro.chip.defects import DefectSpec
from repro.chip.geometry import SurfaceCodeModel
from repro.errors import ChipError

#: Spec-file format marker and version.
CHIP_SPEC_FORMAT = "repro-chip-spec"
CHIP_SPEC_VERSION = 1


def chip_to_dict(chip: Chip) -> dict:
    """JSON-able dict describing ``chip`` (inverse of :func:`chip_from_dict`)."""
    payload = {
        "format": CHIP_SPEC_FORMAT,
        "version": CHIP_SPEC_VERSION,
        "model": chip.model.value,
        "code_distance": chip.code_distance,
        "tile_rows": chip.tile_rows,
        "tile_cols": chip.tile_cols,
        "h_bandwidths": list(chip.h_bandwidths),
        "v_bandwidths": list(chip.v_bandwidths),
        "side": chip.side,
    }
    if not chip.defects.is_empty:
        payload["defects"] = chip.defects.to_dict()
    return payload


def chip_from_dict(payload: dict) -> Chip:
    """Build a :class:`Chip` from a spec dict, with clear errors on bad input."""
    if payload.get("format", CHIP_SPEC_FORMAT) != CHIP_SPEC_FORMAT:
        raise ChipError(f"not a chip spec: format is {payload.get('format')!r}")
    try:
        version = int(payload.get("version", CHIP_SPEC_VERSION))
        if version > CHIP_SPEC_VERSION:
            raise ChipError(
                f"chip spec version {version} is newer than supported ({CHIP_SPEC_VERSION})"
            )
        model = SurfaceCodeModel(payload["model"])
        defects = payload.get("defects", {})
        if not isinstance(defects, dict):
            raise ChipError(f"chip spec 'defects' must be an object, got {type(defects).__name__}")
        return Chip(
            model=model,
            code_distance=int(payload["code_distance"]),
            tile_rows=int(payload["tile_rows"]),
            tile_cols=int(payload["tile_cols"]),
            h_bandwidths=tuple(int(b) for b in payload["h_bandwidths"]),
            v_bandwidths=tuple(int(b) for b in payload["v_bandwidths"]),
            side=int(payload["side"]),
            defects=DefectSpec.from_dict(defects),
        )
    except KeyError as exc:
        raise ChipError(f"chip spec is missing the {exc.args[0]!r} field") from exc
    except (TypeError, ValueError, AttributeError) as exc:
        # Wrong JSON shapes (scalar where a list belongs, malformed defect
        # entries, non-numeric fields) all degrade to one clear error.
        raise ChipError(f"malformed chip spec: {exc}") from exc


def save_chip_spec(chip: Chip, path: Path | str) -> Path:
    """Write ``chip`` as a JSON spec file; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(chip_to_dict(chip), indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_chip_spec(path: Path | str) -> Chip:
    """Read a chip from a JSON spec file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ChipError(f"cannot read chip spec {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ChipError(f"chip spec {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ChipError(f"chip spec {path} must contain a JSON object")
    return chip_from_dict(payload)
