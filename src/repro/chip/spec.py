"""JSON chip-spec files: persist a :class:`Chip` including its defects.

A chip spec is a small JSON document describing a concrete device — model,
code distance, geometry, bandwidths and defect list — so that a defective
chip measured once (or synthesised for an experiment) can be compiled against
repeatedly, from the CLI (``repro compile --chip-spec``) or programmatically.

**Version 1** describes the paper's square lattice::

    {
      "format": "repro-chip-spec",
      "version": 1,
      "model": "double_defect",
      "code_distance": 3,
      "tile_rows": 4,
      "tile_cols": 4,
      "h_bandwidths": [1, 1, 1, 1, 1],
      "v_bandwidths": [1, 1, 1, 1, 1],
      "side": 60,
      "defects": {
        "dead_tiles": [[1, 2]],
        "disabled_segments": [["h", 0, 1]],
        "bandwidth_overrides": [[["v", 2, 3], 1]]
      }
    }

**Version 2** describes an arbitrary tile graph (heavy-hex, degree-3,
sparse — see :mod:`repro.chip.tile_graph`): the tile array and corridor
vectors are replaced by a ``geometry`` block, and defect keys use graph
addressing (dead tiles ``[node, 0]``, segments ``["e", a, b]``)::

    {
      "format": "repro-chip-spec",
      "version": 2,
      "model": "double_defect",
      "code_distance": 3,
      "geometry": {
        "name": "heavy_hex_3x3",
        "nodes": [[0.0, 0.0], [1.0, 0.0], ...],
        "edges": [[0, 9, 1], [1, 9, 1], ...],
        "node_budgets": [2, 3, ...]
      },
      "side": 60,
      "defects": {"dead_tiles": [[4, 0]], "disabled_segments": [["e", 0, 9]]}
    }

The ``defects`` block is optional in both versions; omitted, the chip is
pristine.  ``side`` is optional in version 2 (derived from the geometry when
absent).  Unknown fields are rejected by name — a spec written by a newer
tool fails loudly instead of silently dropping what it doesn't understand.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

from repro.chip.chip import Chip
from repro.chip.defects import DefectSpec
from repro.chip.geometry import SurfaceCodeModel
from repro.chip.tile_graph import TileGraph
from repro.errors import ChipError

#: Spec-file format marker and the newest version this build understands.
CHIP_SPEC_FORMAT = "repro-chip-spec"
CHIP_SPEC_VERSION = 2

#: Field → expected-type contract per spec version (hardening: any other
#: field is rejected by name, and type mismatches name the field).
_V1_FIELDS = {
    "format": (str, "a string"),
    "version": (int, "an integer"),
    "model": (str, "a surface-code model name"),
    "code_distance": (int, "an integer"),
    "tile_rows": (int, "an integer"),
    "tile_cols": (int, "an integer"),
    "h_bandwidths": (list, "a list of integers"),
    "v_bandwidths": (list, "a list of integers"),
    "side": (int, "an integer"),
    "defects": (dict, "an object"),
}
_V2_FIELDS = {
    "format": (str, "a string"),
    "version": (int, "an integer"),
    "model": (str, "a surface-code model name"),
    "code_distance": (int, "an integer"),
    "geometry": (dict, "an object"),
    "side": (int, "an integer"),
    "defects": (dict, "an object"),
}
_DEFECT_FIELDS = ("dead_tiles", "disabled_segments", "bandwidth_overrides")


def chip_to_dict(chip: Chip) -> dict:
    """JSON-able dict describing ``chip`` (inverse of :func:`chip_from_dict`).

    Square chips emit version 1 (byte-compatible with pre-graph releases);
    graph chips emit version 2 with a ``geometry`` block.
    """
    if chip.tile_graph is not None:
        payload = {
            "format": CHIP_SPEC_FORMAT,
            "version": 2,
            "model": chip.model.value,
            "code_distance": chip.code_distance,
            "geometry": chip.tile_graph.to_dict(),
            "side": chip.side,
        }
    else:
        payload = {
            "format": CHIP_SPEC_FORMAT,
            "version": 1,
            "model": chip.model.value,
            "code_distance": chip.code_distance,
            "tile_rows": chip.tile_rows,
            "tile_cols": chip.tile_cols,
            "h_bandwidths": list(chip.h_bandwidths),
            "v_bandwidths": list(chip.v_bandwidths),
            "side": chip.side,
        }
    if not chip.defects.is_empty:
        payload["defects"] = chip.defects.to_dict()
    return payload


def _require(payload: dict, field: str, fields: dict):
    """Fetch a required field, checking its declared type."""
    if field not in payload:
        raise ChipError(f"chip spec is missing the {field!r} field")
    return _typed(payload, field, fields)


def _typed(payload: dict, field: str, fields: dict):
    """Type-check one present field against the version's contract."""
    value = payload[field]
    expected, description = fields[field]
    if expected is int:
        # JSON has no int/float split worth fighting over; accept numeric
        # strings too (legacy tolerance) but name the field when they fail.
        if isinstance(value, bool) or not isinstance(value, (int, float, str)):
            raise ChipError(
                f"chip spec field {field!r} must be {description}, "
                f"got {type(value).__name__}"
            )
        try:
            return int(value)
        except ValueError as exc:
            raise ChipError(
                f"chip spec field {field!r} must be {description}, got {value!r}"
            ) from exc
    if not isinstance(value, expected):
        raise ChipError(
            f"chip spec field {field!r} must be {description}, got {type(value).__name__}"
        )
    return value


def _int_list(payload: dict, field: str, fields: dict) -> tuple[int, ...]:
    values = _require(payload, field, fields)
    try:
        return tuple(int(b) for b in values)
    except (TypeError, ValueError) as exc:
        raise ChipError(
            f"chip spec field {field!r} must be a list of integers: {exc}"
        ) from exc


def _model(payload: dict, fields: dict) -> SurfaceCodeModel:
    name = _require(payload, "model", fields)
    try:
        return SurfaceCodeModel(name)
    except ValueError as exc:
        raise ChipError(
            f"chip spec field 'model' must be a surface-code model name, got {name!r}"
        ) from exc


def _defects(payload: dict, fields: dict) -> DefectSpec:
    block = _typed(payload, "defects", fields) if "defects" in payload else {}
    for field in sorted(block):
        if field not in _DEFECT_FIELDS:
            raise ChipError(
                f"chip spec defects block has unknown field {field!r}; "
                f"expected one of {sorted(_DEFECT_FIELDS)}"
            )
    try:
        return DefectSpec.from_dict(block)
    except ChipError:
        raise
    except (TypeError, ValueError) as exc:
        raise ChipError(f"chip spec field 'defects' is malformed: {exc}") from exc


def chip_from_dict(payload: dict) -> Chip:
    """Build a :class:`Chip` from a spec dict, with clear errors on bad input.

    Accepts versions 1 (square lattice) and 2 (tile graph).  Every failure is
    a :class:`ChipError` naming the offending field and its expected type;
    unknown fields are rejected rather than ignored.
    """
    if not isinstance(payload, dict):
        raise ChipError(f"chip spec must be a JSON object, got {type(payload).__name__}")
    if payload.get("format", CHIP_SPEC_FORMAT) != CHIP_SPEC_FORMAT:
        raise ChipError(f"not a chip spec: format is {payload.get('format')!r}")
    version = (
        _typed(payload, "version", _V1_FIELDS) if "version" in payload else 1
    )
    if version not in (1, 2):
        raise ChipError(
            f"chip spec version {version} is not supported "
            f"(this build reads versions 1..{CHIP_SPEC_VERSION})"
        )
    fields = _V1_FIELDS if version == 1 else _V2_FIELDS
    for field in sorted(payload):
        if field not in fields:
            raise ChipError(
                f"chip spec (version {version}) has unknown field {field!r}; "
                f"expected one of {sorted(fields)}"
            )
    model = _model(payload, fields)
    code_distance = _require(payload, "code_distance", fields)
    defects = _defects(payload, fields)
    if version == 1:
        return Chip(
            model=model,
            code_distance=code_distance,
            tile_rows=_require(payload, "tile_rows", fields),
            tile_cols=_require(payload, "tile_cols", fields),
            h_bandwidths=_int_list(payload, "h_bandwidths", fields),
            v_bandwidths=_int_list(payload, "v_bandwidths", fields),
            side=_require(payload, "side", fields),
            defects=defects,
        )
    graph = TileGraph.from_dict(_require(payload, "geometry", fields))
    chip = Chip.from_tile_graph(model, code_distance, graph, defects=defects)
    if "side" in payload:
        chip = replace(chip, side=_typed(payload, "side", fields))
    return chip


def save_chip_spec(chip: Chip, path: Path | str) -> Path:
    """Write ``chip`` as a JSON spec file; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(chip_to_dict(chip), indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def load_chip_spec(path: Path | str) -> Chip:
    """Read a chip from a JSON spec file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ChipError(f"cannot read chip spec {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ChipError(f"chip spec {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ChipError(f"chip spec {path} must contain a JSON object")
    return chip_from_dict(payload)
