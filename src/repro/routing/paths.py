"""Path data structures and capacity bookkeeping for per-cycle routing.

Routing happens one clock cycle at a time: the scheduler asks for a path
between two tiles given what has already been reserved in that cycle, and the
:class:`CapacityUsage` tracker guarantees no corridor edge is oversubscribed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chip.routing_graph import EdgeKey, Node, RoutingGraph, edge_key
from repro.errors import RoutingError


@dataclass(frozen=True, slots=True)
class RoutedPath:
    """A concrete path between two tile nodes.

    Attributes
    ----------
    nodes:
        The node sequence, starting and ending at tile nodes.
    edges:
        The undirected edge keys traversed, in order.
    """

    nodes: tuple[Node, ...]
    edges: tuple[EdgeKey, ...]

    @property
    def source(self) -> Node:
        """The first node (a tile node)."""
        return self.nodes[0]

    @property
    def target(self) -> Node:
        """The last node (a tile node)."""
        return self.nodes[-1]

    @property
    def length(self) -> int:
        """Number of edges in the path."""
        return len(self.edges)

    @classmethod
    def from_nodes(cls, graph: RoutingGraph, nodes: list[Node]) -> "RoutedPath":
        """Build a path from a node list, validating adjacency against ``graph``."""
        if len(nodes) < 2:
            raise RoutingError("a path needs at least two nodes")
        return cls(tuple(nodes), tuple(graph.path_edges(nodes)))


@dataclass(slots=True)
class CapacityUsage:
    """Per-cycle usage counters for routing-graph edges and junction nodes.

    Edge counters enforce corridor bandwidth; node counters enforce the
    paper's non-intersection constraint at corridor crossings (two paths may
    only share a junction when its bandwidth provides separate lanes).
    """

    used: dict[EdgeKey, int] = field(default_factory=dict)
    node_used: dict[Node, int] = field(default_factory=dict)

    def residual(self, graph: RoutingGraph, a: Node, b: Node) -> int:
        """Remaining capacity on edge ``{a, b}``."""
        return graph.capacity(a, b) - self.used.get(edge_key(a, b), 0)

    def node_residual(self, graph: RoutingGraph, node: Node) -> int:
        """Remaining through-capacity of ``node``."""
        return graph.node_capacity(node) - self.node_used.get(node, 0)

    def can_use(self, graph: RoutingGraph, a: Node, b: Node) -> bool:
        """True when at least one lane is free on edge ``{a, b}``."""
        return self.residual(graph, a, b) > 0

    def can_pass_through(self, graph: RoutingGraph, node: Node) -> bool:
        """True when another path may pass through ``node`` this cycle."""
        return self.node_residual(graph, node) > 0

    def add_path(self, path: RoutedPath, lanes: int = 1) -> None:
        """Reserve ``lanes`` units of capacity on every edge and interior node of ``path``."""
        for key in path.edges:
            self.used[key] = self.used.get(key, 0) + lanes
        for node in path.nodes[1:-1]:
            self.node_used[node] = self.node_used.get(node, 0) + lanes

    def remove_path(self, path: RoutedPath, lanes: int = 1) -> None:
        """Release a previous reservation (used by rip-up-and-reroute)."""
        for key in path.edges:
            remaining = self.used.get(key, 0) - lanes
            if remaining < 0:
                raise RoutingError(f"negative usage on edge {key}")
            if remaining == 0:
                self.used.pop(key, None)
            else:
                self.used[key] = remaining
        for node in path.nodes[1:-1]:
            remaining = self.node_used.get(node, 0) - lanes
            if remaining < 0:
                raise RoutingError(f"negative usage on node {node}")
            if remaining == 0:
                self.node_used.pop(node, None)
            else:
                self.node_used[node] = remaining

    def copy(self) -> "CapacityUsage":
        """Independent copy of the usage counters."""
        return CapacityUsage(dict(self.used), dict(self.node_used))

    def total_edge_load(self) -> int:
        """Sum of reserved lanes over all edges (a congestion measure)."""
        return sum(self.used.values())

    def violates(self, graph: RoutingGraph) -> list[EdgeKey]:
        """Edges whose usage exceeds capacity (should always be empty)."""
        return [key for key, used in self.used.items() if used > graph.capacity(*key)]
