"""Capacity-aware path search and per-cycle multi-gate routing.

:func:`find_path` performs a congestion-aware shortest-path search between two
tile nodes: edges with no residual capacity are unusable, tiles other than the
two endpoints are never traversed, and among shortest paths the one with the
least congestion is preferred.  :class:`CycleRouter` routes a prioritised list
of CNOT gates within a single clock cycle, optionally applying one round of
rip-up-and-reroute to squeeze in gates that a purely greedy order would block.

Canonical path contract
-----------------------
Among all capacity-feasible paths of minimal cost (hops plus congestion
penalty), :func:`find_path` returns the one whose node sequence is
lexicographically smallest.  The tie-break makes the result a pure function
of (graph, usage, endpoints, weight) rather than of heap exploration order,
which is what lets the fast engine
(:class:`~repro.routing.fast_router.FastRouter`) replace this search with a
goal-directed one and still produce bit-identical schedules.

Carrying the node sequence in the heap keys costs this reference search a
constant factor over a parent-pointer Dijkstra.  That is deliberate: this
implementation optimises for being obviously correct, and callers who care
about wall-clock select ``engine="fast"``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.chip.routing_graph import Node, RoutingGraph
from repro.errors import RoutingError
from repro.routing.paths import CapacityUsage, RoutedPath


def check_route_endpoints(graph: RoutingGraph, source: Node, target: Node) -> None:
    """Raise :class:`RoutingError` unless ``source``/``target`` are distinct tiles."""
    if source == target:
        raise RoutingError("source and target tiles must differ")
    if not graph.is_tile(source) or not graph.is_tile(target):
        raise RoutingError("paths are routed between tile nodes")


def find_path(
    graph: RoutingGraph,
    usage: CapacityUsage,
    source: Node,
    target: Node,
    congestion_weight: float = 0.0,
    stats=None,
) -> RoutedPath | None:
    """Find a path from tile ``source`` to tile ``target`` respecting residual capacity.

    Returns ``None`` when no path exists under the current usage.  With
    ``congestion_weight > 0`` the search prefers less-used edges, trading a
    slightly longer path for better packing of later gates.  Ties between
    equal-cost paths resolve to the lexicographically smallest node sequence
    (see the module docstring).  ``stats`` may be an
    :class:`~repro.profiling.EngineCounters` to account search effort.
    """
    check_route_endpoints(graph, source, target)
    # Dijkstra over (cost, node-sequence): the lexicographic tie-break is part
    # of the heap key, so the first pop of the target is the canonical path.
    # Extending two equal-cost paths by the same suffix preserves their
    # relative order (the first differing node stays inside the prefixes),
    # which gives this ordering the optimal-substructure property Dijkstra
    # needs.
    best: dict[Node, tuple[float, tuple[Node, ...]]] = {source: (0.0, (source,))}
    heap: list[tuple[float, tuple[Node, ...]]] = [(0.0, (source,))]
    expanded = 0
    while heap:
        cost, nodes = heapq.heappop(heap)
        node = nodes[-1]
        if node == target:
            if stats is not None:
                stats.nodes_expanded += expanded
            return RoutedPath.from_nodes(graph, list(nodes))
        if best.get(node, (cost, nodes)) != (cost, nodes):
            continue  # a better route to this node was found after pushing
        expanded += 1
        for neighbor in graph.neighbors(node):
            if graph.is_tile(neighbor) and neighbor != target:
                continue  # tiles are endpoints only
            if not usage.can_use(graph, node, neighbor):
                continue
            if neighbor != target and not usage.can_pass_through(graph, neighbor):
                continue  # the junction has no free lane to pass through
            penalty = 0.0
            if congestion_weight:
                load = usage.used.get((node, neighbor) if node <= neighbor else (neighbor, node), 0)
                penalty = congestion_weight * load
            candidate = (cost + 1.0 + penalty, nodes + (neighbor,))
            if candidate < best.get(neighbor, _INFINITY):
                best[neighbor] = candidate
                heapq.heappush(heap, candidate)
    if stats is not None:
        stats.nodes_expanded += expanded
        stats.route_failures += 1
    return None


#: Sentinel greater than every (cost, nodes) candidate.
_INFINITY = (float("inf"), ())


@dataclass(frozen=True)
class RoutingRequest:
    """One CNOT to route in the current cycle."""

    gate_node: int
    source: Node
    target: Node
    #: Lanes reserved on every edge of the resulting path (double defect CNOTs
    #: between same-cut tiles need two braids through the channel).
    lanes: int = 1


@dataclass
class CycleRoutingResult:
    """Outcome of routing one cycle's worth of gates."""

    routed: dict[int, RoutedPath]
    failed: list[int]

    @property
    def num_routed(self) -> int:
        """Number of gates that received a path this cycle."""
        return len(self.routed)


class CycleRouter:
    """Routes a prioritised batch of gates within one clock cycle."""

    def __init__(self, graph: RoutingGraph, congestion_weight: float = 0.25, rip_up_rounds: int = 1):
        self._graph = graph
        self._congestion_weight = congestion_weight
        self._rip_up_rounds = rip_up_rounds

    @property
    def graph(self) -> RoutingGraph:
        """The routing graph used by this router."""
        return self._graph

    def route_cycle(
        self,
        requests: list[RoutingRequest],
        usage: CapacityUsage | None = None,
    ) -> CycleRoutingResult:
        """Route ``requests`` in order, sharing the cycle's capacity.

        ``usage`` may carry reservations made earlier in the same cycle (for
        example multi-cycle reservations from the double defect scheduler);
        it is mutated in place when provided.
        """
        if usage is None:
            usage = CapacityUsage()
        routed: dict[int, RoutedPath] = {}
        failed: list[int] = []
        for request in requests:
            path = self._route_single(request, usage)
            if path is None:
                failed.append(request.gate_node)
            else:
                routed[request.gate_node] = path
        if failed and self._rip_up_rounds > 0:
            routed, failed = self._rip_up(requests, routed, failed, usage)
        return CycleRoutingResult(routed=routed, failed=failed)

    # ----------------------------------------------------------------- internals
    def _route_single(self, request: RoutingRequest, usage: CapacityUsage) -> RoutedPath | None:
        if request.lanes > 1:
            # A multi-lane reservation needs that many residual lanes everywhere
            # along the path; emulate by temporarily treating the path as
            # ``lanes`` successive single-lane routings over the same edges.
            path = find_path(self._graph, usage, request.source, request.target, self._congestion_weight)
            if path is None:
                return None
            if any(
                usage.residual(self._graph, a, b) < request.lanes
                for a, b in zip(path.nodes, path.nodes[1:])
            ):
                # Retry with a usage view that hides edges lacking enough lanes.
                masked = usage.copy()
                for (a, b) in self._graph.edges:
                    if usage.residual(self._graph, a, b) < request.lanes:
                        masked.used[(a, b)] = self._graph.capacity(a, b)
                path = find_path(self._graph, masked, request.source, request.target, self._congestion_weight)
                if path is None:
                    return None
            usage.add_path(path, lanes=request.lanes)
            return path
        path = find_path(self._graph, usage, request.source, request.target, self._congestion_weight)
        if path is not None:
            usage.add_path(path, lanes=request.lanes)
        return path

    def _rip_up(
        self,
        requests: list[RoutingRequest],
        routed: dict[int, RoutedPath],
        failed: list[int],
        usage: CapacityUsage,
    ) -> tuple[dict[int, RoutedPath], list[int]]:
        """One round of rip-up-and-reroute for the failed gates.

        For each failed gate, temporarily remove the longest already-routed
        path, try to route the failed gate, then re-route the removed gate.
        Keep the change only if both succeed (strictly more gates routed).
        """
        by_node = {r.gate_node: r for r in requests}
        still_failed: list[int] = []
        for _ in range(self._rip_up_rounds):
            still_failed = []
            for gate_node in failed:
                request = by_node[gate_node]
                victim = self._pick_victim(routed, by_node, request)
                if victim is None:
                    still_failed.append(gate_node)
                    continue
                victim_request = by_node[victim]
                victim_path = routed[victim]
                usage.remove_path(victim_path, lanes=victim_request.lanes)
                new_path = self._route_single(request, usage)
                if new_path is None:
                    usage.add_path(victim_path, lanes=victim_request.lanes)
                    still_failed.append(gate_node)
                    continue
                replacement = self._route_single(victim_request, usage)
                if replacement is None:
                    # Roll back: undo the new path, restore the victim.
                    usage.remove_path(new_path, lanes=request.lanes)
                    usage.add_path(victim_path, lanes=victim_request.lanes)
                    still_failed.append(gate_node)
                    continue
                routed[gate_node] = new_path
                routed[victim] = replacement
            failed = still_failed
            if not failed:
                break
        return routed, still_failed

    def _pick_victim(
        self,
        routed: dict[int, RoutedPath],
        by_node: dict[int, RoutingRequest],
        request: RoutingRequest,
    ) -> int | None:
        """Choose an already-routed gate whose path most plausibly blocks ``request``."""
        relevant = [
            (path.length, gate_node)
            for gate_node, path in routed.items()
            if by_node[gate_node].lanes <= 1
        ]
        if not relevant:
            return None
        _, victim = max(relevant)
        return victim
