"""Goal-directed routing for the fast scheduling engine.

:class:`FastRouter` answers exactly the same queries as
:func:`repro.routing.router.find_path` — the canonical (minimal-cost,
lexicographically-smallest) capacity-feasible path between two tiles — but
explores a fraction of the graph:

* **Memoized landmark distances.**  For every target tile the router runs one
  backward breadth-first search over the static graph and memoizes the hop
  distance of every node to that target.  Schedulers route towards the same
  few operand tiles thousands of times, so each table is built once and then
  amortised across the whole schedule.
* **Early-exit goal-directed search.**  The forward search is an A* whose
  heuristic is the memoized backward distance (the two directions together
  form an early-exit bidirectional scheme: one static backward sweep, one
  residual-aware forward sweep that stops the moment the target is settled).
  Every edge costs at least one hop, so the hop distance is a consistent
  heuristic and the first pop of the target is optimal.

Because the canonical tie-break of :func:`find_path` is part of the search
key — heap entries order by ``(cost + h, cost, node-sequence)`` — the fast
search is exploration-order independent and returns bit-identical paths to
the reference implementation.  ``tests/test_properties_routing.py`` and
``tests/test_differential_engines.py`` enforce this equivalence.

Defective chips need no special handling here: the landmark tables, the
static-path cache and the flattened adjacency are all derived from the
:class:`RoutingGraph`, which already excludes dead tiles and disabled
segments and carries per-segment capacity overrides.  Parity on defective
chips is enforced by ``tests/test_defects.py``.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.chip.routing_graph import Node, RoutingGraph
from repro.routing.paths import CapacityUsage, RoutedPath
from repro.routing.router import check_route_endpoints

#: Sentinel greater than every (cost, nodes) candidate.
_INFINITY = (float("inf"), ())

#: Distinguishes "no cache entry" from a cached ``None`` (unroutable pair).
_UNCACHED = object()


class FastRouter:
    """Capacity-aware router with memoized landmark tables and A* search.

    One instance serves one :class:`RoutingGraph`; the landmark tables and
    the flattened adjacency/capacity lookups are shared across every
    :meth:`find` call, which is where the reuse pays off.
    """

    def __init__(self, graph: RoutingGraph):
        self._graph = graph
        self._landmarks: dict[Node, dict[Node, int]] = {}
        #: Canonical paths on the *empty* usage state, keyed by (source,
        #: target).  With no reservations every congestion penalty is zero,
        #: so the canonical path depends only on the endpoints — schedulers
        #: re-ask for the same unloaded pairs every cycle.
        self._static_paths: dict[tuple[Node, Node], RoutedPath | None] = {}
        # Flattened static lookups: per-node neighbor list annotated with the
        # edge key and base capacity, plus junction through-capacities.  The
        # inner loop then never touches RoutingGraph methods.
        self._neighbors: dict[Node, tuple[tuple[Node, tuple[Node, Node], int, bool], ...]] = {}
        for node in graph.nodes:
            entries = []
            for neighbor in graph.neighbors(node):
                key = (node, neighbor) if node <= neighbor else (neighbor, node)
                entries.append((neighbor, key, graph.capacity(node, neighbor), graph.is_tile(neighbor)))
            self._neighbors[node] = tuple(entries)
        self._node_capacity = {
            node: graph.node_capacity(node) for node in graph.nodes if not graph.is_tile(node)
        }

    @property
    def graph(self) -> RoutingGraph:
        """The routing graph this router serves."""
        return self._graph

    @property
    def landmark_table_count(self) -> int:
        """How many per-target landmark tables have been memoized so far."""
        return len(self._landmarks)

    @property
    def static_path_count(self) -> int:
        """How many unloaded-graph canonical paths have been cached so far."""
        return len(self._static_paths)

    # ------------------------------------------------------------- landmarks
    def distances_to(self, target: Node) -> dict[Node, int]:
        """Static hop distance of every reachable node to ``target``.

        Computed by one backward BFS that, like the forward search, never
        passes *through* a tile node: tiles receive a distance (they can start
        a path) but are not expanded.  Tables are memoized per target.
        """
        table = self._landmarks.get(target)
        if table is None:
            table = {target: 0}
            queue = deque((target,))
            is_tile = self._graph.is_tile
            while queue:
                node = queue.popleft()
                if node != target and is_tile(node):
                    continue  # tiles are endpoints only — never expand through
                distance = table[node] + 1
                for neighbor, _key, _capacity, _is_tile in self._neighbors[node]:
                    if neighbor not in table:
                        table[neighbor] = distance
                        queue.append(neighbor)
            self._landmarks[target] = table
        return table

    # ----------------------------------------------------------------- search
    def find(
        self,
        usage: CapacityUsage,
        source: Node,
        target: Node,
        congestion_weight: float = 0.0,
        stats=None,
    ) -> RoutedPath | None:
        """The canonical path from ``source`` to ``target`` under ``usage``.

        Semantically identical to :func:`repro.routing.router.find_path` on
        this router's graph — same feasibility rules, same cost, same
        lexicographic tie-break — but goal-directed and early-exiting.
        """
        check_route_endpoints(self._graph, source, target)
        if not usage.used and not usage.node_used:
            key = (source, target)
            cached = self._static_paths.get(key, _UNCACHED)
            if cached is not _UNCACHED:
                if stats is not None:
                    stats.static_path_hits += 1
                return cached
            path = self._search(usage, source, target, congestion_weight, stats)
            self._static_paths[key] = path
            return path
        return self._search(usage, source, target, congestion_weight, stats)

    def _search(
        self,
        usage: CapacityUsage,
        source: Node,
        target: Node,
        congestion_weight: float,
        stats,
    ) -> RoutedPath | None:
        remaining = self.distances_to(target)
        if stats is not None:
            stats.landmark_tables = len(self._landmarks)
        heuristic = remaining.get(source)
        if heuristic is None:
            if stats is not None:
                stats.route_failures += 1
            return None  # statically disconnected — no residual path can exist
        edge_used = usage.used
        node_used = usage.node_used
        node_capacity = self._node_capacity
        neighbors = self._neighbors
        # A* over (cost + h, cost, node-sequence).  The hop distance h is
        # consistent (every edge costs >= 1), so the first pop of the target
        # carries the minimal cost; ordering entries by (cost, sequence) after
        # the f-value makes that first pop the canonical lexicographic
        # minimum as well: any prefix of a smaller equal-cost path has a
        # strictly smaller key than a full-path target entry, hence is
        # expanded before the target can be popped.
        best: dict[Node, tuple[float, tuple[Node, ...]]] = {source: (0.0, (source,))}
        heap: list[tuple[float, float, tuple[Node, ...]]] = [(float(heuristic), 0.0, (source,))]
        expanded = 0
        while heap:
            _f, cost, nodes = heapq.heappop(heap)
            node = nodes[-1]
            if node == target:
                if stats is not None:
                    stats.nodes_expanded += expanded
                return RoutedPath.from_nodes(self._graph, list(nodes))
            if best.get(node, (cost, nodes)) != (cost, nodes):
                continue  # superseded after pushing
            expanded += 1
            for neighbor, key, capacity, is_tile in neighbors[node]:
                if is_tile and neighbor != target:
                    continue  # tiles are endpoints only
                load = edge_used.get(key, 0)
                if load >= capacity:
                    continue
                if neighbor != target and node_used.get(neighbor, 0) >= node_capacity[neighbor]:
                    continue  # the junction has no free lane to pass through
                h = remaining.get(neighbor)
                if h is None:
                    continue  # cannot reach the target from here
                new_cost = cost + 1.0
                if congestion_weight and load:
                    new_cost += congestion_weight * load
                candidate = (new_cost, nodes + (neighbor,))
                if candidate < best.get(neighbor, _INFINITY):
                    best[neighbor] = candidate
                    heapq.heappush(heap, (new_cost + h, new_cost, candidate[1]))
        if stats is not None:
            stats.nodes_expanded += expanded
            stats.route_failures += 1
        return None
