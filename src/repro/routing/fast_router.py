"""Goal-directed routing for the fast scheduling engine.

:class:`FastRouter` answers exactly the same queries as
:func:`repro.routing.router.find_path` — the canonical (minimal-cost,
lexicographically-smallest) capacity-feasible path between two tiles — but
runs over the dense integer core of
:class:`~repro.chip.graph_arrays.CompactRoutingGraph` and explores a fraction
of the graph:

* **Flat-array landmark tables.**  For every target actually queried the
  router runs one backward breadth-first sweep over the compact graph's CSR
  arrays (vectorised level expansion, see
  :meth:`CompactRoutingGraph.hop_distances_from`) and keeps the result as a
  node-id-indexed distance array.  Tables are built lazily per target and
  then amortised across the whole schedule; the build cost is accounted
  separately (``landmark_build_seconds``) so shallow circuits on big chips
  can be diagnosed instead of guessed at.
* **Early-exit goal-directed search.**  The forward search is an A* over
  integer node ids whose heuristic is the memoized backward distance.  Every
  edge costs at least one hop, so the hop distance is a consistent heuristic
  and the first pop of the target is optimal.

Because node ids are assigned in sorted node-tuple order (see
:mod:`repro.chip.graph_arrays`), the lexicographic order of id sequences
equals the lexicographic order of node-tuple sequences — heap entries
ordered by ``(cost + h, cost, id-sequence)`` therefore reproduce the
canonical tie-break of :func:`find_path` bit-for-bit.
``tests/test_properties_routing.py`` and
``tests/test_differential_engines.py`` enforce this equivalence.

Defective chips need no special handling here: the compact graph is derived
from the :class:`RoutingGraph`, which already excludes dead tiles and
disabled segments and carries per-segment capacity overrides.  Parity on
defective chips is enforced by ``tests/test_defects.py`` and the Hypothesis
round-trips in ``tests/test_graph_arrays.py``.
"""

from __future__ import annotations

import heapq
import time

from repro.chip.graph_arrays import CompactRoutingGraph
from repro.chip.routing_graph import Node, RoutingGraph
from repro.errors import RoutingError
from repro.routing.paths import CapacityUsage, RoutedPath
from repro.routing.router import check_route_endpoints

#: Distinguishes "no cache entry" from a cached ``None`` (unroutable pair).
_UNCACHED = object()


class FastRouter:
    """Capacity-aware router over the compact graph with landmark A* search.

    One instance serves one :class:`RoutingGraph`; the compact image, the
    landmark tables and the static-path cache are shared across every
    :meth:`find` call, which is where the reuse pays off (the daemon's
    :class:`~repro.service.state.WarmStateCache` additionally shares whole
    routers across compiles).
    """

    def __init__(self, graph: RoutingGraph):
        self._graph = graph
        self._compact = CompactRoutingGraph(graph)
        #: Node-id-indexed hop-distance lists, keyed by target node id.
        self._tables: dict[int, list[int]] = {}
        #: Node-keyed views of the tables, materialised only for public
        #: :meth:`distances_to` callers (the search uses the id lists).
        self._table_dicts: dict[Node, dict[Node, int]] = {}
        #: Canonical paths on the *empty* usage state, keyed by (source,
        #: target).  With no reservations every congestion penalty is zero,
        #: so the canonical path depends only on the endpoints — schedulers
        #: re-ask for the same unloaded pairs every cycle.  Entries store
        #: ``(path, interior_nodes)`` (or ``None`` for disconnected pairs) so
        #: the load-overlap check needs no per-call slicing.
        self._static_paths: dict[
            tuple[Node, Node], tuple[RoutedPath, tuple[Node, ...]] | None
        ] = {}
        #: Wall-clock seconds spent building landmark tables over this
        #: router's lifetime (warm routers carry time from earlier compiles).
        self.landmark_build_seconds = 0.0

    @property
    def graph(self) -> RoutingGraph:
        """The routing graph this router serves."""
        return self._graph

    @property
    def compact(self) -> CompactRoutingGraph:
        """The dense integer-indexed image the searches run over."""
        return self._compact

    @property
    def landmark_table_count(self) -> int:
        """How many per-target landmark tables have been memoized so far."""
        return len(self._tables)

    @property
    def static_path_count(self) -> int:
        """How many unloaded-graph canonical paths have been cached so far."""
        return len(self._static_paths)

    # ------------------------------------------------------------- landmarks
    def _table_for(self, target_id: int, stats=None) -> list[int]:
        """The id-indexed hop-distance list towards ``target_id`` (lazy build)."""
        table = self._tables.get(target_id)
        if table is None:
            started = time.perf_counter()
            table = self._compact.hop_distances_from(target_id).tolist()
            elapsed = time.perf_counter() - started
            self.landmark_build_seconds += elapsed
            if stats is not None:
                stats.landmark_build_seconds += elapsed
            self._tables[target_id] = table
        return table

    def distances_to(self, target: Node) -> dict[Node, int]:
        """Static hop distance of every reachable node to ``target``.

        Node-keyed compatibility view over the id-indexed table; memoized per
        target (repeated calls return the identical dict).
        """
        view = self._table_dicts.get(target)
        if view is None:
            table = self._table_for(self._compact.id_of(target))
            nodes = self._compact.nodes
            view = {
                nodes[node_id]: distance
                for node_id, distance in enumerate(table)
                if distance >= 0
            }
            self._table_dicts[target] = view
        return view

    # ----------------------------------------------------------------- search
    def find(
        self,
        usage: CapacityUsage,
        source: Node,
        target: Node,
        congestion_weight: float = 0.0,
        stats=None,
    ) -> RoutedPath | None:
        """The canonical path from ``source`` to ``target`` under ``usage``.

        Semantically identical to :func:`repro.routing.router.find_path` on
        this router's graph — same feasibility rules, same cost, same
        lexicographic tie-break — but goal-directed and early-exiting.
        """
        key = (source, target)
        cached = self._static_paths.get(key, _UNCACHED)
        empty = not usage.used and not usage.node_used
        if cached is _UNCACHED:
            # Endpoints are validated once per pair: invalid pairs raise here
            # and are never cached, so repeat calls re-validate and re-raise.
            check_route_endpoints(self._graph, source, target)
            if self._compact.junctions_passable:
                path = self._static_walk(source, target, stats)
            else:
                path = self._search(CapacityUsage(), source, target, congestion_weight, stats)
            cached = (path, path.nodes[1:-1]) if path is not None else None
            self._static_paths[key] = cached
            if empty:
                return path
        elif empty:
            if stats is not None:
                stats.static_path_hits += 1
            return cached[0] if cached is not None else None
        # Loaded graph, known static answer.  If the pair is statically
        # disconnected, load cannot create a path.  If the canonical unloaded
        # path carries no load on any edge or interior node, it is still the
        # answer: load only raises costs and shrinks the feasible set, so the
        # loaded minimal-cost set is a subset of the unloaded one that still
        # contains this path — and it stays the lexicographic minimum of any
        # subset it belongs to.
        if cached is None:
            if stats is not None:
                stats.route_failures += 1
            return None
        path, interior = cached
        used = usage.used
        if used:
            for edge in path.edges:
                if edge in used:
                    return self._search(usage, source, target, congestion_weight, stats)
        node_used = usage.node_used
        if node_used:
            for node in interior:
                if node in node_used:
                    return self._search(usage, source, target, congestion_weight, stats)
        if stats is not None:
            stats.static_path_hits += 1
        return path

    def _static_walk(self, source: Node, target: Node, stats) -> RoutedPath | None:
        """The canonical path on the *unloaded* graph, read off the table.

        With no reservations the cost of a path is exactly its hop count and
        every edge is feasible (the graph omits capacities below one), so the
        canonical answer is the lexicographically-smallest shortest path: a
        greedy walk that always steps to the smallest-id junction one hop
        closer to the target (``junction_adjacency`` rows are id-ascending,
        so the first qualifying neighbor is that junction).  Interior nodes
        must be junctions able to pass a path, which is why callers gate this
        on :attr:`CompactRoutingGraph.junctions_passable`; defective chips
        that strand a junction fall back to the A* search instead.
        """
        compact = self._compact
        source_id = compact.node_id[source]
        target_id = compact.node_id[target]
        remaining = self._table_for(target_id, stats)
        if stats is not None:
            stats.landmark_tables = len(self._tables)
        d = remaining[source_id]
        if d < 0:
            if stats is not None:
                stats.route_failures += 1
            return None
        junction_adjacency = compact.junction_adjacency
        ids = [source_id]
        node = source_id
        while d > 1:
            for neighbor, _eid, _capacity in junction_adjacency[node]:
                if remaining[neighbor] == d - 1:
                    node = neighbor
                    ids.append(neighbor)
                    d -= 1
                    break
            else:  # pragma: no cover — BFS guarantees a closer junction
                raise RoutingError(
                    f"landmark table inconsistent at node {compact.nodes[node]}"
                )
        if node != target_id:
            ids.append(target_id)
        nodes = compact.nodes
        pair_key = compact.pair_edge_key
        return RoutedPath(
            tuple(nodes[i] for i in ids),
            tuple(pair_key[pair] for pair in zip(ids, ids[1:])),
        )

    def _search(
        self,
        usage: CapacityUsage,
        source: Node,
        target: Node,
        congestion_weight: float,
        stats,
    ) -> RoutedPath | None:
        compact = self._compact
        source_id = compact.node_id[source]
        target_id = compact.node_id[target]
        remaining = self._table_for(target_id, stats)
        if stats is not None:
            stats.landmark_tables = len(self._tables)
        heuristic = remaining[source_id]
        if heuristic < 0:
            if stats is not None:
                stats.route_failures += 1
            return None  # statically disconnected — no residual path can exist
        # Translate the tuple-keyed reservations into id-keyed dicts once per
        # query: the per-cycle reservation sets are tiny compared to the
        # search, and the inner loop then hashes ints instead of node tuples.
        if usage.used:
            edge_id = compact.edge_id
            edge_used = {edge_id[key]: count for key, count in usage.used.items()}
        else:
            edge_used = {}
        if usage.node_used:
            node_id = compact.node_id
            node_used = {node_id[node]: count for node, count in usage.node_used.items()}
        else:
            node_used = {}
        junction_adjacency = compact.junction_adjacency
        tile_access = compact.tile_access
        node_capacity = compact._node_capacity_list
        edge_get = edge_used.get
        node_get = node_used.get
        heappush = heapq.heappush
        heappop = heapq.heappop
        # A* over (cost + h, cost, id-sequence).  The hop distance h is
        # consistent (every edge costs >= 1), so the first pop of the target
        # carries the minimal cost; ordering entries by (cost, sequence)
        # after the f-value makes that first pop the canonical lexicographic
        # minimum as well: any prefix of a smaller equal-cost path has a
        # strictly smaller key than a full-path target entry, hence is
        # expanded before the target can be popped.  Id-sequence order equals
        # node-tuple-sequence order by the compact graph's id invariant.
        #
        # The best-label store is two flat id-indexed lists (cost, sequence);
        # a popped entry is current iff its sequence is the stored object, so
        # the superseded check is one identity test.  Expansion iterates only
        # junction neighbors (tiles are endpoints, never passed through) and
        # probes ``tile_access`` for the target tile.
        infinity = float("inf")
        best_cost = [infinity] * len(compact.nodes)
        best_seq: list[tuple[int, ...] | None] = [None] * len(compact.nodes)
        start = (source_id,)
        best_cost[source_id] = 0.0
        best_seq[source_id] = start
        heap: list[tuple[float, float, tuple[int, ...]]] = [(float(heuristic), 0.0, start)]
        expanded = 0
        while heap:
            _f, cost, ids = heappop(heap)
            node = ids[-1]
            if node == target_id:
                if stats is not None:
                    stats.nodes_expanded += expanded
                nodes = compact.nodes
                pair_key = compact.pair_edge_key
                # The searched edges are adjacency entries by construction, so
                # the path needs no re-validation against the graph.
                return RoutedPath(
                    tuple(nodes[i] for i in ids),
                    tuple(pair_key[pair] for pair in zip(ids, ids[1:])),
                )
            if best_seq[node] is not ids:
                continue  # superseded after pushing
            expanded += 1
            access = tile_access[node].get(target_id)
            if access is not None:
                eid, capacity = access
                load = edge_get(eid, 0)
                if load < capacity:
                    new_cost = cost + 1.0
                    if congestion_weight and load:
                        new_cost += congestion_weight * load
                    bc = best_cost[target_id]
                    if new_cost <= bc:
                        candidate = ids + (target_id,)
                        if new_cost < bc or candidate < best_seq[target_id]:
                            best_cost[target_id] = new_cost
                            best_seq[target_id] = candidate
                            heappush(heap, (new_cost, new_cost, candidate))
            for neighbor, eid, capacity in junction_adjacency[node]:
                load = edge_get(eid, 0)
                if load >= capacity:
                    continue
                if neighbor != target_id and node_get(neighbor, 0) >= node_capacity[neighbor]:
                    continue  # the junction has no free lane to pass through
                h = remaining[neighbor]
                if h < 0:
                    continue  # cannot reach the target from here
                new_cost = cost + 1.0
                if congestion_weight and load:
                    new_cost += congestion_weight * load
                bc = best_cost[neighbor]
                if new_cost > bc:
                    continue
                candidate = ids + (neighbor,)
                if new_cost == bc and not candidate < best_seq[neighbor]:
                    continue
                best_cost[neighbor] = new_cost
                best_seq[neighbor] = candidate
                heappush(heap, (new_cost + h, new_cost, candidate))
        if stats is not None:
            stats.nodes_expanded += expanded
            stats.route_failures += 1
        return None
