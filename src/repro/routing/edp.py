"""Edge-disjoint-path utilities.

Two users:

* the **EDPCI baseline** (Beverland et al., "Surface code compilation via
  edge-disjoint paths") routes as many ready CNOT gates per cycle as it can
  find mutually edge-disjoint paths for;
* the **capacity theorem tests** check Theorem 2 of the paper — any
  ``⌊(b-1)/2⌋ + 3`` independent CNOT gates can execute simultaneously on a
  chip of bandwidth ``b`` — by exhibiting simultaneous routings for random
  placements.

The maximum-set computation is a greedy shortest-first heuristic with a
rip-up pass (exact maximum EDP is NP-hard), which matches how the published
EDPCI compiler operates in practice.
"""

from __future__ import annotations

from repro.chip.routing_graph import Node, RoutingGraph
from repro.routing.paths import CapacityUsage, RoutedPath
from repro.routing.router import CycleRouter, RoutingRequest


def route_edge_disjoint(
    graph: RoutingGraph,
    pairs: list[tuple[Node, Node]],
    usage: CapacityUsage | None = None,
    rip_up_rounds: int = 2,
) -> tuple[dict[int, RoutedPath], list[int]]:
    """Route as many of ``pairs`` as possible with capacity-respecting paths.

    Pairs are indexed by their position in the input list.  Returns the routed
    paths by index and the list of indices that could not be routed this cycle.
    Shorter source-target separations are attempted first, which is the usual
    greedy order for edge-disjoint path packing.
    """
    router = CycleRouter(graph, congestion_weight=0.25, rip_up_rounds=rip_up_rounds)
    order = sorted(
        range(len(pairs)),
        key=lambda idx: _slot_distance(pairs[idx][0], pairs[idx][1]),
    )
    requests = [RoutingRequest(gate_node=idx, source=pairs[idx][0], target=pairs[idx][1]) for idx in order]
    result = router.route_cycle(requests, usage=usage)
    return result.routed, sorted(result.failed)


def can_route_simultaneously(graph: RoutingGraph, pairs: list[tuple[Node, Node]]) -> bool:
    """True when every pair can be routed in the same cycle."""
    routed, failed = route_edge_disjoint(graph, pairs)
    return not failed and len(routed) == len(pairs)


def max_simultaneous(graph: RoutingGraph, pairs: list[tuple[Node, Node]]) -> int:
    """Number of pairs the greedy EDP router fits into one cycle."""
    routed, _ = route_edge_disjoint(graph, pairs)
    return len(routed)


def _slot_distance(a: Node, b: Node) -> int:
    """Manhattan distance between two tile nodes (used for greedy ordering)."""
    return abs(a[1] - b[1]) + abs(a[2] - b[2])
