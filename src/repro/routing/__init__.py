"""Routing substrate: capacity-aware path search over the corridor graph."""

from repro.routing.edp import can_route_simultaneously, max_simultaneous, route_edge_disjoint
from repro.routing.fast_router import FastRouter
from repro.routing.paths import CapacityUsage, RoutedPath
from repro.routing.router import CycleRouter, CycleRoutingResult, RoutingRequest, find_path

__all__ = [
    "RoutedPath",
    "CapacityUsage",
    "find_path",
    "FastRouter",
    "CycleRouter",
    "CycleRoutingResult",
    "RoutingRequest",
    "route_edge_disjoint",
    "can_route_simultaneously",
    "max_simultaneous",
]
