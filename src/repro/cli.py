"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``profile``
    Print circuit statistics (qubits, CNOTs, depth, parallelism degree) for a
    QASM file or a named built-in benchmark.  With ``--method`` it also
    compiles the circuit with the reference and fast engines and prints
    per-stage timings, hot-path counters and the measured speedup.
``compile``
    Run the Ecmas pipeline (or a baseline) and print the schedule summary,
    optionally with the placement, a cycle timeline and per-stage timings.
    ``--engine fast`` switches the Algorithm 1 hot path to the incremental /
    landmark-A* engine (identical schedules, faster compiles).
    ``--chip-spec FILE`` compiles onto a chip loaded from a JSON spec
    (including its defects); ``--defect-rate R`` degrades the target chip
    with random, connectivity-preserving defects.
``table``
    Regenerate one of the paper's tables (1-5) on the standard suites,
    optionally fanning the per-cell compilations across worker processes
    (``--jobs``) with an on-disk result cache (disable with ``--no-cache``).
``batch``
    Compile a list of circuits with a list of methods through the batch
    engine and print one record per (circuit, method) pair.  Failed jobs are
    reported individually (exit code 1) while their siblings complete, and
    ``--progress`` streams live ``done/failed/cached`` counts to stderr.
``cache``
    Inspect or clean the on-disk result cache: ``stats`` (entries, bytes,
    shards), ``clear``, and ``prune --older-than DAYS``.
``serve``
    Run the persistent compile daemon: a local HTTP+JSON API
    (``/compile``, ``/batch``, ``/jobs/<id>``, ``/healthz``, ``/stats``)
    that keeps per-chip routing state warm across requests and serves
    repeats from the result cache.  See ``docs/http-api.md``.
``submit``
    Submit a compile request to a running daemon and print the result —
    the client half of ``serve``.
``suite``
    List the built-in benchmark circuits and their statistics.
``lint``
    Run the repository's static-analysis rules (determinism, fingerprint
    completeness, fork/thread safety, docstring coverage) over ``src/``.
    Exit codes follow the CLI convention: 0 clean, 1 findings, 2 usage
    error.  See ``docs/static-analysis.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.chip.geometry import SurfaceCodeModel
from repro.circuits import qasm
from repro.circuits.circuit import Circuit
from repro.circuits.generators import default_suite, get_benchmark
from repro.core import circuit_parallelism_degree
from repro.errors import ReproError
from repro.eval import (
    format_table,
    table1_overview,
    table2_location,
    table3_cut_initialisation,
    table4_gate_scheduling,
    table5_cut_scheduling,
)
from repro.pipeline.batch import (
    BatchProgress,
    ResultCache,
    build_batch_jobs,
    run_batch,
)
from repro.pipeline.registry import run_pipeline_method, validate_methods
from repro.verify import validate_encoded_circuit
from repro import viz

_MODELS = {
    "dd": SurfaceCodeModel.DOUBLE_DEFECT,
    "double-defect": SurfaceCodeModel.DOUBLE_DEFECT,
    "ls": SurfaceCodeModel.LATTICE_SURGERY,
    "lattice-surgery": SurfaceCodeModel.LATTICE_SURGERY,
}

_TABLES = {
    "1": (table1_overview, "Table I — Overview of experiment results"),
    "2": (table2_location, "Table II — Location initialisation"),
    "3": (table3_cut_initialisation, "Table III — Cut-type initialisation"),
    "4": (table4_gate_scheduling, "Table IV — Gate scheduling"),
    "5": (table5_cut_scheduling, "Table V — Cut-type scheduling"),
}


def _load_circuit(spec: str) -> Circuit:
    """Load a circuit from a QASM path or a built-in benchmark name."""
    if spec.endswith(".qasm"):
        return qasm.load(spec)
    return get_benchmark(spec).build()


def _check_jobs(jobs: int | None) -> None:
    """Surface a bad ``--jobs`` value as a clean CLI error before any work."""
    from repro.pipeline.batch import resolve_workers

    try:
        resolve_workers(jobs)
    except ValueError as exc:
        raise ReproError(str(exc)) from None


def _make_cache(args: argparse.Namespace) -> ResultCache | None:
    """Build the result cache requested by ``--cache-dir`` / ``--no-cache``.

    ``--cache-dir`` defaults to ``None``, so :class:`ResultCache` resolves
    ``$REPRO_CACHE_DIR`` at construction time rather than at import time.
    """
    if getattr(args, "no_cache", False):
        return None
    return ResultCache(args.cache_dir)


class _ProgressReporter:
    """Batch progress hook: collects failures, optionally printing live counts."""

    def __init__(self, echo: bool):
        self.echo = echo
        self.failures: list = []

    def __call__(self, snapshot: BatchProgress) -> None:
        if snapshot.last_failure is not None:
            self.failures.append(snapshot.last_failure)
        if self.echo:
            print(
                f"batch {snapshot.finished}/{snapshot.total}: "
                f"{snapshot.done} compiled, {snapshot.cached} cached, "
                f"{snapshot.failed} failed",
                file=sys.stderr,
            )


def _cmd_profile(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    print(f"circuit        : {circuit.name}")
    print(f"logical qubits : {circuit.num_qubits}")
    print(f"total gates    : {len(circuit)}")
    print(f"CNOT gates (g) : {circuit.num_cnots}")
    print(f"CNOT depth (α) : {circuit.depth()}")
    print(f"parallelism PM : {circuit_parallelism_degree(circuit)}")
    if args.method is None:
        return 0

    from repro.profiling import compare_engines

    comparison = compare_engines(circuit, args.method, code_distance=args.code_distance)
    print()
    print(f"method          : {args.method}")
    print(f"cycles          : {comparison.cycles}")
    print(f"schedules equal : {comparison.schedules_identical}")
    print()
    print(f"{'engine':<12} {'compile':>12} {'schedule':>12} {'routes':>9} {'expansions':>11} {'landmarks':>10}")
    for engine in ("reference", "fast"):
        counters = comparison.counters.get(engine, {})
        print(
            f"{engine:<12} {comparison.compile_seconds[engine] * 1000:10.1f} ms"
            f" {comparison.schedule_seconds[engine] * 1000:10.1f} ms"
            f" {counters.get('route_calls', 0):>9}"
            f" {counters.get('nodes_expanded', 0):>11}"
            f" {counters.get('landmark_tables', 0):>10}"
        )
    print()
    print(f"compile speedup : {comparison.compile_speedup:.2f}x")
    print(f"schedule speedup: {comparison.schedule_speedup:.2f}x")
    if args.cprofile:
        _dump_cprofile(circuit, args.method, args.code_distance, args.cprofile)
    return 0 if comparison.schedules_identical else 1


def _dump_cprofile(circuit, method: str, code_distance: int, out_path: str) -> None:
    """Profile one fast-engine compile, dump ``.pstats``, print the top 10.

    The dump is a standard :mod:`pstats` file (load with
    ``pstats.Stats(path)`` or ``snakeviz``), so perf PRs can cite real
    profiles instead of guessing at hot spots.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    run_pipeline_method(circuit, method, code_distance=code_distance, engine="fast")
    profiler.disable()
    profiler.dump_stats(out_path)
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    print()
    print(f"cProfile dump   : {out_path}")
    print("top 10 functions by cumulative time (fast engine):")
    stats.print_stats(10)


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.chip import Chip, builtin_tile_graph, load_chip_spec

    circuit = _load_circuit(args.circuit)
    model = _MODELS[args.model] if args.model is not None else SurfaceCodeModel.DOUBLE_DEFECT
    # --chip-spec pins the target chip (including its declared defects);
    # --geometry builds one from a built-in tile-graph family instead;
    # --defect-rate degrades whatever chip the pipeline targets — supplied or
    # built by BuildChip for the method's own resource configuration.
    if args.chip_spec and args.geometry:
        raise ReproError("--chip-spec and --geometry both pin the chip; pass only one")
    chip = load_chip_spec(args.chip_spec) if args.chip_spec else None
    if args.geometry:
        chip = Chip.from_tile_graph(model, args.code_distance, builtin_tile_graph(args.geometry))
    if chip is not None and args.model is not None and chip.model is not model:
        raise ReproError(
            f"--model {args.model} conflicts with the chip spec's model "
            f"{chip.model.value!r}; drop --model or use a matching spec"
        )
    if args.method == "ecmas":
        result = run_pipeline_method(
            circuit,
            "ecmas",
            model=chip.model if chip is not None else model,
            chip=chip,
            resources=args.resources,
            scheduler=args.scheduler,
            engine=args.engine,
            placement=args.placement,
            window=args.window,
            defect_rate=args.defect_rate,
            defect_seed=args.defect_seed,
        )
    else:
        result = run_pipeline_method(
            circuit,
            args.method,
            chip=chip,
            engine=args.engine,
            placement=args.placement,
            window=args.window,
            defect_rate=args.defect_rate,
            defect_seed=args.defect_seed,
        )
    encoded = result.encoded
    report = validate_encoded_circuit(circuit, encoded)
    print(f"method          : {encoded.method}")
    print(f"chip            : {encoded.chip.describe()}")
    print(f"cycles          : {encoded.num_cycles}")
    print(f"CNOTs scheduled : {encoded.num_cnots}")
    print(f"cut operations  : {encoded.num_cut_modifications}")
    print(f"compile time    : {encoded.compile_seconds * 1000:.1f} ms")
    print(f"schedule valid  : {report.valid}")
    if not report.valid:
        for error in report.errors[:5]:
            print(f"  error: {error}")
    if args.stages:
        print()
        print(f"per-stage timings ({result.engine} engine):")
        for name, seconds in result.timings_dict().items():
            print(f"  {name:<16} {seconds * 1000:8.2f} ms")
        if result.counters:
            print("engine counters:")
            for name, value in result.counters.items():
                print(f"  {name:<16} {value}")
    if args.show_placement:
        print()
        print(viz.render_placement(encoded.chip, encoded.placement))
    if args.timeline:
        print()
        print(viz.render_schedule_timeline(encoded, max_cycles=args.timeline))
    if args.gantt:
        print()
        print(viz.render_gantt(encoded))
    return 0 if report.valid else 1


def _cmd_table(args: argparse.Namespace) -> int:
    builder, title = _TABLES[args.number]
    cache = _make_cache(args)
    _check_jobs(args.jobs)
    reporter = _ProgressReporter(echo=args.progress)
    rows = builder(jobs=args.jobs, cache=cache, engine=args.engine, progress=reporter)
    print(format_table(rows, title=title))
    if cache is not None:
        print(f"cache: {cache.hits} hits, {cache.misses} misses ({cache.directory})")
    if reporter.failures:
        for failure in reporter.failures:
            print(
                f"failed cell: {failure.circuit} x {failure.method} — {failure.error}",
                file=sys.stderr,
            )
        print(
            f"error: {len(reporter.failures)} cell(s) failed to compile (shown as '-')",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    if not methods:
        raise ReproError("--methods needs at least one method name")
    validate_methods(methods)  # a typo must fail fast, not per job in the pool
    _check_jobs(args.jobs)
    # Load each distinct spec once; duplicates in the argument list still
    # produce one job per occurrence, as before.
    circuits = {spec: _load_circuit(spec) for spec in dict.fromkeys(args.circuits)}
    jobs = build_batch_jobs(
        [(spec, circuits[spec]) for spec in args.circuits],
        methods,
        code_distance=args.code_distance,
        validate=args.validate,
        engine=args.engine,
        placement=args.placement,
    )
    cache = _make_cache(args)
    reporter = _ProgressReporter(echo=args.progress)
    result = run_batch(jobs, workers=args.jobs, cache=cache, progress=reporter)
    rows = [
        {
            "circuit": record.circuit,
            "method": record.method,
            "n": record.num_qubits,
            "alpha": record.alpha,
            "g": record.num_cnots,
            "cycles": record.cycles,
            "compile_s": round(record.compile_seconds, 4),
        }
        for record in result.records
        if record is not None
    ]
    print(format_table(rows, title=f"Batch results ({result.workers} workers)"))
    if cache is not None:
        print(
            f"cache: {result.cache_hits} hits, {result.cache_misses} misses, "
            f"{result.recompilations} compiled ({cache.directory})"
        )
    for failure in result.failures:
        print(
            f"failed: {failure.circuit} x {failure.method} after "
            f"{failure.seconds:.2f}s — {failure.error}",
            file=sys.stderr,
        )
    return 0 if result.ok else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.cache_command == "stats":
        stats = cache.stats()
        print(f"directory : {stats['directory']}")
        print(f"entries   : {stats['entries']}")
        print(f"bytes     : {stats['bytes']}")
        print(f"shards    : {stats['shards']}")
        return 0
    if args.cache_command == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached record(s) from {cache.directory}")
        return 0
    if args.cache_command == "prune":
        if args.older_than < 0:
            raise ReproError("--older-than must be a non-negative number of days")
        removed = cache.prune(args.older_than * 86400.0)
        print(
            f"pruned {removed} record(s) older than {args.older_than:g} day(s) "
            f"from {cache.directory}"
        )
        return 0
    raise ReproError(f"unknown cache command {args.cache_command!r}")  # pragma: no cover


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import create_server

    _check_jobs(args.jobs)
    cache = _make_cache(args)
    try:
        server = create_server(
            host=args.host,
            port=args.port,
            cache=cache,
            workers=args.jobs,
            warm_chips=args.warm_chips,
            quiet=args.quiet,
        )
    except OSError as exc:
        raise ReproError(f"cannot bind {args.host}:{args.port}: {exc}") from None
    except ValueError as exc:  # e.g. --warm-chips 0
        raise ReproError(str(exc)) from None
    host, port = server.server_address[:2]
    print(f"repro compile daemon listening on http://{host}:{port}", file=sys.stderr)
    print(
        f"cache: {cache.directory if cache is not None else 'disabled'}; "
        f"warm chips: {args.warm_chips}; batch workers: {server.service.workers}",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.close()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(args.host, args.port, timeout=args.timeout)
    request: dict = {
        "method": args.method,
        "engine": args.engine,
        "code_distance": args.code_distance,
        "validate": args.validate,
        "use_cache": not args.no_cache,
        "wait": True,
        "timeout_seconds": args.timeout,
    }
    if args.circuit.endswith(".qasm"):
        from pathlib import Path

        try:
            request["qasm"] = Path(args.circuit).read_text(encoding="utf-8")
        except OSError as exc:
            raise ReproError(f"cannot read {args.circuit}: {exc}") from None
        request["name"] = args.circuit
    else:
        request["circuit"] = args.circuit
    job = client.compile(**request)
    if job["status"] != "done":
        error = job.get("error") or {}
        raise ReproError(
            f"job {job['job_id']} {job['status']}: "
            f"{error.get('detail') or error.get('error') or 'not finished in time'}"
        )
    record = job["result"]
    print(f"job             : {job['job_id']}")
    print(f"circuit         : {record['circuit']}")
    print(f"method          : {record['method']}")
    print(f"chip            : {record['chip']}")
    print(f"cycles          : {record['cycles']}")
    print(f"CNOTs scheduled : {record['num_cnots']}")
    print(f"compile time    : {record['compile_seconds'] * 1000:.1f} ms")
    print(f"served from     : {'result cache' if record.get('cached') else 'fresh compile'}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.analysis import Analyzer, rule_catalog

    if args.list_rules:
        if args.json:
            print(json_mod.dumps({"rules": rule_catalog()}, indent=2))
        else:
            for rule in rule_catalog():
                scope = ", ".join(rule["scope"]) if rule["scope"] else "all linted files"
                print(f"{rule['id']}  {rule['title']}  [{rule['severity']}; scope: {scope}]")
        return 0
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        if not rules:
            raise ReproError("--rules needs at least one rule id")
    analyzer = Analyzer(root=args.root, config_path=args.baseline, rules=rules)
    report = analyzer.run(args.paths or None)
    if args.json:
        print(json_mod.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return report.exit_code


def _cmd_suite(args: argparse.Namespace) -> int:
    rows = []
    for spec in default_suite(include_large=args.large):
        circuit = spec.build()
        rows.append(
            {
                "name": spec.name,
                "qubits": circuit.num_qubits,
                "alpha": circuit.depth(),
                "cnots": circuit.num_cnots,
                "paper_alpha": spec.paper_alpha,
                "paper_g": spec.paper_g,
            }
        )
    print(format_table(rows, title="Built-in benchmark suite"))
    return 0


def _add_engine_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=["reference", "fast"],
        default="reference",
        help="Algorithm 1 hot-path engine; 'fast' uses incremental ready-set "
        "maintenance and landmark A* routing (identical schedules, faster compiles)",
    )


def _add_placement_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--placement",
        choices=["reference", "fast"],
        default="reference",
        help="placement bisection core; 'fast' uses multilevel coarsening with "
        "FM gain buckets (near-linear mapping for n >= 500 circuits; placements "
        "may differ from the reference within parity-harness quality bounds)",
    )


def _add_batch_flags(parser: argparse.ArgumentParser) -> None:
    _add_engine_flag(parser)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the batch engine (0 = one per CPU; default 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache (results are keyed by circuit, method, "
        "options and the repro version — use this after editing the compiler itself)",
    )
    _add_cache_dir_flag(parser)
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print live done/failed/cached counts to stderr as jobs complete",
    )


def _add_cache_dir_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache location (default: $REPRO_CACHE_DIR, resolved when "
        "the command runs, or ~/.cache/repro)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ecmas surface-code mapping and scheduling (CGO 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    profile = sub.add_parser(
        "profile", help="print circuit statistics and engine timing comparisons"
    )
    profile.add_argument("circuit", help="QASM file path or built-in benchmark name (e.g. qft_n10)")
    profile.add_argument(
        "--method",
        default=None,
        metavar="M",
        help="also compile with this method on both engines and print per-stage "
        "timings, hot-path counters and the measured speedup (e.g. ecmas_dd_min)",
    )
    profile.add_argument("--code-distance", type=int, default=3, metavar="D")
    profile.add_argument(
        "--cprofile",
        metavar="OUT.pstats",
        default=None,
        help="profile one fast-engine compile of --method, dump pstats to this "
        "path and print the top-10 cumulative functions",
    )
    profile.set_defaults(func=_cmd_profile)

    compile_cmd = sub.add_parser("compile", help="compile a circuit and summarise the schedule")
    compile_cmd.add_argument("circuit", help="QASM file path or built-in benchmark name")
    compile_cmd.add_argument(
        "--model",
        choices=sorted(_MODELS),
        default=None,
        help="surface-code model (default dd; conflicts with a --chip-spec of the other model)",
    )
    compile_cmd.add_argument("--resources", choices=["minimum", "4x", "sufficient"], default="minimum")
    compile_cmd.add_argument("--scheduler", choices=["auto", "limited", "resu"], default="auto")
    compile_cmd.add_argument(
        "--method",
        default="ecmas",
        help="'ecmas' (default) or an evaluation method name such as autobraid / edpci_min",
    )
    _add_engine_flag(compile_cmd)
    _add_placement_flag(compile_cmd)
    compile_cmd.add_argument(
        "--chip-spec",
        metavar="FILE",
        help="compile onto the chip described by this JSON spec file "
        "(model, tile array, bandwidths and defects; see README)",
    )
    compile_cmd.add_argument(
        "--geometry",
        metavar="SPEC",
        help="compile onto a built-in tile-graph geometry: 'heavy_hex:RxC', "
        "'hex:RxC', 'square:RxC' or 'sparse3:N[:SEED]' (conflicts with "
        "--chip-spec; see docs/geometries.md)",
    )
    compile_cmd.add_argument(
        "--code-distance",
        type=int,
        default=3,
        metavar="D",
        help="surface-code distance for --geometry chips (default 3)",
    )
    compile_cmd.add_argument(
        "--defect-rate",
        type=float,
        default=0.0,
        metavar="R",
        help="degrade the target chip with random defects: kill a fraction R of "
        "tile slots and degrade/disable a fraction R of corridor segments "
        "(connectivity-preserving; composes with --chip-spec)",
    )
    compile_cmd.add_argument(
        "--defect-seed",
        type=int,
        default=0,
        metavar="S",
        help="random seed for --defect-rate (default 0)",
    )
    compile_cmd.add_argument(
        "--window",
        type=int,
        default=None,
        metavar="N",
        help="bound the scheduler's working set to a sliding window of N ready "
        "gates (for very large circuits; the schedule may differ from the "
        "full-frontier one but stays validator-clean)",
    )
    compile_cmd.add_argument("--stages", action="store_true", help="print per-stage pipeline timings")
    compile_cmd.add_argument("--show-placement", action="store_true", help="render the tile placement")
    compile_cmd.add_argument("--timeline", type=int, metavar="N", help="print the first N cycles")
    compile_cmd.add_argument("--gantt", action="store_true", help="print a per-qubit occupancy chart")
    compile_cmd.set_defaults(func=_cmd_compile)

    table = sub.add_parser("table", help="regenerate one of the paper's tables")
    table.add_argument("number", choices=sorted(_TABLES), help="table number (1-5)")
    _add_batch_flags(table)
    table.set_defaults(func=_cmd_table)

    batch = sub.add_parser("batch", help="compile circuits x methods through the batch engine")
    batch.add_argument("circuits", nargs="+", help="QASM file paths or built-in benchmark names")
    batch.add_argument(
        "--methods",
        default="ecmas_dd_min",
        help="comma-separated method names (e.g. autobraid,ecmas_dd_min,edpci_min)",
    )
    batch.add_argument("--code-distance", type=int, default=3, metavar="D")
    batch.add_argument("--validate", action="store_true", help="validate every schedule")
    _add_batch_flags(batch)
    _add_placement_flag(batch)
    batch.set_defaults(func=_cmd_batch)

    cache_cmd = sub.add_parser("cache", help="inspect or clean the on-disk result cache")
    cache_sub = cache_cmd.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser("stats", help="print entry/size/shard counters")
    cache_clear = cache_sub.add_parser("clear", help="delete every cached record")
    cache_prune = cache_sub.add_parser("prune", help="delete records older than a cutoff")
    cache_prune.add_argument(
        "--older-than",
        type=float,
        required=True,
        metavar="DAYS",
        help="delete records not rewritten in the last DAYS days (fractions allowed)",
    )
    for cache_parser in (cache_stats, cache_clear, cache_prune):
        _add_cache_dir_flag(cache_parser)
        cache_parser.set_defaults(func=_cmd_cache)

    serve = sub.add_parser(
        "serve",
        help="run the persistent compile daemon (HTTP+JSON; see docs/http-api.md)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument(
        "--port",
        type=int,
        default=8752,
        help="TCP port (default 8752; 0 picks an ephemeral port)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for /batch fan-out (1 keeps every compile in the "
        "daemon process where the warm chip state lives; 0 = one per CPU)",
    )
    serve.add_argument(
        "--warm-chips",
        type=int,
        default=8,
        metavar="N",
        help="how many distinct chips to keep warm (routing graph + landmark "
        "tables) in the LRU (default 8)",
    )
    serve.add_argument(
        "--no-cache", action="store_true", help="serve without the on-disk result cache"
    )
    _add_cache_dir_flag(serve)
    serve.add_argument("--quiet", action="store_true", help="suppress per-request access logs")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a compile to a running daemon and print the result"
    )
    submit.add_argument("circuit", help="QASM file path or built-in benchmark name")
    submit.add_argument(
        "--method",
        default="ecmas",
        help="'ecmas' (default) or an evaluation method name such as autobraid / edpci_min",
    )
    _add_engine_flag(submit)
    submit.add_argument("--code-distance", type=int, default=3, metavar="D")
    submit.add_argument("--validate", action="store_true", help="validate the schedule server-side")
    submit.add_argument(
        "--no-cache", action="store_true", help="bypass the daemon's result cache"
    )
    submit.add_argument("--host", default="127.0.0.1", help="daemon address (default 127.0.0.1)")
    submit.add_argument("--port", type=int, default=8752, help="daemon port (default 8752)")
    submit.add_argument(
        "--timeout",
        type=float,
        default=120.0,
        metavar="S",
        help="give up after S seconds (default 120)",
    )
    submit.set_defaults(func=_cmd_submit)

    lint = sub.add_parser(
        "lint",
        help="run the static-analysis rules (determinism, fingerprint, fork safety, docs)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint, relative to --root "
        "(default: the config file's paths, normally src)",
    )
    lint.add_argument(
        "--root",
        default=".",
        metavar="DIR",
        help="repository root: configs and reported paths are relative to it (default .)",
    )
    lint.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all rules the config enables)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="config/baseline file (default: <root>/.reprolint.toml when present)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable report (findings, suppression counts, and "
        "per-rule metadata such as the fingerprint rule's extracted field lists)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    lint.set_defaults(func=_cmd_lint)

    suite = sub.add_parser("suite", help="list the built-in benchmark circuits")
    suite.add_argument("--large", action="store_true", help="include the very large circuits")
    suite.set_defaults(func=_cmd_suite)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
