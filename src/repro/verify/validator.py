"""Encoded-circuit validator.

Replays an :class:`~repro.core.schedule.EncodedCircuit` against the source
circuit and the chip, checking every constraint from Section III of the
paper:

1. **Completeness / equivalence** — every CNOT of the logical circuit is
   scheduled exactly once, and the scheduling order respects the dependency
   DAG (a gate starts strictly after all of its predecessors have finished).
2. **Tile exclusivity** — a logical tile takes part in at most one operation
   (CNOT, cut modification, remap) in any clock cycle.
3. **Channel capacity** — in every clock cycle, the paths of the operations
   active in that cycle never reserve more lanes on a corridor edge than its
   bandwidth (with bandwidth 1 this is the non-intersection constraint).
4. **Cut-type legality (double defect)** — one-cycle braids only occur between
   tiles whose cut types differ at that moment, given the recorded initial
   assignment and the scheduled modifications / remaps.
5. **Path sanity** — every routed path starts and ends at the tiles hosting
   the operands and only traverses corridor junctions in between.
6. **Defect avoidance** — on a defective chip, no operation occupies a dead
   tile and no path crosses a disabled corridor segment.

Every scheduler and baseline in the repository funnels its output through
this validator in the test suite, which is the main correctness argument of
the reproduction.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.chip.defects import segment_endpoints
from repro.chip.geometry import SurfaceCodeModel
from repro.chip.routing_graph import RoutingGraph, tile_node_for
from repro.circuits.circuit import Circuit
from repro.core.cut_types import CutType
from repro.core.schedule import EncodedCircuit, OperationKind, ScheduledOperation
from repro.errors import ValidationError


@dataclass
class ValidationReport:
    """Outcome of validating an encoded circuit."""

    valid: bool
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    num_operations: int = 0
    num_cycles: int = 0

    def raise_if_invalid(self) -> None:
        """Raise :class:`ValidationError` when any error was recorded."""
        if not self.valid:
            raise ValidationError("; ".join(self.errors[:5]))


def validate_encoded_circuit(
    circuit: Circuit, encoded: EncodedCircuit, strict_cut_types: bool = True
) -> ValidationReport:
    """Validate ``encoded`` against its source ``circuit``; see module docstring."""
    report = ValidationReport(valid=True, num_operations=len(encoded.operations), num_cycles=encoded.num_cycles)

    def error(message: str) -> None:
        report.valid = False
        report.errors.append(message)

    dag = circuit.dag()
    _check_completeness(dag, encoded, error)
    _check_dependencies(dag, encoded, error)
    _check_tile_exclusivity(encoded, error)
    _check_paths_and_capacity(encoded, error)
    _check_defects(encoded, error)
    if encoded.model is SurfaceCodeModel.DOUBLE_DEFECT and strict_cut_types:
        _check_cut_types(encoded, error, report.warnings.append)
    return report


# --------------------------------------------------------------------- checks
def _cnot_ops(encoded: EncodedCircuit) -> list[ScheduledOperation]:
    return [
        op
        for op in encoded.operations
        if op.kind in (OperationKind.CNOT_BRAID, OperationKind.CNOT_SAME_CUT)
    ]


def _check_completeness(dag, encoded: EncodedCircuit, error) -> None:
    seen: dict[int, int] = defaultdict(int)
    for op in _cnot_ops(encoded):
        if op.gate_node is None or not 0 <= op.gate_node < len(dag):
            error(f"CNOT operation references unknown gate node {op.gate_node}")
            continue
        seen[op.gate_node] += 1
        gate = dag.gate(op.gate_node)
        if set(op.qubits) != {gate.control, gate.target}:
            error(
                f"gate node {op.gate_node} acts on qubits {op.qubits} "
                f"but the circuit gate acts on {(gate.control, gate.target)}"
            )
    for node in range(len(dag)):
        if seen[node] == 0:
            error(f"gate node {node} was never scheduled")
        elif seen[node] > 1:
            error(f"gate node {node} was scheduled {seen[node]} times")


def _check_dependencies(dag, encoded: EncodedCircuit, error) -> None:
    completion: dict[int, int] = {}
    start: dict[int, int] = {}
    for op in _cnot_ops(encoded):
        if op.gate_node is None:
            continue
        completion[op.gate_node] = op.end_cycle
        start[op.gate_node] = op.start_cycle
    for node in range(len(dag)):
        if node not in start:
            continue
        for parent in dag.predecessors(node):
            if parent not in completion:
                continue
            if start[node] < completion[parent]:
                error(
                    f"gate node {node} starts at cycle {start[node]} before its "
                    f"predecessor {parent} finishes at cycle {completion[parent]}"
                )


def _check_tile_exclusivity(encoded: EncodedCircuit, error) -> None:
    #: qubit -> list of (start, end, description)
    busy: dict[int, list[tuple[int, int, str]]] = defaultdict(list)
    for op in encoded.operations:
        label = f"{op.kind.value}@{op.start_cycle}"
        for qubit in op.qubits:
            busy[qubit].append((op.start_cycle, op.end_cycle, label))
    for qubit, intervals in busy.items():
        intervals.sort()
        for (s1, e1, l1), (s2, e2, l2) in zip(intervals, intervals[1:]):
            if s2 < e1:
                error(f"qubit {qubit} is used by {l1} and {l2} in overlapping cycles")


def _check_paths_and_capacity(encoded: EncodedCircuit, error) -> None:
    graph = RoutingGraph(encoded.chip)
    placement = encoded.placement
    per_cycle_load: dict[int, dict] = defaultdict(lambda: defaultdict(int))
    per_cycle_node_load: dict[int, dict] = defaultdict(lambda: defaultdict(int))
    for op in encoded.operations:
        if op.path is None:
            continue
        endpoints = {op.path.source, op.path.target}
        expected = {tile_node_for(placement.slot_of(q)) for q in op.qubits}
        if endpoints != expected:
            error(
                f"path of {op.kind.value} for qubits {op.qubits} connects {endpoints} "
                f"instead of the mapped tiles {expected}"
            )
        for node in op.path.nodes[1:-1]:
            if graph.is_tile(node):
                error(f"path of gate node {op.gate_node} passes through tile {node}")
        for a, b in zip(op.path.nodes, op.path.nodes[1:]):
            if not graph.has_edge(a, b):
                error(f"path of gate node {op.gate_node} uses non-existent edge {a}-{b}")
        for cycle in range(op.start_cycle, op.end_cycle):
            for key in op.path.edges:
                # Non-existent edges (e.g. disabled segments) were flagged
                # above; only existing edges take part in capacity accounting.
                if graph.has_edge(*key):
                    per_cycle_load[cycle][key] += op.lanes
            for node in op.path.nodes[1:-1]:
                per_cycle_node_load[cycle][node] += op.lanes
    for cycle, loads in per_cycle_load.items():
        for key, load in loads.items():
            capacity = graph.capacity(*key)
            if load > capacity:
                error(
                    f"cycle {cycle}: edge {key} carries {load} lanes "
                    f"but its capacity is {capacity}"
                )
    for cycle, loads in per_cycle_node_load.items():
        for node, load in loads.items():
            capacity = graph.node_capacity(node)
            if load > capacity:
                error(
                    f"cycle {cycle}: junction {node} is crossed by {load} paths "
                    f"but provides only {capacity} lanes"
                )


def _check_defects(encoded: EncodedCircuit, error) -> None:
    """Defect constraints: no operation on a dead tile or across a disabled segment.

    The defect-aware routing graph already excludes dead tiles and disabled
    segments (such paths are flagged as non-existent edges above); this check
    names the defect explicitly so a violation reads as what it is.
    """
    chip = encoded.chip
    if chip.defects.is_empty:
        return
    dead = chip.defects.dead_set()
    disabled_edges = set()
    for key in chip.defects.disabled_set():
        a, b = segment_endpoints(key)
        disabled_edges.add((a, b) if a <= b else (b, a))
    placement = encoded.placement
    for op in encoded.operations:
        for qubit in op.qubits:
            slot = placement.slot_of(qubit)
            if (slot.row, slot.col) in dead:
                error(
                    f"{op.kind.value} at cycle {op.start_cycle} occupies dead tile "
                    f"({slot.row}, {slot.col}) via qubit {qubit}"
                )
        if op.path is None:
            continue
        for a, b in zip(op.path.nodes, op.path.nodes[1:]):
            key = (a, b) if a <= b else (b, a)
            if key in disabled_edges:
                error(
                    f"path of {op.kind.value} at cycle {op.start_cycle} crosses "
                    f"disabled corridor segment {a}-{b}"
                )
            for node in (a, b):
                if node[0] == "t" and (node[1], node[2]) in dead:
                    error(
                        f"path of {op.kind.value} at cycle {op.start_cycle} touches "
                        f"dead tile ({node[1]}, {node[2]})"
                    )


def _check_cut_types(encoded: EncodedCircuit, error, warn) -> None:
    if encoded.initial_cut_types is None:
        warn("double defect schedule carries no initial cut types; skipping cut checks")
        return
    cut: dict[int, CutType] = dict(encoded.initial_cut_types)
    events = sorted(encoded.operations, key=lambda op: (op.start_cycle, op.end_cycle))
    #: (end_cycle, qubit, new_cut) for pending modifications
    pending: list[tuple[int, int, CutType]] = []
    for op in events:
        # Apply modifications that finished before this operation starts.
        still_pending = []
        for end, qubit, new_cut in pending:
            if end <= op.start_cycle:
                cut[qubit] = new_cut
            else:
                still_pending.append((end, qubit, new_cut))
        pending = still_pending
        if op.kind is OperationKind.CUT_MODIFICATION:
            qubit = op.qubits[0]
            new_cut = op.new_cut if op.new_cut is not None else cut[qubit].flipped()
            pending.append((op.end_cycle, qubit, new_cut))
        elif op.kind is OperationKind.CUT_REMAP:
            for qubit in op.qubits:
                pending.append((op.end_cycle, qubit, cut[qubit].flipped()))
        elif op.kind is OperationKind.CNOT_BRAID:
            a, b = op.qubits
            if cut.get(a) == cut.get(b):
                error(
                    f"one-cycle braid for gate node {op.gate_node} at cycle {op.start_cycle} "
                    f"between tiles of identical cut type {cut.get(a)}"
                )
        elif op.kind is OperationKind.CNOT_SAME_CUT:
            a, b = op.qubits
            if cut.get(a) != cut.get(b):
                warn(
                    f"three-cycle same-cut execution used for gate node {op.gate_node} "
                    "although the cut types differ (allowed but wasteful)"
                )
