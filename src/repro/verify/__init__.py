"""Schedule validation utilities."""

from repro.verify.validator import ValidationReport, validate_encoded_circuit

__all__ = ["ValidationReport", "validate_encoded_circuit"]
