"""Profiling instrumentation for the scheduling/routing hot path."""

from repro.profiling.compare import EngineComparison, compare_engines
from repro.profiling.instrumentation import EngineCounters, StageTimer

__all__ = [
    "EngineCounters",
    "StageTimer",
    "EngineComparison",
    "compare_engines",
]
