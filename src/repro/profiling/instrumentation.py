"""Counters and timers for the scheduling/routing hot path.

The paper's headline claim is compile-time efficiency, so speedups here are
measured, not asserted: every Algorithm 1 scheduler fills an
:class:`EngineCounters` while it runs, the pipeline surfaces it through
:attr:`PipelineResult.counters <repro.pipeline.framework.PipelineResult>`,
and the ``repro profile`` CLI subcommand prints reference-vs-fast
comparisons built from :func:`repro.profiling.compare.compare_engines`.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field


@dataclass
class EngineCounters:
    """Work counters accumulated by one scheduling run.

    ``nodes_expanded`` is the number of search-node expansions across every
    path query — the quantity the fast router's landmark heuristic shrinks.
    ``landmark_tables``, ``landmark_build_seconds`` and the ``layer_memo_*``
    counters stay 0 on the reference engine: landmark tables and layer
    memoization are fast-engine machinery.
    """

    route_calls: int = 0
    route_failures: int = 0
    nodes_expanded: int = 0
    landmark_tables: int = 0
    landmark_build_seconds: float = 0.0
    static_path_hits: int = 0
    layer_memo_hits: int = 0
    layer_memo_misses: int = 0
    cycles_simulated: int = 0
    gates_scheduled: int = 0
    cut_modifications: int = 0

    def as_dict(self) -> dict[str, int | float]:
        """Plain-dict view (stored in pipeline artifacts / JSON exports)."""
        return asdict(self)

    @property
    def expansions_per_route(self) -> float:
        """Average search effort per path query (0.0 before any query)."""
        if not self.route_calls:
            return 0.0
        return self.nodes_expanded / self.route_calls


@dataclass
class StageTimer:
    """Accumulates wall-clock seconds for named sub-stages of one run.

    The pipeline already times whole passes; this timer is for finer-grained
    accounting inside a single pass (e.g. routing vs bookkeeping inside the
    schedule stage) where creating a pass per sub-stage would be noise.
    """

    seconds: dict[str, float] = field(default_factory=dict)

    class _Span:
        def __init__(self, timer: "StageTimer", name: str):
            self._timer = timer
            self._name = name
            self._started = 0.0

        def __enter__(self) -> "StageTimer._Span":
            self._started = time.perf_counter()
            return self

        def __exit__(self, *exc_info) -> None:
            elapsed = time.perf_counter() - self._started
            seconds = self._timer.seconds
            seconds[self._name] = seconds.get(self._name, 0.0) + elapsed

    def span(self, name: str) -> "_Span":
        """Context manager adding its elapsed time to sub-stage ``name``."""
        return self._Span(self, name)
