"""Reference-vs-fast engine comparison on a single compilation.

:func:`compare_engines` runs one (circuit, method) job through the pipeline
twice — once per engine — and reports wall-clock, counters and schedule
parity side by side.  It backs the ``repro profile`` CLI subcommand and the
``benchmarks/test_engine_speed.py`` perf baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.circuit import Circuit
from repro.core.ecmas import EcmasOptions


@dataclass
class EngineComparison:
    """Measured outcome of compiling one job with both engines."""

    circuit: str
    method: str
    cycles: int
    schedules_identical: bool
    compile_seconds: dict[str, float] = field(default_factory=dict)
    schedule_seconds: dict[str, float] = field(default_factory=dict)
    counters: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def compile_speedup(self) -> float:
        """Whole-pipeline wall-clock ratio (reference / fast)."""
        fast = self.compile_seconds.get("fast", 0.0)
        return self.compile_seconds.get("reference", 0.0) / fast if fast else 0.0

    @property
    def schedule_speedup(self) -> float:
        """Schedule-stage wall-clock ratio (reference / fast) — the hot path."""
        fast = self.schedule_seconds.get("fast", 0.0)
        return self.schedule_seconds.get("reference", 0.0) / fast if fast else 0.0


def compare_engines(
    circuit: Circuit,
    method: str = "ecmas_dd_min",
    code_distance: int = 3,
    options: EcmasOptions | None = None,
) -> EngineComparison:
    """Compile ``circuit`` with both engines and measure the difference.

    Raises :class:`~repro.errors.SchedulingError` via the pipeline if the
    method cannot run; schedule parity is *reported*, not asserted — the
    differential test harness is where parity is enforced.
    """
    from repro.pipeline.registry import run_pipeline_method

    results = {}
    for engine in ("reference", "fast"):
        results[engine] = run_pipeline_method(
            circuit, method, code_distance=code_distance, options=options, engine=engine
        )
    reference, fast = results["reference"], results["fast"]
    return EngineComparison(
        circuit=circuit.name,
        method=method,
        cycles=reference.encoded.num_cycles,
        schedules_identical=(
            reference.encoded.num_cycles == fast.encoded.num_cycles
            and reference.encoded.operations == fast.encoded.operations
        ),
        compile_seconds={
            "reference": reference.compile_seconds,
            "fast": fast.compile_seconds,
        },
        schedule_seconds={
            "reference": reference.stage_seconds("schedule"),
            "fast": fast.stage_seconds("schedule"),
        },
        counters={
            "reference": dict(reference.counters or {}),
            "fast": dict(fast.counters or {}),
        },
    )
