"""Exception hierarchy for the Ecmas reproduction.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch library failures without also swallowing programming errors
such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class CircuitError(ReproError):
    """Raised when a circuit is constructed or manipulated inconsistently."""


class QasmError(ReproError):
    """Raised when OpenQASM source cannot be lexed, parsed, or expanded."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class ChipError(ReproError):
    """Raised when a chip configuration is invalid or too small for a circuit."""


class MappingError(ReproError):
    """Raised when an initial tile mapping cannot be produced or is invalid."""


class RoutingError(ReproError):
    """Raised when path routing fails in a way the scheduler cannot recover from."""


class SchedulingError(ReproError):
    """Raised when a scheduler cannot produce a valid encoded circuit."""


class ValidationError(ReproError):
    """Raised by :mod:`repro.verify` when an encoded circuit violates a constraint."""


class PartitionError(ReproError):
    """Raised when graph partitioning receives invalid input."""
