"""Multilevel graph coarsening for the fast placement engine.

METIS-style scheme: repeatedly contract a heavy-edge matching (accumulating
vertex and edge weights) until the graph is small, bisect the coarsest graph,
then uncoarsen — projecting the partition one level finer and running
Fiduccia–Mattheyses refinement (:func:`repro.partition.kl.fm_refine`) at each
level.  Because a coarse vertex carries the count of fine vertices it
contracts, balance targets project exactly, and the finest level refines at
unit vertex weights where the requested side sizes are restored exactly.

The driver :func:`multilevel_bisection` is signature-compatible with
:func:`repro.partition.kl.kernighan_lin_bisection`, so the recursive grid
placement can swap between the two cores.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.errors import PartitionError
from repro.partition.kl import WeightMap, fm_refine, kernighan_lin_bisection

#: Below this size the classic KL core is both fast enough and higher quality.
COARSEST_SIZE = 24

#: Non-integral edge weights are scaled by this factor before rounding to int.
WEIGHT_SCALE = 1024


def quantize_weights(weights: WeightMap) -> dict[tuple[int, int], int]:
    """Map float edge weights to the integers FM gain buckets require.

    Integral weights (the common case — communication weights are CNOT
    counts) pass through exactly; otherwise everything is scaled by
    :data:`WEIGHT_SCALE` and rounded, preserving relative magnitudes to
    about three decimal digits.
    """
    if all(float(w).is_integer() for w in weights.values()):
        return {edge: int(w) for edge, w in weights.items()}
    return {edge: round(w * WEIGHT_SCALE) for edge, w in weights.items()}


def _build_csr(
    n: int, edges: dict[tuple[int, int], int]
) -> tuple[list[int], list[int], list[int]]:
    """CSR adjacency over contiguous ids from an ``(a, b) -> weight`` map."""
    degree = [0] * n
    for a, b in edges:
        degree[a] += 1
        degree[b] += 1
    adj_index = [0] * (n + 1)
    for v in range(n):
        adj_index[v + 1] = adj_index[v] + degree[v]
    adj_vertex = [0] * adj_index[n]
    adj_weight = [0] * adj_index[n]
    cursor = adj_index[:n]
    for (a, b), w in edges.items():
        adj_vertex[cursor[a]] = b
        adj_weight[cursor[a]] = w
        cursor[a] += 1
        adj_vertex[cursor[b]] = a
        adj_weight[cursor[b]] = w
        cursor[b] += 1
    return adj_index, adj_vertex, adj_weight


def heavy_edge_matching(
    adj_index: Sequence[int],
    adj_vertex: Sequence[int],
    adj_weight: Sequence[int],
    vertex_weight: Sequence[int],
    weight_cap: int,
    rng: random.Random,
) -> list[int]:
    """Match each vertex with its heaviest-edge unmatched neighbor.

    Vertices are visited in a seeded random order (the stochastic step that
    gives ``best_placement`` attempt diversity); ties between equally heavy
    edges break toward the smaller neighbor id.  Pairs whose combined vertex
    weight would exceed ``weight_cap`` are skipped so no coarse vertex grows
    large enough to make balanced bisection impossible.  Returns
    ``match[v]`` with ``match[v] == v`` for unmatched singletons.
    """
    n = len(vertex_weight)
    order = list(range(n))
    rng.shuffle(order)
    match = [-1] * n
    for v in order:
        if match[v] != -1:
            continue
        best_u = -1
        best_w = -1
        for k in range(adj_index[v], adj_index[v + 1]):
            u = adj_vertex[k]
            w = adj_weight[k]
            if match[u] != -1 or u == v:
                continue
            if vertex_weight[v] + vertex_weight[u] > weight_cap:
                continue
            if w > best_w or (w == best_w and u < best_u):
                best_u, best_w = u, w
        if best_u != -1:
            match[v] = best_u
            match[best_u] = v
        else:
            match[v] = v
    return match


def contract(
    adj_index: Sequence[int],
    adj_vertex: Sequence[int],
    adj_weight: Sequence[int],
    vertex_weight: Sequence[int],
    match: Sequence[int],
) -> tuple[list[int], list[int], list[int], list[int], list[int]]:
    """Contract matched pairs into coarse vertices, accumulating weights.

    Coarse ids are assigned in fine-id order (deterministic).  Parallel
    edges between coarse vertices merge by weight summation; edges internal
    to a pair disappear (they can never be cut at this level or above).
    Returns ``(adj_index, adj_vertex, adj_weight, vertex_weight, coarse_of)``
    where ``coarse_of[fine] -> coarse`` is the projection map.
    """
    n = len(vertex_weight)
    coarse_of = [-1] * n
    coarse_weight: list[int] = []
    for v in range(n):
        if coarse_of[v] != -1:
            continue
        partner = match[v]
        cid = len(coarse_weight)
        coarse_of[v] = cid
        weight = vertex_weight[v]
        if partner != v:
            coarse_of[partner] = cid
            weight += vertex_weight[partner]
        coarse_weight.append(weight)
    coarse_edges: dict[tuple[int, int], int] = {}
    for v in range(n):
        cv = coarse_of[v]
        for k in range(adj_index[v], adj_index[v + 1]):
            u = adj_vertex[k]
            if u <= v:
                continue
            cu = coarse_of[u]
            if cv == cu:
                continue
            edge = (cv, cu) if cv < cu else (cu, cv)
            coarse_edges[edge] = coarse_edges.get(edge, 0) + adj_weight[k]
    c_index, c_vertex, c_weight = _build_csr(len(coarse_weight), coarse_edges)
    return c_index, c_vertex, c_weight, coarse_weight, coarse_of


def _greedy_initial(vertex_weight: Sequence[int], target_a: int) -> list[int]:
    """Seed the coarsest bisection: heavy vertices first, to the emptier side."""
    order = sorted(range(len(vertex_weight)), key=lambda v: (-vertex_weight[v], v))
    side = [0] * len(vertex_weight)
    total = sum(vertex_weight)
    weight_a = 0
    weight_b = 0
    target_b = total - target_a
    for v in order:
        if target_a - weight_a >= target_b - weight_b:
            side[v] = 0
            weight_a += vertex_weight[v]
        else:
            side[v] = 1
            weight_b += vertex_weight[v]
    return side


def _force_exact(
    adj_index: Sequence[int],
    adj_vertex: Sequence[int],
    adj_weight: Sequence[int],
    side: list[int],
    target_a: int,
) -> None:
    """Restore exact unit-weight balance by moving best-gain heavy-side vertices.

    Refinement at the finest level converges to the exact target in practice
    (projection deviations are at most one matching pair); this is the
    deterministic backstop that makes exactness a guarantee rather than an
    expectation, since the recursive placement requires side sizes to equal
    region capacities.
    """
    count_a = sum(1 for s in side if s == 0)
    while count_a != target_a:
        heavy = 0 if count_a > target_a else 1
        best_vertex = -1
        best_gain = None
        for v in range(len(side)):
            if side[v] != heavy:
                continue
            gain = 0
            for k in range(adj_index[v], adj_index[v + 1]):
                w = adj_weight[k]
                gain += w if side[adj_vertex[k]] != heavy else -w
            if best_gain is None or gain > best_gain:
                best_vertex, best_gain = v, gain
        side[best_vertex] = 1 - heavy
        count_a += 1 if heavy == 1 else -1


def multilevel_bisection(
    vertices: Sequence[int],
    weights: WeightMap,
    max_passes: int = 8,
    seed: int | None = None,
    size_a: int | None = None,
) -> tuple[set[int], set[int]]:
    """Bisect ``vertices`` via coarsen → bisect → uncoarsen+refine.

    Drop-in alternative to :func:`kernighan_lin_bisection` (same vertex /
    weight-map / ``size_a`` contract, sizes honored exactly) with
    near-linear cost in the number of edges: each FM pass is O(V + E) and
    the level hierarchy shrinks geometrically.  Small inputs delegate to
    the classic KL core, which is higher quality when the all-pairs scan
    is affordable.
    """
    vertex_list = list(vertices)
    if len(vertex_list) < 2:
        raise PartitionError("bisection needs at least two vertices")
    if len(set(vertex_list)) != len(vertex_list):
        raise PartitionError("duplicate vertices in bisection input")
    n = len(vertex_list)
    if size_a is not None and not 0 < size_a < n:
        raise PartitionError(f"size_a={size_a} must be strictly between 0 and {n}")
    if n <= COARSEST_SIZE:
        return kernighan_lin_bisection(
            vertex_list, weights, max_passes=max_passes, seed=seed, size_a=size_a
        )
    target_a = size_a if size_a is not None else (n + 1) // 2

    local_of = {vertex: index for index, vertex in enumerate(vertex_list)}
    local_edges: dict[tuple[int, int], int] = {}
    for (a, b), w in quantize_weights(weights).items():
        if a in local_of and b in local_of and a != b:
            la, lb = local_of[a], local_of[b]
            edge = (la, lb) if la < lb else (lb, la)
            local_edges[edge] = local_edges.get(edge, 0) + w
    rng = random.Random(seed)
    weight_cap = max(4, n // 8)

    # Coarsening: stack of (csr..., vertex_weight, projection to this level).
    adj = _build_csr(n, local_edges)
    vertex_weight = [1] * n
    levels: list[tuple[tuple[list[int], list[int], list[int]], list[int], list[int]]] = []
    while len(vertex_weight) > COARSEST_SIZE:
        match = heavy_edge_matching(*adj, vertex_weight, weight_cap, rng)
        c_index, c_vertex, c_weight, c_vw, coarse_of = contract(*adj, vertex_weight, match)
        if len(c_vw) > 0.9 * len(vertex_weight):
            break  # matching stalled (weight cap / disconnection); stop coarsening
        levels.append((adj, vertex_weight, coarse_of))
        adj = (c_index, c_vertex, c_weight)
        vertex_weight = c_vw

    side = _greedy_initial(vertex_weight, target_a)
    max_vw = max(vertex_weight)
    fm_refine(
        *adj,
        side,
        vertex_weight,
        target_a,
        move_tolerance=max_vw,
        accept_tolerance=max_vw - 1,
        max_passes=max_passes,
    )
    while levels:
        (adj, vertex_weight, coarse_of) = levels.pop()
        side = [side[coarse_of[v]] for v in range(len(vertex_weight))]
        max_vw = max(vertex_weight)
        fm_refine(
            *adj,
            side,
            vertex_weight,
            target_a,
            move_tolerance=max_vw,
            accept_tolerance=max_vw - 1,
            max_passes=max_passes,
        )
    _force_exact(*adj, side, target_a)

    side_a = {vertex_list[v] for v in range(n) if side[v] == 0}
    side_b = {vertex_list[v] for v in range(n) if side[v] == 1}
    return side_a, side_b
