"""Kernighan–Lin / Fiduccia–Mattheyses weighted graph bisection.

The paper uses METIS to map logical qubits onto the tile array according to
the communication graph.  METIS is a multilevel refinement partitioner whose
core refinement step is Kernighan–Lin / Fiduccia–Mattheyses; this module
implements both refinement cores from scratch (the recursive and multilevel
drivers live in :mod:`repro.partition.placement` and
:mod:`repro.partition.coarsen`):

* :func:`kernighan_lin_bisection` — the classic KL formulation: repeatedly
  compute gains ``D[v] = external(v) - internal(v)``, greedily swap the
  highest-gain *pair*, lock the swapped vertices, and keep the best prefix
  of swaps of each pass.  The pair search is an all-pairs scan, O(n²) per
  swap — obviously correct, and the reference placement engine's core.
* :func:`fm_refine` + :class:`GainBuckets` — the Fiduccia–Mattheyses
  formulation over contiguous local vertex ids: per-vertex gains indexed
  into array-backed bucket lists (intrusive doubly-linked lists over flat
  arrays, mirroring the CompactRoutingGraph idiom of
  :mod:`repro.chip.graph_arrays`), single-vertex moves under a balance
  window, O(degree) gain updates per move.  This is the fast placement
  engine's core; one pass costs O(V + E) instead of O(n³).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.errors import PartitionError

#: Weighted adjacency: ``weights[(a, b)] = w`` with ``a < b``.
WeightMap = dict[tuple[int, int], float]


def _edge(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a < b else (b, a)


def cut_weight(weights: WeightMap, side_a: set[int], side_b: set[int]) -> float:
    """Total weight of edges crossing the bisection."""
    total = 0.0
    for (a, b), w in weights.items():
        if (a in side_a and b in side_b) or (a in side_b and b in side_a):
            total += w
    return total


def _neighbor_weights(weights: WeightMap, vertices: Sequence[int]) -> dict[int, dict[int, float]]:
    adjacency: dict[int, dict[int, float]] = {v: {} for v in vertices}
    for (a, b), w in weights.items():
        if a in adjacency and b in adjacency:
            adjacency[a][b] = adjacency[a].get(b, 0.0) + w
            adjacency[b][a] = adjacency[b].get(a, 0.0) + w
    return adjacency


def kernighan_lin_bisection(
    vertices: Sequence[int],
    weights: WeightMap,
    max_passes: int = 10,
    seed: int | None = None,
    initial: tuple[set[int], set[int]] | None = None,
    size_a: int | None = None,
) -> tuple[set[int], set[int]]:
    """Bisect ``vertices`` into two halves with small cut weight.

    By default the split is balanced (sizes differ by at most one vertex);
    ``size_a`` requests an explicit size for the first side, which the
    recursive grid placement uses when a region splits unevenly.  ``initial``
    may provide a starting partition (e.g. from a previous level of
    recursion); otherwise a random split of the requested sizes seeds the
    refinement.  KL passes swap vertex pairs, so the requested sizes are
    preserved exactly — which is also why an ``initial`` partition whose
    first side does not already have ``size_a`` vertices is rejected rather
    than silently refined at the wrong balance.
    """
    vertex_list = list(vertices)
    if len(vertex_list) < 2:
        raise PartitionError("bisection needs at least two vertices")
    if len(set(vertex_list)) != len(vertex_list):
        raise PartitionError("duplicate vertices in bisection input")
    if size_a is not None and not 0 < size_a < len(vertex_list):
        raise PartitionError(f"size_a={size_a} must be strictly between 0 and {len(vertex_list)}")
    rng = random.Random(seed)
    if initial is None:
        shuffled = vertex_list[:]
        rng.shuffle(shuffled)
        half = size_a if size_a is not None else (len(shuffled) + 1) // 2
        side_a, side_b = set(shuffled[:half]), set(shuffled[half:])
    else:
        side_a, side_b = set(initial[0]), set(initial[1])
        if side_a | side_b != set(vertex_list) or side_a & side_b:
            raise PartitionError("initial partition does not cover the vertex set")
        if size_a is not None and len(side_a) != size_a:
            raise PartitionError(
                f"initial partition has {len(side_a)} vertices on the first side "
                f"but size_a={size_a} was requested; KL swaps preserve sizes, so "
                f"the initial split must already match"
            )
    adjacency = _neighbor_weights(weights, vertex_list)

    for _ in range(max_passes):
        improved = _kl_pass(side_a, side_b, adjacency)
        if not improved:
            break
    return side_a, side_b


def _gains(side_a: set[int], side_b: set[int], adjacency: dict[int, dict[int, float]]) -> dict[int, float]:
    gains: dict[int, float] = {}
    for vertex, neighbors in adjacency.items():
        own = side_a if vertex in side_a else side_b
        external = sum(w for n, w in neighbors.items() if n not in own)
        internal = sum(w for n, w in neighbors.items() if n in own)
        gains[vertex] = external - internal
    return gains


def _kl_pass(side_a: set[int], side_b: set[int], adjacency: dict[int, dict[int, float]]) -> bool:
    """One KL pass; returns True when the partition was improved."""
    gains = _gains(side_a, side_b, adjacency)
    locked: set[int] = set()
    swap_sequence: list[tuple[int, int, float]] = []
    work_a, work_b = set(side_a), set(side_b)

    for _ in range(min(len(work_a), len(work_b))):
        best: tuple[float, int, int] | None = None
        # Sorted scans pin the gain tie-break to vertex order: set iteration
        # order is hash-history-dependent, and the winning pair of an
        # equal-gain tie must not vary between two runs that feed the
        # golden-parity harness.
        for a in sorted(work_a):
            if a in locked:
                continue
            for b in sorted(work_b):
                if b in locked:
                    continue
                cross = adjacency[a].get(b, 0.0)
                gain = gains[a] + gains[b] - 2.0 * cross
                if best is None or gain > best[0]:
                    best = (gain, a, b)
        if best is None:
            break
        gain, a, b = best
        swap_sequence.append((a, b, gain))
        locked.add(a)
        locked.add(b)
        # Update gains as if a and b were swapped.
        for vertex, neighbors in adjacency.items():
            if vertex in locked:
                continue
            delta = 0.0
            in_a = vertex in work_a
            if a in neighbors:
                delta += (2.0 if in_a else -2.0) * neighbors[a]
            if b in neighbors:
                delta += (-2.0 if in_a else 2.0) * neighbors[b]
            gains[vertex] += delta
        work_a.remove(a)
        work_b.remove(b)
        work_a.add(b)
        work_b.add(a)

    # Keep the best prefix of swaps.
    best_total = 0.0
    best_prefix = 0
    running = 0.0
    for index, (_, _, gain) in enumerate(swap_sequence, start=1):
        running += gain
        if running > best_total + 1e-12:
            best_total = running
            best_prefix = index
    if best_prefix == 0:
        return False
    for a, b, _ in swap_sequence[:best_prefix]:
        side_a.remove(a)
        side_b.remove(b)
        side_a.add(b)
        side_b.add(a)
    return True


class GainBuckets:
    """Array-backed gain bucket lists over contiguous vertex ids.

    FM gains are integers bounded by the maximum weighted degree, so every
    possible gain maps to one bucket.  Buckets are intrusive doubly-linked
    lists stored in flat arrays (``_head`` per bucket, ``_next``/``_prev``
    per vertex), the same idiom :class:`repro.chip.graph_arrays.CompactRoutingGraph`
    uses for adjacency: no per-entry objects, O(1) insert/remove, and a
    lazily-lowered top pointer so finding the best gain is amortized O(1).
    """

    def __init__(self, count: int, max_gain: int) -> None:
        if max_gain < 1:
            max_gain = 1
        self.max_gain = max_gain
        self._head = [-1] * (2 * max_gain + 1)
        self._next = [-1] * count
        self._prev = [-1] * count
        self._gain = [0] * count
        self._member = [False] * count
        self._top = -1

    def __contains__(self, vertex: int) -> bool:
        return self._member[vertex]

    def gain_of(self, vertex: int) -> int:
        """Current gain of ``vertex`` (only meaningful while a member)."""
        return self._gain[vertex]

    def insert(self, vertex: int, gain: int) -> None:
        """Add ``vertex`` at ``gain``, pushing it to the bucket head."""
        index = gain + self.max_gain
        head = self._head[index]
        self._gain[vertex] = gain
        self._next[vertex] = head
        self._prev[vertex] = -1
        if head != -1:
            self._prev[head] = vertex
        self._head[index] = vertex
        self._member[vertex] = True
        if index > self._top:
            self._top = index

    def remove(self, vertex: int) -> None:
        """Unlink ``vertex`` from its bucket (e.g. when it gets locked)."""
        index = self._gain[vertex] + self.max_gain
        nxt, prv = self._next[vertex], self._prev[vertex]
        if prv == -1:
            self._head[index] = nxt
        else:
            self._next[prv] = nxt
        if nxt != -1:
            self._prev[nxt] = prv
        self._member[vertex] = False

    def adjust(self, vertex: int, delta: int) -> None:
        """Shift a member vertex's gain by ``delta`` in O(1)."""
        if delta:
            gain = self._gain[vertex] + delta
            self.remove(vertex)
            self.insert(vertex, gain)

    def best(self, feasible) -> int:
        """Highest-gain member vertex satisfying ``feasible``, or ``-1``.

        Scans buckets from the top pointer downward; empty buckets at the
        top are compacted away so repeated calls stay amortized O(1) plus
        the (rare) infeasible entries skipped.
        """
        index = self._top
        compacting = True
        while index >= 0:
            vertex = self._head[index]
            if vertex == -1:
                if compacting:
                    self._top = index - 1
                index -= 1
                continue
            compacting = False
            while vertex != -1:
                if feasible(vertex):
                    return vertex
                vertex = self._next[vertex]
            index -= 1
        return -1


def cut_weight_arrays(
    adj_index: Sequence[int],
    adj_vertex: Sequence[int],
    adj_weight: Sequence[int],
    side: Sequence[int],
) -> int:
    """Cut weight of a 0/1 side assignment over a CSR adjacency."""
    total = 0
    for v in range(len(side)):
        for k in range(adj_index[v], adj_index[v + 1]):
            u = adj_vertex[k]
            if u > v and side[u] != side[v]:
                total += adj_weight[k]
    return total


def fm_refine(
    adj_index: Sequence[int],
    adj_vertex: Sequence[int],
    adj_weight: Sequence[int],
    side: list[int],
    vertex_weight: Sequence[int],
    target_a: int,
    *,
    move_tolerance: int = 0,
    accept_tolerance: int = 0,
    max_passes: int = 8,
) -> int:
    """Fiduccia–Mattheyses refinement of a 0/1 ``side`` assignment in place.

    ``adj_index``/``adj_vertex``/``adj_weight`` is a CSR adjacency over
    contiguous vertex ids with **integer** weights (quantize floats before
    calling); ``vertex_weight`` carries the accumulated weights of coarsened
    vertices and ``target_a`` the desired total vertex weight on side 0.

    Each pass moves single vertices, best gain first, under a balance
    window: a move is feasible while the resulting deviation from
    ``target_a`` stays within ``move_tolerance`` *or* shrinks.  The pass
    then keeps the prefix of moves minimizing
    ``(balance violation beyond accept_tolerance, -cumulative gain)`` —
    strictly better than keeping nothing.  Consequences: a partition that
    already satisfies ``accept_tolerance`` only ever gets a strictly
    smaller cut at unchanged-or-better balance (so the cut never
    increases), while an out-of-window partition (e.g. freshly projected
    from a coarser level) is pulled back toward ``target_a`` even when
    that costs cut weight.  With unit vertex weights and
    ``accept_tolerance=0`` the requested sizes are restored exactly.

    Returns the final cut weight.
    """
    n = len(side)
    max_gain = 1
    for v in range(n):
        wdeg = 0
        for k in range(adj_index[v], adj_index[v + 1]):
            wdeg += adj_weight[k]
        if wdeg > max_gain:
            max_gain = wdeg
    for _ in range(max_passes):
        if not _fm_pass(
            adj_index,
            adj_vertex,
            adj_weight,
            side,
            vertex_weight,
            target_a,
            move_tolerance,
            accept_tolerance,
            max_gain,
        ):
            break
    return cut_weight_arrays(adj_index, adj_vertex, adj_weight, side)


def _fm_pass(
    adj_index: Sequence[int],
    adj_vertex: Sequence[int],
    adj_weight: Sequence[int],
    side: list[int],
    vertex_weight: Sequence[int],
    target_a: int,
    move_tolerance: int,
    accept_tolerance: int,
    max_gain: int,
) -> bool:
    """One FM pass; returns True when a non-empty prefix was accepted."""
    n = len(side)
    weight_a = sum(vertex_weight[v] for v in range(n) if side[v] == 0)
    buckets = GainBuckets(n, max_gain)
    for v in range(n):
        gain = 0
        for k in range(adj_index[v], adj_index[v + 1]):
            w = adj_weight[k]
            gain += w if side[adj_vertex[k]] != side[v] else -w
        buckets.insert(v, gain)

    best_violation = max(0, abs(weight_a - target_a) - accept_tolerance)
    best_gain = 0
    best_prefix = 0
    cumulative = 0
    moves: list[int] = []
    while True:
        deviation = abs(weight_a - target_a)

        def feasible(v: int) -> bool:
            delta = -vertex_weight[v] if side[v] == 0 else vertex_weight[v]
            after = abs(weight_a + delta - target_a)
            return after <= move_tolerance or after < deviation

        vertex = buckets.best(feasible)
        if vertex < 0:
            break
        cumulative += buckets.gain_of(vertex)
        buckets.remove(vertex)
        old = side[vertex]
        side[vertex] = 1 - old
        weight_a += vertex_weight[vertex] if old == 1 else -vertex_weight[vertex]
        moves.append(vertex)
        for k in range(adj_index[vertex], adj_index[vertex + 1]):
            u = adj_vertex[k]
            if buckets._member[u]:
                w = adj_weight[k]
                buckets.adjust(u, 2 * w if side[u] == old else -2 * w)
        violation = max(0, abs(weight_a - target_a) - accept_tolerance)
        if (violation, -cumulative) < (best_violation, -best_gain):
            best_violation = violation
            best_gain = cumulative
            best_prefix = len(moves)

    for vertex in moves[best_prefix:]:
        side[vertex] = 1 - side[vertex]
    return best_prefix > 0
