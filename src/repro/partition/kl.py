"""Kernighan–Lin weighted graph bisection.

The paper uses METIS to map logical qubits onto the tile array according to
the communication graph.  METIS is a multilevel refinement partitioner whose
core refinement step is Kernighan–Lin / Fiduccia–Mattheyses; this module
implements weighted KL bisection from scratch, which is all the mapping stage
needs (the recursive driver lives in :mod:`repro.partition.placement`).

The implementation follows the classic formulation: repeatedly compute gains
``D[v] = external(v) - internal(v)``, greedily swap the highest-gain pair,
lock the swapped vertices, and keep the best prefix of swaps of each pass.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.errors import PartitionError

#: Weighted adjacency: ``weights[(a, b)] = w`` with ``a < b``.
WeightMap = dict[tuple[int, int], float]


def _edge(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a < b else (b, a)


def cut_weight(weights: WeightMap, side_a: set[int], side_b: set[int]) -> float:
    """Total weight of edges crossing the bisection."""
    total = 0.0
    for (a, b), w in weights.items():
        if (a in side_a and b in side_b) or (a in side_b and b in side_a):
            total += w
    return total


def _neighbor_weights(weights: WeightMap, vertices: Sequence[int]) -> dict[int, dict[int, float]]:
    adjacency: dict[int, dict[int, float]] = {v: {} for v in vertices}
    for (a, b), w in weights.items():
        if a in adjacency and b in adjacency:
            adjacency[a][b] = adjacency[a].get(b, 0.0) + w
            adjacency[b][a] = adjacency[b].get(a, 0.0) + w
    return adjacency


def kernighan_lin_bisection(
    vertices: Sequence[int],
    weights: WeightMap,
    max_passes: int = 10,
    seed: int | None = None,
    initial: tuple[set[int], set[int]] | None = None,
    size_a: int | None = None,
) -> tuple[set[int], set[int]]:
    """Bisect ``vertices`` into two halves with small cut weight.

    By default the split is balanced (sizes differ by at most one vertex);
    ``size_a`` requests an explicit size for the first side, which the
    recursive grid placement uses when a region splits unevenly.  ``initial``
    may provide a starting partition (e.g. from a previous level of
    recursion); otherwise a random split of the requested sizes seeds the
    refinement.  KL passes swap vertex pairs, so the requested sizes are
    preserved exactly.
    """
    vertex_list = list(vertices)
    if len(vertex_list) < 2:
        raise PartitionError("bisection needs at least two vertices")
    if len(set(vertex_list)) != len(vertex_list):
        raise PartitionError("duplicate vertices in bisection input")
    if size_a is not None and not 0 < size_a < len(vertex_list):
        raise PartitionError(f"size_a={size_a} must be strictly between 0 and {len(vertex_list)}")
    rng = random.Random(seed)
    if initial is None:
        shuffled = vertex_list[:]
        rng.shuffle(shuffled)
        half = size_a if size_a is not None else (len(shuffled) + 1) // 2
        side_a, side_b = set(shuffled[:half]), set(shuffled[half:])
    else:
        side_a, side_b = set(initial[0]), set(initial[1])
        if side_a | side_b != set(vertex_list) or side_a & side_b:
            raise PartitionError("initial partition does not cover the vertex set")
    adjacency = _neighbor_weights(weights, vertex_list)

    for _ in range(max_passes):
        improved = _kl_pass(side_a, side_b, adjacency)
        if not improved:
            break
    return side_a, side_b


def _gains(side_a: set[int], side_b: set[int], adjacency: dict[int, dict[int, float]]) -> dict[int, float]:
    gains: dict[int, float] = {}
    for vertex, neighbors in adjacency.items():
        own = side_a if vertex in side_a else side_b
        external = sum(w for n, w in neighbors.items() if n not in own)
        internal = sum(w for n, w in neighbors.items() if n in own)
        gains[vertex] = external - internal
    return gains


def _kl_pass(side_a: set[int], side_b: set[int], adjacency: dict[int, dict[int, float]]) -> bool:
    """One KL pass; returns True when the partition was improved."""
    gains = _gains(side_a, side_b, adjacency)
    locked: set[int] = set()
    swap_sequence: list[tuple[int, int, float]] = []
    work_a, work_b = set(side_a), set(side_b)

    for _ in range(min(len(work_a), len(work_b))):
        best: tuple[float, int, int] | None = None
        for a in work_a:
            if a in locked:
                continue
            for b in work_b:
                if b in locked:
                    continue
                cross = adjacency[a].get(b, 0.0)
                gain = gains[a] + gains[b] - 2.0 * cross
                if best is None or gain > best[0]:
                    best = (gain, a, b)
        if best is None:
            break
        gain, a, b = best
        swap_sequence.append((a, b, gain))
        locked.add(a)
        locked.add(b)
        # Update gains as if a and b were swapped.
        for vertex, neighbors in adjacency.items():
            if vertex in locked:
                continue
            delta = 0.0
            in_a = vertex in work_a
            if a in neighbors:
                delta += (2.0 if in_a else -2.0) * neighbors[a]
            if b in neighbors:
                delta += (-2.0 if in_a else 2.0) * neighbors[b]
            gains[vertex] += delta
        work_a.remove(a)
        work_b.remove(b)
        work_a.add(b)
        work_b.add(a)

    # Keep the best prefix of swaps.
    best_total = 0.0
    best_prefix = 0
    running = 0.0
    for index, (_, _, gain) in enumerate(swap_sequence, start=1):
        running += gain
        if running > best_total + 1e-12:
            best_total = running
            best_prefix = index
    if best_prefix == 0:
        return False
    for a, b, _ in swap_sequence[:best_prefix]:
        side_a.remove(a)
        side_b.remove(b)
        side_a.add(b)
        side_b.add(a)
    return True
