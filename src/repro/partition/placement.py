"""Recursive-bisection placement of logical qubits onto a tile grid.

This is the METIS-substitute used by the *mapping establishing* step of
Ecmas: the communication graph is recursively bisected (Kernighan–Lin) while
the target rectangle of tile slots is split alongside it, so heavily
communicating qubits land in nearby tiles.  The quality measure is the
paper's communication cost ``f = Σ γ_ij · l_ij`` (CNOT count times Manhattan
distance), exposed as :func:`communication_cost`.

Also provided:

* :func:`trivial_snake_placement` — the boustrophedon layout EDPCI uses,
* :func:`spectral_placement` — a numpy-based spectral alternative used by the
  ablation benches,
* :func:`random_placement` — the random baseline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.chip.chip import Chip, TileSlot
from repro.circuits.comm_graph import CommunicationGraph
from repro.errors import ChipError, MappingError
from repro.partition.coarsen import multilevel_bisection
from repro.partition.kl import WeightMap, kernighan_lin_bisection

#: Dead tile slots as ``(row, col)`` pairs; the empty set means a pristine chip.
NO_DEAD_TILES: frozenset[tuple[int, int]] = frozenset()

#: Placement engines: ``reference`` = classic KL recursive bisection (the
#: golden baseline), ``fast`` = multilevel coarsen/FM bisection.
PLACEMENT_ENGINES: tuple[str, ...] = ("reference", "fast")

#: Bisection core backing each placement engine.
_BISECTION_CORES = {
    "reference": kernighan_lin_bisection,
    "fast": multilevel_bisection,
}


def check_placement_engine(engine: str) -> str:
    """Validate a placement-engine name, returning it for chaining."""
    if engine not in PLACEMENT_ENGINES:
        raise MappingError(
            f"unknown placement engine {engine!r}; expected one of {PLACEMENT_ENGINES}"
        )
    return engine


def _alive_slots(
    rows: int, cols: int, dead: frozenset[tuple[int, int]], row_lo: int = 0, col_lo: int = 0
) -> list[TileSlot]:
    """Alive slots of the ``[row_lo, rows) × [col_lo, cols)`` window, row-major."""
    return [
        TileSlot(r, c)
        for r in range(row_lo, rows)
        for c in range(col_lo, cols)
        if (r, c) not in dead
    ]


def _check_fits(
    num_qubits: int, rows: int, cols: int, dead: frozenset[tuple[int, int]]
) -> list[TileSlot]:
    """The alive slots of the window, raising when the circuit cannot fit.

    A window too small even when pristine is a :class:`MappingError`
    (caller's geometry is wrong); a window made too small by dead tiles is a
    :class:`ChipError` (the chip's defects are the problem).
    """
    if rows * cols < num_qubits:
        raise MappingError(f"tile array {rows}x{cols} too small for {num_qubits} qubits")
    alive = _alive_slots(rows, cols, dead)
    if len(alive) < num_qubits:
        raise ChipError(
            f"tile array {rows}x{cols} has only {len(alive)} alive slots "
            f"({rows * cols - len(alive)} dead) but the circuit needs {num_qubits} qubits"
        )
    return alive


@dataclass(frozen=True)
class Placement:
    """An assignment of logical qubits to tile slots."""

    qubit_to_slot: dict[int, TileSlot]

    def slot_of(self, qubit: int) -> TileSlot:
        """Tile slot hosting ``qubit``."""
        try:
            return self.qubit_to_slot[qubit]
        except KeyError as exc:
            raise MappingError(f"qubit {qubit} has no tile assignment") from exc

    def slots(self) -> set[TileSlot]:
        """All occupied slots."""
        return set(self.qubit_to_slot.values())

    def num_qubits(self) -> int:
        """Number of placed qubits."""
        return len(self.qubit_to_slot)

    def validate(self, chip: Chip) -> None:
        """Raise :class:`MappingError` if the placement is inconsistent with ``chip``."""
        slots = list(self.qubit_to_slot.values())
        if len(set(slots)) != len(slots):
            raise MappingError("two qubits share a tile slot")
        for slot in slots:
            if not chip.contains_slot(slot):
                raise MappingError(f"slot {slot} outside the {chip.tile_rows}x{chip.tile_cols} tile array")
            if chip.is_dead_slot(slot):
                raise MappingError(f"slot {slot} is a dead tile on this chip")


def communication_cost(graph: CommunicationGraph, placement: Placement, distance=None) -> float:
    """The paper's mapping cost function ``f = Σ γ_ij · l(T_i, T_j)``.

    ``distance`` is the slot metric; omitted, it is Manhattan distance (the
    paper's ``l_ij`` on the square lattice).  Graph chips pass
    :meth:`~repro.chip.chip.Chip.slot_distance`, the BFS hop metric —
    identical to Manhattan on square chips, so callers may thread it
    unconditionally.
    """
    if distance is None:
        distance = TileSlot.manhattan_distance
    total = 0.0
    for a, b, weight in graph.edges():
        total += weight * distance(placement.slot_of(a), placement.slot_of(b))
    return total


def _weights_from_graph(graph: CommunicationGraph) -> WeightMap:
    return {(a, b): float(w) for a, b, w in graph.edges()}


# -------------------------------------------------------------------- placements
def recursive_bisection_placement(
    graph: CommunicationGraph,
    rows: int,
    cols: int,
    seed: int | None = None,
    dead: frozenset[tuple[int, int]] = NO_DEAD_TILES,
    engine: str = "reference",
) -> Placement:
    """Place all qubits of ``graph`` into an ``rows × cols`` slot rectangle.

    Slots listed in ``dead`` are never assigned; region capacities count
    alive slots only, so defective chips bisect correctly.  ``engine``
    selects the bisection core: the classic KL ``reference`` or the
    multilevel coarsen/FM ``fast`` core (same size contract, near-linear
    cost — see :data:`PLACEMENT_ENGINES`).
    """
    _check_fits(graph.num_qubits, rows, cols, dead)
    bisect = _BISECTION_CORES[check_placement_engine(engine)]
    weights = _weights_from_graph(graph)
    qubits = list(range(graph.num_qubits))
    assignment: dict[int, TileSlot] = {}
    _place_region(qubits, weights, 0, rows, 0, cols, assignment, random.Random(seed), dead, bisect)
    return Placement(assignment)


def alive_in_window(
    row_lo: int, row_hi: int, col_lo: int, col_hi: int, dead: frozenset[tuple[int, int]]
) -> int:
    """Number of non-dead tile slots in the half-open window ``[lo, hi)``."""
    total = (row_hi - row_lo) * (col_hi - col_lo)
    if not dead:
        return total
    return total - sum(1 for r, c in dead if row_lo <= r < row_hi and col_lo <= c < col_hi)


def _place_region(
    qubits: list[int],
    weights: WeightMap,
    row_lo: int,
    row_hi: int,
    col_lo: int,
    col_hi: int,
    assignment: dict[int, TileSlot],
    rng: random.Random,
    dead: frozenset[tuple[int, int]] = NO_DEAD_TILES,
    bisect=kernighan_lin_bisection,
) -> None:
    rows = row_hi - row_lo
    cols = col_hi - col_lo
    if not qubits:
        return
    if len(qubits) == 1:
        for r in range(row_lo, row_hi):
            for c in range(col_lo, col_hi):
                if (r, c) not in dead:
                    assignment[qubits[0]] = TileSlot(r, c)
                    return
        raise MappingError("no alive slot in a placement region")  # pragma: no cover
    if rows * cols == 1:
        raise MappingError("more qubits than slots in a placement region")  # pragma: no cover
    # Split the longer dimension.
    if cols >= rows:
        split = (col_lo + col_hi) // 2
        regions = ((row_lo, row_hi, col_lo, split), (row_lo, row_hi, split, col_hi))
    else:
        split = (row_lo + row_hi) // 2
        regions = ((row_lo, split, col_lo, col_hi), (split, row_hi, col_lo, col_hi))
    slots_first = alive_in_window(*regions[0], dead)
    size_first = min(len(qubits), slots_first)
    size_second = len(qubits) - size_first
    if size_first == 0 or size_second == 0:
        # Everything fits in one half; recurse into the half with enough slots.
        target = regions[0] if size_first > 0 else regions[1]
        _place_region(qubits, weights, *target, assignment, rng, dead, bisect)
        return
    side_a, side_b = bisect(qubits, weights, seed=rng.randrange(1 << 30), size_a=size_first)
    _place_region(sorted(side_a), weights, *regions[0], assignment, rng, dead, bisect)
    _place_region(sorted(side_b), weights, *regions[1], assignment, rng, dead, bisect)


def trivial_snake_placement(
    num_qubits: int,
    rows: int,
    cols: int,
    dead: frozenset[tuple[int, int]] = NO_DEAD_TILES,
) -> Placement:
    """The EDPCI "trivial" mapping: fill rows alternately left-to-right and right-to-left.

    Dead slots are skipped in snake order, so qubits stay in boustrophedon
    sequence over the alive slots.
    """
    _check_fits(num_qubits, rows, cols, dead)
    assignment: dict[int, TileSlot] = {}
    qubit = 0
    for row in range(rows):
        columns = range(cols) if row % 2 == 0 else range(cols - 1, -1, -1)
        for col in columns:
            if qubit >= num_qubits:
                return Placement(assignment)
            if (row, col) in dead:
                continue
            assignment[qubit] = TileSlot(row, col)
            qubit += 1
    return Placement(assignment)


def random_placement(
    num_qubits: int,
    rows: int,
    cols: int,
    seed: int | None = None,
    dead: frozenset[tuple[int, int]] = NO_DEAD_TILES,
) -> Placement:
    """Uniformly random assignment of qubits to distinct alive slots."""
    slots = _check_fits(num_qubits, rows, cols, dead)
    rng = random.Random(seed)
    slots = list(slots)
    rng.shuffle(slots)
    return Placement({qubit: slots[qubit] for qubit in range(num_qubits)})


def canonicalize_eigenvector_sign(vector: np.ndarray) -> np.ndarray:
    """Fix an eigenvector's arbitrary global sign: first nonzero entry > 0.

    ``v`` and ``-v`` are equally valid eigenvectors and which one LAPACK
    returns depends on the BLAS build, so any consumer that orders by raw
    component values (spectral placement does) would be platform-dependent
    without this.  Entries within ``1e-12`` of zero are treated as zero so
    rounding noise cannot flip the canonical choice.
    """
    for component in vector:
        if abs(component) > 1e-12:
            return -vector if component < 0 else vector
    return vector


def spectral_placement(
    graph: CommunicationGraph,
    rows: int,
    cols: int,
    dead: frozenset[tuple[int, int]] = NO_DEAD_TILES,
) -> Placement:
    """Spectral placement: order qubits by the Fiedler vector, fill the grid snake-wise.

    A lightweight alternative to recursive bisection used in ablations; it
    tends to keep strongly connected qubits in adjacent grid positions.
    """
    n = graph.num_qubits
    _check_fits(n, rows, cols, dead)
    laplacian = np.zeros((n, n), dtype=float)
    for a, b, w in graph.edges():
        laplacian[a, b] -= w
        laplacian[b, a] -= w
        laplacian[a, a] += w
        laplacian[b, b] += w
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    # The Fiedler vector is the eigenvector of the second-smallest eigenvalue.
    order = np.argsort(eigenvalues)
    fiedler = eigenvectors[:, order[1]] if n > 1 else np.zeros(n)
    fiedler = canonicalize_eigenvector_sign(fiedler)
    ranking = sorted(range(n), key=lambda q: (fiedler[q], q))
    snake = trivial_snake_placement(n, rows, cols, dead=dead)
    return Placement({qubit: snake.slot_of(position) for position, qubit in enumerate(ranking)})


# --------------------------------------------------------- graph-chip placements
def _graph_ordered_slots(chip: Chip) -> list[TileSlot]:
    """Alive slots of a graph chip in spatial order (y, then x, then node id).

    The graph analogue of row-major order: snake/spectral fills walk this
    order, and bisection splits partition it along the wider coordinate axis.
    """
    coords = chip.tile_graph.coords
    return sorted(
        chip.alive_tile_slots(),
        key=lambda slot: (coords[slot.row][1], coords[slot.row][0], slot.row),
    )


def _check_fits_graph(num_qubits: int, chip: Chip) -> list[TileSlot]:
    """Alive slots of the graph chip, raising when the circuit cannot fit."""
    if chip.num_tile_slots < num_qubits:
        raise MappingError(
            f"tile graph with {chip.num_tile_slots} tiles too small for {num_qubits} qubits"
        )
    alive = _graph_ordered_slots(chip)
    if len(alive) < num_qubits:
        raise ChipError(
            f"tile graph has only {len(alive)} alive tiles "
            f"({chip.num_tile_slots - len(alive)} dead) but the circuit needs "
            f"{num_qubits} qubits"
        )
    return alive


def _split_slots(slots: list[TileSlot], coords) -> tuple[list[TileSlot], list[TileSlot]]:
    """Split a slot region in two halves along its wider coordinate axis."""
    xs = [coords[s.row][0] for s in slots]
    ys = [coords[s.row][1] for s in slots]
    if max(xs) - min(xs) >= max(ys) - min(ys):
        ordered = sorted(slots, key=lambda s: (coords[s.row][0], coords[s.row][1], s.row))
    else:
        ordered = sorted(slots, key=lambda s: (coords[s.row][1], coords[s.row][0], s.row))
    half = (len(ordered) + 1) // 2
    return ordered[:half], ordered[half:]


def _place_graph_region(
    qubits: list[int],
    weights: WeightMap,
    slots: list[TileSlot],
    assignment: dict[int, TileSlot],
    rng: random.Random,
    coords,
    bisect,
) -> None:
    if not qubits:
        return
    if len(qubits) == 1:
        assignment[qubits[0]] = min(slots, key=lambda s: s.row)
        return
    if len(slots) < len(qubits):  # pragma: no cover - guarded by _check_fits_graph
        raise MappingError("more qubits than slots in a placement region")
    first, second = _split_slots(slots, coords)
    size_first = min(len(qubits), len(first))
    size_second = len(qubits) - size_first
    if size_second == 0 and len(first) < len(slots):
        # Everything fits in the first half; shrink the region and re-split.
        _place_graph_region(qubits, weights, first, assignment, rng, coords, bisect)
        return
    side_a, side_b = bisect(qubits, weights, seed=rng.randrange(1 << 30), size_a=size_first)
    _place_graph_region(sorted(side_a), weights, first, assignment, rng, coords, bisect)
    _place_graph_region(sorted(side_b), weights, second, assignment, rng, coords, bisect)


def graph_recursive_bisection_placement(
    graph: CommunicationGraph,
    chip: Chip,
    seed: int | None = None,
    engine: str = "reference",
) -> Placement:
    """Recursive-bisection placement onto a graph chip's alive tiles.

    The communication graph is bisected exactly as on square chips (same
    KL/FM cores), while the slot region splits along the wider coordinate
    axis of the tile graph's layout instead of a grid window — heavily
    communicating qubits still land in spatially (and therefore, for the
    built-in geometries, hop-wise) nearby tiles.
    """
    alive = _check_fits_graph(graph.num_qubits, chip)
    bisect = _BISECTION_CORES[check_placement_engine(engine)]
    weights = _weights_from_graph(graph)
    assignment: dict[int, TileSlot] = {}
    _place_graph_region(
        list(range(graph.num_qubits)),
        weights,
        alive,
        assignment,
        random.Random(seed),
        chip.tile_graph.coords,
        bisect,
    )
    return Placement(assignment)


def graph_snake_placement(num_qubits: int, chip: Chip) -> Placement:
    """The trivial fill for graph chips: qubits in spatial slot order."""
    alive = _check_fits_graph(num_qubits, chip)
    return Placement({qubit: alive[qubit] for qubit in range(num_qubits)})


def graph_random_placement(num_qubits: int, chip: Chip, seed: int | None = None) -> Placement:
    """Uniformly random assignment of qubits to distinct alive graph tiles."""
    alive = _check_fits_graph(num_qubits, chip)
    rng = random.Random(seed)
    rng.shuffle(alive)
    return Placement({qubit: alive[qubit] for qubit in range(num_qubits)})


def graph_spectral_placement(graph: CommunicationGraph, chip: Chip) -> Placement:
    """Spectral placement for graph chips: Fiedler order over spatial slot order."""
    n = graph.num_qubits
    _check_fits_graph(n, chip)
    laplacian = np.zeros((n, n), dtype=float)
    for a, b, w in graph.edges():
        laplacian[a, b] -= w
        laplacian[b, a] -= w
        laplacian[a, a] += w
        laplacian[b, b] += w
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    order = np.argsort(eigenvalues)
    fiedler = eigenvectors[:, order[1]] if n > 1 else np.zeros(n)
    fiedler = canonicalize_eigenvector_sign(fiedler)
    ranking = sorted(range(n), key=lambda q: (fiedler[q], q))
    snake = graph_snake_placement(n, chip)
    return Placement({qubit: snake.slot_of(position) for position, qubit in enumerate(ranking)})


def graph_best_placement(
    graph: CommunicationGraph,
    chip: Chip,
    attempts: int = 4,
    seed: int = 0,
    engine: str = "reference",
) -> Placement:
    """Seeded multi-attempt bisection for graph chips, scored by hop distance."""
    best: Placement | None = None
    best_cost = float("inf")
    for attempt in range(max(1, attempts)):
        placement = graph_recursive_bisection_placement(
            graph, chip, seed=seed + attempt, engine=engine
        )
        cost = communication_cost(graph, placement, distance=chip.slot_distance)
        if cost < best_cost:
            best, best_cost = placement, cost
    assert best is not None
    return best


def best_placement(
    graph: CommunicationGraph,
    rows: int,
    cols: int,
    attempts: int = 4,
    seed: int = 0,
    dead: frozenset[tuple[int, int]] = NO_DEAD_TILES,
    engine: str = "reference",
) -> Placement:
    """Run several seeded recursive bisections and keep the cheapest placement.

    Mirrors the paper: "Due to the stochastic steps in the mapping generation,
    we generate multiple mappings and select the one with minimal
    communication cost."
    """
    best: Placement | None = None
    best_cost = float("inf")
    for attempt in range(max(1, attempts)):
        placement = recursive_bisection_placement(
            graph, rows, cols, seed=seed + attempt, dead=dead, engine=engine
        )
        cost = communication_cost(graph, placement)
        if cost < best_cost:
            best, best_cost = placement, cost
    assert best is not None
    return best
