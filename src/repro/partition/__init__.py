"""Graph partitioning and placement substrate (METIS substitute)."""

from repro.partition.kl import cut_weight, kernighan_lin_bisection
from repro.partition.placement import (
    Placement,
    best_placement,
    communication_cost,
    random_placement,
    recursive_bisection_placement,
    spectral_placement,
    trivial_snake_placement,
)

__all__ = [
    "kernighan_lin_bisection",
    "cut_weight",
    "Placement",
    "communication_cost",
    "recursive_bisection_placement",
    "best_placement",
    "trivial_snake_placement",
    "spectral_placement",
    "random_placement",
]
