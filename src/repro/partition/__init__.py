"""Graph partitioning and placement substrate (METIS substitute)."""

from repro.partition.coarsen import multilevel_bisection
from repro.partition.kl import GainBuckets, cut_weight, fm_refine, kernighan_lin_bisection
from repro.partition.placement import (
    PLACEMENT_ENGINES,
    Placement,
    best_placement,
    check_placement_engine,
    communication_cost,
    graph_best_placement,
    graph_random_placement,
    graph_recursive_bisection_placement,
    graph_snake_placement,
    graph_spectral_placement,
    random_placement,
    recursive_bisection_placement,
    spectral_placement,
    trivial_snake_placement,
)

__all__ = [
    "kernighan_lin_bisection",
    "multilevel_bisection",
    "fm_refine",
    "GainBuckets",
    "cut_weight",
    "Placement",
    "PLACEMENT_ENGINES",
    "check_placement_engine",
    "communication_cost",
    "recursive_bisection_placement",
    "best_placement",
    "trivial_snake_placement",
    "spectral_placement",
    "random_placement",
    "graph_recursive_bisection_placement",
    "graph_best_placement",
    "graph_snake_placement",
    "graph_spectral_placement",
    "graph_random_placement",
]
