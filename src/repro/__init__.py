"""repro — a reproduction of *Ecmas: Efficient Circuit Mapping and Scheduling
for Surface Code* (CGO 2024).

The public API mirrors the paper's toolflow:

* build or load a logical circuit (:mod:`repro.circuits`),
* describe the target chip (:mod:`repro.chip`),
* compile with :func:`repro.compile_circuit` (Ecmas) or one of the baselines
  in :mod:`repro.baselines`,
* validate and analyse the resulting encoded circuit (:mod:`repro.verify`,
  :mod:`repro.eval`).
"""

from repro.chip import (
    Chip,
    DefectSpec,
    SurfaceCodeModel,
    TileGraph,
    TileSlot,
    builtin_tile_graph,
    load_chip_spec,
    random_defects,
    save_chip_spec,
)
from repro.circuits import Circuit, CommunicationGraph, Gate, GateDAG
from repro.core import (
    EcmasOptions,
    EncodedCircuit,
    OperationKind,
    ScheduledOperation,
    chip_communication_capacity,
    circuit_parallelism_degree,
    compile_circuit,
    default_chip,
)
from repro.pipeline import (
    BatchFailure,
    BatchJob,
    BatchProgress,
    BatchResult,
    PassContext,
    Pipeline,
    PipelineResult,
    ResultCache,
    build_pipeline,
    default_cache_dir,
    run_batch,
    run_pipeline_method,
)
from repro.profiling import EngineComparison, EngineCounters, compare_engines

__version__ = "1.4.0"

__all__ = [
    "__version__",
    "Circuit",
    "Gate",
    "GateDAG",
    "CommunicationGraph",
    "Chip",
    "TileSlot",
    "TileGraph",
    "builtin_tile_graph",
    "SurfaceCodeModel",
    "DefectSpec",
    "random_defects",
    "load_chip_spec",
    "save_chip_spec",
    "compile_circuit",
    "default_chip",
    "EcmasOptions",
    "EncodedCircuit",
    "ScheduledOperation",
    "OperationKind",
    "circuit_parallelism_degree",
    "chip_communication_capacity",
    "Pipeline",
    "PassContext",
    "PipelineResult",
    "build_pipeline",
    "run_pipeline_method",
    "BatchFailure",
    "BatchJob",
    "BatchProgress",
    "BatchResult",
    "ResultCache",
    "default_cache_dir",
    "run_batch",
    "EngineCounters",
    "EngineComparison",
    "compare_engines",
]
