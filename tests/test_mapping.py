"""Tests for the initial-mapping pipeline (shape, placement, bandwidth adjusting)."""

import pytest

from repro.chip import Chip, SurfaceCodeModel
from repro.circuits.generators import standard
from repro.core.cut_types import uniform_cut_types
from repro.core.mapping import (
    adjust_bandwidth,
    build_initial_mapping,
    corridor_load,
    determine_shape,
    establish_placement,
)
from repro.errors import MappingError

DD = SurfaceCodeModel.DOUBLE_DEFECT
LS = SurfaceCodeModel.LATTICE_SURGERY


class TestShapeDetermining:
    def test_eight_qubits_prefers_3x3(self):
        chip = Chip.minimum_viable(DD, 8, 3)
        assert determine_shape(8, chip) == (3, 3)

    def test_exact_square(self):
        chip = Chip.minimum_viable(DD, 9, 3)
        assert determine_shape(9, chip) == (3, 3)

    def test_rectangular_when_square_impossible(self):
        chip = Chip.with_tile_array(DD, 3, 2, 4)
        assert determine_shape(7, chip) == (2, 4)

    def test_too_many_qubits_raises(self):
        chip = Chip.with_tile_array(DD, 3, 2, 2)
        with pytest.raises(MappingError):
            determine_shape(5, chip)


class TestEstablishPlacement:
    def test_all_strategies_produce_valid_placements(self):
        graph = standard.qft(8).communication_graph()
        for strategy in ("ecmas", "metis", "trivial", "spectral", "random"):
            placement = establish_placement(graph, (3, 3), strategy=strategy)
            assert placement.num_qubits() == 8
            assert len(placement.slots()) == 8

    def test_unknown_strategy_raises(self):
        graph = standard.qft(4).communication_graph()
        with pytest.raises(MappingError):
            establish_placement(graph, (2, 2), strategy="nope")


class TestBandwidthAdjusting:
    def test_minimum_chip_unchanged(self):
        circuit = standard.qft(9)
        chip = Chip.minimum_viable(DD, 9, 3)
        graph = circuit.communication_graph()
        placement = establish_placement(graph, (3, 3))
        assert adjust_bandwidth(chip, placement, graph) == chip

    def test_larger_chip_redistributes_towards_load(self):
        circuit = standard.dnn(16, layers=4)
        chip = Chip.four_x(DD, 16, 3)
        graph = circuit.communication_graph()
        placement = establish_placement(graph, (4, 4))
        adjusted = adjust_bandwidth(chip, placement, graph)
        h_budget, v_budget = chip.lane_budget_per_axis()
        assert sum(adjusted.h_bandwidths) <= h_budget
        assert sum(adjusted.v_bandwidths) <= v_budget
        assert min(adjusted.h_bandwidths + adjusted.v_bandwidths) >= 1
        # The adjusted chip should concentrate lanes at least as much as the
        # uniform layout does on its busiest corridor.
        assert max(adjusted.h_bandwidths) >= max(chip.h_bandwidths)

    def test_corridor_load_counts_non_adjacent_traffic(self):
        # QFT is all-to-all, so many pairs sit on non-adjacent tiles and their
        # pre-routed paths must cross corridors.  (CNOTs between adjacent
        # tiles route through the shared corner and add no corridor load.)
        circuit = standard.qft(9)
        chip = Chip.minimum_viable(DD, 9, 3)
        graph = circuit.communication_graph()
        placement = establish_placement(graph, (3, 3), strategy="trivial")
        h_load, v_load = corridor_load(chip, placement, graph)
        assert sum(h_load.values()) + sum(v_load.values()) > 0

    def test_corridor_load_is_engine_independent(self):
        # Both engines pre-route along the canonical (lexicographically
        # smallest shortest) path, so the accumulated corridor loads must be
        # bit-identical; the fast engine just reads its path off cached BFS
        # hop tables instead of searching per edge.
        circuit = standard.qft(9)
        chip = Chip.four_x(DD, 9, 3)
        graph = circuit.communication_graph()
        placement = establish_placement(graph, (3, 3), strategy="trivial")
        reference = corridor_load(chip, placement, graph, engine="reference")
        fast = corridor_load(chip, placement, graph, engine="fast")
        assert fast == reference

    def test_corridor_load_uses_the_routing_provider_seam(self):
        # Regression: corridor_load used to construct RoutingGraph(chip)
        # directly, bypassing routing_for — daemon processes rebuilt the
        # graph from cold on every /compile's mapping stage.
        from repro.core import engines

        circuit = standard.qft(9)
        chip = Chip.four_x(DD, 9, 3)
        graph = circuit.communication_graph()
        placement = establish_placement(graph, (3, 3), strategy="trivial")
        calls = []
        baseline = corridor_load(chip, placement, graph)

        def provider(requested_chip, engine):
            calls.append((requested_chip, engine))
            built = engines.RoutingGraph(requested_chip)
            return built, engines.build_router(built, engine)

        previous = engines.set_routing_provider(provider)
        try:
            h_load, v_load = corridor_load(chip, placement, graph)
        finally:
            engines.set_routing_provider(previous)
        assert calls == [(chip, "reference")]
        assert (h_load, v_load) == baseline


class TestBuildInitialMapping:
    def test_full_pipeline_double_defect(self):
        circuit = standard.qft(8)
        chip = Chip.minimum_viable(DD, 8, 3)
        mapping = build_initial_mapping(circuit, chip, uniform_cut_types(8))
        assert mapping.shape == (3, 3)
        assert mapping.placement.num_qubits() == 8
        assert mapping.cut_types is not None
        assert mapping.mapping_cost >= 0

    def test_full_pipeline_lattice_surgery_without_cuts(self):
        circuit = standard.qft(8)
        chip = Chip.minimum_viable(LS, 8, 3)
        mapping = build_initial_mapping(circuit, chip, None)
        assert mapping.cut_types is None
        mapping.placement.validate(chip)

    def test_adjust_flag_disables_bandwidth_changes(self):
        circuit = standard.dnn(16, layers=4)
        chip = Chip.four_x(DD, 16, 3)
        mapping = build_initial_mapping(circuit, chip, uniform_cut_types(16), adjust=False)
        assert mapping.chip == chip
