"""Tests for the double defect scheduler (Algorithm 1)."""

import pytest

from repro.chip import Chip, SurfaceCodeModel
from repro.circuits import Circuit
from repro.circuits.generators import standard
from repro.core.cut_decisions import adaptive_strategy, never_modify_strategy
from repro.core.cut_types import bipartite_prefix_cut_types, uniform_cut_types
from repro.core.mapping import build_initial_mapping
from repro.core.schedule import OperationKind
from repro.core.scheduler_dd import DoubleDefectScheduler
from repro.errors import SchedulingError
from repro.verify import validate_encoded_circuit

DD = SurfaceCodeModel.DOUBLE_DEFECT


def _mapping(circuit, cut_types=None, chip=None, strategy="ecmas"):
    chip = chip or Chip.minimum_viable(DD, circuit.num_qubits, 3)
    if cut_types is None:
        cut_types = bipartite_prefix_cut_types(circuit.dag(), circuit.num_qubits)
    return build_initial_mapping(circuit, chip, cut_types, placement_strategy=strategy)


def test_requires_cut_types():
    circuit = standard.ghz_state(4)
    chip = Chip.minimum_viable(DD, 4, 3)
    mapping = build_initial_mapping(circuit, chip, None)
    with pytest.raises(SchedulingError):
        DoubleDefectScheduler(circuit, mapping)


def test_empty_circuit_produces_empty_schedule():
    circuit = Circuit(4)
    encoded = DoubleDefectScheduler(circuit, _mapping(circuit)).run()
    assert encoded.num_cycles == 0
    assert encoded.operations == []


def test_single_cnot_different_cuts_takes_one_cycle():
    circuit = Circuit(4)
    circuit.cx(0, 1)
    encoded = DoubleDefectScheduler(circuit, _mapping(circuit)).run()
    assert encoded.num_cycles == 1
    assert encoded.operations[0].kind is OperationKind.CNOT_BRAID


def test_single_cnot_same_cut_never_modify_takes_three_cycles():
    circuit = Circuit(4)
    circuit.cx(0, 1)
    mapping = _mapping(circuit, cut_types=uniform_cut_types(4))
    encoded = DoubleDefectScheduler(circuit, mapping, cut_strategy=never_modify_strategy).run()
    assert encoded.num_cycles == 3
    assert encoded.operations[0].kind is OperationKind.CNOT_SAME_CUT


def test_bipartite_circuit_matches_depth(ghz8):
    encoded = DoubleDefectScheduler(ghz8, _mapping(ghz8)).run()
    assert encoded.num_cycles == ghz8.depth()
    validate_encoded_circuit(ghz8, encoded).raise_if_invalid()


def test_uniform_cuts_with_never_modify_triples_depth(ghz8):
    mapping = _mapping(ghz8, cut_types=uniform_cut_types(8))
    encoded = DoubleDefectScheduler(ghz8, mapping, cut_strategy=never_modify_strategy).run()
    assert encoded.num_cycles == 3 * ghz8.depth()
    validate_encoded_circuit(ghz8, encoded).raise_if_invalid()


def test_adaptive_strategy_beats_never_modify_on_uniform_start(ghz8):
    mapping = _mapping(ghz8, cut_types=uniform_cut_types(8))
    adaptive = DoubleDefectScheduler(ghz8, mapping, cut_strategy=adaptive_strategy).run()
    never = DoubleDefectScheduler(ghz8, mapping, cut_strategy=never_modify_strategy).run()
    assert adaptive.num_cycles <= never.num_cycles
    validate_encoded_circuit(ghz8, adaptive).raise_if_invalid()


def test_cut_modifications_recorded_and_valid(triangle_circuit):
    # The odd cycle forces at least one same-cut situation.
    encoded = DoubleDefectScheduler(triangle_circuit, _mapping(triangle_circuit)).run()
    validate_encoded_circuit(triangle_circuit, encoded).raise_if_invalid()
    kinds = {op.kind for op in encoded.operations}
    assert OperationKind.CNOT_BRAID in kinds
    # Either a modification or a direct same-cut execution must appear.
    assert kinds & {OperationKind.CUT_MODIFICATION, OperationKind.CNOT_SAME_CUT}


def test_congested_parallel_layers_still_schedule():
    circuit = standard.dnn(16, layers=2)
    encoded = DoubleDefectScheduler(circuit, _mapping(circuit)).run()
    validate_encoded_circuit(circuit, encoded).raise_if_invalid()
    assert encoded.num_cycles >= circuit.depth()


def test_all_gates_scheduled_exactly_once():
    circuit = standard.qft(8)
    encoded = DoubleDefectScheduler(circuit, _mapping(circuit)).run()
    assert encoded.num_cnots == circuit.num_cnots
    validate_encoded_circuit(circuit, encoded).raise_if_invalid()


def test_priority_prefers_critical_path():
    # Two chains of different length sharing the chip: the longer chain should
    # not be starved, so the makespan equals the longer chain's length.
    circuit = Circuit(8)
    for i in range(5):
        circuit.cx(0, 1) if i % 2 == 0 else circuit.cx(1, 0)
    circuit.cx(2, 3)
    encoded = DoubleDefectScheduler(circuit, _mapping(circuit)).run()
    assert encoded.num_cycles == 5
