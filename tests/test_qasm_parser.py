"""Unit tests for the OpenQASM parser (AST level)."""

import math

import pytest

from repro.circuits.qasm import ast
from repro.circuits.qasm.parser import parse_program
from repro.errors import QasmError

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


def test_header_and_registers():
    program = parse_program(HEADER + "qreg q[3];\ncreg c[3];\n")
    assert program.version == "2.0"
    regs = [s for s in program.statements if isinstance(s, ast.RegisterDecl)]
    assert [(r.kind, r.name, r.size) for r in regs] == [("qreg", "q", 3), ("creg", "c", 3)]


def test_gate_call_with_index_and_broadcast():
    program = parse_program(HEADER + "qreg q[2];\nh q;\ncx q[0], q[1];\n")
    calls = [s for s in program.statements if isinstance(s, ast.GateCall)]
    assert calls[0].name == "h"
    assert calls[0].qubits[0].is_whole_register()
    assert calls[1].qubits[0].index == 0


def test_parameter_expressions_evaluate():
    program = parse_program(HEADER + "qreg q[1];\nrz(-3*pi/4) q[0];\nu3(pi/2, 0, pi) q[0];\n")
    calls = [s for s in program.statements if isinstance(s, ast.GateCall)]
    assert calls[0].params[0].evaluate({}) == pytest.approx(-3 * math.pi / 4)
    assert calls[1].params[0].evaluate({}) == pytest.approx(math.pi / 2)
    assert calls[1].params[2].evaluate({}) == pytest.approx(math.pi)


def test_expression_power_and_parentheses():
    program = parse_program(HEADER + "qreg q[1];\nrz(2^3 * (1 + 1)) q[0];\n")
    call = [s for s in program.statements if isinstance(s, ast.GateCall)][0]
    assert call.params[0].evaluate({}) == pytest.approx(16.0)


def test_function_call_expression():
    program = parse_program(HEADER + "qreg q[1];\nrz(cos(0)) q[0];\n")
    call = [s for s in program.statements if isinstance(s, ast.GateCall)][0]
    assert call.params[0].evaluate({}) == pytest.approx(1.0)


def test_gate_definition_parsing():
    source = HEADER + "qreg q[2];\ngate mygate(theta) a, b { rz(theta) a; cx a, b; }\nmygate(pi) q[0], q[1];\n"
    program = parse_program(source)
    definitions = program.gate_definitions()
    assert "mygate" in definitions
    definition = definitions["mygate"]
    assert definition.params == ("theta",)
    assert definition.qubits == ("a", "b")
    assert [c.name for c in definition.body] == ["rz", "cx"]


def test_measure_and_reset_and_barrier():
    source = HEADER + "qreg q[2];\ncreg c[2];\nbarrier q;\nreset q[0];\nmeasure q[0] -> c[0];\n"
    program = parse_program(source)
    kinds = [type(s).__name__ for s in program.statements]
    assert "Barrier" in kinds
    assert "Reset" in kinds
    assert "Measure" in kinds


def test_conditional_statement():
    source = HEADER + "qreg q[1];\ncreg c[1];\nif (c == 1) x q[0];\n"
    program = parse_program(source)
    conditional = [s for s in program.statements if isinstance(s, ast.Conditional)][0]
    assert conditional.register == "c"
    assert conditional.value == 1
    assert isinstance(conditional.body, ast.GateCall)


def test_opaque_declaration():
    program = parse_program(HEADER + "opaque magic(a, b) q, r;\n")
    decl = [s for s in program.statements if isinstance(s, ast.OpaqueDeclaration)][0]
    assert decl.name == "magic"
    assert decl.qubits == ("q", "r")


def test_missing_semicolon_raises():
    with pytest.raises(QasmError):
        parse_program(HEADER + "qreg q[2]\nh q[0];\n")


def test_zero_size_register_raises():
    with pytest.raises(QasmError):
        parse_program(HEADER + "qreg q[0];\n")


def test_unbound_identifier_evaluation_raises():
    program = parse_program(HEADER + "qreg q[1];\nrz(theta) q[0];\n")
    call = [s for s in program.statements if isinstance(s, ast.GateCall)][0]
    with pytest.raises(QasmError):
        call.params[0].evaluate({})
