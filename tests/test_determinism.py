"""Determinism guarantees: repeated compiles are bit-identical, caches are exact.

The batch engine's on-disk cache is only sound because every compile is a pure
function of (circuit, method, chip, options).  These tests pin that property:
the same circuit with the same seed yields identical cycle counts *and*
identical operation lists across both surface-code models and all three
resource configurations, and a warm cache returns records identical to a
fresh compile.
"""

from __future__ import annotations

import pytest

from repro import EcmasOptions, SurfaceCodeModel, compile_circuit
from repro.circuits.generators import get_benchmark, standard
from repro.pipeline.batch import BatchJob, ResultCache, run_batch

DD = SurfaceCodeModel.DOUBLE_DEFECT
LS = SurfaceCodeModel.LATTICE_SURGERY

#: (resources, scheduler) for the paper's three resource configurations.
RESOURCE_CONFIGS = (("minimum", "limited"), ("4x", "limited"), ("sufficient", "resu"))


@pytest.mark.parametrize("model", (DD, LS), ids=("dd", "ls"))
@pytest.mark.parametrize("resources,scheduler", RESOURCE_CONFIGS)
def test_repeated_compiles_identical(model, resources, scheduler):
    circuit = standard.qft(8)
    options = EcmasOptions(seed=7)
    first = compile_circuit(
        circuit, model=model, resources=resources, scheduler=scheduler, options=options
    )
    second = compile_circuit(
        circuit, model=model, resources=resources, scheduler=scheduler, options=options
    )
    assert first.num_cycles == second.num_cycles
    assert first.operations == second.operations
    assert first.initial_cut_types == second.initial_cut_types
    assert first.chip == second.chip
    assert first.placement == second.placement


@pytest.mark.parametrize("seed", (0, 3))
def test_seeded_randomised_options_deterministic(seed):
    circuit = standard.dnn(8, layers=4)
    options = EcmasOptions(cut_initialisation="random", placement_strategy="random", seed=seed)
    runs = [
        compile_circuit(circuit, model=DD, scheduler="limited", options=options) for _ in range(2)
    ]
    assert runs[0].num_cycles == runs[1].num_cycles
    assert runs[0].operations == runs[1].operations


def test_cache_round_trip_returns_identical_records(tmp_path):
    """A second batch run is served fully from cache, with identical records."""
    circuit = get_benchmark("dnn_n8").build()
    jobs = [
        BatchJob(circuit=circuit, method=method, circuit_name="dnn_n8", paper_cycles=paper)
        for method, paper in (("autobraid", 147), ("ecmas_dd_min", 48), ("ecmas_ls_min", 48))
    ]
    cache = ResultCache(tmp_path / "cache")
    cold = run_batch(jobs, cache=cache)
    assert cold.cache_hits == 0
    assert cold.cache_misses == len(jobs)
    assert cold.recompilations == len(jobs)

    warm_cache = ResultCache(tmp_path / "cache")
    warm = run_batch(jobs, cache=warm_cache)
    assert warm.cache_hits == len(jobs)
    assert warm.cache_misses == 0
    assert warm.recompilations == 0
    assert warm.records == cold.records


def test_cache_distinguishes_methods_options_and_circuits(tmp_path):
    ghz = standard.ghz_state(6)
    qft = standard.qft(6)
    fingerprints = {
        BatchJob(circuit=ghz, method="ecmas_dd_min").fingerprint(),
        BatchJob(circuit=ghz, method="ecmas_ls_min").fingerprint(),
        BatchJob(circuit=ghz, method="ecmas_dd_min", code_distance=5).fingerprint(),
        BatchJob(circuit=ghz, method="ecmas_dd_min", options=EcmasOptions(seed=1)).fingerprint(),
        BatchJob(circuit=qft, method="ecmas_dd_min").fingerprint(),
    }
    assert len(fingerprints) == 5
    # Metadata that does not affect the compile result is NOT part of the key.
    assert (
        BatchJob(circuit=ghz, method="ecmas_dd_min", circuit_name="a").fingerprint()
        == BatchJob(circuit=ghz, method="ecmas_dd_min", circuit_name="b").fingerprint()
    )
