"""Integration tests for graph chips: routing, placement, compile, service.

The tile-graph milestone's acceptance path, end to end:

* :meth:`Chip.slot_distance` — Manhattan on square chips (bit-compatible),
  BFS hop distance on graph chips, unreachable sentinel on split graphs;
* the routing graph built from tile-graph edges (junction per node, corridor
  per edge, defects respected);
* every graph placement strategy produces valid placements, and bandwidth
  adjusting redistributes lanes per edge under node width budgets;
* heavy-hex and degree-3 sparse chips compile both models with both engines,
  bit-identical and validator-clean;
* the viz, CLI ``--geometry`` flag, batch fingerprints and the compile
  daemon all understand graph chips.
"""

from __future__ import annotations

import threading

import pytest

from repro.chip import (
    Chip,
    DefectSpec,
    SurfaceCodeModel,
    TileGraph,
    builtin_tile_graph,
    degree3_sparse,
    heavy_hex,
    random_defects,
    square_lattice,
)
from repro.chip.chip import UNREACHABLE_DISTANCE, TileSlot
from repro.chip.routing_graph import RoutingGraph
from repro.chip.spec import chip_to_dict
from repro.circuits.generators import get_benchmark, standard
from repro.cli import main
from repro.core.mapping import (
    adjust_bandwidth,
    adjust_edge_bandwidth,
    build_initial_mapping,
    edge_load,
    establish_placement,
)
from repro.errors import ChipError
from repro.partition import (
    graph_best_placement,
    graph_random_placement,
    graph_snake_placement,
    graph_spectral_placement,
)
from repro.pipeline.batch import BatchJob
from repro.pipeline.registry import run_pipeline_method
from repro.verify import validate_encoded_circuit
from repro.viz import render_placement

DD = SurfaceCodeModel.DOUBLE_DEFECT
LS = SurfaceCodeModel.LATTICE_SURGERY


def _path_chip(num_nodes: int = 4, **kwargs) -> Chip:
    graph = TileGraph(
        name="path",
        coords=tuple((float(i), 0.0) for i in range(num_nodes)),
        edges=tuple((i, i + 1) for i in range(num_nodes - 1)),
        bandwidths=tuple([1] * (num_nodes - 1)),
        **kwargs,
    )
    return Chip.from_tile_graph(DD, 3, graph)


# ------------------------------------------------------------- slot distance
def test_slot_distance_is_manhattan_on_square_chips():
    chip = Chip.with_tile_array(DD, 3, 3, 3, bandwidth=1)
    a, b = TileSlot(0, 0), TileSlot(2, 1)
    assert chip.slot_distance(a, b) == TileSlot.manhattan_distance(a, b) == 3


def test_slot_distance_is_hop_count_on_graph_chips():
    chip = _path_chip(4)
    assert chip.slot_distance(TileSlot(0, 0), TileSlot(3, 0)) == 3
    assert chip.slot_distance(TileSlot(1, 0), TileSlot(1, 0)) == 0
    assert chip.slot_distance(TileSlot(2, 0), TileSlot(0, 0)) == 2


def test_slot_distance_reports_unreachable_on_split_graphs():
    graph = TileGraph(
        name="split",
        coords=((0.0, 0.0), (1.0, 0.0), (5.0, 0.0), (6.0, 0.0)),
        edges=((0, 1), (2, 3)),
        bandwidths=(1, 1),
    )
    chip = Chip.from_tile_graph(DD, 3, graph)
    assert chip.slot_distance(TileSlot(0, 0), TileSlot(1, 0)) == 1
    assert chip.slot_distance(TileSlot(0, 0), TileSlot(2, 0)) == UNREACHABLE_DISTANCE


def test_heavy_hex_neighbours_are_two_hops_apart():
    # Subdivided hex edges put a mid tile between any two hex tiles.
    chip = Chip.from_tile_graph(DD, 3, heavy_hex(3, 3))
    assert chip.slot_distance(TileSlot(0, 0), TileSlot(1, 0)) == 2


# ------------------------------------------------------- chip-level contracts
def test_graph_chip_segment_capacity_and_corridors():
    graph = square_lattice(2, 2, bandwidth=2)
    chip = Chip.from_tile_graph(DD, 3, graph)
    segments = chip.corridor_segments()
    assert [key for key, _ in segments] == [("e", a, b) for a, b in graph.edges]
    assert all(capacity == 2 for _, capacity in segments)
    assert chip.segment_capacity(("e", 0, 1)) == 2


def test_graph_chip_defects_disable_and_degrade_edges():
    graph = square_lattice(2, 2, bandwidth=2)
    defects = DefectSpec(
        dead_tiles=((3, 0),),
        disabled_segments=(("e", 0, 1),),
        bandwidth_overrides=((("e", 0, 2), 1),),
    )
    chip = Chip.from_tile_graph(DD, 3, graph, defects=defects)
    assert chip.segment_capacity(("e", 0, 1)) == 0
    assert chip.segment_capacity(("e", 0, 2)) == 1
    assert TileSlot(3, 0) not in chip.alive_tile_slots()


def test_graph_chip_rejects_square_defect_keys_and_vice_versa():
    with pytest.raises(ChipError, match="segment"):
        Chip.from_tile_graph(
            DD, 3, square_lattice(2, 2), defects=DefectSpec(disabled_segments=(("h", 0, 0),))
        )
    with pytest.raises(ChipError, match="edge"):
        Chip.from_tile_graph(
            DD, 3, square_lattice(2, 2), defects=DefectSpec(disabled_segments=(("e", 0, 3),))
        )
    with pytest.raises(ChipError):
        Chip.with_tile_array(DD, 3, 2, 2, 1).with_defects(
            DefectSpec(disabled_segments=(("e", 0, 1),))
        )


def test_graph_chip_rejects_square_only_operations():
    chip = _path_chip(3)
    with pytest.raises(ChipError):
        chip.with_bandwidths([1, 1, 1], [1, 1, 1])
    with pytest.raises(ChipError):
        chip.lane_budget_per_axis()


def test_with_edge_bandwidths_and_scaled_bandwidth():
    chip = _path_chip(4, node_budgets=(2, 4, 4, 2))
    widened = chip.with_edge_bandwidths((2, 1, 2))
    assert widened.tile_graph.bandwidths == (2, 1, 2)
    scaled = chip.scaled_bandwidth(3)
    assert scaled.tile_graph.bandwidths == (3, 3, 3)


# -------------------------------------------------------------- routing graph
def test_routing_graph_from_tile_graph_edges():
    graph = square_lattice(2, 2)
    defects = DefectSpec(dead_tiles=((3, 0),), disabled_segments=(("e", 0, 1),))
    chip = Chip.from_tile_graph(DD, 3, graph, defects=defects)
    routing = RoutingGraph(chip)
    junctions = [n for n in routing.nodes if n[0] == "j"]
    tiles = [n for n in routing.nodes if n[0] == "t"]
    assert len(junctions) == 4  # every node keeps a junction, even dead tiles
    assert len(tiles) == 3  # the dead tile hosts no qubit
    assert ("t", 3, 0) not in routing.nodes
    # The disabled edge contributes no corridor; the other three do.
    corridors = [
        (a, b) for a, b in routing.edges if a[0] == "j" and b[0] == "j"
    ]
    assert len(corridors) == 3
    assert routing.corridor_of(("j", 0, 0), ("j", 2, 0)) == ("e", graph.edge_index(0, 2))


# ------------------------------------------------------------------ placement
def test_graph_placement_strategies_are_valid_and_deterministic():
    chip = Chip.from_tile_graph(DD, 3, heavy_hex(3, 3))
    comm = standard.qft(8).communication_graph()
    placements = {
        "snake": graph_snake_placement(8, chip),
        "random": graph_random_placement(8, chip, seed=3),
        "spectral": graph_spectral_placement(comm, chip),
        "best": graph_best_placement(comm, chip, attempts=2),
    }
    for name, placement in placements.items():
        placement.validate(chip)
        assert placement.num_qubits() == 8, name
        assert len(set(placement.slots())) == 8, name
    assert graph_best_placement(comm, chip, attempts=2) == placements["best"]


def test_establish_placement_dispatches_on_graph_chips():
    chip = Chip.from_tile_graph(LS, 3, degree3_sparse(12, seed=1))
    comm = standard.qft(8).communication_graph()
    for strategy in ("ecmas", "metis", "trivial", "spectral", "random"):
        placement = establish_placement(
            comm, (chip.tile_rows, chip.tile_cols), strategy=strategy, chip=chip
        )
        placement.validate(chip)
        assert placement.num_qubits() == 8


def test_placement_avoids_dead_tiles_on_graph_chips():
    chip = Chip.from_tile_graph(
        DD, 3, heavy_hex(3, 3), defects=DefectSpec(dead_tiles=((0, 0), (7, 0)))
    )
    placement = graph_snake_placement(10, chip)
    assert TileSlot(0, 0) not in placement.slots()
    assert TileSlot(7, 0) not in placement.slots()


# --------------------------------------------------------- bandwidth adjusting
def test_adjust_edge_bandwidth_redistributes_spare_lanes_by_load():
    # A path chip whose middle node has spare width: the loaded edge wins it.
    chip = _path_chip(4, node_budgets=(2, 3, 3, 2))
    comm = standard.ghz_state(4).communication_graph()
    placement = graph_snake_placement(4, chip)
    load = edge_load(chip, placement, comm)
    assert set(load) <= {0, 1, 2}
    adjusted = adjust_edge_bandwidth(chip, placement, comm)
    assert sum(adjusted.tile_graph.bandwidths) > sum(chip.tile_graph.bandwidths)
    budgets = adjusted.tile_graph.effective_node_budgets()
    for node in range(4):
        incident = adjusted.tile_graph.incident_edges(node)
        assert sum(adjusted.tile_graph.bandwidths[e] for e in incident) <= budgets[node]


def test_adjust_edge_bandwidth_without_spare_budget_is_identity():
    chip = _path_chip(4)  # default budgets = incident sums, no spare anywhere
    comm = standard.ghz_state(4).communication_graph()
    placement = graph_snake_placement(4, chip)
    assert adjust_edge_bandwidth(chip, placement, comm) == chip


def test_adjust_bandwidth_dispatches_graph_chips():
    chip = _path_chip(4, node_budgets=(2, 3, 3, 2))
    comm = standard.ghz_state(4).communication_graph()
    placement = graph_snake_placement(4, chip)
    assert adjust_bandwidth(chip, placement, comm) == adjust_edge_bandwidth(
        chip, placement, comm
    )


def test_build_initial_mapping_on_graph_chip():
    chip = Chip.from_tile_graph(DD, 3, heavy_hex(3, 3))
    circuit = get_benchmark("bv_n10").build()
    mapping = build_initial_mapping(circuit, chip, None)
    mapping.placement.validate(mapping.chip)
    assert mapping.placement.num_qubits() == circuit.num_qubits


# ------------------------------------------------------------------------ viz
def test_render_placement_on_graph_chip_shows_nodes_edges_and_dead_tiles():
    chip = Chip.from_tile_graph(
        DD,
        3,
        heavy_hex(3, 3),
        defects=DefectSpec(dead_tiles=((9, 0),), disabled_segments=(("e", 0, 9),)),
    )
    placement = graph_snake_placement(6, chip)
    text = render_placement(chip, placement)
    assert "heavy_hex_3x3 graph" in text
    assert "9:X" in text  # dead tile
    assert "0-9:0" in text  # disabled edge renders capacity 0
    assert "edges: " in text
    assert any(f"{node}:q" in text for node in range(18))


# ---------------------------------------------------------------- end to end
@pytest.mark.parametrize(
    "geometry",
    [heavy_hex(3, 3), degree3_sparse(24, seed=7)],
    ids=["heavy_hex", "sparse3"],
)
@pytest.mark.parametrize(
    "method, model",
    [("ecmas_dd_min", DD), ("ecmas_ls_min", LS)],
)
def test_compile_on_graph_chip_engine_parity_and_validator(geometry, method, model):
    circuit = get_benchmark("bv_n10").build()
    chip = Chip.from_tile_graph(model, 3, geometry)
    reference = run_pipeline_method(circuit, method, chip=chip, engine="reference")
    fast = run_pipeline_method(circuit, method, chip=chip, engine="fast")
    assert reference.encoded.operations == fast.encoded.operations
    report = validate_encoded_circuit(circuit, fast.encoded)
    assert report.valid, report.errors[:3]
    assert fast.encoded.num_cycles >= 1


def test_compile_on_defective_graph_chip():
    circuit = get_benchmark("bv_n10").build()
    chip = Chip.from_tile_graph(DD, 3, degree3_sparse(24, seed=7))
    defects = random_defects(chip, 0.1, seed=5, min_alive_tiles=circuit.num_qubits)
    chip = chip.with_defects(defects)
    result = run_pipeline_method(circuit, "ecmas_dd_min", chip=chip, engine="fast")
    report = validate_encoded_circuit(circuit, result.encoded)
    assert report.valid, report.errors[:3]


# -------------------------------------------------------- fingerprints / batch
def test_batch_fingerprints_distinguish_geometries():
    circuit = get_benchmark("bv_n10").build()
    square = Chip.minimum_viable(DD, circuit.num_qubits, 3)
    hexish = Chip.from_tile_graph(DD, 3, heavy_hex(3, 3))
    sparse = Chip.from_tile_graph(DD, 3, degree3_sparse(24, seed=7))
    prints = {
        BatchJob(circuit, "ecmas_dd_min", chip=chip).fingerprint()
        for chip in (square, hexish, sparse)
    }
    assert len(prints) == 3
    # Same geometry, different bandwidths: distinct cache identity too.
    widened = hexish.scaled_bandwidth(2)
    assert (
        BatchJob(circuit, "ecmas_dd_min", chip=widened).fingerprint()
        not in prints
    )


# ------------------------------------------------------------------------ CLI
def test_cli_compile_with_geometry_flag(capsys):
    assert main(["compile", "bv_n10", "--geometry", "heavy_hex:3x3", "--show-placement"]) == 0
    out = capsys.readouterr().out
    assert "schedule valid  : True" in out
    assert "heavy_hex_3x3 graph" in out


def test_cli_geometry_with_defect_rate(capsys):
    assert main(["compile", "bv_n10", "--geometry", "sparse3:24:7", "--defect-rate", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "schedule valid  : True" in out
    assert "defects:" in out


def test_cli_geometry_error_paths(capsys):
    assert main(["compile", "bv_n10", "--geometry", "bogus"]) == 2
    assert "bad geometry spec" in capsys.readouterr().err
    assert (
        main(
            [
                "compile",
                "bv_n10",
                "--geometry",
                "heavy_hex:3x3",
                "--chip-spec",
                "examples/chips/defective_4x4.json",
            ]
        )
        == 2
    )
    assert "pass only one" in capsys.readouterr().err


def test_cli_compile_with_v2_chip_spec_file(capsys):
    assert main(["compile", "bv_n10", "--chip-spec", "examples/chips/heavy_hex_3x3.json"]) == 0
    out = capsys.readouterr().out
    assert "schedule valid  : True" in out


# -------------------------------------------------------------------- service
def test_service_compiles_inline_v2_chip_spec(tmp_path):
    from repro.service import ServiceClient, create_server

    chip = Chip.from_tile_graph(DD, 3, heavy_hex(3, 3))
    server = create_server(port=0, cache=str(tmp_path / "cache"), quiet=True)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(port=server.server_address[1])
    try:
        job = client.compile(
            circuit="bv_n10", method="ecmas_dd_min", chip=chip_to_dict(chip), wait=True
        )
        assert job["status"] == "done"
        assert job["result"]["cycles"] >= 1
    finally:
        server.shutdown()
        server.close()
        thread.join(timeout=5)
