"""Unit tests for the fast-engine building blocks and stall diagnostics."""

from __future__ import annotations

import pytest

from repro.chip.geometry import SurfaceCodeModel
from repro.chip.routing_graph import RoutingGraph, tile_node
from repro.circuits.circuit import Circuit
from repro.core.ecmas import default_chip, prepare_mapping
from repro.core.engines import check_engine, stalled_schedule_error
from repro.core.incremental import IncrementalReadyQueue
from repro.core.priorities import criticality_priority, random_priority
from repro.core.scheduler_dd import DoubleDefectScheduler
from repro.core.scheduler_ls import LatticeSurgeryScheduler
from repro.errors import RoutingError, SchedulingError
from repro.profiling import EngineCounters, StageTimer
from repro.routing.fast_router import FastRouter
from repro.routing.paths import CapacityUsage

DD = SurfaceCodeModel.DOUBLE_DEFECT
LS = SurfaceCodeModel.LATTICE_SURGERY


def _mapping(circuit, model):
    return prepare_mapping(circuit, default_chip(circuit, model), model)


# ------------------------------------------------------------ stall diagnostics
def test_dd_safety_bound_reports_in_flight_gates(chain_circuit):
    """With the budget exhausted mid-execution, the dispatched gate is not blamed."""
    scheduler = DoubleDefectScheduler(chain_circuit, _mapping(chain_circuit, DD), max_cycles=0)
    with pytest.raises(SchedulingError) as excinfo:
        scheduler.run()
    message = str(excinfo.value)
    assert "double defect scheduler exceeded 0 cycles at cycle 1" in message
    assert "4 gates remain" in message
    # Gate 0 was dispatched in cycle 0 and is executing, not blocked.
    assert "first blocked gate" not in message
    assert "1 dispatched gate(s) still in flight" in message


def test_ls_safety_bound_reports_in_flight_gates(chain_circuit):
    scheduler = LatticeSurgeryScheduler(chain_circuit, _mapping(chain_circuit, LS), max_cycles=0)
    with pytest.raises(SchedulingError) as excinfo:
        scheduler.run()
    message = str(excinfo.value)
    assert "lattice surgery scheduler exceeded 0 cycles at cycle 1" in message
    assert "1 dispatched gate(s) still in flight" in message


def test_stalled_error_names_first_blocked_gate():
    """A ready-but-undispatched gate is named with qubits and busy horizons."""
    dag = _diamond_dag()
    frontier = dag.frontier()
    frontier.complete(0)  # gates 1, 2 become ready; none dispatched
    error = stalled_schedule_error(
        "double defect", 9, 8, frontier, dag, {0: 12, 1: 0, 2: 3, 3: 0}, dispatched=set()
    )
    message = str(error)
    assert "double defect scheduler exceeded 8 cycles at cycle 9" in message
    assert "3 gates remain" in message
    assert "first blocked gate: node 1 CX(q0, q2)" in message
    assert "busy until cycles 12 and 3" in message
    # A dispatched gate is skipped in favour of the next truly blocked one.
    skipping = stalled_schedule_error(
        "double defect", 9, 8, frontier, dag, {0: 12, 1: 0, 2: 3, 3: 0}, dispatched={1}
    )
    assert "first blocked gate: node 2 CX(q1, q3)" in str(skipping)


def test_unknown_engine_rejected(chain_circuit):
    with pytest.raises(SchedulingError, match="unknown scheduling engine"):
        DoubleDefectScheduler(chain_circuit, _mapping(chain_circuit, DD), engine="warp")
    with pytest.raises(SchedulingError, match="unknown scheduling engine"):
        check_engine("warp")


# ------------------------------------------------------- incremental ready set
def _diamond_dag():
    """Four gates: 0 -> {1, 2} -> 3 with distinct criticalities."""
    circuit = Circuit(4, name="diamond")
    circuit.cx(0, 1)
    circuit.cx(0, 2)
    circuit.cx(1, 3)
    circuit.cx(2, 3)
    return circuit.dag()


def test_queue_orders_like_priority_function():
    dag = _diamond_dag()
    queue = IncrementalReadyQueue(dag, criticality_priority, range(len(dag)))
    assert queue.uses_static_key
    busy = {q: 0 for q in range(4)}
    assert queue.available(busy, 0) == criticality_priority(dag, list(range(len(dag))))


def test_queue_add_discard_and_busy_filter():
    dag = _diamond_dag()
    queue = IncrementalReadyQueue(dag, criticality_priority, [0])
    assert len(queue) == 1
    queue.discard(0)
    assert len(queue) == 0
    queue.discard(0)  # discarding an absent node is a no-op
    queue.add([1, 2])
    busy = {0: 5, 1: 5, 2: 0, 3: 0}
    # Gate 1 acts on busy qubit 0; only gate 2's operands (0, 2) ... both busy
    # via qubit 0, so nothing is available until the tiles free up.
    assert queue.available(busy, 0) == []
    assert queue.available(busy, 5) == criticality_priority(dag, [1, 2])


def test_queue_fallback_without_static_key():
    dag = _diamond_dag()
    priority = random_priority(seed=3)
    queue = IncrementalReadyQueue(dag, priority, [0, 1, 2])
    assert not queue.uses_static_key
    queue.discard(1)
    busy = {q: 0 for q in range(4)}
    expected = random_priority(seed=3)(dag, [0, 2])
    assert queue.available(busy, 0) == expected


# --------------------------------------------------------------- fast router
def test_fast_router_validates_endpoints(dd_chip_small):
    graph = RoutingGraph(dd_chip_small)
    router = FastRouter(graph)
    with pytest.raises(RoutingError):
        router.find(CapacityUsage(), tile_node(0, 0), tile_node(0, 0))
    with pytest.raises(RoutingError):
        router.find(CapacityUsage(), ("j", 0, 0), tile_node(0, 0))


def test_fast_router_memoizes_landmark_tables(dd_chip_small):
    graph = RoutingGraph(dd_chip_small)
    router = FastRouter(graph)
    table = router.distances_to(tile_node(0, 0))
    assert table[tile_node(0, 0)] == 0
    assert router.distances_to(tile_node(0, 0)) is table
    # Distances fall by at most one per hop and every junction is reachable.
    for node in graph.nodes:
        if not graph.is_tile(node):
            assert node in table


# ----------------------------------------------------------------- profiling
def test_engine_counters_expansions_per_route():
    counters = EngineCounters()
    assert counters.expansions_per_route == 0.0
    counters.route_calls = 4
    counters.nodes_expanded = 10
    assert counters.expansions_per_route == 2.5
    assert counters.as_dict()["route_calls"] == 4


def test_stage_timer_accumulates_spans():
    timer = StageTimer()
    with timer.span("route"):
        pass
    with timer.span("route"):
        pass
    with timer.span("bookkeeping"):
        pass
    assert set(timer.seconds) == {"route", "bookkeeping"}
    assert timer.seconds["route"] >= 0.0
