"""Differential harness: the fast engine is schedule-for-schedule identical.

Every built-in (non-large) benchmark circuit is compiled with the reference
and the fast engine for each Algorithm 1 method family — Ecmas-dd, Ecmas-ls,
AutoBraid and Braidflash — and the two runs must agree on the *entire*
operation list, not just the cycle count.  The fast schedule is additionally
replayed through the validator, so a bug that made both engines identically
wrong about resource constraints would still be caught.

This harness is what licenses every future hot-path optimisation: an engine
change that alters any schedule anywhere in the suite fails here with the
exact (circuit, method) pair.
"""

from __future__ import annotations

import pytest

from repro.circuits.generators import default_suite
from repro.pipeline.registry import run_pipeline_method
from repro.profiling import compare_engines
from repro.verify import validate_encoded_circuit

#: The Algorithm 1 method families of the paper's evaluation.  Ecmas-ReSu
#: (Algorithm 2) has no fast variant and ignores the engine knob.
METHODS = ("ecmas_dd_min", "ecmas_ls_min", "autobraid", "braidflash")

_SUITE = {spec.name: spec for spec in default_suite(include_large=False)}


@pytest.fixture(scope="module")
def circuits():
    """Each benchmark circuit, built once for the whole module."""
    return {name: spec.build() for name, spec in _SUITE.items()}


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("name", sorted(_SUITE))
def test_engines_schedule_identically(circuits, name, method):
    circuit = circuits[name]
    reference = run_pipeline_method(circuit, method, engine="reference")
    fast = run_pipeline_method(circuit, method, engine="fast")

    assert fast.encoded.num_cycles == reference.encoded.num_cycles, (
        f"{method} on {name}: fast engine produced {fast.encoded.num_cycles} cycles, "
        f"reference {reference.encoded.num_cycles}"
    )
    assert fast.encoded.operations == reference.encoded.operations, (
        f"{method} on {name}: engines agree on cycle count but not on the schedule"
    )

    report = validate_encoded_circuit(circuit, fast.encoded)
    assert report.valid, f"{method} on {name}: fast schedule invalid: {report.errors[:3]}"


@pytest.mark.parametrize("method", METHODS)
def test_fast_engine_reports_landmark_reuse(circuits, method):
    """The fast engine actually exercises its hot-path machinery."""
    result = run_pipeline_method(circuits["qft_n10"], method, engine="fast")
    counters = result.counters
    assert result.engine == "fast"
    assert counters is not None
    assert counters["route_calls"] > 0
    assert counters["landmark_tables"] > 0
    # Goal-directed search must beat exhaustive Dijkstra on explored nodes.
    reference = run_pipeline_method(circuits["qft_n10"], method, engine="reference")
    assert counters["nodes_expanded"] < reference.counters["nodes_expanded"]


def test_compare_engines_reports_parity(circuits):
    comparison = compare_engines(circuits["dnn_n8"], "ecmas_dd_min")
    assert comparison.schedules_identical
    assert comparison.cycles > 0
    assert comparison.compile_seconds["reference"] > 0.0
    assert comparison.compile_seconds["fast"] > 0.0
    assert comparison.counters["fast"]["landmark_tables"] > 0
    assert comparison.counters["reference"]["landmark_tables"] == 0


def test_random_priority_falls_back_identically(circuits):
    """Priorities without a static key still schedule identically on both engines."""
    from repro.chip.geometry import SurfaceCodeModel
    from repro.core.ecmas import default_chip, prepare_mapping
    from repro.core.priorities import random_priority
    from repro.core.scheduler_dd import DoubleDefectScheduler

    circuit = circuits["adder_n10"]
    model = SurfaceCodeModel.DOUBLE_DEFECT
    mapping = prepare_mapping(circuit, default_chip(circuit, model), model)
    runs = {
        engine: DoubleDefectScheduler(
            circuit, mapping, priority=random_priority(seed=11), engine=engine
        ).run()
        for engine in ("reference", "fast")
    }
    assert runs["reference"].operations == runs["fast"].operations
