"""Unit tests for the OpenQASM lexer."""

import pytest

from repro.circuits.qasm.tokens import TokenType, tokenize
from repro.errors import QasmError


def _types(source):
    return [t.type for t in tokenize(source)[:-1]]


def test_simple_statement_tokens():
    tokens = tokenize("qreg q[5];")
    assert [t.type for t in tokens[:-1]] == [
        TokenType.KEYWORD,
        TokenType.ID,
        TokenType.LBRACKET,
        TokenType.INT,
        TokenType.RBRACKET,
        TokenType.SEMICOLON,
    ]
    assert tokens[-1].type is TokenType.EOF


def test_comments_and_whitespace_skipped():
    tokens = tokenize("// a comment\n  h q[0]; // trailing\n")
    assert [t.value for t in tokens[:-1]] == ["h", "q", "[", "0", "]", ";"]


def test_real_and_int_numbers():
    assert _types("3.5") == [TokenType.REAL]
    assert _types("42") == [TokenType.INT]
    assert _types("1e-3") == [TokenType.REAL]


def test_arrow_and_minus():
    assert _types("->") == [TokenType.ARROW]
    assert _types("-1") == [TokenType.MINUS, TokenType.INT]


def test_string_literal():
    tokens = tokenize('include "qelib1.inc";')
    assert tokens[1].type is TokenType.STRING
    assert tokens[1].value == "qelib1.inc"


def test_unterminated_string_raises():
    with pytest.raises(QasmError):
        tokenize('include "qelib1.inc;')


def test_keywords_vs_identifiers():
    tokens = tokenize("gate mygate q { }")
    assert tokens[0].type is TokenType.KEYWORD
    assert tokens[1].type is TokenType.ID


def test_pi_is_keyword():
    tokens = tokenize("rz(pi/2) q[0];")
    values = [(t.type, t.value) for t in tokens]
    assert (TokenType.KEYWORD, "pi") in values


def test_unexpected_character_raises():
    with pytest.raises(QasmError):
        tokenize("h q[0]; @")


def test_single_equals_raises():
    with pytest.raises(QasmError):
        tokenize("if (c = 1) x q[0];")


def test_line_and_column_tracking():
    tokens = tokenize("h q[0];\ncx q[0], q[1];")
    cx_token = next(t for t in tokens if t.value == "cx")
    assert cx_token.line == 2
    assert cx_token.column == 1
