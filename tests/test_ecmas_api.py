"""Tests for the top-level compile_circuit API."""

import pytest

from repro import (
    Chip,
    EcmasOptions,
    SurfaceCodeModel,
    chip_communication_capacity,
    circuit_parallelism_degree,
    compile_circuit,
    default_chip,
)
from repro.circuits.generators import standard
from repro.errors import SchedulingError
from repro.verify import validate_encoded_circuit

DD = SurfaceCodeModel.DOUBLE_DEFECT
LS = SurfaceCodeModel.LATTICE_SURGERY


def test_default_chip_configurations(ghz8):
    minimum = default_chip(ghz8, DD, "minimum")
    four_x = default_chip(ghz8, DD, "4x")
    sufficient = default_chip(ghz8, DD, "sufficient")
    assert minimum.bandwidth == 1
    assert four_x.side == 2 * minimum.side
    assert chip_communication_capacity(sufficient) >= circuit_parallelism_degree(ghz8)
    with pytest.raises(SchedulingError):
        default_chip(ghz8, DD, "huge")


def test_compile_double_defect_minimum(ghz8):
    encoded = compile_circuit(ghz8, model=DD, resources="minimum", scheduler="limited")
    assert encoded.model is DD
    assert encoded.num_cnots == ghz8.num_cnots
    assert encoded.compile_seconds > 0
    validate_encoded_circuit(ghz8, encoded).raise_if_invalid()


def test_compile_lattice_surgery_minimum(ghz8):
    encoded = compile_circuit(ghz8, model=LS, resources="minimum", scheduler="limited")
    assert encoded.model is LS
    assert encoded.num_cycles == ghz8.depth()


def test_auto_scheduler_picks_resu_on_sufficient_chip(ghz8):
    encoded = compile_circuit(ghz8, model=DD, resources="sufficient", scheduler="auto")
    assert encoded.method.startswith("ecmas-resu")


def test_auto_scheduler_picks_limited_on_minimum_chip():
    circuit = standard.dnn(16, layers=2)  # parallelism 8 > capacity 3
    encoded = compile_circuit(circuit, model=DD, resources="minimum", scheduler="auto")
    assert encoded.method == "ecmas-dd"


def test_explicit_chip_overrides_resources(ghz8):
    chip = Chip.for_bandwidth(DD, 8, 3, 3)
    encoded = compile_circuit(ghz8, model=DD, chip=chip, scheduler="limited")
    assert encoded.chip.bandwidth >= 3


def test_options_control_cut_initialisation(ghz8):
    uniform = compile_circuit(
        ghz8, model=DD, scheduler="limited", options=EcmasOptions(cut_initialisation="uniform")
    )
    prefix = compile_circuit(
        ghz8, model=DD, scheduler="limited", options=EcmasOptions(cut_initialisation="bipartite_prefix")
    )
    # A uniform start forces same-cut handling and can only be slower.
    assert prefix.num_cycles <= uniform.num_cycles


def test_unknown_option_values_raise(ghz8):
    with pytest.raises(SchedulingError):
        compile_circuit(ghz8, model=DD, scheduler="bogus")
    with pytest.raises(SchedulingError):
        compile_circuit(ghz8, model=DD, options=EcmasOptions(priority="bogus"))
    with pytest.raises(SchedulingError):
        compile_circuit(ghz8, model=DD, options=EcmasOptions(cut_initialisation="bogus"))


def test_code_distance_does_not_change_cycle_count(ghz8):
    d3 = compile_circuit(ghz8, model=DD, scheduler="limited", code_distance=3)
    d5 = compile_circuit(ghz8, model=DD, scheduler="limited", code_distance=5)
    assert d3.num_cycles == d5.num_cycles


def test_readme_example_runs():
    from repro.circuits.generators import standard as gens

    circuit = gens.qft(8)
    encoded = compile_circuit(circuit, model=DD)
    assert encoded.num_cycles > 0
