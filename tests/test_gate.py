"""Unit tests for the gate IR."""

import pytest

from repro.circuits.gate import Gate, GateKind, cnot, single
from repro.errors import CircuitError


def test_cnot_constructor_sets_control_and_target():
    gate = cnot(2, 5)
    assert gate.is_cnot
    assert gate.control == 2
    assert gate.target == 5
    assert gate.kind is GateKind.CNOT


def test_cnot_rejects_equal_operands():
    with pytest.raises(CircuitError):
        cnot(3, 3)


def test_single_qubit_gate_kind():
    gate = single("h", 0)
    assert gate.kind is GateKind.SINGLE_QUBIT
    assert not gate.is_cnot


def test_single_gate_with_params_str():
    gate = single("rz", 1, 0.5)
    assert "rz" in str(gate)
    assert "q1" in str(gate)


def test_control_of_non_cnot_raises():
    gate = single("x", 0)
    with pytest.raises(CircuitError):
        _ = gate.control
    with pytest.raises(CircuitError):
        _ = gate.target


def test_gate_requires_qubits():
    with pytest.raises(CircuitError):
        Gate("h", ())


def test_gate_rejects_duplicate_qubits():
    with pytest.raises(CircuitError):
        Gate("cx", (1, 1))


def test_gate_rejects_negative_qubits():
    with pytest.raises(CircuitError):
        Gate("cx", (0, -1))


def test_two_qubit_other_kind():
    gate = Gate("cz", (0, 1))
    assert gate.kind is GateKind.TWO_QUBIT_OTHER


def test_measurement_and_barrier_kinds():
    assert Gate("measure", (0,)).kind is GateKind.MEASUREMENT
    assert Gate("barrier", (0, 1)).kind is GateKind.BARRIER


def test_with_index_preserves_payload():
    gate = cnot(0, 1).with_index(7)
    assert gate.index == 7
    assert gate.qubits == (0, 1)


def test_remapped_translates_qubits():
    gate = cnot(0, 1).remapped({0: 5, 1: 2})
    assert gate.qubits == (5, 2)


def test_remapped_missing_qubit_raises():
    with pytest.raises(CircuitError):
        cnot(0, 1).remapped({0: 5})
