"""Defect-aware chips: spec model, routing graph, placement, pipeline, validator."""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chip import (
    Chip,
    DefectSpec,
    RoutingGraph,
    SurfaceCodeModel,
    chip_from_dict,
    chip_is_routable,
    chip_to_dict,
    load_chip_spec,
    random_defects,
    save_chip_spec,
)
from repro.chip.chip import TileSlot
from repro.circuits.generators import standard
from repro.core.mapping import determine_shape, establish_placement
from repro.errors import ChipError, MappingError
from repro.pipeline.batch import BatchJob
from repro.pipeline.registry import run_pipeline_method
from repro.verify import validate_encoded_circuit

DD = SurfaceCodeModel.DOUBLE_DEFECT
LS = SurfaceCodeModel.LATTICE_SURGERY


def _chip(model=DD, rows=4, cols=4, bandwidth=2) -> Chip:
    return Chip.with_tile_array(model, 3, rows, cols, bandwidth=bandwidth)


# ------------------------------------------------------------------ DefectSpec
class TestDefectSpec:
    def test_canonicalisation_and_equality(self):
        a = DefectSpec(
            dead_tiles=((1, 2), (0, 0), (1, 2)),
            disabled_segments=(("v", 1, 0), ("h", 0, 1)),
            bandwidth_overrides=((("h", 2, 0), 1), (("h", 2, 0), 1)),
        )
        b = DefectSpec(
            dead_tiles=((0, 0), (1, 2)),
            disabled_segments=(("h", 0, 1), ("v", 1, 0)),
            bandwidth_overrides=((("h", 2, 0), 1),),
        )
        assert a == b
        assert hash(a) == hash(b)

    def test_zero_override_counts_as_disabled(self):
        spec = DefectSpec(bandwidth_overrides=((("h", 0, 0), 0),))
        assert ("h", 0, 0) in spec.disabled_set()

    def test_empty_spec(self):
        assert DefectSpec().is_empty
        assert not DefectSpec(dead_tiles=((0, 0),)).is_empty

    def test_out_of_range_defects_rejected(self):
        chip = _chip()
        with pytest.raises(ChipError, match="dead tile"):
            chip.with_defects(DefectSpec(dead_tiles=((9, 0),)))
        with pytest.raises(ChipError, match="segment"):
            chip.with_defects(DefectSpec(disabled_segments=(("h", 0, 4),)))
        with pytest.raises(ChipError, match="kind"):
            chip.with_defects(DefectSpec(disabled_segments=(("x", 0, 0),)))

    def test_negative_override_rejected(self):
        with pytest.raises(ChipError, match=">= 0"):
            DefectSpec(bandwidth_overrides=((("h", 0, 0), -1),))

    def test_dict_roundtrip(self):
        spec = DefectSpec(
            dead_tiles=((1, 1),),
            disabled_segments=(("v", 0, 2),),
            bandwidth_overrides=((("h", 1, 0), 1),),
        )
        assert DefectSpec.from_dict(spec.to_dict()) == spec


# ------------------------------------------------------------------------ Chip
class TestDefectiveChip:
    def test_alive_slots_and_describe(self):
        chip = _chip().with_defects(DefectSpec(dead_tiles=((0, 0), (3, 3))))
        assert chip.num_alive_tile_slots == 14
        assert TileSlot(0, 0) not in chip.alive_tile_slots()
        assert chip.is_dead_slot(TileSlot(0, 0))
        assert not chip.is_dead_slot(TileSlot(1, 1))
        assert "2 dead tiles" in chip.describe()

    def test_bandwidth_reflects_overrides_not_disabled_segments(self):
        chip = _chip(bandwidth=2)
        degraded = chip.with_defects(DefectSpec(bandwidth_overrides=((("h", 0, 0), 1),)))
        assert chip.bandwidth == 2
        assert degraded.bandwidth == 1
        # A disabled segment is excluded from the minimum, not counted as 0.
        disabled = chip.with_defects(DefectSpec(disabled_segments=(("h", 0, 0),)))
        assert disabled.bandwidth == 2

    def test_override_cannot_exceed_nominal_bandwidth(self):
        # Overrides model degraded hardware: a spec claiming more lanes than
        # the physical corridor has is clamped, not honored.
        chip = _chip(bandwidth=1).with_defects(DefectSpec(bandwidth_overrides=((("h", 0, 0), 99),)))
        assert chip.segment_capacity(("h", 0, 0)) == 1
        assert chip.bandwidth == 1
        assert RoutingGraph(chip).capacity(("j", 0, 0), ("j", 0, 1)) == 1

    def test_segment_capacity(self):
        chip = _chip(bandwidth=2).with_defects(
            DefectSpec(
                disabled_segments=(("h", 0, 0),),
                bandwidth_overrides=((("v", 1, 1), 1),),
            )
        )
        assert chip.segment_capacity(("h", 0, 0)) == 0
        assert chip.segment_capacity(("v", 1, 1)) == 1
        assert chip.segment_capacity(("h", 1, 1)) == 2

    def test_scaled_bandwidth_keeps_defects(self):
        spec = DefectSpec(dead_tiles=((1, 1),))
        chip = _chip().with_defects(spec).scaled_bandwidth(3)
        assert chip.defects == spec

    def test_spec_file_roundtrip(self, tmp_path):
        chip = _chip(model=LS).with_defects(
            DefectSpec(dead_tiles=((2, 1),), disabled_segments=(("v", 0, 1),))
        )
        path = save_chip_spec(chip, tmp_path / "chip.json")
        assert load_chip_spec(path) == chip
        assert chip_from_dict(chip_to_dict(chip)) == chip

    def test_spec_file_errors(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(ChipError, match="cannot read"):
            load_chip_spec(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ChipError, match="not valid JSON"):
            load_chip_spec(bad)
        bad.write_text("[1, 2]")
        with pytest.raises(ChipError, match="JSON object"):
            load_chip_spec(bad)
        with pytest.raises(ChipError, match="format"):
            chip_from_dict({"format": "something-else"})
        with pytest.raises(ChipError, match="missing"):
            chip_from_dict({"model": "double_defect"})

    def test_spec_with_malformed_field_types(self):
        good = chip_to_dict(_chip())
        for field, value in (
            ("h_bandwidths", 5),
            ("defects", "oops"),
            ("version", "not-a-number"),
            ("model", 17),
            ("defects", {"dead_tiles": 3}),
        ):
            payload = dict(good)
            payload[field] = value
            with pytest.raises(ChipError):
                chip_from_dict(payload)


# ---------------------------------------------------------------- RoutingGraph
class TestDefectiveRoutingGraph:
    def test_dead_tiles_have_no_node(self):
        chip = _chip().with_defects(DefectSpec(dead_tiles=((1, 1),)))
        graph = RoutingGraph(chip)
        assert ("t", 1, 1) not in graph.nodes
        assert ("t", 1, 1) not in graph.tile_nodes()
        assert len(graph.tile_nodes()) == 15

    def test_disabled_segment_removed(self):
        chip = _chip().with_defects(DefectSpec(disabled_segments=(("h", 2, 1),)))
        graph = RoutingGraph(chip)
        assert not graph.has_edge(("j", 2, 1), ("j", 2, 2))
        pristine = RoutingGraph(_chip())
        assert pristine.has_edge(("j", 2, 1), ("j", 2, 2))

    def test_bandwidth_override_applied(self):
        chip = _chip(bandwidth=3).with_defects(DefectSpec(bandwidth_overrides=((("v", 1, 2), 1),)))
        graph = RoutingGraph(chip)
        assert graph.capacity(("j", 1, 2), ("j", 2, 2)) == 1
        assert graph.capacity(("j", 0, 2), ("j", 1, 2)) == 3

    def test_junction_capacity_uses_enabled_segments(self):
        # Junction (1, 1) with all four incident segments overridden to 1
        # provides only one through-lane even though the corridors claim 3.
        overrides = tuple(
            (key, 1) for key in (("h", 1, 0), ("h", 1, 1), ("v", 0, 1), ("v", 1, 1))
        )
        chip = _chip(bandwidth=3).with_defects(DefectSpec(bandwidth_overrides=overrides))
        graph = RoutingGraph(chip)
        assert graph.node_capacity(("j", 1, 1)) == 1
        assert RoutingGraph(_chip(bandwidth=3)).node_capacity(("j", 1, 1)) == 3

    def test_routability_check(self):
        chip = _chip(rows=1, cols=3, bandwidth=1)
        assert chip_is_routable(chip)
        all_segments = tuple(key for key, _ in chip.corridor_segments())
        isolated = chip.with_defects(DefectSpec(disabled_segments=all_segments))
        assert not chip_is_routable(isolated)

    def test_routability_respects_junction_through_capacity(self):
        # Tiles (0, 0) and (0, 1) share only the corner junctions (0, 1) and
        # (1, 1).  Disabling every corridor segment incident to those two
        # junctions leaves their tile-access edges in place, but no path may
        # pass *through* a zero-capacity junction, so the tiles are
        # unroutable — the check must not be fooled by the access edges.
        chip = _chip(rows=1, cols=2, bandwidth=1)
        blocked = chip.with_defects(
            DefectSpec(
                disabled_segments=(
                    ("h", 0, 0), ("h", 0, 1), ("h", 1, 0), ("h", 1, 1), ("v", 0, 1),
                )
            )
        )
        assert not chip_is_routable(blocked)

    def test_routability_agrees_with_find_path(self):
        # Ground truth: chip_is_routable must match pairwise find_path
        # feasibility, including on heavily degraded chips (the historical
        # failure mode was a generated "routable" chip with an unroutable
        # tile pair, seen at rate 0.7 seed 7 on a 5x5 bandwidth-1 chip).
        from repro.routing.paths import CapacityUsage
        from repro.routing.router import find_path

        chip = _chip(rows=5, cols=5, bandwidth=1)
        for seed in (7, 45, 3):
            spec = random_defects(chip, 0.7, seed=seed, min_alive_tiles=4)
            defective = chip.with_defects(spec)
            graph = RoutingGraph(defective)
            tiles = graph.tile_nodes()
            pairwise = all(
                find_path(graph, CapacityUsage(), a, b) is not None
                for a in tiles
                for b in tiles
                if a < b
            )
            assert chip_is_routable(defective)
            assert pairwise, f"seed {seed}: generated spec left an unroutable tile pair"


# ------------------------------------------------------------- random_defects
class TestRandomDefects:
    def test_deterministic_and_routable(self):
        chip = _chip()
        a = random_defects(chip, 0.25, seed=7, min_alive_tiles=8)
        b = random_defects(chip, 0.25, seed=7, min_alive_tiles=8)
        assert a == b
        assert chip_is_routable(chip.with_defects(a))

    def test_respects_min_alive(self):
        chip = _chip()
        spec = random_defects(chip, 1.0, seed=0, min_alive_tiles=10)
        assert chip.num_tile_slots - len(spec.dead_tiles) >= 10

    def test_zero_rate_is_pristine(self):
        assert random_defects(_chip(), 0.0, seed=1).is_empty

    def test_composes_with_existing_chip_defects(self):
        # A chip loaded from a measured spec keeps its declared defects when
        # degraded further: the generated spec is a superset of chip.defects.
        base = DefectSpec(dead_tiles=((0, 0), (2, 3)), disabled_segments=(("h", 1, 1),))
        chip = _chip().with_defects(base)
        spec = random_defects(chip, 0.2, seed=5, min_alive_tiles=8)
        assert set(base.dead_tiles) <= set(spec.dead_tiles)
        assert set(base.disabled_segments) <= set(spec.disabled_set())
        assert chip_is_routable(chip.with_defects(spec))

    def test_invalid_inputs(self):
        with pytest.raises(ChipError, match="rate"):
            random_defects(_chip(), 1.5)
        with pytest.raises(ChipError, match="alive"):
            random_defects(_chip(), 0.1, min_alive_tiles=17)


# ------------------------------------------------------------------- placement
class TestDefectAwarePlacement:
    @pytest.mark.parametrize("strategy", ["ecmas", "metis", "trivial", "spectral", "random"])
    def test_strategies_avoid_dead_tiles(self, strategy):
        circuit = standard.qft(8)
        graph = circuit.communication_graph()
        dead = frozenset({(0, 0), (1, 1), (2, 2)})
        placement = establish_placement(graph, (3, 4), strategy=strategy, dead=dead)
        assert placement.num_qubits() == 8
        occupied = {(s.row, s.col) for s in placement.slots()}
        assert not occupied & dead

    def test_chip_error_when_defects_starve_the_circuit(self):
        circuit = standard.qft(8)
        chip = _chip(rows=3, cols=3).with_defects(
            DefectSpec(dead_tiles=((0, 0), (1, 1)))
        )
        with pytest.raises(ChipError, match="alive"):
            determine_shape(circuit.num_qubits, chip)

    def test_determine_shape_widens_around_dead_tiles(self):
        chip = _chip(rows=4, cols=4)
        assert determine_shape(8, chip) == (3, 3)
        # Two dead tiles inside the 3x3 window push the shape wider.
        defective = chip.with_defects(DefectSpec(dead_tiles=((0, 0), (1, 1))))
        rows, cols = determine_shape(8, defective)
        dead = defective.defects.dead_set()
        alive = rows * cols - sum(1 for r, c in dead if r < rows and c < cols)
        assert alive >= 8

    def test_placement_validate_rejects_dead_slot(self):
        chip = _chip().with_defects(DefectSpec(dead_tiles=((0, 0),)))
        placement = establish_placement(
            standard.qft(4).communication_graph(), (2, 2), strategy="trivial"
        )
        with pytest.raises(MappingError, match="dead"):
            placement.validate(chip)


# ------------------------------------------------------------------- pipeline
class TestDefectivePipeline:
    @pytest.mark.parametrize("method", ["ecmas_dd_min", "ecmas_ls_min"])
    def test_end_to_end_valid_on_defective_chip(self, method):
        circuit = standard.qft(8)
        model = DD if "dd" in method else LS
        chip = _chip(model=model, bandwidth=2)
        spec = random_defects(chip, 0.2, seed=3, min_alive_tiles=8)
        result = run_pipeline_method(circuit, method, chip=chip.with_defects(spec))
        report = validate_encoded_circuit(circuit, result.encoded)
        assert report.valid, report.errors[:3]
        assert not result.encoded.chip.defects.is_empty

    def test_defects_param_applies_to_built_chip(self):
        circuit = standard.ghz_state(8)
        spec = DefectSpec(dead_tiles=((0, 0),))
        result = run_pipeline_method(circuit, "ecmas_dd_min", defects=spec)
        assert result.encoded.chip.defects == spec
        occupied = {(s.row, s.col) for s in result.encoded.placement.slots()}
        assert (0, 0) not in occupied
        validate_encoded_circuit(circuit, result.encoded).raise_if_invalid()

    def test_fully_disabled_corridor_grid_reports_capacity_zero(self):
        # A chip whose every corridor segment is disabled has no
        # communication capacity; a gate-free circuit still compiles (nothing
        # to route) instead of crashing in the scheduler-selection pass.
        from repro.circuits import Circuit
        from repro.core.metrics import chip_communication_capacity

        chip = _chip(rows=2, cols=2)
        dark = chip.with_defects(
            DefectSpec(disabled_segments=tuple(key for key, _ in chip.corridor_segments()))
        )
        assert dark.bandwidth == 0
        assert chip_communication_capacity(dark) == 0
        result = run_pipeline_method(Circuit(1), "ecmas", chip=dark)
        assert result.encoded.num_cycles == 0

    def test_resu_on_defective_sufficient_chip(self):
        circuit = standard.qft(8)
        parallelism = 4
        chip = Chip.sufficient(DD, 8, 3, parallelism)
        spec = DefectSpec(bandwidth_overrides=((("h", 1, 0), max(1, chip.bandwidth - 1)),))
        result = run_pipeline_method(
            circuit, "ecmas_dd_resu", chip=chip.with_defects(spec), scheduler="resu"
        )
        validate_encoded_circuit(circuit, result.encoded).raise_if_invalid()


# ------------------------------------------------------------------- validator
class TestDefectValidation:
    def _encoded_crossing(self, chip, path_nodes):
        from repro.core.schedule import EncodedCircuit, OperationKind, ScheduledOperation
        from repro.partition.placement import Placement
        from repro.routing.paths import RoutedPath

        pristine_graph = RoutingGraph(chip.with_defects(DefectSpec()))
        path = RoutedPath.from_nodes(pristine_graph, path_nodes)
        placement = Placement({0: TileSlot(0, 0), 1: TileSlot(0, 2)})
        from repro.circuits import Circuit

        circuit = Circuit(2)
        circuit.cx(0, 1)
        encoded = EncodedCircuit(
            model=chip.model,
            chip=chip,
            placement=placement,
            initial_cut_types=None,
            operations=[
                ScheduledOperation(
                    kind=OperationKind.CNOT_BRAID,
                    start_cycle=0,
                    duration=1,
                    qubits=(0, 1),
                    gate_node=0,
                    path=path,
                )
            ],
        )
        return circuit, encoded

    def test_path_across_disabled_segment_flagged(self):
        chip = _chip(model=LS, rows=1, cols=3, bandwidth=1).with_defects(
            DefectSpec(disabled_segments=(("h", 0, 1),))
        )
        circuit, encoded = self._encoded_crossing(
            chip, [("t", 0, 0), ("j", 0, 1), ("j", 0, 2), ("t", 0, 2)]
        )
        report = validate_encoded_circuit(circuit, encoded)
        assert not report.valid
        assert any("disabled corridor segment" in e for e in report.errors)

    def test_operation_on_dead_tile_flagged(self):
        chip = _chip(model=LS, rows=1, cols=3, bandwidth=1).with_defects(
            DefectSpec(dead_tiles=((0, 0),))
        )
        circuit, encoded = self._encoded_crossing(
            chip, [("t", 0, 0), ("j", 0, 1), ("j", 0, 2), ("t", 0, 2)]
        )
        report = validate_encoded_circuit(circuit, encoded)
        assert not report.valid
        assert any("dead tile" in e for e in report.errors)


# ----------------------------------------------------------- cache fingerprints
class TestDefectFingerprints:
    def test_defects_change_the_job_fingerprint(self):
        circuit = standard.ghz_state(4)
        base = BatchJob(circuit, "ecmas_dd_min")
        spec = DefectSpec(dead_tiles=((0, 0),))
        assert base.fingerprint() != BatchJob(circuit, "ecmas_dd_min", defects=spec).fingerprint()

    def test_defective_chip_changes_the_fingerprint(self):
        circuit = standard.ghz_state(4)
        chip = _chip(rows=2, cols=2)
        spec = DefectSpec(disabled_segments=(("h", 0, 0),))
        pristine = BatchJob(circuit, "ecmas_dd_min", chip=chip)
        defective = BatchJob(circuit, "ecmas_dd_min", chip=chip.with_defects(spec))
        assert pristine.fingerprint() != defective.fingerprint()

    def test_batch_cache_roundtrip_with_defects(self, tmp_path):
        from repro.pipeline.batch import ResultCache, run_batch

        circuit = standard.ghz_state(8)
        job = BatchJob(circuit, "ecmas_dd_min", defects=DefectSpec(dead_tiles=((0, 0),)))
        cache = ResultCache(tmp_path)
        first = run_batch([job], cache=cache)
        second = run_batch([job], cache=cache)
        assert first.cache_hits == 0 and second.cache_hits == 1
        assert first.records[0].cycles == second.records[0].cycles


# -------------------------------------------------- hypothesis: engine parity
def _all_segments(chip: Chip) -> list:
    return [key for key, _ in chip.corridor_segments()]


@st.composite
def defect_specs(draw, chip: Chip, max_dead: int) -> DefectSpec:
    """Random defect sets over ``chip``: dead tiles, disabled and degraded segments."""
    slots = [(r, c) for r in range(chip.tile_rows) for c in range(chip.tile_cols)]
    dead = draw(st.sets(st.sampled_from(slots), max_size=max_dead))
    segments = _all_segments(chip)
    disabled = draw(st.sets(st.sampled_from(segments), max_size=5))
    degraded = draw(st.sets(st.sampled_from(segments), max_size=5))
    return DefectSpec(
        dead_tiles=tuple(dead),
        disabled_segments=tuple(disabled),
        bandwidth_overrides=tuple((key, 1) for key in degraded),
    )


@pytest.mark.parametrize("method,model", [("ecmas_dd_min", DD), ("ecmas_ls_min", LS)])
@settings(max_examples=8, deadline=None)
@given(data=st.data())
def test_engines_identical_on_defective_chips(method, model, data):
    """Differential parity extends to defective chips: fast == reference, bit for bit."""
    chip = _chip(model=model, bandwidth=2)
    spec = data.draw(defect_specs(chip, max_dead=4))
    defective = chip.with_defects(spec)
    assume(chip_is_routable(defective))
    circuit = standard.qft(8)
    reference = run_pipeline_method(circuit, method, chip=defective, engine="reference")
    fast = run_pipeline_method(circuit, method, chip=defective, engine="fast")
    assert reference.encoded.operations == fast.encoded.operations
    report = validate_encoded_circuit(circuit, fast.encoded)
    assert report.valid, report.errors[:3]
