"""Docs-site guarantees: generated API reference in sync, offline build
clean, docstring-coverage gate above threshold.

These run in the tier-1 suite (they are cheap) so docs drift fails locally,
not just in the ``docs-build`` CI job.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import build_docs  # noqa: E402  (tools/ is not a package)
import check_docstrings  # noqa: E402


def test_http_api_reference_matches_schema():
    """docs/http-api.md must be exactly what the generator produces today."""
    from repro.service.docs import render_api_reference

    committed = (ROOT / "docs" / "http-api.md").read_text(encoding="utf-8")
    assert committed == render_api_reference(), (
        "docs/http-api.md is stale; regenerate with "
        "`PYTHONPATH=src python -m repro.service.docs > docs/http-api.md`"
    )


def test_offline_docs_build_is_warning_free(tmp_path):
    """The stdlib site builder renders every nav page without a single problem."""
    problems = build_docs.build_site(tmp_path)
    assert problems == []
    nav = build_docs.read_nav(ROOT / "mkdocs.yml")
    assert len(nav) >= 7
    for _, name in nav:
        page = tmp_path / (name[:-3] + ".html")
        assert page.is_file() and page.stat().st_size > 0


def test_offline_builder_catches_broken_links(tmp_path):
    problems: list[str] = []
    build_docs.render_markdown(
        "see [missing](no-such-page.md)", "test.md", {"index.md"}, problems
    )
    assert problems and "broken internal link" in problems[0]


def test_docstring_coverage_gate():
    """The interrogate-style gate holds at >= 80% repo-wide (and 100% where promised)."""
    documented, total, missing = check_docstrings.measure(ROOT / "src" / "repro")
    coverage = 100.0 * documented / total
    assert coverage >= 80.0, f"docstring coverage fell to {coverage:.1f}%: {missing}"
    for package in ("pipeline", "routing", "chip", "service"):
        documented, total, missing = check_docstrings.measure(ROOT / "src" / "repro" / package)
        assert documented == total, f"repro.{package} lost docstrings: {missing}"


def test_docstring_gate_cli_passes():
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_docstrings.py"), "--fail-under", "80"],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "PASSED" in result.stdout


def test_readme_is_not_stale():
    """Pin the README claims this PR fixed (cache v3, default_cache_dir, CLI table)."""
    readme = (ROOT / "README.md").read_text(encoding="utf-8")
    from repro.pipeline.batch import CACHE_FORMAT_VERSION

    assert f"cache format v{CACHE_FORMAT_VERSION}" in readme
    assert "DEFAULT_CACHE_DIR" not in readme
    assert "default_cache_dir()" in readme
    for command in ("repro cache", "repro serve", "repro submit"):
        assert command in readme, f"README CLI docs lost {command!r}"
