"""Property-based tests for chip construction and the mapping pipeline."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chip import Chip, SurfaceCodeModel, communication_capacity
from repro.circuits import Circuit
from repro.core.mapping import adjust_bandwidth, build_initial_mapping, determine_shape
from repro.core.cut_types import bipartite_prefix_cut_types

MODELS = (SurfaceCodeModel.DOUBLE_DEFECT, SurfaceCodeModel.LATTICE_SURGERY)


@given(
    num_qubits=st.integers(min_value=2, max_value=60),
    code_distance=st.integers(min_value=2, max_value=9),
    model=st.sampled_from(MODELS),
)
@settings(max_examples=80, deadline=None)
def test_chip_factories_invariants(num_qubits, code_distance, model):
    minimum = Chip.minimum_viable(model, num_qubits, code_distance)
    four_x = Chip.four_x(model, num_qubits, code_distance)
    assert minimum.num_tile_slots >= num_qubits
    assert minimum.bandwidth >= 1
    assert four_x.physical_qubits >= minimum.physical_qubits
    assert four_x.bandwidth >= minimum.bandwidth
    assert minimum.communication_capacity == communication_capacity(minimum.bandwidth)


@given(
    num_qubits=st.integers(min_value=2, max_value=40),
    parallelism=st.integers(min_value=1, max_value=15),
    model=st.sampled_from(MODELS),
)
@settings(max_examples=50, deadline=None)
def test_sufficient_chip_covers_parallelism(num_qubits, parallelism, model):
    chip = Chip.sufficient(model, num_qubits, 3, parallelism)
    assert chip.communication_capacity >= parallelism


@given(num_qubits=st.integers(min_value=1, max_value=49))
@settings(max_examples=50, deadline=None)
def test_determine_shape_fits_and_covers(num_qubits):
    chip = Chip.minimum_viable(SurfaceCodeModel.DOUBLE_DEFECT, max(num_qubits, 2), 3)
    rows, cols = determine_shape(num_qubits, chip)
    assert rows * cols >= num_qubits
    assert rows <= chip.tile_rows and cols <= chip.tile_cols
    # Perimeter minimality: no other fitting shape has a strictly smaller perimeter.
    for alt_rows in range(1, chip.tile_rows + 1):
        alt_cols = -(-num_qubits // alt_rows)
        if alt_cols <= chip.tile_cols:
            assert rows + cols <= alt_rows + alt_cols


@st.composite
def _random_circuit(draw):
    num_qubits = draw(st.integers(min_value=2, max_value=16))
    num_gates = draw(st.integers(min_value=1, max_value=40))
    rng = random.Random(draw(st.integers(min_value=0, max_value=9999)))
    circuit = Circuit(num_qubits)
    for _ in range(num_gates):
        a, b = rng.sample(range(num_qubits), 2)
        circuit.cx(a, b)
    return circuit


@given(circuit=_random_circuit(), scale=st.sampled_from(["minimum", "4x"]), model=st.sampled_from(MODELS))
@settings(max_examples=40, deadline=None)
def test_initial_mapping_is_injective_and_within_budget(circuit, scale, model):
    chip = (
        Chip.minimum_viable(model, circuit.num_qubits, 3)
        if scale == "minimum"
        else Chip.four_x(model, circuit.num_qubits, 3)
    )
    cuts = (
        bipartite_prefix_cut_types(circuit.dag(), circuit.num_qubits)
        if model is SurfaceCodeModel.DOUBLE_DEFECT
        else None
    )
    mapping = build_initial_mapping(circuit, chip, cuts)
    # Injective placement inside the chip.
    mapping.placement.validate(mapping.chip)
    assert mapping.placement.num_qubits() == circuit.num_qubits
    # Bandwidth adjusting never exceeds the per-axis lane budget and never
    # drops a corridor below one lane.
    h_budget, v_budget = chip.lane_budget_per_axis()
    assert sum(mapping.chip.h_bandwidths) <= h_budget
    assert sum(mapping.chip.v_bandwidths) <= v_budget
    assert min(mapping.chip.h_bandwidths + mapping.chip.v_bandwidths) >= 1


@given(circuit=_random_circuit())
@settings(max_examples=30, deadline=None)
def test_adjust_bandwidth_idempotent_on_minimum_chip(circuit):
    chip = Chip.minimum_viable(SurfaceCodeModel.LATTICE_SURGERY, circuit.num_qubits, 3)
    graph = circuit.communication_graph()
    mapping = build_initial_mapping(circuit, chip, None, adjust=False)
    assert adjust_bandwidth(chip, mapping.placement, graph) == chip
