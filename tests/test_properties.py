"""Hypothesis property-based tests on the core data structures and pipeline.

These exercise invariants rather than specific values:

* DAG layering invariants (ASAP ≤ ALAP, edges cross layers forwards),
* Para-Finding produces a legal, depth-preserving execution scheme,
* QASM round-trips preserve the CNOT structure for arbitrary random circuits,
* every compiled schedule (both models, Ecmas and baselines) passes the
  validator and never beats the circuit depth lower bound.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SurfaceCodeModel, compile_circuit
from repro.baselines import compile_autobraid, compile_edpci
from repro.circuits import Circuit, qasm
from repro.core.metrics import para_finding
from repro.verify import validate_encoded_circuit

DD = SurfaceCodeModel.DOUBLE_DEFECT
LS = SurfaceCodeModel.LATTICE_SURGERY


@st.composite
def random_cnot_circuits(draw, max_qubits: int = 10, max_gates: int = 30):
    """A random CNOT-only circuit with at least one gate."""
    num_qubits = draw(st.integers(min_value=2, max_value=max_qubits))
    num_gates = draw(st.integers(min_value=1, max_value=max_gates))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(seed)
    circuit = Circuit(num_qubits, name=f"hypothesis_{seed}")
    for _ in range(num_gates):
        a, b = rng.sample(range(num_qubits), 2)
        circuit.cx(a, b)
    return circuit


@given(random_cnot_circuits())
@settings(max_examples=60, deadline=None)
def test_dag_level_invariants(circuit):
    dag = circuit.dag()
    depth = dag.depth()
    for node in range(len(dag)):
        assert 1 <= dag.asap_level(node) <= dag.alap_level(node) <= depth
        for succ in dag.successors(node):
            assert dag.asap_level(succ) > dag.asap_level(node)
            assert dag.alap_level(succ) > dag.alap_level(node)
        assert dag.criticality(node) >= 1
        assert dag.descendant_count(node) >= len(dag.successors(node))


@given(random_cnot_circuits())
@settings(max_examples=40, deadline=None)
def test_para_finding_scheme_legal(circuit):
    dag = circuit.dag()
    scheme = para_finding(dag)
    assert scheme.depth == dag.depth()
    layer_of = {}
    for index, layer in enumerate(scheme.layers):
        qubits_in_layer = set()
        for node in layer:
            layer_of[node] = index
            gate = dag.gate(node)
            # Gates in a layer are independent: no shared qubits.
            assert gate.control not in qubits_in_layer
            assert gate.target not in qubits_in_layer
            qubits_in_layer.update(gate.qubits)
    assert len(layer_of) == len(dag)
    for node in range(len(dag)):
        for succ in dag.successors(node):
            assert layer_of[succ] > layer_of[node]
    assert scheme.parallelism == max(len(layer) for layer in scheme.layers)


@given(random_cnot_circuits(max_qubits=8, max_gates=20))
@settings(max_examples=30, deadline=None)
def test_qasm_roundtrip_preserves_structure(circuit):
    parsed = qasm.loads(qasm.dumps(circuit))
    assert parsed.num_qubits == circuit.num_qubits
    assert [(g.control, g.target) for g in parsed.cnot_gates()] == [
        (g.control, g.target) for g in circuit.cnot_gates()
    ]


@given(random_cnot_circuits(max_qubits=9, max_gates=18))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_double_defect_schedules_valid_and_bounded(circuit):
    encoded = compile_circuit(circuit, model=DD, resources="minimum", scheduler="limited")
    report = validate_encoded_circuit(circuit, encoded)
    assert report.valid, report.errors
    assert encoded.num_cycles >= circuit.depth()
    # Worst case: every gate pays direct same-cut execution plus a full
    # modification — far above anything the scheduler should produce.
    assert encoded.num_cycles <= 7 * circuit.num_cnots + 7


@given(random_cnot_circuits(max_qubits=9, max_gates=18))
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_lattice_surgery_schedules_valid_and_bounded(circuit):
    encoded = compile_circuit(circuit, model=LS, resources="minimum", scheduler="limited")
    report = validate_encoded_circuit(circuit, encoded)
    assert report.valid, report.errors
    assert circuit.depth() <= encoded.num_cycles <= circuit.num_cnots + 1


@given(random_cnot_circuits(max_qubits=8, max_gates=12))
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_baselines_always_valid(circuit):
    autobraid = compile_autobraid(circuit)
    edpci = compile_edpci(circuit)
    assert validate_encoded_circuit(circuit, autobraid).valid
    assert validate_encoded_circuit(circuit, edpci).valid
    # AutoBraid pays three cycles per same-cut CNOT, so it is never faster
    # than the lattice-surgery baseline on the same circuit.
    assert autobraid.num_cycles >= edpci.num_cycles


@given(random_cnot_circuits(max_qubits=8, max_gates=15))
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_resu_valid_and_within_approximation(circuit):
    encoded = compile_circuit(circuit, model=DD, resources="sufficient", scheduler="resu")
    report = validate_encoded_circuit(circuit, encoded)
    assert report.valid, report.errors
    # Theorem 3: 5/2-approximation of the optimum (which is >= depth); allow
    # the remap constant for tiny circuits.
    assert encoded.num_cycles <= 2.5 * circuit.depth() + 3
