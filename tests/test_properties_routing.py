"""Property-based tests for the capacity-aware routers.

Hypothesis drives :func:`find_path` (and the fast router) over random small
chips, random residual-capacity states and random tile pairs, checking the
routing contract rather than specific paths:

* a returned path starts at the source tile, ends at the target tile and
  traverses no tile in between;
* committing the path never exceeds any edge or junction capacity;
* with ``congestion_weight=0`` the returned path is a *shortest*
  capacity-feasible path (checked against an independent BFS oracle), and
  ``None`` is returned only when the oracle also finds no path;
* the fast landmark-A* router returns the bit-identical node sequence for
  every query, including under congestion weights.
"""

from __future__ import annotations

from collections import deque

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.chip.chip import Chip
from repro.chip.geometry import SurfaceCodeModel
from repro.chip.routing_graph import RoutingGraph, tile_node
from repro.routing.fast_router import FastRouter
from repro.routing.paths import CapacityUsage
from repro.routing.router import find_path


# ----------------------------------------------------------------- strategies
@st.composite
def routing_scenarios(draw):
    """A random small chip, a random usage state and a random tile pair."""
    rows = draw(st.integers(min_value=1, max_value=4))
    cols = draw(st.integers(min_value=1, max_value=4))
    if rows * cols < 2:
        cols = 2  # need two distinct tiles
    chip = Chip(
        model=SurfaceCodeModel.DOUBLE_DEFECT,
        code_distance=3,
        tile_rows=rows,
        tile_cols=cols,
        h_bandwidths=tuple(draw(st.integers(1, 3)) for _ in range(rows + 1)),
        v_bandwidths=tuple(draw(st.integers(1, 3)) for _ in range(cols + 1)),
        side=999,
    )
    graph = RoutingGraph(chip)
    tiles = graph.tile_nodes()
    source, target = draw(
        st.lists(st.sampled_from(tiles), min_size=2, max_size=2, unique=True)
    )
    # Random pre-existing usage: route a few random pairs and commit them, so
    # the usage state is always one a scheduler could actually reach.
    usage = CapacityUsage()
    for _ in range(draw(st.integers(0, 6))):
        a, b = draw(st.lists(st.sampled_from(tiles), min_size=2, max_size=2, unique=True))
        committed = find_path(graph, usage, a, b)
        if committed is not None:
            usage.add_path(committed)
    weight = draw(st.sampled_from([0.0, 0.25, 0.5]))
    return graph, usage, source, target, weight


def _shortest_feasible_hops(graph, usage, source, target):
    """Independent BFS oracle: fewest hops over the residual graph, or None."""
    best = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        if node == target:
            return best[node]
        if graph.is_tile(node) and node != source:
            continue  # tiles never continue a path
        for neighbor in graph.neighbors(node):
            if neighbor in best:
                continue
            if graph.is_tile(neighbor) and neighbor != target:
                continue
            if not usage.can_use(graph, node, neighbor):
                continue
            if neighbor != target and not usage.can_pass_through(graph, neighbor):
                continue
            best[neighbor] = best[node] + 1
            queue.append(neighbor)
    return best.get(target)


# ------------------------------------------------------------------ properties
@settings(max_examples=120, deadline=None)
@given(routing_scenarios())
def test_path_endpoints_and_interior(scenario):
    graph, usage, source, target, weight = scenario
    path = find_path(graph, usage, source, target, weight)
    if path is None:
        return
    assert path.source == source
    assert path.target == target
    assert all(not graph.is_tile(node) for node in path.nodes[1:-1])
    assert len(set(path.nodes)) == len(path.nodes), "path revisits a node"


@settings(max_examples=120, deadline=None)
@given(routing_scenarios())
def test_committing_path_never_exceeds_capacity(scenario):
    graph, usage, source, target, weight = scenario
    path = find_path(graph, usage, source, target, weight)
    if path is None:
        return
    usage.add_path(path)
    assert usage.violates(graph) == []
    for node in path.nodes[1:-1]:
        assert usage.node_used[node] <= graph.node_capacity(node)


@settings(max_examples=120, deadline=None)
@given(routing_scenarios())
def test_path_is_shortest_among_feasible(scenario):
    graph, usage, source, target, _weight = scenario
    path = find_path(graph, usage, source, target, congestion_weight=0.0)
    oracle = _shortest_feasible_hops(graph, usage, source, target)
    if path is None:
        assert oracle is None, "router failed although a feasible path exists"
    else:
        assert oracle is not None
        assert path.length == oracle, "router returned a non-shortest path"


@settings(max_examples=150, deadline=None)
@given(routing_scenarios())
def test_fast_router_matches_reference_exactly(scenario):
    graph, usage, source, target, weight = scenario
    reference = find_path(graph, usage, source, target, weight)
    fast = FastRouter(graph).find(usage, source, target, weight)
    if reference is None:
        assert fast is None
    else:
        assert fast is not None
        assert fast.nodes == reference.nodes
        assert fast.edges == reference.edges
