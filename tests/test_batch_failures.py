"""Fault isolation, streaming persistence and resume semantics of run_batch.

The streaming engine must never discard completed work: a job that raises
becomes a structured :class:`~repro.pipeline.batch.BatchFailure` while its
siblings finish and land in the cache, and an interrupted run warm-starts
from everything already persisted.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.circuits.generators import standard
from repro.pipeline.batch import BatchJob, BatchProgress, ResultCache, run_batch

#: Resolves fine but guarantees an in-worker exception: the bipartite_prefix
#: families accept any value at resolve time and fail inside the pipeline.
CRASHING_METHOD = "cut_init:no_such_initialisation"

GOOD_METHODS = ("autobraid", "ecmas_dd_min", "ecmas_ls_min")


def _jobs(methods):
    circuit = standard.ghz_state(8)
    return [BatchJob(circuit=circuit, method=method) for method in methods]


class TestFailureIsolation:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_one_failing_job_does_not_sink_the_batch(self, tmp_path, workers):
        methods = (GOOD_METHODS[0], CRASHING_METHOD, *GOOD_METHODS[1:])
        cache = ResultCache(tmp_path / "c")
        result = run_batch(_jobs(methods), workers=workers, cache=cache)

        assert not result.ok
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure.index == 1
        assert failure.method == CRASHING_METHOD
        assert failure.circuit == "ghz_state_n8"
        assert "no_such_initialisation" in failure.error
        assert "Traceback" in failure.traceback
        assert failure.seconds >= 0.0

        # Every sibling compiled, kept its slot, and was persisted.
        assert result.records[1] is None
        assert [r.method for r in result.records if r is not None] == list(GOOD_METHODS)
        assert result.recompilations == len(GOOD_METHODS)
        warm = run_batch(_jobs(GOOD_METHODS), cache=ResultCache(tmp_path / "c"))
        assert warm.cache_hits == len(GOOD_METHODS)
        assert warm.recompilations == 0

    def test_failures_sorted_by_index(self, tmp_path):
        methods = (CRASHING_METHOD, GOOD_METHODS[0], CRASHING_METHOD)
        result = run_batch(_jobs(methods), workers=2, cache=ResultCache(tmp_path / "c"))
        assert [f.index for f in result.failures] == [0, 2]
        assert result.records[1] is not None


class TestStreamingPersistence:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_interrupted_run_resumes_from_completed_jobs(self, tmp_path, workers):
        """Kill the run after two completions; the rerun recompiles the rest.

        Records are persisted the moment they complete, so the interrupt
        (raised from the progress callback, standing in for Ctrl-C / OOM)
        loses only work still in flight — serial and pooled alike.
        """
        jobs = _jobs(GOOD_METHODS)
        cache_dir = tmp_path / "c"

        def interrupt_after_two(snapshot: BatchProgress) -> None:
            if snapshot.done >= 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_batch(jobs, workers=workers, cache=cache_dir, progress=interrupt_after_two)

        resumed = run_batch(jobs, cache=cache_dir)
        assert resumed.cache_hits == 2, "completed jobs must have been persisted mid-run"
        assert resumed.recompilations == len(jobs) - 2
        assert [r.method for r in resumed.records] == list(GOOD_METHODS)

    def test_progress_snapshots(self, tmp_path):
        jobs = _jobs(GOOD_METHODS)
        snapshots: list[BatchProgress] = []
        run_batch(jobs, cache=tmp_path / "c", progress=snapshots.append)
        # One snapshot after the cache scan, one per completion.
        assert len(snapshots) == 1 + len(jobs)
        assert snapshots[0].finished == 0 and snapshots[0].total == len(jobs)
        assert snapshots[-1].done == len(jobs)
        assert snapshots[-1].finished == snapshots[-1].total

        warm: list[BatchProgress] = []
        run_batch(jobs, cache=tmp_path / "c", progress=warm.append)
        assert warm[0].cached == len(jobs)
        assert warm[-1].finished == len(jobs) and warm[-1].done == 0

    def test_progress_counts_failures(self):
        snapshots: list[BatchProgress] = []
        result = run_batch(_jobs((GOOD_METHODS[0], CRASHING_METHOD)), progress=snapshots.append)
        assert snapshots[-1].failed == 1
        assert snapshots[-1].done == 1
        assert not result.ok
        # The failure event carries the BatchFailure; success events do not.
        carried = [s.last_failure for s in snapshots if s.last_failure is not None]
        assert [f.method for f in carried] == [CRASHING_METHOD]

    def test_figure_sweep_aborts_with_failure_detail(self, monkeypatch):
        """A failed figure job must surface its error, not skew group means."""
        from repro.chip.geometry import SurfaceCodeModel
        from repro.errors import ReproError
        from repro.eval import figures

        monkeypatch.setitem(
            figures.__dict__, "run_batch", lambda *a, **k: run_batch(_jobs((CRASHING_METHOD,)))
        )
        with pytest.raises(ReproError, match="no_such_initialisation"):
            figures.figure11_parallelism(
                SurfaceCodeModel.DOUBLE_DEFECT, parallelisms=(1,), group_size=1
            )


class TestSharedCacheDirectory:
    def test_concurrent_batches_write_valid_records(self, tmp_path):
        """Two runs racing on one directory must interleave without corruption."""
        cache_dir = tmp_path / "c"
        jobs = _jobs(GOOD_METHODS)
        errors: list[BaseException] = []

        def worker():
            try:
                run_batch(jobs, cache=ResultCache(cache_dir))
            except BaseException as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

        entries = sorted(cache_dir.glob("??/*.json"))
        assert len(entries) == len(jobs)
        for entry in entries:
            payload = json.loads(entry.read_text(encoding="utf-8"))
            assert payload["cycles"] > 0
        leftovers = [p for p in cache_dir.rglob("*.tmp")]
        assert leftovers == []

        warm = run_batch(jobs, cache=ResultCache(cache_dir))
        assert warm.cache_hits == len(jobs)
