"""Tests for the encoded-circuit validator (it must catch broken schedules)."""

import pytest

from repro import Chip, SurfaceCodeModel, compile_circuit
from repro.chip.routing_graph import RoutingGraph, tile_node_for
from repro.circuits import Circuit
from repro.core.cut_types import CutType
from repro.core.schedule import EncodedCircuit, OperationKind, ScheduledOperation
from repro.errors import ValidationError
from repro.partition import trivial_snake_placement
from repro.routing import CapacityUsage, find_path
from repro.verify import validate_encoded_circuit

DD = SurfaceCodeModel.DOUBLE_DEFECT


def _simple_circuit():
    circuit = Circuit(4)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    return circuit


def _blank_encoded(circuit, cuts=None):
    chip = Chip.minimum_viable(DD, circuit.num_qubits, 3)
    placement = trivial_snake_placement(circuit.num_qubits, chip.tile_rows, chip.tile_cols)
    if cuts is None:
        cuts = {q: (CutType.X if q % 2 == 0 else CutType.Z) for q in range(circuit.num_qubits)}
    return EncodedCircuit(model=DD, chip=chip, placement=placement, initial_cut_types=cuts)


def _path_between(encoded, a, b):
    graph = RoutingGraph(encoded.chip)
    return find_path(
        graph,
        CapacityUsage(),
        tile_node_for(encoded.placement.slot_of(a)),
        tile_node_for(encoded.placement.slot_of(b)),
    )


def test_valid_schedule_passes():
    circuit = _simple_circuit()
    encoded = _blank_encoded(circuit)
    encoded.operations = [
        ScheduledOperation(OperationKind.CNOT_BRAID, 0, 1, (0, 1), gate_node=0, path=_path_between(encoded, 0, 1)),
        ScheduledOperation(OperationKind.CNOT_BRAID, 1, 1, (1, 2), gate_node=1, path=_path_between(encoded, 1, 2)),
    ]
    report = validate_encoded_circuit(circuit, encoded)
    assert report.valid
    report.raise_if_invalid()


def test_missing_gate_detected():
    circuit = _simple_circuit()
    encoded = _blank_encoded(circuit)
    encoded.operations = [
        ScheduledOperation(OperationKind.CNOT_BRAID, 0, 1, (0, 1), gate_node=0, path=_path_between(encoded, 0, 1)),
    ]
    report = validate_encoded_circuit(circuit, encoded)
    assert not report.valid
    assert any("never scheduled" in error for error in report.errors)
    with pytest.raises(ValidationError):
        report.raise_if_invalid()


def test_duplicate_gate_detected():
    circuit = _simple_circuit()
    encoded = _blank_encoded(circuit)
    op = ScheduledOperation(OperationKind.CNOT_BRAID, 0, 1, (0, 1), gate_node=0, path=_path_between(encoded, 0, 1))
    later = ScheduledOperation(OperationKind.CNOT_BRAID, 3, 1, (0, 1), gate_node=0, path=_path_between(encoded, 0, 1))
    second = ScheduledOperation(OperationKind.CNOT_BRAID, 1, 1, (1, 2), gate_node=1, path=_path_between(encoded, 1, 2))
    encoded.operations = [op, later, second]
    report = validate_encoded_circuit(circuit, encoded)
    assert any("scheduled 2 times" in error for error in report.errors)


def test_dependency_violation_detected():
    circuit = _simple_circuit()
    encoded = _blank_encoded(circuit)
    encoded.operations = [
        ScheduledOperation(OperationKind.CNOT_BRAID, 1, 1, (0, 1), gate_node=0, path=_path_between(encoded, 0, 1)),
        ScheduledOperation(OperationKind.CNOT_BRAID, 0, 1, (1, 2), gate_node=1, path=_path_between(encoded, 1, 2)),
    ]
    report = validate_encoded_circuit(circuit, encoded)
    assert any("before its" in error for error in report.errors)


def test_tile_double_booking_detected():
    circuit = Circuit(4)
    circuit.cx(0, 1)
    circuit.cx(0, 2)
    encoded = _blank_encoded(circuit)
    encoded.operations = [
        ScheduledOperation(OperationKind.CNOT_BRAID, 0, 1, (0, 1), gate_node=0, path=_path_between(encoded, 0, 1)),
        ScheduledOperation(OperationKind.CNOT_BRAID, 0, 1, (0, 2), gate_node=1, path=_path_between(encoded, 0, 2)),
    ]
    report = validate_encoded_circuit(circuit, encoded)
    assert any("overlapping cycles" in error for error in report.errors)


def test_capacity_violation_detected():
    # Route four paths across the same corridor cut in one cycle on a
    # bandwidth-1 chip: the middle corridor cannot carry them all.
    circuit = Circuit(16)
    pairs = [(0, 12), (1, 13), (2, 14), (3, 15)]
    for a, b in pairs:
        circuit.cx(a, b)
    chip = Chip.minimum_viable(DD, 16, 3)
    placement = trivial_snake_placement(16, chip.tile_rows, chip.tile_cols)
    encoded = EncodedCircuit(
        model=DD,
        chip=chip,
        placement=placement,
        initial_cut_types={q: (CutType.X if q < 8 else CutType.Z) for q in range(16)},
    )
    graph = RoutingGraph(chip)
    operations = []
    for node, (a, b) in enumerate(pairs):
        path = find_path(
            graph,
            CapacityUsage(),
            tile_node_for(placement.slot_of(a)),
            tile_node_for(placement.slot_of(b)),
        )
        operations.append(
            ScheduledOperation(OperationKind.CNOT_BRAID, 0, 1, (a, b), gate_node=node, path=path)
        )
    encoded.operations = operations
    report = validate_encoded_circuit(circuit, encoded)
    assert any("capacity" in error for error in report.errors)


def test_same_cut_braid_detected():
    circuit = Circuit(4)
    circuit.cx(0, 2)  # qubits 0 and 2 share cut type X in _blank_encoded
    encoded = _blank_encoded(circuit)
    encoded.operations = [
        ScheduledOperation(OperationKind.CNOT_BRAID, 0, 1, (0, 2), gate_node=0, path=_path_between(encoded, 0, 2)),
    ]
    report = validate_encoded_circuit(circuit, encoded)
    assert any("identical cut type" in error for error in report.errors)


def test_cut_modification_makes_braid_legal():
    circuit = Circuit(4)
    circuit.cx(0, 2)
    encoded = _blank_encoded(circuit)
    encoded.operations = [
        ScheduledOperation(OperationKind.CUT_MODIFICATION, 0, 3, (0,), new_cut=CutType.Z),
        ScheduledOperation(
            OperationKind.CNOT_BRAID, 3, 1, (0, 2), gate_node=0, path=_path_between(encoded, 0, 2)
        ),
    ]
    report = validate_encoded_circuit(circuit, encoded)
    assert report.valid, report.errors


def test_wrong_path_endpoints_detected():
    circuit = _simple_circuit()
    encoded = _blank_encoded(circuit)
    encoded.operations = [
        ScheduledOperation(OperationKind.CNOT_BRAID, 0, 1, (0, 1), gate_node=0, path=_path_between(encoded, 2, 3)),
        ScheduledOperation(OperationKind.CNOT_BRAID, 1, 1, (1, 2), gate_node=1, path=_path_between(encoded, 1, 2)),
    ]
    report = validate_encoded_circuit(circuit, encoded)
    assert any("instead of the mapped tiles" in error for error in report.errors)


def test_real_compilations_validate(ghz8):
    for model in (DD, SurfaceCodeModel.LATTICE_SURGERY):
        encoded = compile_circuit(ghz8, model=model, scheduler="limited")
        report = validate_encoded_circuit(ghz8, encoded)
        assert report.valid
        assert report.num_operations == len(encoded.operations)
