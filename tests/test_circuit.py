"""Unit tests for the Circuit container."""

import pytest

from repro.circuits import Circuit
from repro.circuits.gate import Gate, cnot
from repro.errors import CircuitError


def test_empty_circuit_properties():
    circuit = Circuit(3)
    assert circuit.num_qubits == 3
    assert len(circuit) == 0
    assert circuit.num_cnots == 0
    assert circuit.depth() == 0


def test_circuit_requires_positive_qubits():
    with pytest.raises(CircuitError):
        Circuit(0)


def test_append_validates_qubit_range():
    circuit = Circuit(2)
    with pytest.raises(CircuitError):
        circuit.append(cnot(0, 5))


def test_cx_and_depth_counting():
    circuit = Circuit(3)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    circuit.cx(0, 1)
    assert circuit.num_cnots == 3
    assert circuit.depth() == 3


def test_depth_ignores_single_qubit_gates_by_default():
    circuit = Circuit(2)
    circuit.add_single("h", 0)
    circuit.add_single("h", 0)
    circuit.cx(0, 1)
    assert circuit.depth() == 1
    assert circuit.depth(cnot_only=False) == 3


def test_parallel_gates_share_depth():
    circuit = Circuit(4)
    circuit.cx(0, 1)
    circuit.cx(2, 3)
    assert circuit.depth() == 1


def test_cnot_circuit_extracts_only_cnots():
    circuit = Circuit(2)
    circuit.add_single("h", 0)
    circuit.cx(0, 1)
    circuit.add_single("x", 1)
    cnot_only = circuit.cnot_circuit()
    assert len(cnot_only) == 1
    assert cnot_only[0].is_cnot


def test_gate_indices_follow_program_order():
    circuit = Circuit(3)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    assert [g.index for g in circuit] == [0, 1]


def test_used_qubits_and_gate_counts():
    circuit = Circuit(5)
    circuit.cx(0, 3)
    circuit.add_single("h", 3)
    assert circuit.used_qubits() == {0, 3}
    assert circuit.gate_counts() == {"cx": 1, "h": 1}


def test_remapped_circuit():
    circuit = Circuit(2, name="orig")
    circuit.cx(0, 1)
    remapped = circuit.remapped({0: 1, 1: 0})
    assert remapped[0].qubits == (1, 0)


def test_compose_concatenates_and_grows():
    a = Circuit(2)
    a.cx(0, 1)
    b = Circuit(3)
    b.cx(1, 2)
    combined = a.compose(b)
    assert combined.num_qubits == 3
    assert combined.num_cnots == 2


def test_equality_depends_on_gates_not_name():
    a = Circuit(2, name="a")
    a.cx(0, 1)
    b = Circuit(2, name="b")
    b.cx(0, 1)
    assert a == b
    b.cx(1, 0)
    assert a != b


def test_copy_is_independent():
    a = Circuit(2)
    a.cx(0, 1)
    b = a.copy()
    b.cx(1, 0)
    assert len(a) == 1
    assert len(b) == 2


def test_extend_appends_fresh_gate_objects():
    circuit = Circuit(3)
    circuit.extend([Gate("cx", (0, 1)), Gate("cx", (1, 2))])
    assert circuit.num_cnots == 2
