"""Tests for the physical-qubit accounting."""

import math

import pytest

from repro.chip import geometry
from repro.chip.geometry import SurfaceCodeModel
from repro.errors import ChipError

DD = SurfaceCodeModel.DOUBLE_DEFECT
LS = SurfaceCodeModel.LATTICE_SURGERY


def test_tile_sides():
    assert geometry.tile_side(DD, 3) == 6
    assert geometry.tile_side(LS, 3) == math.ceil(math.sqrt(2) * 3)
    assert geometry.tile_block_side(DD, 3) == 15
    assert geometry.tile_block_side(LS, 3) == 2 * geometry.tile_side(LS, 3)


def test_lane_widths():
    assert geometry.lane_width(DD, 4) == pytest.approx(10.0)
    assert geometry.lane_width(LS, 3) == pytest.approx(geometry.tile_side(LS, 3))


def test_channel_bandwidth_floor():
    assert geometry.channel_bandwidth(DD, 2, 12.0) == 2  # 12 / 5.0
    assert geometry.channel_bandwidth(DD, 2, 4.9) == 0
    with pytest.raises(ChipError):
        geometry.channel_bandwidth(DD, 2, -1.0)


def test_minimum_viable_side_formula():
    # l = ceil(sqrt(n)) * 5d for double defect.
    assert geometry.minimum_viable_side(DD, 8, 3) == 3 * 15
    # l = ceil(sqrt(n)) * ceil(sqrt(2) d) for lattice surgery.
    assert geometry.minimum_viable_side(LS, 8, 3) == 3 * geometry.tile_side(LS, 3)


def test_four_x_side():
    assert geometry.four_x_side(DD, 8, 3) == 2 * geometry.minimum_viable_side(DD, 8, 3)
    assert geometry.four_x_side(LS, 8, 3) == 3 * 15  # the paper defines 4x LS as ceil(sqrt n) * 5d


def test_communication_capacity_theorem2_formula():
    assert geometry.communication_capacity(1) == 3
    assert geometry.communication_capacity(2) == 3
    assert geometry.communication_capacity(3) == 4
    assert geometry.communication_capacity(5) == 5
    with pytest.raises(ChipError):
        geometry.communication_capacity(0)


def test_sufficient_bandwidth_inverts_capacity():
    for parallelism in range(1, 30):
        bandwidth = geometry.sufficient_bandwidth(parallelism)
        assert geometry.communication_capacity(bandwidth) >= parallelism
        if bandwidth > 1:
            assert geometry.communication_capacity(bandwidth - 2 if bandwidth > 2 else 1) < parallelism


def test_uniform_bandwidths_minimum_chip_is_one():
    side = geometry.minimum_viable_side(DD, 9, 3)
    assert geometry.uniform_bandwidths(DD, 3, 3, side) == [1, 1, 1, 1]


def test_uniform_bandwidths_grow_with_side():
    tiles = 3
    small = geometry.uniform_bandwidths(DD, 3, tiles, geometry.minimum_viable_side(DD, 9, 3))
    large = geometry.uniform_bandwidths(DD, 3, tiles, 2 * geometry.minimum_viable_side(DD, 9, 3))
    assert sum(large) > sum(small)


def test_side_for_bandwidth_monotonic():
    sides = [geometry.side_for_bandwidth(DD, 9, 3, b) for b in range(1, 6)]
    assert sides == sorted(sides)
    assert sides[0] >= geometry.minimum_viable_side(DD, 9, 3)


def test_corridor_widths_requires_fitting_tiles():
    with pytest.raises(ChipError):
        geometry.corridor_widths(DD, 3, 4, 10)


def test_total_physical_qubits():
    assert geometry.total_physical_qubits(10) == 100
    with pytest.raises(ChipError):
        geometry.total_physical_qubits(0)


def test_invalid_inputs_raise():
    with pytest.raises(ChipError):
        geometry.tile_side(DD, 0)
    with pytest.raises(ChipError):
        geometry.minimum_viable_side(DD, 0, 3)
    with pytest.raises(ChipError):
        geometry.sufficient_bandwidth(0)
    with pytest.raises(ChipError):
        geometry.side_for_bandwidth(DD, 4, 3, 0)
