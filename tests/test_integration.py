"""End-to-end integration tests over the benchmark suite.

These replay the paper's headline comparisons on a subset of Table I and
assert the qualitative findings (who wins, by roughly what factor), with
every schedule passing the validator.
"""

import pytest

from repro import SurfaceCodeModel, compile_circuit
from repro.baselines import compile_autobraid, compile_edpci
from repro.circuits import qasm
from repro.circuits.generators import get_benchmark, random_parallel_circuit
from repro.core import circuit_parallelism_degree
from repro.verify import validate_encoded_circuit

DD = SurfaceCodeModel.DOUBLE_DEFECT
LS = SurfaceCodeModel.LATTICE_SURGERY

BENCHMARKS = ["dnn_n8", "qpe_n9", "bv_n10", "ising_n10", "adder_n10", "ghz_state_n23", "swap_test_n25"]


@pytest.mark.parametrize("name", BENCHMARKS)
def test_ecmas_dd_beats_autobraid_substantially(name):
    circuit = get_benchmark(name).build()
    autobraid = compile_autobraid(circuit)
    ecmas = compile_circuit(circuit, model=DD, resources="minimum", scheduler="limited")
    validate_encoded_circuit(circuit, autobraid).raise_if_invalid()
    validate_encoded_circuit(circuit, ecmas).raise_if_invalid()
    # Paper: 33.3% - 67.3% reduction.  Require at least 25% on every circuit.
    assert ecmas.num_cycles <= 0.75 * autobraid.num_cycles


@pytest.mark.parametrize("name", BENCHMARKS)
def test_ecmas_ls_matches_or_beats_edpci(name):
    circuit = get_benchmark(name).build()
    edpci = compile_edpci(circuit)
    ecmas = compile_circuit(circuit, model=LS, resources="minimum", scheduler="limited")
    validate_encoded_circuit(circuit, edpci).raise_if_invalid()
    validate_encoded_circuit(circuit, ecmas).raise_if_invalid()
    assert ecmas.num_cycles <= edpci.num_cycles
    assert ecmas.num_cycles >= circuit.depth()


@pytest.mark.parametrize("name", ["dnn_n8", "qpe_n9", "adder_n10"])
def test_resu_within_guarantee_and_valid(name):
    circuit = get_benchmark(name).build()
    encoded = compile_circuit(circuit, model=DD, resources="sufficient", scheduler="resu")
    validate_encoded_circuit(circuit, encoded).raise_if_invalid()
    assert encoded.num_cycles <= 2.5 * circuit.depth() + 3


def test_more_resources_never_hurt_lattice_surgery():
    circuit = get_benchmark("dnn_n16").build()
    minimum = compile_circuit(circuit, model=LS, resources="minimum", scheduler="limited")
    four_x = compile_circuit(circuit, model=LS, resources="4x", scheduler="limited")
    assert four_x.num_cycles <= minimum.num_cycles


def test_parallelism_scaling_trend():
    """Fig. 11 trend: Ecmas keeps a large advantage over AutoBraid at every parallelism."""
    low = random_parallel_circuit(25, 12, 2, seed=1)
    high = random_parallel_circuit(25, 12, 8, seed=1)
    for circuit in (low, high):
        autobraid = compile_autobraid(circuit)
        ecmas = compile_circuit(circuit, model=DD, resources="minimum", scheduler="limited")
        # Paper Fig. 11b reports 43%-63% reduction across the parallelism
        # range; a single small instance is noisier, so require >= 30%.
        assert ecmas.num_cycles <= 0.7 * autobraid.num_cycles


def test_qasm_file_to_schedule_pipeline(tmp_path):
    """Full toolflow: QASM text -> circuit -> Ecmas schedule -> validation."""
    circuit = get_benchmark("adder_n10").build()
    path = tmp_path / "adder.qasm"
    qasm.dump(circuit, path)
    loaded = qasm.load(path)
    assert circuit_parallelism_degree(loaded) == circuit_parallelism_degree(circuit)
    encoded = compile_circuit(loaded, model=DD, resources="minimum", scheduler="limited")
    validate_encoded_circuit(loaded, encoded).raise_if_invalid()
    assert encoded.num_cnots == circuit.num_cnots


def test_errors_module_hierarchy():
    from repro import errors

    for name in (
        "CircuitError", "QasmError", "ChipError", "MappingError",
        "RoutingError", "SchedulingError", "ValidationError", "PartitionError",
    ):
        assert issubclass(getattr(errors, name), errors.ReproError)
    assert errors.QasmError("bad", line=3, column=2).line == 3
