"""Tests for cut-type initialisation strategies."""

from repro.circuits import Circuit
from repro.circuits.generators import standard
from repro.core.cut_types import (
    CutType,
    bipartite_prefix_cut_types,
    count_single_cycle_gates,
    cut_types_from_bipartition,
    maxcut_cut_types,
    random_cut_types,
    uniform_cut_types,
)


def test_cut_type_flip():
    assert CutType.X.flipped() is CutType.Z
    assert CutType.Z.flipped() is CutType.X


def test_uniform_assignment():
    assignment = uniform_cut_types(5, CutType.Z)
    assert set(assignment.values()) == {CutType.Z}
    assert len(assignment) == 5


def test_random_assignment_seeded():
    assert random_cut_types(20, seed=3) == random_cut_types(20, seed=3)


def test_bipartite_circuit_gets_perfect_initialisation(ghz8):
    dag = ghz8.dag()
    assignment = bipartite_prefix_cut_types(dag, 8)
    # GHZ's communication graph is a path (bipartite): every CNOT should be
    # executable in one cycle.
    assert count_single_cycle_gates(dag, assignment) == len(dag)


def test_dnn_ansatz_bipartite_initialisation():
    circuit = standard.dnn(8, layers=2)
    dag = circuit.dag()
    assignment = bipartite_prefix_cut_types(dag, 8)
    assert count_single_cycle_gates(dag, assignment) == len(dag)


def test_non_bipartite_prefix_prioritises_early_gates(triangle_circuit):
    dag = triangle_circuit.dag()
    assignment = bipartite_prefix_cut_types(dag, 3)
    # The first two gates (0-1, 1-2) must be single-cycle; the closing edge of
    # the odd cycle cannot be.
    assert assignment[dag.gate(0).control] != assignment[dag.gate(0).target]
    assert assignment[dag.gate(1).control] != assignment[dag.gate(1).target]
    assert count_single_cycle_gates(dag, assignment) == 2


def test_cut_types_from_bipartition_covers_all_qubits():
    assignment = cut_types_from_bipartition(({0, 2}, {1}), 4)
    assert assignment[0] is CutType.X
    assert assignment[1] is CutType.Z
    assert assignment[3] is CutType.X  # unassigned qubits default to X


def test_maxcut_beats_random_on_bipartite_graph():
    circuit = standard.ghz_state(12)
    graph = circuit.communication_graph()
    dag = circuit.dag()
    maxcut = count_single_cycle_gates(dag, maxcut_cut_types(graph, seed=0))
    random_score = count_single_cycle_gates(dag, random_cut_types(12, seed=0))
    # One-exchange local search is a heuristic: it should clearly beat a
    # random assignment but may stop short of the perfect 2-colouring.
    assert maxcut >= random_score
    assert maxcut >= 0.7 * len(dag)


def test_prefix_beats_maxcut_on_front_of_circuit():
    # Construct a circuit where max-cut optimises late gates at the expense of
    # the first gate's pair: many repeated CNOTs late between 0-1 ... the
    # bipartite prefix must still make the *first* gates single-cycle.
    circuit = Circuit(4)
    circuit.cx(0, 1)
    circuit.cx(2, 3)
    circuit.cx(1, 2)
    circuit.cx(0, 3)
    dag = circuit.dag()
    assignment = bipartite_prefix_cut_types(dag, 4)
    assert assignment[0] != assignment[1]
    assert assignment[2] != assignment[3]
