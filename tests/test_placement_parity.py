"""Quality-parity harness for the fast (multilevel) placement engine.

Mirror of ``tests/test_differential_engines.py``, with one deliberate
difference: the fast *scheduling* engine must be bit-identical, but the fast
*placement* engine is allowed to place qubits differently — multilevel
coarsen/FM refinement is an approximation of exhaustive KL — as long as

* every schedule it leads to is validator-clean, and
* its communication cost ``f = Σ γ_ij · l_ij`` stays within
  :data:`COST_RATIO_BOUND` of the reference placement's on every non-large
  benchmark (measured worst case at the time of writing: 1.05).

The reference core stays the default everywhere; this harness is the
evidence that licenses opting in with ``--placement fast``.
"""

from __future__ import annotations

import pytest

from repro.circuits.generators import default_suite
from repro.pipeline.framework import PassContext
from repro.pipeline.registry import run_pipeline_method
from repro.verify import validate_encoded_circuit

#: One method per surface-code model: placement only feeds the mapping stage,
#: so model coverage (not scheduler-variant coverage) is what matters here.
METHODS = ("ecmas_dd_min", "ecmas_ls_min")

#: Maximum fast/reference communication-cost ratio tolerated anywhere in the
#: suite.  Measured worst case is 1.05; the slack absorbs benchmark additions
#: without letting real quality regressions through.
COST_RATIO_BOUND = 1.25

_SUITE = {spec.name: spec for spec in default_suite(include_large=False)}


@pytest.fixture(scope="module")
def circuits():
    """Each benchmark circuit, built once for the whole module."""
    return {name: spec.build() for name, spec in _SUITE.items()}


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("name", sorted(_SUITE))
def test_fast_placement_quality_parity(circuits, name, method):
    circuit = circuits[name]
    reference = run_pipeline_method(circuit, method)
    fast = run_pipeline_method(circuit, method, placement="fast")

    assert fast.context.mapping_cost is not None and reference.context.mapping_cost is not None
    bound = COST_RATIO_BOUND * max(reference.context.mapping_cost, 1.0)
    assert fast.context.mapping_cost <= bound, (
        f"{method} on {name}: fast placement cost {fast.context.mapping_cost} "
        f"exceeds {COST_RATIO_BOUND}x the reference cost {reference.context.mapping_cost}"
    )

    report = validate_encoded_circuit(circuit, fast.encoded)
    assert report.valid, f"{method} on {name}: schedule invalid under fast placement: {report.errors[:3]}"


def test_fast_placement_is_deterministic(circuits):
    """Same circuit + seed → bit-identical placement and schedule."""
    circuit = circuits["ising_n50"]
    first = run_pipeline_method(circuit, "ecmas_dd_min", placement="fast")
    second = run_pipeline_method(circuit, "ecmas_dd_min", placement="fast")
    assert first.context.placement.qubit_to_slot == second.context.placement.qubit_to_slot
    assert first.encoded.operations == second.encoded.operations


def test_reference_placement_is_the_default(circuits):
    """Until parity is proven per-release, nothing opts in implicitly."""
    assert PassContext.__dataclass_fields__["placement_engine"].default == "reference"
    circuit = circuits["qft_n10"]
    default = run_pipeline_method(circuit, "ecmas_dd_min")
    explicit = run_pipeline_method(circuit, "ecmas_dd_min", placement="reference")
    assert default.context.placement.qubit_to_slot == explicit.context.placement.qubit_to_slot


def test_unknown_placement_engine_is_rejected(circuits):
    from repro.errors import MappingError

    with pytest.raises(MappingError, match="unknown placement engine"):
        run_pipeline_method(circuits["dnn_n8"], "ecmas_dd_min", placement="metis")
