"""Tests for the plain-text visualisation helpers."""

from repro import SurfaceCodeModel, compile_circuit
from repro.circuits.generators import standard
from repro.viz import render_gantt, render_placement, render_schedule_timeline


def _compiled():
    circuit = standard.ghz_state(6)
    encoded = compile_circuit(circuit, model=SurfaceCodeModel.DOUBLE_DEFECT, scheduler="limited")
    return circuit, encoded


def test_render_placement_shows_all_qubits():
    _, encoded = _compiled()
    text = render_placement(encoded.chip, encoded.placement)
    for qubit in range(6):
        assert f"q{qubit}" in text
    assert "bandwidth" in text or "corridor bandwidths" in text
    # 3x3 tile array with 6 qubits leaves unused slots marked '.'.
    assert "." in text


def test_render_placement_marks_dead_tiles():
    from repro.chip import DefectSpec

    _, encoded = _compiled()
    # Re-render on a copy of the chip with one unused slot marked dead.
    dead_chip = encoded.chip.with_defects(DefectSpec(dead_tiles=((2, 2),)))
    text = render_placement(dead_chip, encoded.placement)
    assert "X" in text
    assert "'X' = dead tile" in text


def test_render_timeline_lists_every_cycle():
    _, encoded = _compiled()
    text = render_schedule_timeline(encoded)
    assert f"{encoded.num_cycles} cycles" in text
    assert text.count("cycle ") == encoded.num_cycles


def test_render_timeline_truncates():
    _, encoded = _compiled()
    text = render_schedule_timeline(encoded, max_cycles=2)
    assert "more cycles" in text
    assert text.count("cycle ") == 2


def test_render_gantt_rows_per_qubit():
    _, encoded = _compiled()
    text = render_gantt(encoded)
    lines = [line for line in text.splitlines() if line.strip().startswith("q")]
    assert len(lines) == 6
    assert any("B" in line for line in lines)


def test_gantt_marks_same_cut_and_modifications():
    from repro.baselines import compile_autobraid

    circuit = standard.ghz_state(5)
    encoded = compile_autobraid(circuit)
    text = render_gantt(encoded)
    assert "S" in text  # AutoBraid only uses three-cycle same-cut executions
