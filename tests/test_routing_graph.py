"""Tests for the corridor routing graph."""

import pytest

from repro.chip import Chip, RoutingGraph, SurfaceCodeModel, junction, tile_node
from repro.errors import RoutingError

DD = SurfaceCodeModel.DOUBLE_DEFECT


@pytest.fixture
def graph():
    return RoutingGraph(Chip.with_tile_array(DD, 3, 2, 3, bandwidth=2))


def test_node_counts(graph):
    chip = graph.chip
    junctions = (chip.tile_rows + 1) * (chip.tile_cols + 1)
    tiles = chip.tile_rows * chip.tile_cols
    assert len(graph.nodes) == junctions + tiles
    assert len(graph.tile_nodes()) == tiles


def test_edge_capacities_follow_corridor_bandwidths(graph):
    chip = graph.chip
    assert graph.capacity(junction(0, 0), junction(0, 1)) == chip.h_bandwidths[0]
    assert graph.capacity(junction(0, 0), junction(1, 0)) == chip.v_bandwidths[0]


def test_tile_access_edges_exist(graph):
    tile = tile_node(0, 0)
    for corner in (junction(0, 0), junction(0, 1), junction(1, 0), junction(1, 1)):
        assert graph.has_edge(tile, corner)
    assert graph.is_tile(tile)
    assert not graph.is_tile(junction(0, 0))


def test_neighbors_of_interior_junction(graph):
    # An interior junction touches 4 junction neighbours plus adjacent tiles.
    neighbors = graph.neighbors(junction(1, 1))
    junction_neighbors = [n for n in neighbors if n[0] == "j"]
    assert len(junction_neighbors) == 4


def test_capacity_of_missing_edge_raises(graph):
    with pytest.raises(RoutingError):
        graph.capacity(junction(0, 0), junction(2, 2))


def test_unknown_node_raises(graph):
    with pytest.raises(RoutingError):
        graph.neighbors(("j", 99, 99))


def test_corridor_of_edges(graph):
    assert graph.corridor_of(junction(0, 0), junction(0, 1)) == ("h", 0)
    assert graph.corridor_of(junction(1, 0), junction(2, 0)) == ("v", 0)
    assert graph.corridor_of(tile_node(0, 0), junction(0, 0)) is None


def test_path_edges_validates_adjacency(graph):
    nodes = [tile_node(0, 0), junction(0, 0), junction(0, 1)]
    edges = graph.path_edges(nodes)
    assert len(edges) == 2
    with pytest.raises(RoutingError):
        graph.path_edges([tile_node(0, 0), junction(2, 3)])
