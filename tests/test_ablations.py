"""Tests for the ablation configurations behind Tables II-V."""

import pytest

from repro.baselines import (
    compile_with_cut_initialisation,
    compile_with_cut_scheduling,
    compile_with_gate_order,
    compile_with_location_strategy,
)
from repro.circuits.generators import standard
from repro.verify import validate_encoded_circuit


@pytest.fixture(scope="module")
def qft8():
    return standard.qft(8)


@pytest.fixture(scope="module")
def dnn8():
    return standard.dnn(8, layers=4)


class TestLocationAblation:
    def test_all_strategies_produce_valid_schedules(self, qft8):
        for strategy in ("trivial", "metis", "ecmas"):
            encoded = compile_with_location_strategy(qft8, strategy)
            validate_encoded_circuit(qft8, encoded).raise_if_invalid()
            assert strategy in encoded.method

    def test_ours_not_worse_than_trivial_on_clustered_circuit(self, dnn8):
        trivial = compile_with_location_strategy(dnn8, "trivial")
        ours = compile_with_location_strategy(dnn8, "ecmas")
        assert ours.num_cycles <= trivial.num_cycles + 2


class TestCutInitialisationAblation:
    def test_all_initialisations_produce_valid_schedules(self, qft8):
        for initialisation in ("random", "maxcut", "bipartite_prefix"):
            encoded = compile_with_cut_initialisation(qft8, initialisation)
            validate_encoded_circuit(qft8, encoded).raise_if_invalid()

    def test_ours_beats_random_on_bipartite_circuit(self):
        circuit = standard.ghz_state(12)
        random_init = compile_with_cut_initialisation(circuit, "random", seed=1)
        ours = compile_with_cut_initialisation(circuit, "bipartite_prefix")
        assert ours.num_cycles <= random_init.num_cycles


class TestGateOrderAblation:
    def test_both_orders_valid_and_ours_not_worse(self, dnn8):
        circuit_order = compile_with_gate_order(dnn8, "circuit_order")
        ours = compile_with_gate_order(dnn8, "criticality")
        validate_encoded_circuit(dnn8, circuit_order).raise_if_invalid()
        validate_encoded_circuit(dnn8, ours).raise_if_invalid()
        assert ours.num_cycles <= circuit_order.num_cycles + 2


class TestCutSchedulingAblation:
    def test_all_strategies_valid(self, qft8):
        for strategy in ("channel_first", "time_first", "adaptive"):
            encoded = compile_with_cut_scheduling(qft8, strategy)
            validate_encoded_circuit(qft8, encoded).raise_if_invalid()

    def test_adaptive_not_worse_than_both_fixed_strategies(self, qft8):
        channel = compile_with_cut_scheduling(qft8, "channel_first")
        time_first = compile_with_cut_scheduling(qft8, "time_first")
        adaptive = compile_with_cut_scheduling(qft8, "adaptive")
        assert adaptive.num_cycles <= max(channel.num_cycles, time_first.num_cycles)
